//! Engine throughput: scenarios/sec of the campaign executor at 1, 2 and 4 worker
//! threads over a small fixed grid (the ROADMAP's "criterion bench for the engine
//! itself" item).
//!
//! On single-core CI hardware the three thread counts measure about the same; the
//! bench still pins the executor's overhead (work-queue claims, canonical-order
//! merge) and becomes a real scaling curve on multi-core machines.

use bsm_engine::{Campaign, CampaignBuilder, Executor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A small mixed grid: solvable and unsolvable cells across every topology and both
/// auth modes (36 cells — large enough to keep 4 workers busy, small enough to bench).
fn small_grid() -> Campaign {
    CampaignBuilder::new().sizes([3]).corruptions([(0, 0), (1, 1)]).seeds(0..1).build()
}

fn bench_campaign_throughput(c: &mut Criterion) {
    let campaign = small_grid();
    let mut group = c.benchmark_group("engine_throughput");
    for threads in [1usize, 2, 4] {
        let executor = Executor::new().threads(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &executor, |b, executor| {
            b.iter(|| executor.run(black_box(&campaign)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_campaign_throughput);
criterion_main!(benches);
