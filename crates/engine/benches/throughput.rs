//! Engine throughput: scenarios/sec of the campaign executor at 1, 2 and 4 worker
//! threads over a small fixed grid (the ROADMAP's "criterion bench for the engine
//! itself" item), plus a Dolev-Strong-dominated configuration that exercises the
//! signature-chain hot path (digest memoization, shared `SigChain` fan-out, sharded
//! PKI) — the workload `campaign_ctl bench` snapshots into `BENCH_engine.json`.
//!
//! On single-core CI hardware the three thread counts measure about the same; the
//! bench still pins the executor's overhead (work-queue claims, canonical-order
//! merge) and becomes a real scaling curve on multi-core machines.

use bsm_engine::{Campaign, CampaignBuilder, Executor};
use bsm_net::Topology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A small mixed grid: solvable and unsolvable cells across every topology and both
/// auth modes (36 cells — large enough to keep 4 workers busy, small enough to bench).
fn small_grid() -> Campaign {
    CampaignBuilder::new().sizes([3]).corruptions([(0, 0), (1, 1)]).seeds(0..1).build()
}

/// A Dolev-Strong-dominated grid: larger markets, authenticated fully-connected cells
/// only, so every scenario runs `2k` parallel broadcast instances with `t + 1` relay
/// rounds of growing signature chains. This is where the crypto hot-path
/// optimizations are visible in criterion (not just in the `BENCH_engine.json`
/// counters).
fn dolev_strong_grid() -> Campaign {
    CampaignBuilder::new()
        .sizes([8, 10])
        .topologies([Topology::FullyConnected])
        .auth_modes([bsm_core::problem::AuthMode::Authenticated])
        .corruptions([(2, 2)])
        .seeds(0..1)
        .build()
}

fn bench_campaign_throughput(c: &mut Criterion) {
    let campaign = small_grid();
    let mut group = c.benchmark_group("engine_throughput");
    for threads in [1usize, 2, 4] {
        let executor = Executor::new().threads(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &executor, |b, executor| {
            b.iter(|| executor.run(black_box(&campaign)))
        });
    }
    group.finish();
}

fn bench_dolev_strong_throughput(c: &mut Criterion) {
    let campaign = dolev_strong_grid();
    let mut group = c.benchmark_group("dolev_strong_throughput");
    group.sample_size(10);
    for threads in [1usize, 4] {
        let executor = Executor::new().threads(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &executor, |b, executor| {
            b.iter(|| executor.run(black_box(&campaign)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_campaign_throughput, bench_dolev_strong_throughput);
criterion_main!(benches);
