//! Attribution exactness: the per-cell crypto deltas must sum to the process-global
//! counter delta of the whole campaign.
//!
//! This is the property that makes the sidecar *attribution* rather than sampling:
//! every digest and signature verification the campaign performs is credited to
//! exactly one cell, even under a multi-threaded executor (each cell runs entirely
//! on one worker thread, so its thread-local delta is exact).
//!
//! The test lives alone in its own binary on purpose: the global counters are
//! process-wide, so any concurrently running test that touches crypto would make the
//! global delta unattributable. `cargo test` runs separate test binaries' processes
//! independently, keeping this window clean.

use bsm_core::harness::AdversarySpec;
use bsm_core::problem::AuthMode;
use bsm_engine::{CampaignBuilder, Executor};
use bsm_net::Topology;

#[test]
fn per_cell_deltas_sum_to_the_global_counter_delta() {
    let campaign = CampaignBuilder::new()
        .sizes([2, 3])
        .topologies(Topology::ALL)
        .auth_modes(AuthMode::ALL)
        .corruptions([(0, 0), (1, 1)])
        .adversaries(AdversarySpec::ALL)
        .seeds(0..2)
        .build();
    let executor = Executor::new().threads(4);
    let before = bsm_crypto::counters::snapshot();
    let (_, telemetry, _) = executor.run_telemetry(&campaign);
    let global = bsm_crypto::counters::snapshot() - before;
    let mut attributed = bsm_crypto::CounterSnapshot::default();
    for cell in &telemetry {
        attributed.digests_computed += cell.crypto.digests_computed;
        attributed.signatures_verified += cell.crypto.signatures_verified;
        attributed.verify_cache_hits += cell.crypto.verify_cache_hits;
    }
    assert!(global.digests_computed > 0, "the campaign must do crypto work");
    assert!(global.signatures_verified > 0);
    assert_eq!(
        attributed, global,
        "per-cell telemetry deltas must account for every counted operation"
    );
}
