//! The distributed-campaign determinism proof.
//!
//! A campaign split into K shards — each run as its own `Executor` invocation, as K
//! processes would — must merge back into a report whose JSON and CSV exports are
//! **byte-identical** to the single-process run, for K = 1, 2 and 3, with the shard
//! reports round-tripped through the JSON export/import pair exactly as the
//! `campaign_ctl` binary does between real processes. This is the contract the CI
//! shard-merge gate enforces end to end.

use bsm_core::harness::AdversarySpec;
use bsm_core::problem::AuthMode;
use bsm_engine::export::{to_csv, to_json};
use bsm_engine::import::from_json;
use bsm_engine::{Campaign, CampaignBuilder, CampaignDiff, CampaignReport, Executor, ShardPlan};
use bsm_net::Topology;

/// A ≥500-cell campaign crossing every axis: 2 sizes × 3 topologies × 2 auth modes ×
/// 4 corruption pairs × 3 adversaries × 4 seeds = 576 cells, mixing solvable and
/// unsolvable regions.
fn large_campaign() -> Campaign {
    CampaignBuilder::new()
        .sizes([2, 3])
        .topologies(Topology::ALL)
        .auth_modes(AuthMode::ALL)
        .corruptions([(0, 0), (0, 1), (1, 0), (1, 1)])
        .adversaries(AdversarySpec::ALL)
        .seeds(0..4)
        .build()
}

#[test]
fn merging_k_shard_runs_is_byte_identical_to_the_unsharded_run() {
    let campaign = large_campaign();
    assert!(campaign.len() >= 500, "campaign has only {} cells", campaign.len());

    let (reference, _) = Executor::new().threads(2).run(&campaign);
    let reference_json = to_json(&reference);
    let reference_csv = to_csv(&reference);

    for count in [1usize, 2, 3] {
        let mut shard_reports = Vec::new();
        for index in 0..count {
            let plan = ShardPlan::new(index, count).unwrap();
            // Vary the thread count per shard — distributed processes won't agree on
            // hardware, and the merge must not care.
            let executor = Executor::new().threads(1 + index);
            let (report, _) = executor.run_shard(&campaign, plan);
            // Round-trip through the on-disk format, exactly as `campaign_ctl merge`
            // consumes shard exports from other processes.
            let imported = from_json(&to_json(&report)).unwrap();
            assert_eq!(imported, report, "shard {plan} did not survive export/import");
            shard_reports.push(imported);
        }
        // Merge order must not matter: hand the shards over in reverse.
        shard_reports.reverse();
        let merged = CampaignReport::merge(shard_reports).unwrap();
        assert_eq!(
            to_json(&merged),
            reference_json,
            "merged JSON diverged from the unsharded run at K={count}"
        );
        assert_eq!(
            to_csv(&merged),
            reference_csv,
            "merged CSV diverged from the unsharded run at K={count}"
        );
        assert_eq!(merged, reference);
    }
}

#[test]
fn shards_partition_the_large_campaign() {
    let campaign = large_campaign();
    for count in [2usize, 3, 7] {
        let mut rejoined = Vec::new();
        let mut sizes = Vec::new();
        for index in 0..count {
            let shard = campaign.shard(ShardPlan::new(index, count).unwrap());
            sizes.push(shard.len());
            rejoined.extend_from_slice(shard.specs());
        }
        assert_eq!(rejoined, campaign.specs());
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "unbalanced shard sizes {sizes:?}");
    }
}

#[test]
fn diff_of_a_report_against_itself_renders_zero_cells() {
    let campaign = large_campaign();
    let (report, _) = Executor::new().threads(2).run(&campaign);
    let diff = CampaignDiff::between(&report, &report);
    assert!(diff.is_empty());
    assert_eq!(diff.cells_compared(), campaign.len());
    assert!(diff.render().starts_with("0 differing cell(s)"));
    // A merged reconstruction diffs clean against the original too.
    let halves = vec![
        from_json(&to_json(&Executor::new().run_shard(&campaign, ShardPlan::new(0, 2).unwrap()).0))
            .unwrap(),
        from_json(&to_json(&Executor::new().run_shard(&campaign, ShardPlan::new(1, 2).unwrap()).0))
            .unwrap(),
    ];
    let merged = CampaignReport::merge(halves).unwrap();
    assert!(CampaignDiff::between(&report, &merged).is_empty());
}

#[test]
fn overlapping_shards_are_rejected_at_merge_time() {
    let campaign = large_campaign();
    let half = ShardPlan::new(0, 2).unwrap();
    let (a, _) = Executor::new().run_shard(&campaign, half);
    let (b, _) = Executor::new().run_shard(&campaign, half);
    let err = CampaignReport::merge([a, b]).unwrap_err();
    assert!(err.to_string().contains("duplicate cell"), "{err}");
}
