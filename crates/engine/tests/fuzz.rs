//! Fuzzer subsystem tests: determinism of the search loop, the differential
//! empty-script guarantee, script subsumption of the built-in adversaries, and the
//! shrinker contract.

use bsm_core::harness::{AdversarySpec, Scenario, ScenarioOutcome};
use bsm_core::problem::AuthMode;
use bsm_core::script::{Script, ScriptAction};
use bsm_core::solvability::is_solvable;
use bsm_engine::bench::dolev_strong_campaign;
use bsm_engine::fuzz::{run_fuzz, shrink, FuzzConfig};
use bsm_engine::grid::ScenarioSpec;
use bsm_net::{FaultSpec, Topology};

fn assert_same_outcome(context: &str, a: &ScenarioOutcome, b: &ScenarioOutcome) {
    assert_eq!(a.plan, b.plan, "{context}: plan");
    assert_eq!(a.outputs, b.outputs, "{context}: outputs");
    assert_eq!(a.corrupted, b.corrupted, "{context}: corrupted");
    assert_eq!(a.violations, b.violations, "{context}: violations");
    assert_eq!(a.all_honest_decided, b.all_honest_decided, "{context}: decided");
    assert_eq!(a.slots, b.slots, "{context}: slots");
    assert_eq!(a.metrics, b.metrics, "{context}: metrics");
    assert_eq!(a.signatures, b.signatures, "{context}: signatures");
}

fn script_for_spec(spec: &ScenarioSpec, actions: Vec<ScriptAction>) -> Script {
    let k = spec.k as u32;
    Script {
        name: "grid".into(),
        k: spec.k,
        topology: spec.topology,
        auth: spec.auth,
        t_l: spec.t_l,
        t_r: spec.t_r,
        plan: None,
        corrupt_left: (0..k).rev().take(spec.t_l).collect(),
        corrupt_right: (0..k).rev().take(spec.t_r).collect(),
        seed: spec.seed,
        actions,
        verdict: None,
    }
}

#[test]
fn fuzz_run_is_byte_deterministic() {
    let config = FuzzConfig { budget: 40, seed: 7 };
    let first = run_fuzz(&config);
    let second = run_fuzz(&config);
    assert_eq!(first.log, second.log, "logs must be byte-identical");
    assert_eq!(first.violations, second.violations);
    assert_eq!(first, second);
    assert_eq!(first.cases, 40);
    assert!(first.log.lines().count() >= 42, "one line per case plus header/footer");
    assert!(first.worst_slots > 0);
    assert!(first.worst_messages > 0);
}

#[test]
fn different_seeds_explore_differently() {
    let a = run_fuzz(&FuzzConfig { budget: 15, seed: 1 });
    let b = run_fuzz(&FuzzConfig { budget: 15, seed: 2 });
    assert_ne!(a.log, b.log);
}

#[test]
fn empty_script_is_byte_identical_to_the_honest_run_across_the_quick_grid() {
    // The differential guarantee: with no corrupted parties and no actions, the
    // scripted path must reproduce the honest run field for field (same budgets,
    // so same round counts and slot budgets).
    let mut grids_checked = 0;
    let mut seen = std::collections::BTreeSet::new();
    for spec in dolev_strong_campaign(true).specs() {
        if !seen.insert((spec.k, spec.topology, spec.auth, spec.t_l, spec.t_r, spec.seed)) {
            continue;
        }
        let honest = Scenario::builder(spec.setting().unwrap())
            .seed(spec.seed)
            .build()
            .unwrap()
            .run()
            .unwrap();
        let mut script = script_for_spec(spec, vec![]);
        script.corrupt_left.clear();
        script.corrupt_right.clear();
        let scripted = script.run().unwrap();
        assert_same_outcome(&format!("{spec:?}"), &honest, &scripted);
        grids_checked += 1;
    }
    assert!(grids_checked >= 4, "quick grid must contribute distinct cells");
}

#[test]
fn scripts_subsume_every_builtin_adversary() {
    // Coverage: each hand-written AdversarySpec strategy re-expressed as a script is
    // outcome-identical to the original, over the quick bench grid plus extra
    // topology cells.
    let mut specs: Vec<ScenarioSpec> = dolev_strong_campaign(true).specs().to_vec();
    for topology in [Topology::Bipartite, Topology::OneSided] {
        for adversary in AdversarySpec::ALL {
            specs.push(ScenarioSpec {
                k: 3,
                topology,
                auth: AuthMode::Authenticated,
                t_l: 1,
                t_r: 1,
                adversary,
                faults: FaultSpec::NONE,
                seed: 0,
            });
        }
    }
    let mut checked = 0;
    for spec in &specs {
        let setting = spec.setting().unwrap();
        if !is_solvable(&setting) {
            continue;
        }
        let builtin = spec.build_scenario().unwrap().run().unwrap();
        let action = match spec.adversary {
            AdversarySpec::Crash => ScriptAction::Silence { from_slot: 0 },
            AdversarySpec::Lying => ScriptAction::Lie { seed: spec.seed },
            AdversarySpec::Garbage => ScriptAction::Garbage { seed: spec.seed, per_slot: 2 },
        };
        let script = script_for_spec(spec, vec![action]);
        let scripted = script.run().unwrap();
        assert_same_outcome(&format!("{spec:?}"), &builtin, &scripted);
        checked += 1;
    }
    assert!(checked >= 12, "expected the full quick grid plus extras, got {checked}");
}

/// Measure the shrinker promises to decrease: (action count, sum of numeric fields).
fn measure(script: &Script) -> (usize, u64) {
    let sum = script.actions.iter().map(|a| a.numbers().iter().sum::<u64>()).sum();
    (script.actions.len(), sum)
}

fn shrink_subject() -> Script {
    Script {
        name: "shrink-subject".into(),
        k: 3,
        topology: Topology::FullyConnected,
        auth: AuthMode::Authenticated,
        t_l: 1,
        t_r: 1,
        plan: None,
        corrupt_left: vec![2],
        corrupt_right: vec![2],
        seed: 9,
        actions: vec![
            ScriptAction::Garbage { seed: 500, per_slot: 3 },
            ScriptAction::Equivocate { slot: 7, nth: 5 },
            ScriptAction::DropRecv { slot: 4, nth: 2 },
            ScriptAction::DelayRecv { slot: 6, nth: 3, by: 4 },
            ScriptAction::Equivocate { slot: 9, nth: 1 },
        ],
        verdict: None,
    }
}

#[test]
fn shrinker_result_is_minimal_and_every_step_is_reverified() {
    // Synthetic oracle: the "violation" persists while any Equivocate action
    // remains. The shrinker must converge to exactly one zeroed Equivocate.
    let subject = shrink_subject();
    let mut accepted_measures: Vec<(usize, u64)> = Vec::new();
    let mut calls = 0u64;
    let mut predicate = |candidate: &Script| {
        calls += 1;
        let violating =
            candidate.actions.iter().any(|a| matches!(a, ScriptAction::Equivocate { .. }));
        if violating {
            accepted_measures.push(measure(candidate));
        }
        violating
    };
    let shrunk = shrink(&subject, &mut predicate);
    assert!(calls > 0, "every shrink step must consult the oracle");
    assert_eq!(shrunk.actions, vec![ScriptAction::Equivocate { slot: 0, nth: 0 }]);
    // Every accepted step strictly decreased the measure.
    let mut last = measure(&subject);
    for m in &accepted_measures {
        assert!(*m < last, "accepted step must shrink: {m:?} !< {last:?}");
        last = *m;
    }
    // The final script still satisfies the oracle.
    assert!(shrunk.actions.iter().any(|a| matches!(a, ScriptAction::Equivocate { .. })));
}

#[test]
fn shrinker_is_deterministic() {
    let subject = shrink_subject();
    let run = || {
        let mut predicate = |candidate: &Script| {
            candidate.actions.iter().any(|a| matches!(a, ScriptAction::DelayRecv { .. }))
        };
        shrink(&subject, &mut predicate)
    };
    let first = run();
    let second = run();
    assert_eq!(first, second);
    // DelayRecv's `by` field shrinks to 0 in serialization space even though the
    // interpreter clamps the hold to one slot at run time.
    assert_eq!(first.actions, vec![ScriptAction::DelayRecv { slot: 0, nth: 0, by: 0 }]);
}

#[test]
fn shrinker_returns_input_when_nothing_smaller_reproduces() {
    let subject = shrink_subject();
    // Oracle: only the *exact* original script "violates".
    let original = subject.clone();
    let mut predicate = |candidate: &Script| *candidate == original;
    let shrunk = shrink(&subject, &mut predicate);
    assert_eq!(shrunk, subject);
}

#[test]
fn fuzz_smoke_finds_no_violations_in_the_constructive_protocols() {
    // The protocols are supposed to tolerate every in-threshold script the
    // generator can produce; a violation here is a real bug (and would be frozen
    // as a regression by `campaign_ctl fuzz --freeze`).
    let report = run_fuzz(&FuzzConfig { budget: 30, seed: 1 });
    assert!(
        report.violations.is_empty(),
        "unexpected violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| format!("case {} {}\n{}", v.case, v.signature, v.shrunk.canonical()))
            .collect::<Vec<_>>()
            .join("\n"),
    );
}
