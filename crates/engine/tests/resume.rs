//! The crash-recovery determinism proof.
//!
//! A streamed shard export interrupted at an arbitrary byte must be *resumable*: the
//! salvage read mode recovers the valid ordered cell prefix, [`ShardPlan::remainder`]
//! names the un-run tail of the shard's canonical range, the executor re-runs exactly
//! that range, and splicing prefix + fresh cells through the streaming exporter yields
//! an export **byte-identical** to the uninterrupted run — at every possible
//! truncation point, including "nothing salvaged" and "everything salvaged". This is
//! the library-level contract behind `campaign_ctl resume` and the CI resume gate.

use bsm_core::harness::AdversarySpec;
use bsm_core::problem::AuthMode;
use bsm_engine::export::{StreamingCsvWriter, StreamingExporter};
use bsm_engine::import::StreamingCells;
use bsm_engine::{Campaign, CampaignBuilder, CellRecord, Executor, ShardPlan, Totals};
use bsm_net::Topology;

/// A small-but-mixed campaign: 2 sizes × 2 topologies × 2 auth modes × 2 adversaries
/// × 2 seeds = 32 cells, spanning solvable and unsolvable regions.
fn campaign() -> Campaign {
    CampaignBuilder::new()
        .sizes([2, 3])
        .topologies([Topology::FullyConnected, Topology::Bipartite])
        .auth_modes(AuthMode::ALL)
        .adversaries([AdversarySpec::Crash, AdversarySpec::Lying])
        .seeds(0..2)
        .build()
}

/// Runs shard `plan` of `campaign` uninterrupted in streaming mode, returning the
/// JSONL export bytes and the CSV bytes.
fn uninterrupted(campaign: &Campaign, plan: ShardPlan, threads: usize) -> (Vec<u8>, Vec<u8>) {
    let mut jsonl = Vec::new();
    let mut csv_buf = Vec::new();
    let mut exporter = StreamingExporter::new(&mut jsonl);
    let mut csv = StreamingCsvWriter::new(&mut csv_buf).unwrap();
    Executor::new()
        .threads(threads)
        .run_shard_streaming(campaign, plan, |cell| {
            exporter.write_cell(&cell)?;
            csv.write_cell(&cell)
        })
        .unwrap_or_else(|err| panic!("uninterrupted shard {plan} failed: {err}"));
    exporter.finish().unwrap();
    csv.finish().unwrap();
    (jsonl, csv_buf)
}

/// The full `campaign_ctl resume` pipeline over in-memory bytes: salvage the
/// (possibly truncated) `export`, verify the prefix against the shard's work list,
/// re-run the remainder, and splice into complete JSONL + CSV exports.
fn resume(
    campaign: &Campaign,
    plan: ShardPlan,
    export: &[u8],
    threads: usize,
) -> (Vec<u8>, Vec<u8>) {
    let salvaged = StreamingCells::salvage(export).unwrap();
    let shard = campaign.shard(plan);
    // The salvaged prefix must be exactly the head of the shard's canonical work
    // list — the same check `campaign_ctl resume` performs before splicing.
    assert!(salvaged.cells.len() <= shard.len());
    for (cell, expected) in salvaged.cells.iter().zip(shard.specs()) {
        assert_eq!(cell.spec, *expected, "salvaged prefix diverged from the work list");
    }
    let remainder = plan.remainder(campaign.len(), salvaged.cells.len());
    let mut jsonl = Vec::new();
    let mut csv_buf = Vec::new();
    let mut exporter = StreamingExporter::new(&mut jsonl);
    let mut csv = StreamingCsvWriter::new(&mut csv_buf).unwrap();
    for cell in &salvaged.cells {
        exporter.write_cell(cell).unwrap();
        csv.write_cell(cell).unwrap();
    }
    Executor::new()
        .threads(threads)
        .run_range_streaming(campaign, remainder, |cell: CellRecord| {
            exporter.write_cell(&cell)?;
            csv.write_cell(&cell)
        })
        .unwrap_or_else(|err| panic!("resumed range of shard {plan} failed: {err}"));
    exporter.finish().unwrap();
    csv.finish().unwrap();
    // The spliced export must satisfy the *strict* reader: ordered cells and a
    // footer that verifies against them (the salvage mode is for inputs only).
    let mut strict = StreamingCells::new(&jsonl[..]);
    let mut refolded = Totals::default();
    for cell in &mut strict {
        refolded.record(&cell.unwrap().outcome);
    }
    assert!(strict.finished(), "spliced export must carry a verified footer");
    assert_eq!(strict.totals(), refolded);
    (jsonl, csv_buf)
}

#[test]
fn resume_is_byte_identical_at_every_line_truncation_point() {
    let campaign = campaign();
    let plan = ShardPlan::new(1, 3).unwrap();
    let (reference, reference_csv) = uninterrupted(&campaign, plan, 2);
    let newlines: Vec<usize> =
        reference.iter().enumerate().filter_map(|(i, b)| (*b == b'\n').then_some(i)).collect();
    // Every clean line boundary, from "nothing written yet" to "everything but the
    // footer" to "complete export re-resumed".
    let mut cuts = vec![0usize];
    cuts.extend(newlines.iter().map(|i| i + 1));
    for cut in cuts {
        let (jsonl, csv) = resume(&campaign, plan, &reference[..cut], 1);
        assert_eq!(jsonl, reference, "resume from byte {cut} diverged (line boundary)");
        assert_eq!(csv, reference_csv, "resumed CSV from byte {cut} diverged");
    }
}

#[test]
fn resume_is_byte_identical_at_mid_line_truncation_points() {
    let campaign = campaign();
    let plan = ShardPlan::new(0, 2).unwrap();
    let (reference, reference_csv) = uninterrupted(&campaign, plan, 2);
    // A handful of ragged cuts: mid-first-cell, mid-stream, inside the footer.
    let cuts = [reference.len() / 7, reference.len() / 3, reference.len() / 2, reference.len() - 3];
    for cut in cuts {
        let (jsonl, csv) = resume(&campaign, plan, &reference[..cut], 2);
        assert_eq!(jsonl, reference, "resume from mid-line byte {cut} diverged");
        assert_eq!(csv, reference_csv, "resumed CSV from mid-line byte {cut} diverged");
    }
}

#[test]
fn resuming_a_whole_campaign_export_matches_the_unsharded_run() {
    let campaign = campaign();
    let (reference, reference_csv) = uninterrupted(&campaign, ShardPlan::WHOLE, 2);
    let cut = reference.len() * 2 / 3;
    let (jsonl, csv) = resume(&campaign, ShardPlan::WHOLE, &reference[..cut], 1);
    assert_eq!(jsonl, reference);
    assert_eq!(csv, reference_csv);
}
