//! The streamed distributed-campaign determinism proof.
//!
//! The streaming analog of `shard_merge.rs`: a campaign split into K shards, each run
//! in **streaming mode** (cells folded into rolling totals and written to a
//! coordinate-sorted JSON-lines export as they complete, never materializing the
//! record vector), must k-way-merge back into `report.json` / `report.csv` documents
//! **byte-identical** to the unsharded in-memory export, for K = 1, 2 and 3 — with the
//! shard streams read back through the lazy importer exactly as `campaign_ctl merge
//! --stream` consumes files from real processes. This is the contract the CI
//! streamed-merge gate enforces end to end.

use bsm_core::harness::AdversarySpec;
use bsm_core::problem::AuthMode;
use bsm_engine::export::{
    to_csv, to_json, MergedJsonWriter, StreamingCsvWriter, StreamingExporter,
};
use bsm_engine::import::{footer_totals, from_jsonl, StreamingCells};
use bsm_engine::{Campaign, CampaignBuilder, CellMerge, Executor, ShardPlan, Totals};
use bsm_net::Topology;

/// The same ≥500-cell campaign as `shard_merge.rs`: 2 sizes × 3 topologies × 2 auth
/// modes × 4 corruption pairs × 3 adversaries × 4 seeds = 576 cells, mixing solvable
/// and unsolvable regions.
fn large_campaign() -> Campaign {
    CampaignBuilder::new()
        .sizes([2, 3])
        .topologies(Topology::ALL)
        .auth_modes(AuthMode::ALL)
        .corruptions([(0, 0), (0, 1), (1, 0), (1, 1)])
        .adversaries(AdversarySpec::ALL)
        .seeds(0..4)
        .build()
}

/// Runs shard `index` of `count` in streaming mode and returns its JSON-lines export.
fn streamed_shard(campaign: &Campaign, index: usize, count: usize, threads: usize) -> Vec<u8> {
    let plan = ShardPlan::new(index, count).unwrap();
    let mut buf = Vec::new();
    let mut exporter = StreamingExporter::new(&mut buf);
    let (totals, _) = Executor::new()
        .threads(threads)
        .run_shard_streaming(campaign, plan, |cell| exporter.write_cell(&cell))
        .unwrap_or_else(|err| panic!("streamed shard {plan} failed: {err}"));
    let finished = exporter.finish().unwrap();
    assert_eq!(totals, finished, "executor and exporter disagree on shard {plan} totals");
    buf
}

/// Streams a k-way merge of shard exports into (`report.json`, `report.csv`) bytes,
/// exactly as `campaign_ctl merge --stream` does: footer pass first, then one lazy
/// pass over the cells.
fn streamed_merge(shards: &[Vec<u8>]) -> (String, String) {
    let mut declared = Totals::default();
    for shard in shards {
        declared += footer_totals(&shard[..]).unwrap();
    }
    let streams: Vec<_> = shards.iter().map(|s| StreamingCells::new(&s[..])).collect();
    let mut json_out = Vec::new();
    let mut csv_out = Vec::new();
    let mut json = MergedJsonWriter::new(&mut json_out, declared).unwrap();
    let mut csv = StreamingCsvWriter::new(&mut csv_out).unwrap();
    for cell in CellMerge::new(streams) {
        let cell = cell.unwrap_or_else(|err| panic!("streamed merge failed: {err}"));
        json.write_cell(&cell).unwrap();
        csv.write_cell(&cell).unwrap();
    }
    assert_eq!(json.finish().unwrap(), declared);
    csv.finish().unwrap();
    (String::from_utf8(json_out).unwrap(), String::from_utf8(csv_out).unwrap())
}

#[test]
fn streamed_k_shard_runs_merge_byte_identical_to_the_unsharded_in_memory_export() {
    let campaign = large_campaign();
    assert!(campaign.len() >= 500, "campaign has only {} cells", campaign.len());

    let (reference, _) = Executor::new().threads(2).run(&campaign);
    let reference_json = to_json(&reference);
    let reference_csv = to_csv(&reference);

    for count in [1usize, 2, 3] {
        // Vary the thread count per shard — distributed processes won't agree on
        // hardware, and neither the streamed export nor the merge may care.
        let shards: Vec<Vec<u8>> =
            (0..count).map(|index| streamed_shard(&campaign, index, count, 1 + index)).collect();
        let (merged_json, merged_csv) = streamed_merge(&shards);
        assert_eq!(
            merged_json, reference_json,
            "streamed merged JSON diverged from the unsharded in-memory run at K={count}"
        );
        assert_eq!(
            merged_csv, reference_csv,
            "streamed merged CSV diverged from the unsharded in-memory run at K={count}"
        );
    }
}

#[test]
fn streamed_shard_exports_round_trip_through_the_lazy_importer() {
    let campaign = large_campaign();
    let plan = ShardPlan::new(1, 3).unwrap();
    let (in_memory, _) = Executor::new().threads(2).run_shard(&campaign, plan);
    let streamed = streamed_shard(&campaign, 1, 3, 2);
    // The lazy importer reconstructs the in-memory shard report exactly.
    assert_eq!(from_jsonl(&streamed[..]).unwrap(), in_memory);
    // And the streamed cells equal the in-memory cells one by one, with the footer
    // verified against what was actually streamed.
    let mut stream = StreamingCells::new(&streamed[..]);
    let cells: Vec<_> = (&mut stream).collect::<Result<_, _>>().unwrap();
    assert_eq!(cells, in_memory.cells());
    assert!(stream.finished());
    assert_eq!(stream.totals(), in_memory.totals());
}

#[test]
fn empty_shards_stream_and_merge_cleanly() {
    // 2 cells over 5 shards: shards 3–5 own empty slices and export footer-only
    // streams, which must merge cleanly with the non-empty ones.
    let campaign = CampaignBuilder::new()
        .sizes([3])
        .topologies([Topology::FullyConnected])
        .auth_modes([AuthMode::Authenticated])
        .adversaries([AdversarySpec::Crash])
        .seeds(0..2)
        .build();
    assert_eq!(campaign.len(), 2);
    let (reference, _) = Executor::new().threads(1).run(&campaign);
    let shards: Vec<Vec<u8>> = (0..5).map(|index| streamed_shard(&campaign, index, 5, 1)).collect();
    for shard in &shards[2..] {
        assert_eq!(footer_totals(&shard[..]).unwrap(), Totals::default());
    }
    let (merged_json, merged_csv) = streamed_merge(&shards);
    assert_eq!(merged_json, to_json(&reference));
    assert_eq!(merged_csv, to_csv(&reference));
}

#[test]
fn overlapping_shard_streams_are_rejected_by_the_k_way_merge() {
    let campaign = large_campaign();
    let shard = streamed_shard(&campaign, 0, 2, 1);
    let streams = vec![StreamingCells::new(&shard[..]), StreamingCells::new(&shard[..])];
    let err = CellMerge::new(streams).collect::<Result<Vec<_>, _>>().unwrap_err();
    assert!(err.to_string().contains("duplicate cell"), "{err}");
}

#[test]
fn a_truncated_shard_stream_fails_the_merge_loudly() {
    let campaign = large_campaign();
    let healthy = streamed_shard(&campaign, 0, 2, 1);
    let mut truncated = streamed_shard(&campaign, 1, 2, 1);
    // Cut the second shard off mid-stream (footer and tail cells gone).
    truncated.truncate(truncated.len() / 2);
    let streams = vec![StreamingCells::new(&healthy[..]), StreamingCells::new(&truncated[..])];
    let err = CellMerge::new(streams).collect::<Result<Vec<_>, _>>().unwrap_err();
    assert!(err.to_string().contains("shard stream 1 failed"), "{err}");
}
