//! Campaign-level determinism regression tests.
//!
//! These extend the per-scenario replay guarantee of `crates/core/tests/determinism.rs`
//! to the campaign level: a fixed campaign must produce **byte-identical** aggregated
//! JSON and CSV exports no matter how many worker threads execute it. This is the
//! engine's core contract — every scaling PR must keep it.

use bsm_core::harness::AdversarySpec;
use bsm_core::problem::AuthMode;
use bsm_engine::export::{to_csv, to_json, CSV_HEADER};
use bsm_engine::{CampaignBuilder, CellOutcome, Executor};
use bsm_net::Topology;

/// A fixed mixed campaign: solvable and unsolvable cells, every topology, both auth
/// modes, all three adversary strategies, several seeds.
fn fixed_campaign() -> bsm_engine::Campaign {
    CampaignBuilder::new()
        .sizes([2, 3])
        .topologies(Topology::ALL)
        .auth_modes(AuthMode::ALL)
        .corruptions([(0, 0), (0, 1), (1, 1)])
        .adversaries(AdversarySpec::ALL)
        .seeds(0..2)
        .build()
}

#[test]
fn campaign_export_is_byte_identical_across_1_2_and_8_threads() {
    let campaign = fixed_campaign();
    assert!(campaign.len() > 100, "fixed campaign should be non-trivial");

    let (reference, stats) = Executor::new().threads(1).run(&campaign);
    assert_eq!(stats.threads, 1);
    let reference_json = to_json(&reference);
    let reference_csv = to_csv(&reference);

    for threads in [2usize, 8] {
        let (report, stats) = Executor::new().threads(threads).run(&campaign);
        assert_eq!(report, reference, "report diverged at {threads} threads");
        assert_eq!(to_json(&report), reference_json, "JSON export diverged at {threads} threads");
        assert_eq!(to_csv(&report), reference_csv, "CSV export diverged at {threads} threads");
        assert_eq!(stats.scenarios, campaign.len());
    }
}

#[test]
fn campaign_results_key_back_to_their_grid_coordinates() {
    let campaign = fixed_campaign();
    let (report, _) = Executor::new().threads(8).run(&campaign);
    // The merged records are exactly the campaign's cells, in canonical order.
    assert_eq!(report.cells().len(), campaign.len());
    for (record, spec) in report.cells().iter().zip(campaign.specs()) {
        assert_eq!(&record.spec, spec);
    }
}

#[test]
fn campaign_totals_are_consistent_with_cells() {
    let campaign = fixed_campaign();
    let (report, _) = Executor::new().threads(4).run(&campaign);
    let totals = report.totals();
    assert_eq!(totals.scenarios, campaign.len());
    assert_eq!(
        totals.completed + totals.unsolvable + totals.failed,
        totals.scenarios,
        "every cell is exactly one of completed/unsolvable/failed"
    );
    // No cell in this grid has invalid coordinates, so nothing may fail.
    assert_eq!(totals.failed, 0);
    // The grid crosses solvable and unsolvable regions.
    assert!(totals.completed > 0);
    assert!(totals.unsolvable > 0);
    // Authenticated cells sign; the totals must see it.
    assert!(totals.signatures > 0);
    let violations: usize =
        report.cells().iter().filter_map(|c| c.outcome.stats()).map(|s| s.violations).sum();
    assert_eq!(totals.violations, violations);
}

#[test]
fn solvable_cells_run_clean_under_every_strategy() {
    // The characterization says these cells are solvable; the engine's runs must
    // confirm it (zero violations, everyone decides) for all three adversaries.
    let campaign = CampaignBuilder::new()
        .sizes([3])
        .topologies(Topology::ALL)
        .auth_modes(AuthMode::ALL)
        .corruptions([(0, 1), (1, 0), (1, 1)])
        .adversaries(AdversarySpec::ALL)
        .seeds(0..3)
        .skip_unsolvable(true)
        .build();
    let (report, _) = Executor::new().threads(4).run(&campaign);
    for record in report.cells() {
        match &record.outcome {
            CellOutcome::Completed(stats) => {
                assert_eq!(stats.violations, 0, "violations at {}", record.spec);
                assert!(stats.all_honest_decided, "undecided honest party at {}", record.spec);
            }
            other => panic!("expected completed at {}, got {other:?}", record.spec),
        }
    }
}

#[test]
fn exports_have_one_row_per_cell() {
    let campaign = fixed_campaign();
    let (report, _) = Executor::new().threads(2).run(&campaign);
    let csv = to_csv(&report);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines[0], CSV_HEADER);
    assert_eq!(lines.len(), 1 + campaign.len());
    let json = to_json(&report);
    assert_eq!(json.matches("\"status\"").count(), campaign.len());
}
