//! Heartbeat atomicity: a concurrent reader must never observe a torn or invalid
//! `progress.json`, no matter how often the writer rewrites it.
//!
//! This is the contract a coordinator daemon polls against: each rewrite goes
//! through a temp-file + atomic rename, so every read of the path yields a
//! complete, parseable snapshot whose `done` only ever advances.

use bsm_engine::{parse_progress, CampaignBuilder, Heartbeat};
use std::sync::atomic::{AtomicBool, Ordering};

#[test]
fn concurrent_reader_never_sees_a_torn_heartbeat() {
    let dir = std::env::temp_dir().join(format!("bsm-heartbeat-liveness-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // A tiny grid supplies real coordinates for the `last` field.
    let campaign = CampaignBuilder::new().sizes([2]).seeds(0..1).build();
    let specs: Vec<_> = campaign.specs().to_vec();
    let total = 512usize;
    let mut heartbeat =
        Heartbeat::new(&dir, total, 1).expect("heartbeat creation writes the initial snapshot");
    let path = heartbeat.path().to_path_buf();
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            let mut reads = 0u64;
            let mut last_done = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let text = std::fs::read_to_string(&path).expect("the path always exists");
                let snapshot = parse_progress(&text)
                    .unwrap_or_else(|err| panic!("torn/invalid heartbeat: {err}\n{text}"));
                assert_eq!(snapshot.total, total);
                assert!(snapshot.done <= snapshot.total);
                assert!(snapshot.done >= last_done, "done must never move backwards");
                last_done = snapshot.done;
                reads += 1;
            }
            reads
        });
        // Beat on every cell (every = 1) to maximize rename pressure.
        for i in 0..total {
            heartbeat.tick(specs[i % specs.len()]).expect("tick rewrites atomically");
        }
        heartbeat.finish().expect("final snapshot");
        stop.store(true, Ordering::Relaxed);
        let reads = reader.join().expect("reader thread");
        assert!(reads > 0, "the reader must have raced at least one read");
    });
    let final_text = std::fs::read_to_string(&path).expect("final heartbeat");
    let snapshot = parse_progress(&final_text).expect("final heartbeat parses");
    assert_eq!(snapshot.done, total);
    assert!(snapshot.last.is_some(), "a finished shard reports its last coordinate");
    let _ = std::fs::remove_dir_all(&dir);
}
