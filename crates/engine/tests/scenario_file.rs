//! Scenario-file contract tests: the worked examples in `docs/SCENARIOS.md` are
//! the literal files under `examples/scenarios/` (neither copy may drift), every
//! example parses with a canonical fixpoint, and a faulty scenario's report
//! artifacts are byte-identical across thread counts and a K=3 streamed shard
//! merge — the partial-synchrony faults never break the determinism contract.

use bsm_engine::{
    footer_meta, to_json, CellMerge, Executor, MergedJsonWriter, ScenarioFile, ShardPlan,
    StreamingCells, StreamingExporter, Totals,
};
use std::path::{Path, PathBuf};

/// The example scenarios, in the order `docs/SCENARIOS.md` presents them.
const EXAMPLES: [&str; 3] = ["clean_grid", "partition_heal", "lossy_link"];

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

fn example_path(name: &str) -> PathBuf {
    repo_root().join("examples").join("scenarios").join(format!("{name}.toml"))
}

/// Extracts the ```toml fenced blocks of a markdown document, in order.
fn toml_blocks(markdown: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in markdown.lines() {
        match &mut current {
            Some(block) => {
                if line.trim_end() == "```" {
                    blocks.push(current.take().expect("checked Some"));
                } else {
                    block.push_str(line);
                    block.push('\n');
                }
            }
            None if line.trim_end() == "```toml" => current = Some(String::new()),
            None => {}
        }
    }
    assert!(current.is_none(), "docs/SCENARIOS.md ends inside a ```toml block");
    blocks
}

#[test]
fn docs_examples_are_the_literal_example_files() {
    let docs = std::fs::read_to_string(repo_root().join("docs").join("SCENARIOS.md"))
        .expect("docs/SCENARIOS.md is readable");
    let blocks = toml_blocks(&docs);
    assert_eq!(
        blocks.len(),
        EXAMPLES.len(),
        "docs/SCENARIOS.md must contain exactly one ```toml block per example file"
    );
    for (name, block) in EXAMPLES.iter().zip(&blocks) {
        let path = example_path(name);
        let file = std::fs::read_to_string(&path)
            .unwrap_or_else(|err| panic!("cannot read {}: {err}", path.display()));
        assert_eq!(
            block,
            &file,
            "the ```toml block for {name} in docs/SCENARIOS.md must be byte-identical \
             to {}",
            path.display()
        );
    }
}

#[test]
fn every_example_parses_with_a_canonical_fixpoint() {
    for name in EXAMPLES {
        let scenario =
            ScenarioFile::load(&example_path(name)).unwrap_or_else(|err| panic!("{name}: {err}"));
        assert!(!scenario.name.is_empty(), "{name}");
        assert!(!scenario.campaign().is_empty(), "{name}: the campaign must be non-empty");
        let canonical = scenario.canonical();
        let reparsed =
            ScenarioFile::parse(&canonical).unwrap_or_else(|err| panic!("{name}: {err}"));
        assert_eq!(reparsed, scenario, "{name}: canonical text must parse back identically");
        assert_eq!(reparsed.canonical(), canonical, "{name}: canonical must be a fixpoint");
    }
}

#[test]
fn faulty_scenario_reports_are_byte_identical_across_thread_counts() {
    // lossy_link exercises the stochastic fault axes (loss + jitter), the hardest
    // case for cross-thread determinism; partition_heal the scheduled ones.
    for name in ["partition_heal", "lossy_link"] {
        let scenario = ScenarioFile::load(&example_path(name)).unwrap();
        let campaign = scenario.campaign();
        let tag = scenario.canonical();
        let (one, _) = Executor::new().threads(1).run(&campaign);
        let (four, _) = Executor::new().threads(4).run(&campaign);
        assert_eq!(
            to_json(&one.with_scenario(tag.clone())),
            to_json(&four.with_scenario(tag.clone())),
            "{name}: 1-thread and 4-thread exports must be byte-identical"
        );
    }
}

#[test]
fn faulty_scenario_streamed_shard_merge_is_byte_identical_to_the_unsharded_run() {
    let scenario = ScenarioFile::load(&example_path("lossy_link")).unwrap();
    let campaign = scenario.campaign();
    let tag = scenario.canonical();
    let executor = Executor::new().threads(2);

    // The reference document: the unsharded in-memory run, tagged.
    let (report, _) = executor.run(&campaign);
    let expected = to_json(&report.with_scenario(tag.clone()));

    // Shard side: 3 streamed shard exports, each carrying the scenario tag.
    let mut shards: Vec<Vec<u8>> = Vec::new();
    for index in 0..3 {
        let mut buf = Vec::new();
        let mut exporter = StreamingExporter::new(&mut buf);
        exporter.set_scenario(tag.clone());
        let plan = ShardPlan::new(index, 3).unwrap();
        executor.run_shard_streaming(&campaign, plan, |cell| exporter.write_cell(&cell)).unwrap();
        exporter.finish().unwrap();
        shards.push(buf);
    }

    // Coordinator side: footers carry equal tags; the k-way merge re-renders the
    // canonical document byte-identically.
    let mut totals = Totals::default();
    let mut merged_tag: Option<String> = None;
    for (index, shard) in shards.iter().enumerate() {
        let (shard_totals, shard_tag) = footer_meta(&shard[..]).unwrap();
        totals += shard_totals;
        assert_eq!(shard_tag.as_deref(), Some(tag.as_str()), "shard {index} footer tag");
        merged_tag = shard_tag;
    }
    let mut out = Vec::new();
    let mut writer = MergedJsonWriter::with_scenario(&mut out, totals, merged_tag).unwrap();
    let streams: Vec<_> = shards.iter().map(|shard| StreamingCells::new(&shard[..])).collect();
    for cell in CellMerge::new(streams) {
        writer.write_cell(&cell.unwrap()).unwrap();
    }
    writer.finish().unwrap();
    assert_eq!(String::from_utf8(out).unwrap(), expected);
}
