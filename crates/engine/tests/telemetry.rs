//! Telemetry side-channel regression tests.
//!
//! The sidecar's core contract extends the campaign-determinism guarantee: running
//! with telemetry must leave every report artifact **byte-identical** to running
//! without it, and the sidecar's own deterministic projection must be byte-identical
//! across thread counts — only the trailing `timing` object may vary.

use bsm_core::harness::AdversarySpec;
use bsm_core::problem::AuthMode;
use bsm_engine::export::{to_csv, to_json};
use bsm_engine::{CampaignBuilder, CampaignStats, CellTelemetry, Executor, StreamError};
use bsm_net::Topology;

/// The same fixed mixed campaign as `campaign_determinism.rs`: solvable and
/// unsolvable cells, every topology, both auth modes, all adversaries.
fn fixed_campaign() -> bsm_engine::Campaign {
    CampaignBuilder::new()
        .sizes([2, 3])
        .topologies(Topology::ALL)
        .auth_modes(AuthMode::ALL)
        .corruptions([(0, 0), (0, 1), (1, 1)])
        .adversaries(AdversarySpec::ALL)
        .seeds(0..2)
        .build()
}

#[test]
fn telemetry_never_changes_a_report_byte() {
    let campaign = fixed_campaign();
    let (reference, _) = Executor::new().threads(1).run(&campaign);
    let reference_json = to_json(&reference);
    let reference_csv = to_csv(&reference);
    for threads in [1usize, 4] {
        let (report, telemetry, stats) = Executor::new().threads(threads).run_telemetry(&campaign);
        assert_eq!(report, reference, "telemetry changed the report at {threads} threads");
        assert_eq!(to_json(&report), reference_json);
        assert_eq!(to_csv(&report), reference_csv);
        assert_eq!(telemetry.len(), campaign.len());
        assert_eq!(stats.scenarios, campaign.len());
        // One telemetry line per report cell, same coordinates, same status.
        for (cell, record) in telemetry.iter().zip(report.cells()) {
            assert_eq!(cell.spec, record.spec);
        }
    }
}

#[test]
fn deterministic_projection_is_byte_identical_across_thread_counts() {
    let campaign = fixed_campaign();
    let projections = |threads: usize| -> Vec<String> {
        let (_, telemetry, _) = Executor::new().threads(threads).run_telemetry(&campaign);
        telemetry.iter().map(CellTelemetry::deterministic_json).collect()
    };
    let reference = projections(1);
    assert_eq!(projections(4), reference, "deterministic projection diverged at 4 threads");
    // The projection really is the full line minus the timing suffix.
    let (_, telemetry, _) = Executor::new().threads(2).run_telemetry(&campaign);
    for (cell, expected) in telemetry.iter().zip(&reference) {
        let line = cell.to_json();
        let stripped = line
            .split(", \"timing\": ")
            .next()
            .map(|head| format!("{head}}}"))
            .expect("every line has a timing suffix");
        assert_eq!(&stripped, expected);
    }
}

#[test]
fn streamed_telemetry_matches_the_in_memory_run() {
    let campaign = fixed_campaign();
    let executor = Executor::new().threads(4);
    let (report, in_memory, _) = executor.run_telemetry(&campaign);
    let mut streamed_records = Vec::new();
    let mut streamed_telemetry = Vec::new();
    let (totals, _) = executor
        .run_streaming_telemetry(&campaign, |record, telemetry| -> Result<(), StreamError> {
            streamed_records.push(record);
            streamed_telemetry.push(telemetry);
            Ok(())
        })
        .expect("streamed telemetry run succeeds");
    assert_eq!(totals, report.totals());
    assert_eq!(streamed_records, report.cells().to_vec());
    assert_eq!(streamed_telemetry.len(), in_memory.len());
    for (streamed, reference) in streamed_telemetry.iter().zip(&in_memory) {
        assert_eq!(streamed.deterministic_json(), reference.deterministic_json());
    }
}

#[test]
fn campaign_stats_aggregate_a_real_campaign() {
    let campaign = fixed_campaign();
    let (_, telemetry, _) = Executor::new().threads(4).run_telemetry(&campaign);
    let mut stats = CampaignStats::default();
    for cell in &telemetry {
        stats.record(cell);
    }
    assert_eq!(stats.cells, campaign.len() as u64);
    assert_eq!(stats.wall.count(), stats.cells);
    assert_eq!(stats.messages.count(), stats.cells);
    // The per-cell deltas sum back to a campaign that demonstrably did crypto work.
    assert!(stats.crypto.digests_computed > 0);
    assert!(stats.crypto.signatures_verified > 0, "authenticated cells verify chains");
    // Every axis of the grid shows up in its rollup.
    assert_eq!(stats.by_k.len(), 2, "sizes 2 and 3");
    assert_eq!(stats.by_adversary.len(), AdversarySpec::ALL.len());
    assert_eq!(stats.by_topology.len(), Topology::ALL.len());
    let rendered = stats.render(3);
    for needle in ["cells:", "wall: p50=", "top 3 cells by wall time:", "by adversary:"] {
        assert!(rendered.contains(needle), "missing {needle:?} in:\n{rendered}");
    }
    // The rollups partition the campaign: each axis's cell counts sum to the total.
    let k_cells: u64 = stats.by_k.values().map(|r| r.cells).sum();
    assert_eq!(k_cells, stats.cells);
}
