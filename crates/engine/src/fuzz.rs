//! The violation-guided adversary fuzzer: seeded search over [`Script`] space.
//!
//! [`run_fuzz`] generates and mutates adversary scripts, runs each one against the
//! property oracle (the bSM checks [`bsm_core::check_bsm`] performs on every
//! outcome), tracks worst-case slot and message counts, and — whenever a script
//! *violates* a property on in-threshold settings — greedily [`shrink`]s it to a
//! minimal reproducer ready to be frozen under `crates/core/tests/fuzz_regressions/`.
//!
//! Everything is a pure function of `(seed, budget)`: the same configuration yields
//! a byte-identical [`FuzzReport::log`] and identical found/shrunk scripts, which is
//! what the CI fuzz-smoke job asserts with a plain `cmp`.

use bsm_core::harness::HarnessError;
use bsm_core::problem::{AuthMode, Setting};
use bsm_core::properties::PropertyViolation;
use bsm_core::script::{Script, ScriptAction, Verdict};
use bsm_core::solvability::is_solvable;
use bsm_matching::Side;
use bsm_net::Topology;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt::Write as _;

/// Search-loop configuration: how many scripts to try and from which seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Number of scripts to generate and run.
    pub budget: u64,
    /// Master seed; the whole run is a pure function of `(seed, budget)`.
    pub seed: u64,
}

/// A property violation found by the fuzzer, before and after shrinking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoundViolation {
    /// The case number that triggered it.
    pub case: u64,
    /// The original violating script.
    pub script: Script,
    /// The shrunk, minimal script (verdict recorded, ready to freeze).
    pub shrunk: Script,
    /// The violation signature both scripts reproduce (sorted property kinds, or a
    /// harness error rendering).
    pub signature: String,
}

/// The deterministic result of one fuzzing run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzReport {
    /// Number of cases executed (= the configured budget).
    pub cases: u64,
    /// One log line per case (plus shrink traces) — byte-identical across repeat
    /// runs with the same configuration.
    pub log: String,
    /// Every violation found, shrunk and verdict-stamped.
    pub violations: Vec<FoundViolation>,
    /// Worst slot count observed across all cases.
    pub worst_slots: u64,
    /// Case number that produced [`worst_slots`](Self::worst_slots).
    pub worst_slots_case: u64,
    /// Worst sent-message count (honest + byzantine) observed across all cases.
    pub worst_messages: u64,
    /// Case number that produced [`worst_messages`](Self::worst_messages).
    pub worst_messages_case: u64,
}

/// A stable short name for a property violation kind.
fn violation_kind(violation: &PropertyViolation) -> &'static str {
    match violation {
        PropertyViolation::Termination { .. } => "termination",
        PropertyViolation::Symmetry { .. } => "symmetry",
        PropertyViolation::Stability { .. } => "stability",
        PropertyViolation::NonCompetition { .. } => "non-competition",
        PropertyViolation::SimplifiedStability { .. } => "simplified-stability",
        PropertyViolation::MalformedOutput { .. } => "malformed-output",
        _ => "unknown",
    }
}

/// Runs `script` and reduces its outcome to a violation signature: `None` when every
/// bSM property holds, `Some(sorted property kinds joined with "+")` on violations,
/// and `Some("harness-error: …")` when the script cannot even be run.
///
/// The shrinker re-checks *this* signature after every candidate step, so shrinking
/// can never wander from one bug to a different one.
pub fn violation_signature(script: &Script) -> Option<String> {
    match script.run() {
        Ok(outcome) => {
            if outcome.violations.is_empty() {
                return None;
            }
            let mut kinds: Vec<&'static str> =
                outcome.violations.iter().map(violation_kind).collect();
            kinds.sort_unstable();
            kinds.dedup();
            Some(kinds.join("+"))
        }
        Err(err) => Some(format!("harness-error: {err}")),
    }
}

/// Greedily minimizes a violating script while `still_violating` keeps returning
/// `true` for the candidate.
///
/// Two alternating passes run to a fixpoint: drop one action at a time, then shrink
/// each numeric field toward zero (trying `0` and `value / 2`). Every accepted step
/// strictly decreases the measure `(action count, sum of numeric fields)`
/// lexicographically, so termination is guaranteed and the result is deterministic
/// for a deterministic predicate.
pub fn shrink(script: &Script, still_violating: &mut dyn FnMut(&Script) -> bool) -> Script {
    let mut current = script.clone();
    loop {
        let mut progressed = false;

        // Pass 1: drop actions one at a time.
        let mut i = 0;
        while i < current.actions.len() {
            let mut candidate = current.clone();
            candidate.actions.remove(i);
            if still_violating(&candidate) {
                current = candidate;
                progressed = true;
                // The next action shifted into position i; retry the same index.
            } else {
                i += 1;
            }
        }

        // Pass 2: shrink numeric fields toward zero.
        for i in 0..current.actions.len() {
            let positions = current.actions[i].numbers().len();
            for j in 0..positions {
                for pick in [ShrinkTo::Zero, ShrinkTo::Half] {
                    let mut numbers = current.actions[i].numbers();
                    let value = numbers[j];
                    let target = match pick {
                        ShrinkTo::Zero => 0,
                        ShrinkTo::Half => value / 2,
                    };
                    if target >= value {
                        continue;
                    }
                    numbers[j] = target;
                    let mut candidate = current.clone();
                    candidate.actions[i] = candidate.actions[i].with_numbers(&numbers);
                    if still_violating(&candidate) {
                        current = candidate;
                        progressed = true;
                    }
                }
            }
        }

        if !progressed {
            return current;
        }
    }
}

#[derive(Clone, Copy)]
enum ShrinkTo {
    Zero,
    Half,
}

/// The in-threshold settings pool the fuzzer samples from: every solvable
/// combination of small market sizes, all topologies, both auth modes and non-empty
/// corruption budgets.
fn settings_pool() -> Vec<(usize, Topology, AuthMode, usize, usize)> {
    let mut pool = Vec::new();
    for k in [3usize, 4] {
        for topology in Topology::ALL {
            for auth in AuthMode::ALL {
                for (t_l, t_r) in [(0usize, 1usize), (1, 0), (1, 1)] {
                    let Ok(setting) = Setting::new(k, topology, auth, t_l, t_r) else {
                        continue;
                    };
                    if is_solvable(&setting) {
                        pool.push((k, topology, auth, t_l, t_r));
                    }
                }
            }
        }
    }
    pool
}

fn random_action(rng: &mut StdRng, k: usize) -> ScriptAction {
    let slot = rng.random_range(0..12u64);
    let nth = rng.random_range(0..8u64);
    match rng.random_range(0..12u8) {
        0 => ScriptAction::Silence { from_slot: rng.random_range(0..6u64) },
        1 => ScriptAction::Lie { seed: rng.random_range(0..1024u64) },
        2 => ScriptAction::Garbage {
            seed: rng.random_range(0..1024u64),
            per_slot: rng.random_range(1..=3u64),
        },
        3 => ScriptAction::Corrupt {
            slot: rng.random_range(0..8u64),
            side: if rng.random_bool(0.5) { Side::Left } else { Side::Right },
            index: rng.random_range(0..k as u32),
        },
        4 => ScriptAction::DropRecv { slot, nth },
        5 => ScriptAction::DelayRecv { slot, nth, by: rng.random_range(1..=4u64) },
        6 => ScriptAction::Replay { slot, nth },
        7 => ScriptAction::DropSend { slot, nth },
        8 => ScriptAction::Equivocate { slot, nth },
        9 => ScriptAction::TruncateChain { slot, nth },
        10 => ScriptAction::ReorderChain { slot, nth },
        _ => ScriptAction::SwapSigTag { slot, nth },
    }
}

fn case_name(fuzz_seed: u64, case: u64) -> String {
    format!("fuzz-s{fuzz_seed}-c{case:04}")
}

fn random_script(
    rng: &mut StdRng,
    pool: &[(usize, Topology, AuthMode, usize, usize)],
    fuzz_seed: u64,
    case: u64,
) -> Script {
    let (k, topology, auth, t_l, t_r) = pool[rng.random_range(0..pool.len())];
    // Corrupt between zero and the full budget statically (highest-indexed parties,
    // matching the campaign-grid convention); leaving slack lets Corrupt actions
    // exercise adaptive corruption.
    let static_left = rng.random_range(0..=t_l);
    let static_right = rng.random_range(0..=t_r);
    let corrupt_left: Vec<u32> = (0..k as u32).rev().take(static_left).collect();
    let corrupt_right: Vec<u32> = (0..k as u32).rev().take(static_right).collect();
    let action_count = rng.random_range(0..=4usize);
    let actions: Vec<ScriptAction> = (0..action_count).map(|_| random_action(rng, k)).collect();
    Script {
        name: case_name(fuzz_seed, case),
        k,
        topology,
        auth,
        t_l,
        t_r,
        plan: None,
        corrupt_left,
        corrupt_right,
        seed: rng.random_range(0..1024u64),
        actions,
        verdict: None,
    }
}

fn mutate_script(base: &Script, rng: &mut StdRng, fuzz_seed: u64, case: u64) -> Script {
    let mut script = base.clone();
    script.name = case_name(fuzz_seed, case);
    script.verdict = None;
    match rng.random_range(0..4u8) {
        0 if script.actions.len() < 6 => {
            script.actions.push(random_action(rng, script.k));
        }
        1 if !script.actions.is_empty() => {
            let idx = rng.random_range(0..script.actions.len());
            script.actions.remove(idx);
        }
        2 if !script.actions.is_empty() => {
            let idx = rng.random_range(0..script.actions.len());
            let mut numbers = script.actions[idx].numbers();
            let pos = rng.random_range(0..numbers.len());
            numbers[pos] = match rng.random_range(0..4u8) {
                0 => numbers[pos].wrapping_add(1),
                1 => numbers[pos] / 2,
                2 => numbers[pos].saturating_mul(2).min(1024),
                _ => rng.random_range(0..16u64),
            };
            script.actions[idx] = script.actions[idx].with_numbers(&numbers);
        }
        _ => {
            script.seed = rng.random_range(0..1024u64);
        }
    }
    script
}

/// Maximum number of interesting scripts kept as mutation seeds.
const CORPUS_CAP: usize = 32;

/// Runs the violation-guided search loop.
///
/// Per case: pick a script (a fresh random one, or a mutation of a corpus entry),
/// run it, log one line, update worst-case trackers, and on any property violation
/// shrink the script against its signature and record it verdict-stamped. The
/// entire report — log bytes included — is a pure function of `config`.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    let pool = settings_pool();
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0xf022));
    let mut log = String::new();
    let mut corpus: Vec<Script> = Vec::new();
    let mut violations: Vec<FoundViolation> = Vec::new();
    let mut worst_slots = 0u64;
    let mut worst_slots_case = 0u64;
    let mut worst_messages = 0u64;
    let mut worst_messages_case = 0u64;

    let _ = writeln!(log, "fuzz seed={} budget={}", config.seed, config.budget);
    for case in 0..config.budget {
        let script = if !corpus.is_empty() && rng.random_bool(0.5) {
            let base = corpus[rng.random_range(0..corpus.len())].clone();
            mutate_script(&base, &mut rng, config.seed, case)
        } else {
            random_script(&mut rng, &pool, config.seed, case)
        };

        let header = format!(
            "case {case:04} k={} {} {} tL={} tR={} seed={} actions={}",
            script.k,
            script.topology.name(),
            script.auth.name(),
            script.t_l,
            script.t_r,
            script.seed,
            script.actions.len(),
        );

        match script.run() {
            Ok(outcome) => {
                let messages = outcome.metrics.honest_messages + outcome.metrics.byzantine_messages;
                let mut markers = String::new();
                let mut interesting = false;
                if outcome.slots > worst_slots {
                    worst_slots = outcome.slots;
                    worst_slots_case = case;
                    markers.push_str(" [worst-slots]");
                    interesting = true;
                }
                if messages > worst_messages {
                    worst_messages = messages;
                    worst_messages_case = case;
                    markers.push_str(" [worst-messages]");
                    interesting = true;
                }
                if outcome.violations.is_empty() {
                    let _ = writeln!(
                        log,
                        "{header} -> ok decided={} slots={} messages={}{markers}",
                        outcome.all_honest_decided, outcome.slots, messages,
                    );
                    if interesting {
                        corpus.push(script);
                        if corpus.len() > CORPUS_CAP {
                            corpus.remove(0);
                        }
                    }
                } else {
                    let signature = violation_signature(&script)
                        .expect("a violating outcome must have a signature");
                    let _ = writeln!(
                        log,
                        "{header} -> VIOLATION {signature} decided={} slots={} messages={}",
                        outcome.all_honest_decided, outcome.slots, messages,
                    );
                    let recorded = record_violation(case, &script, signature, &mut log);
                    violations.push(recorded);
                    corpus.push(script);
                    if corpus.len() > CORPUS_CAP {
                        corpus.remove(0);
                    }
                }
            }
            Err(err) => {
                // A generated script that cannot even run is itself a finding: the
                // generator only emits in-budget, solvable configurations.
                let signature = harness_signature(&err);
                let _ = writeln!(log, "{header} -> VIOLATION {signature}");
                let recorded = record_violation(case, &script, signature, &mut log);
                violations.push(recorded);
            }
        }
    }

    let _ = writeln!(
        log,
        "done cases={} violations={} worst_slots={} (case {worst_slots_case:04}) worst_messages={} (case {worst_messages_case:04})",
        config.budget,
        violations.len(),
        worst_slots,
        worst_messages,
    );

    FuzzReport {
        cases: config.budget,
        log,
        violations,
        worst_slots,
        worst_slots_case,
        worst_messages,
        worst_messages_case,
    }
}

fn harness_signature(err: &HarnessError) -> String {
    format!("harness-error: {err}")
}

/// Shrinks a violating script against its signature, stamps the verdict of the
/// minimal reproducer, and appends the shrink trace to the log.
fn record_violation(
    case: u64,
    script: &Script,
    signature: String,
    log: &mut String,
) -> FoundViolation {
    let before = script.actions.len();
    let mut predicate =
        |candidate: &Script| violation_signature(candidate).as_deref() == Some(&signature);
    let mut shrunk = shrink(script, &mut predicate);
    if let Ok(outcome) = shrunk.run() {
        shrunk.verdict = Some(Verdict::of(&outcome));
    }
    let _ = writeln!(
        log,
        "  shrunk actions {before} -> {} signature {signature}",
        shrunk.actions.len(),
    );
    FoundViolation { case, script: script.clone(), shrunk, signature }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_pool_is_nonempty_and_solvable_only() {
        let pool = settings_pool();
        assert!(!pool.is_empty());
        for (k, topology, auth, t_l, t_r) in pool {
            let setting = Setting::new(k, topology, auth, t_l, t_r).unwrap();
            assert!(is_solvable(&setting), "{setting:?}");
        }
    }

    #[test]
    fn violation_signature_is_none_for_tolerated_scripts() {
        let script = Script {
            name: "quiet".into(),
            k: 3,
            topology: Topology::FullyConnected,
            auth: AuthMode::Authenticated,
            t_l: 1,
            t_r: 1,
            plan: None,
            corrupt_left: vec![2],
            corrupt_right: vec![],
            seed: 4,
            actions: vec![ScriptAction::Silence { from_slot: 0 }],
            verdict: None,
        };
        assert_eq!(violation_signature(&script), None);
    }

    #[test]
    fn violation_signature_reports_harness_errors() {
        // Unsolvable setting (unauthenticated full mesh with t >= k/3 on both sides).
        let script = Script {
            name: "unsolvable".into(),
            k: 3,
            topology: Topology::FullyConnected,
            auth: AuthMode::Unauthenticated,
            t_l: 1,
            t_r: 1,
            plan: None,
            corrupt_left: vec![],
            corrupt_right: vec![],
            seed: 0,
            actions: vec![],
            verdict: None,
        };
        let signature = violation_signature(&script).unwrap();
        assert!(signature.starts_with("harness-error:"), "{signature}");
    }
}
