//! Cell-level comparison of two campaign reports.
//!
//! [`CampaignDiff`] lines up two [`CampaignReport`]s by grid coordinate and keeps
//! only the cells whose outcomes differ — the tool for before/after comparisons when
//! a protocol, adversary or characterization change lands: run the same campaign on
//! both revisions, export, import, diff, and read exactly the cells that moved.
//!
//! The diff is symmetric in structure (each entry carries the left and right outcome,
//! either of which may be absent when the reports cover different grids) and
//! deterministic: entries are ordered by grid coordinate, so the same pair of reports
//! always renders the same text.

use crate::grid::ScenarioSpec;
use crate::report::{CampaignReport, CellOutcome};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// One differing cell: its coordinates and the outcome on each side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellDiff {
    /// The grid coordinates both sides were compared at.
    pub spec: ScenarioSpec,
    /// The outcome in the left report (`None`: the left report lacks this cell).
    pub left: Option<CellOutcome>,
    /// The outcome in the right report (`None`: the right report lacks this cell).
    pub right: Option<CellOutcome>,
}

/// The cell-level difference between two campaign reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignDiff {
    diffs: Vec<CellDiff>,
    cells_compared: usize,
}

impl CampaignDiff {
    /// Compares two reports cell by cell, keyed by grid coordinate.
    ///
    /// A cell differs when it appears in only one report, or in both with unequal
    /// outcomes. Identical cells are dropped; the diff of a report against itself is
    /// empty. Reports built by [`CampaignBuilder`] have unique coordinates, but a
    /// hand-assembled work list may repeat one — the n-th occurrence on the left is
    /// then compared against the n-th occurrence on the right, so no record is
    /// silently collapsed.
    ///
    /// [`CampaignBuilder`]: crate::campaign::CampaignBuilder
    pub fn between(left: &CampaignReport, right: &CampaignReport) -> CampaignDiff {
        // Key every record by (coordinates, occurrence index) so duplicate
        // coordinates line up pairwise instead of overwriting each other in the map.
        fn keyed(report: &CampaignReport) -> BTreeMap<(ScenarioSpec, usize), &CellOutcome> {
            let mut seen: BTreeMap<ScenarioSpec, usize> = BTreeMap::new();
            report
                .cells()
                .iter()
                .map(|c| {
                    let occurrence = seen.entry(c.spec).or_insert(0);
                    let key = (c.spec, *occurrence);
                    *occurrence += 1;
                    (key, &c.outcome)
                })
                .collect()
        }
        let left_cells = keyed(left);
        let right_cells = keyed(right);
        let keys: std::collections::BTreeSet<(ScenarioSpec, usize)> =
            left_cells.keys().chain(right_cells.keys()).copied().collect();
        let cells_compared = keys.len();
        let diffs = keys
            .into_iter()
            .filter_map(|key| {
                let l = left_cells.get(&key);
                let r = right_cells.get(&key);
                if l == r {
                    return None;
                }
                Some(CellDiff {
                    spec: key.0,
                    left: l.map(|o| (*o).clone()),
                    right: r.map(|o| (*o).clone()),
                })
            })
            .collect();
        CampaignDiff { diffs, cells_compared }
    }

    /// The differing cells, ordered by grid coordinate.
    pub fn cells(&self) -> &[CellDiff] {
        &self.diffs
    }

    /// Number of differing cells.
    pub fn len(&self) -> usize {
        self.diffs.len()
    }

    /// `true` when the two reports agree on every cell.
    pub fn is_empty(&self) -> bool {
        self.diffs.is_empty()
    }

    /// Number of distinct grid coordinates across both reports.
    pub fn cells_compared(&self) -> usize {
        self.cells_compared
    }

    /// Renders the diff: a summary line, then one block per differing cell (and
    /// nothing else — identical cells never appear). An empty diff renders the
    /// summary line only.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} differing cell(s) of {} compared",
            self.diffs.len(),
            self.cells_compared
        );
        for diff in &self.diffs {
            let _ = writeln!(out, "~ {}", diff.spec);
            match &diff.left {
                Some(outcome) => {
                    let _ = writeln!(out, "  - {}", outcome_line(outcome));
                }
                None => {
                    let _ = writeln!(out, "  - <absent>");
                }
            }
            match &diff.right {
                Some(outcome) => {
                    let _ = writeln!(out, "  + {}", outcome_line(outcome));
                }
                None => {
                    let _ = writeln!(out, "  + <absent>");
                }
            }
        }
        out
    }
}

impl fmt::Display for CampaignDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// One-line rendering of a cell outcome for diff output.
fn outcome_line(outcome: &CellOutcome) -> String {
    match outcome {
        CellOutcome::Completed(stats) => format!(
            "completed plan=\"{}\" decided={} violations={} slots={} messages={} signatures={}",
            stats.plan,
            stats.all_honest_decided,
            stats.violations,
            stats.slots,
            stats.messages,
            stats.signatures
        ),
        CellOutcome::Unsolvable { theorem, reason } => {
            format!("unsolvable {theorem}: {reason}")
        }
        CellOutcome::Failed { message } => format!("failed: {message}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignBuilder;
    use crate::executor::Executor;
    use crate::report::{CellRecord, CellStats};
    use bsm_core::solvability::ProtocolPlan;

    fn run_default() -> CampaignReport {
        let campaign = CampaignBuilder::new().sizes([2, 3]).corruptions([(0, 0), (1, 1)]).build();
        Executor::new().threads(2).run(&campaign).0
    }

    #[test]
    fn a_report_diffed_against_itself_renders_zero_cells() {
        let report = run_default();
        let diff = CampaignDiff::between(&report, &report);
        assert!(diff.is_empty());
        assert_eq!(diff.len(), 0);
        assert_eq!(diff.cells_compared(), report.cells().len());
        let rendered = diff.render();
        assert!(rendered.starts_with("0 differing cell(s)"), "{rendered}");
        assert_eq!(rendered.lines().count(), 1, "identical cells must not render");
    }

    #[test]
    fn a_changed_outcome_renders_exactly_that_cell() {
        let before = run_default();
        let mut cells = before.cells().to_vec();
        let target = cells[3].spec;
        cells[3].outcome = CellOutcome::Failed { message: "injected".into() };
        let after = CampaignReport::new(cells);

        let diff = CampaignDiff::between(&before, &after);
        assert_eq!(diff.len(), 1);
        assert_eq!(diff.cells()[0].spec, target);
        assert_eq!(diff.cells()[0].left.as_ref(), Some(&before.cells()[3].outcome));
        assert!(matches!(diff.cells()[0].right, Some(CellOutcome::Failed { .. })));
        let rendered = diff.to_string();
        assert!(rendered.contains(&format!("~ {target}")), "{rendered}");
        assert!(rendered.contains("+ failed: injected"), "{rendered}");
        // Only the summary and the one 3-line block appear.
        assert_eq!(rendered.lines().count(), 4, "{rendered}");
    }

    #[test]
    fn cells_missing_on_either_side_render_as_absent() {
        let report = run_default();
        let mut left_cells = report.cells().to_vec();
        let mut right_cells = report.cells().to_vec();
        // left = cells minus the first (so the first cell is right-only), right =
        // cells minus the last (so the last cell is left-only).
        let right_only = left_cells.remove(0);
        let left_only = right_cells.remove(right_cells.len() - 1);
        let left = CampaignReport::new(left_cells);
        let right = CampaignReport::new(right_cells);
        let diff = CampaignDiff::between(&left, &right);
        assert_eq!(diff.len(), 2);
        let rendered = diff.render();
        assert!(rendered.contains("- <absent>"), "{rendered}");
        assert!(rendered.contains("+ <absent>"), "{rendered}");
        assert_eq!(diff.cells()[0].spec, right_only.spec);
        assert_eq!(diff.cells().last().unwrap().spec, left_only.spec);
    }

    #[test]
    fn duplicate_coordinates_are_compared_pairwise_not_collapsed() {
        let base = run_default();
        let spec = base.cells()[0].spec;
        let ok = base.cells()[0].outcome.clone();
        let bad = CellOutcome::Failed { message: "second occurrence".into() };
        // Both reports repeat the same coordinate; only the *second* occurrence
        // differs. A spec-keyed map would collapse the pair and miss it.
        let left = CampaignReport::new(vec![
            CellRecord { spec, outcome: ok.clone() },
            CellRecord { spec, outcome: ok.clone() },
        ]);
        let right = CampaignReport::new(vec![
            CellRecord { spec, outcome: ok.clone() },
            CellRecord { spec, outcome: bad },
        ]);
        let diff = CampaignDiff::between(&left, &right);
        assert_eq!(diff.len(), 1, "{}", diff.render());
        assert_eq!(diff.cells_compared(), 2);
        // And a missing duplicate shows up as absent, not as equality.
        let shorter = CampaignReport::new(vec![CellRecord { spec, outcome: ok }]);
        let diff = CampaignDiff::between(&left, &shorter);
        assert_eq!(diff.len(), 1);
        assert!(diff.cells()[0].right.is_none());
    }

    #[test]
    fn outcome_lines_cover_every_shape() {
        let completed = CellOutcome::Completed(CellStats {
            plan: ProtocolPlan::DolevStrongBsm,
            all_honest_decided: true,
            violations: 2,
            slots: 7,
            messages: 13,
            signatures: 5,
        });
        let line = outcome_line(&completed);
        for needle in ["completed", "Dolev-Strong", "decided=true", "violations=2", "slots=7"] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
        let unsolvable =
            CellOutcome::Unsolvable { theorem: "Theorem 2".into(), reason: "t ≥ k/3".into() };
        assert_eq!(outcome_line(&unsolvable), "unsolvable Theorem 2: t ≥ k/3");
        let failed = CellOutcome::Failed { message: "boom".into() };
        assert_eq!(outcome_line(&failed), "failed: boom");
        // Coverage for the record type used by callers of the diff.
        let record = CellRecord { spec: run_default().cells()[0].spec, outcome: failed };
        assert_eq!(record.outcome.status(), "failed");
    }
}
