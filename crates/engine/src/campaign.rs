//! The campaign DSL: expand a parameter grid into an ordered work list of scenarios.
//!
//! A [`CampaignBuilder`] collects the values of every grid axis and expands their cross
//! product into a [`Campaign`] — a `Vec<ScenarioSpec>` in the **canonical order**
//! (size → topology → auth mode → corruption pair → adversary → fault plan → seed). The canonical
//! order is the contract that makes parallel execution deterministic: the executor
//! merges results back into this order no matter which thread finishes first, so the
//! aggregated report and its exports are bit-identical across thread counts.

use crate::grid::{ScenarioSpec, ShardPlan};
use bsm_core::harness::AdversarySpec;
use bsm_core::problem::{AuthMode, Setting};
use bsm_core::solvability::is_solvable;
use bsm_net::{FaultSpec, Topology};
use std::fmt;
use std::ops::Range;

/// An expanded, ordered work list of scenario cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Campaign {
    specs: Vec<ScenarioSpec>,
}

impl Campaign {
    /// Wraps an explicit work list, keeping the given order as canonical.
    ///
    /// This is the escape hatch for experiments whose cells do not form a cross
    /// product (e.g. the cost tables, which pick one corruption budget per size).
    /// Note that [`CampaignReport::merge`] recombines shard reports in *coordinate*
    /// order; if the given order differs from it, a merged export is deterministic
    /// but not byte-identical to an unsharded export of this campaign (built
    /// campaigns always agree — [`CampaignBuilder::build`] normalizes its axes).
    ///
    /// [`CampaignReport::merge`]: crate::report::CampaignReport::merge
    pub fn from_specs(specs: Vec<ScenarioSpec>) -> Self {
        Self { specs }
    }

    /// The cells in canonical order.
    pub fn specs(&self) -> &[ScenarioSpec] {
        &self.specs
    }

    /// The sub-campaign holding an explicit contiguous slice of the work list.
    ///
    /// This is the resumption primitive: a crash-interrupted shard salvages its
    /// exported cell prefix, computes the un-run tail of its range with
    /// [`ShardPlan::remainder`], and re-runs only `campaign.slice(remainder)`.
    ///
    /// # Panics
    ///
    /// Panics when `range` is out of bounds for the work list (like slice indexing);
    /// ranges produced by [`ShardPlan::range`]/[`ShardPlan::remainder`] for this
    /// campaign's length are always in bounds.
    pub fn slice(&self, range: Range<usize>) -> Campaign {
        Campaign { specs: self.specs[range].to_vec() }
    }

    /// The sub-campaign holding this shard's contiguous slice of the work list.
    ///
    /// Every process of a distributed run expands the same campaign (deterministic, no
    /// coordination needed) and keeps its own slice; because the slices are contiguous
    /// runs of the canonical order, [`CampaignReport::merge`] of the shard reports is
    /// byte-identical to running the whole campaign in one process.
    ///
    /// [`CampaignReport::merge`]: crate::report::CampaignReport::merge
    pub fn shard(&self, plan: ShardPlan) -> Campaign {
        Campaign { specs: self.specs[plan.range(self.specs.len())].to_vec() }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Returns `true` when the campaign has no cells.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

impl fmt::Display for Campaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "campaign of {} scenarios", self.specs.len())
    }
}

/// Builder DSL for [`Campaign`]: set each grid axis, then [`build`](Self::build).
///
/// Defaults: sizes `[3]`, every topology, every auth mode, the single corruption pair
/// `(0, 0)`, every adversary strategy, the single fault plan [`FaultSpec::NONE`],
/// seeds `0..1`, unsolvable cells included.
///
/// # Examples
///
/// ```rust
/// use bsm_engine::CampaignBuilder;
///
/// let campaign = CampaignBuilder::new()
///     .sizes([3, 4])
///     .corruptions([(0, 0), (1, 1)])
///     .seeds(0..3)
///     .build();
/// // 2 sizes × 3 topologies × 2 auth modes × 2 corruption pairs × 3 adversaries
/// // × 3 seeds = 216 cells, in canonical (coordinate) order.
/// assert_eq!(campaign.len(), 216);
/// let mut sorted = campaign.specs().to_vec();
/// sorted.sort_unstable();
/// assert_eq!(sorted, campaign.specs(), "expansion order is coordinate order");
/// ```
#[derive(Debug, Clone)]
pub struct CampaignBuilder {
    sizes: Vec<usize>,
    topologies: Vec<Topology>,
    auth_modes: Vec<AuthMode>,
    corruptions: Vec<(usize, usize)>,
    adversaries: Vec<AdversarySpec>,
    fault_plans: Vec<FaultSpec>,
    seeds: Range<u64>,
    skip_unsolvable: bool,
    shard: Option<ShardPlan>,
}

impl Default for CampaignBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CampaignBuilder {
    /// Starts a builder with the default axes (see the type-level docs).
    pub fn new() -> Self {
        Self {
            sizes: vec![3],
            topologies: Topology::ALL.to_vec(),
            auth_modes: AuthMode::ALL.to_vec(),
            corruptions: vec![(0, 0)],
            adversaries: AdversarySpec::ALL.to_vec(),
            fault_plans: vec![FaultSpec::NONE],
            seeds: 0..1,
            skip_unsolvable: false,
            shard: None,
        }
    }

    /// Market sizes to sweep (parties per side).
    pub fn sizes(mut self, sizes: impl IntoIterator<Item = usize>) -> Self {
        self.sizes = sizes.into_iter().collect();
        self
    }

    /// Topologies to sweep.
    pub fn topologies(mut self, topologies: impl IntoIterator<Item = Topology>) -> Self {
        self.topologies = topologies.into_iter().collect();
        self
    }

    /// Authentication modes to sweep.
    pub fn auth_modes(mut self, modes: impl IntoIterator<Item = AuthMode>) -> Self {
        self.auth_modes = modes.into_iter().collect();
        self
    }

    /// Corruption pairs `(tL, tR)` to sweep. Pairs exceeding a size `k` are skipped
    /// for that size during expansion (they would not form a valid [`Setting`]).
    pub fn corruptions(mut self, pairs: impl IntoIterator<Item = (usize, usize)>) -> Self {
        self.corruptions = pairs.into_iter().collect();
        self
    }

    /// Sweeps the full corruption square `(0..=max) × (0..=max)`.
    pub fn corruption_grid(self, max: usize) -> Self {
        let pairs: Vec<(usize, usize)> =
            (0..=max).flat_map(|l| (0..=max).map(move |r| (l, r))).collect();
        self.corruptions(pairs)
    }

    /// Byzantine strategies to sweep.
    pub fn adversaries(mut self, adversaries: impl IntoIterator<Item = AdversarySpec>) -> Self {
        self.adversaries = adversaries.into_iter().collect();
        self
    }

    /// Fault plans to sweep — each plan is a first-class grid axis value, so a
    /// campaign can compare e.g. a clean network against a partition-heal schedule
    /// and a lossy link, cell by cell.
    pub fn fault_plans(mut self, plans: impl IntoIterator<Item = FaultSpec>) -> Self {
        self.fault_plans = plans.into_iter().collect();
        self
    }

    /// Seed range to sweep (one scenario per seed per cell).
    pub fn seeds(mut self, seeds: Range<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Excludes cells whose setting Theorems 2–7 rule unsolvable. By default they are
    /// kept and recorded as unsolvable in the report (useful for frontier maps).
    pub fn skip_unsolvable(mut self, skip: bool) -> Self {
        self.skip_unsolvable = skip;
        self
    }

    /// Restricts [`build`](Self::build) to one shard of the expanded work list (see
    /// [`Campaign::shard`]). `None` (the default) keeps the whole campaign.
    ///
    /// Sharding happens *after* the full expansion, so every shard of a distributed
    /// run agrees on the canonical work list and the slices partition it exactly.
    pub fn shard(mut self, plan: impl Into<Option<ShardPlan>>) -> Self {
        self.shard = plan.into();
        self
    }

    /// Expands the cross product into a campaign, in canonical order:
    /// size → topology → auth → corruption pair → adversary → fault plan → seed.
    ///
    /// Each axis is treated as a **set**: values are sorted and deduplicated before
    /// expansion, so the canonical order coincides exactly with the coordinate order
    /// of [`ScenarioSpec`]'s `Ord` — the order [`CampaignReport::merge`] restores.
    /// This is what makes the shard-merge byte-identity guarantee unconditional for
    /// built campaigns, regardless of the order axes were passed in.
    ///
    /// Corruption pairs that exceed the current size (no valid [`Setting`]) are
    /// dropped; with [`skip_unsolvable`](Self::skip_unsolvable), provably unsolvable
    /// cells are dropped too.
    ///
    /// [`CampaignReport::merge`]: crate::report::CampaignReport::merge
    pub fn build(self) -> Campaign {
        fn axis<T: Ord + Copy>(values: &[T]) -> Vec<T> {
            let mut values = values.to_vec();
            values.sort_unstable();
            values.dedup();
            values
        }
        let (sizes, topologies) = (axis(&self.sizes), axis(&self.topologies));
        let (auth_modes, corruptions) = (axis(&self.auth_modes), axis(&self.corruptions));
        let (adversaries, fault_plans) = (axis(&self.adversaries), axis(&self.fault_plans));
        let mut specs = Vec::new();
        for &k in &sizes {
            for &topology in &topologies {
                for &auth in &auth_modes {
                    for &(t_l, t_r) in &corruptions {
                        let Ok(setting) = Setting::new(k, topology, auth, t_l, t_r) else {
                            continue;
                        };
                        if self.skip_unsolvable && !is_solvable(&setting) {
                            continue;
                        }
                        for &adversary in &adversaries {
                            for &faults in &fault_plans {
                                for seed in self.seeds.clone() {
                                    specs.push(ScenarioSpec {
                                        k,
                                        topology,
                                        auth,
                                        t_l,
                                        t_r,
                                        adversary,
                                        faults,
                                        seed,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        let campaign = Campaign { specs };
        match self.shard {
            Some(plan) => campaign.shard(plan),
            None => campaign,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builder_expands_all_defaults() {
        let campaign = CampaignBuilder::new().build();
        // 1 size × 3 topologies × 2 auth modes × 1 corruption pair × 3 adversaries × 1 seed.
        assert_eq!(campaign.len(), 18);
        assert!(!campaign.is_empty());
        assert!(campaign.to_string().contains("18 scenarios"));
    }

    #[test]
    fn expansion_follows_the_canonical_order() {
        let campaign = CampaignBuilder::new()
            .sizes([2, 3])
            .topologies([Topology::Bipartite])
            .auth_modes([AuthMode::Authenticated])
            .corruptions([(0, 0)])
            .adversaries([AdversarySpec::Crash])
            .seeds(0..2)
            .build();
        let specs = campaign.specs();
        assert_eq!(specs.len(), 4);
        // Seeds vary fastest, sizes slowest.
        assert_eq!((specs[0].k, specs[0].seed), (2, 0));
        assert_eq!((specs[1].k, specs[1].seed), (2, 1));
        assert_eq!((specs[2].k, specs[2].seed), (3, 0));
        assert_eq!((specs[3].k, specs[3].seed), (3, 1));
    }

    #[test]
    fn oversized_corruption_pairs_are_dropped_per_size() {
        let campaign = CampaignBuilder::new()
            .sizes([2, 4])
            .topologies([Topology::FullyConnected])
            .auth_modes([AuthMode::Authenticated])
            .corruptions([(0, 0), (3, 3)])
            .adversaries([AdversarySpec::Crash])
            .build();
        // (3, 3) is invalid at k = 2 but valid at k = 4.
        assert_eq!(campaign.len(), 3);
    }

    #[test]
    fn skip_unsolvable_prunes_the_grid() {
        let all = CampaignBuilder::new()
            .sizes([3])
            .topologies([Topology::FullyConnected])
            .auth_modes([AuthMode::Unauthenticated])
            .corruptions([(1, 1)])
            .adversaries([AdversarySpec::Crash])
            .build();
        assert_eq!(all.len(), 1); // kept, even though Theorem 2 rules it out
        let pruned = CampaignBuilder::new()
            .sizes([3])
            .topologies([Topology::FullyConnected])
            .auth_modes([AuthMode::Unauthenticated])
            .corruptions([(1, 1)])
            .adversaries([AdversarySpec::Crash])
            .skip_unsolvable(true)
            .build();
        assert!(pruned.is_empty());
    }

    #[test]
    fn corruption_grid_covers_the_square() {
        let campaign = CampaignBuilder::new()
            .sizes([4])
            .topologies([Topology::FullyConnected])
            .auth_modes([AuthMode::Authenticated])
            .corruption_grid(1)
            .adversaries([AdversarySpec::Crash])
            .build();
        let pairs: Vec<(usize, usize)> = campaign.specs().iter().map(|s| (s.t_l, s.t_r)).collect();
        assert_eq!(pairs, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn axes_are_sets_order_and_duplicates_do_not_matter() {
        let canonical = CampaignBuilder::new()
            .sizes([2, 3])
            .topologies([Topology::Bipartite, Topology::FullyConnected])
            .corruptions([(0, 0), (1, 1)])
            .seeds(0..2)
            .build();
        let scrambled = CampaignBuilder::new()
            .sizes([3, 2, 3])
            .topologies([Topology::FullyConnected, Topology::Bipartite, Topology::FullyConnected])
            .corruptions([(1, 1), (0, 0), (1, 1)])
            .seeds(0..2)
            .build();
        assert_eq!(scrambled, canonical);
        // Expansion order equals coordinate order, the order merge restores.
        let mut sorted = canonical.specs().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, canonical.specs());
    }

    #[test]
    fn fault_plans_are_a_first_class_axis() {
        let lossy: FaultSpec = "loss=100".parse().unwrap();
        let campaign = CampaignBuilder::new()
            .sizes([3])
            .topologies([Topology::FullyConnected])
            .auth_modes([AuthMode::Authenticated])
            .adversaries([AdversarySpec::Crash])
            .fault_plans([lossy, FaultSpec::NONE, lossy])
            .seeds(0..2)
            .build();
        assert_eq!(campaign.len(), 4, "2 fault plans (deduped) × 2 seeds");
        let coords: Vec<(FaultSpec, u64)> =
            campaign.specs().iter().map(|s| (s.faults, s.seed)).collect();
        // NONE sorts first; seeds vary faster than fault plans.
        assert_eq!(
            coords,
            vec![(FaultSpec::NONE, 0), (FaultSpec::NONE, 1), (lossy, 0), (lossy, 1)]
        );
    }

    #[test]
    fn shards_partition_the_canonical_work_list() {
        let campaign = CampaignBuilder::new().sizes([2, 3, 4]).seeds(0..2).build();
        for count in [1usize, 2, 3, 5] {
            let mut rejoined = Vec::new();
            for index in 0..count {
                let plan = ShardPlan::new(index, count).unwrap();
                let shard = campaign.shard(plan);
                // The builder-level shard agrees with the campaign-level slice.
                let built = CampaignBuilder::new().sizes([2, 3, 4]).seeds(0..2).shard(plan).build();
                assert_eq!(built.specs(), shard.specs(), "builder shard {plan} diverged");
                rejoined.extend_from_slice(shard.specs());
            }
            assert_eq!(rejoined, campaign.specs(), "{count} shards do not rejoin");
        }
    }

    #[test]
    fn builder_shard_none_keeps_the_whole_campaign() {
        let whole = CampaignBuilder::new().build();
        let explicit = CampaignBuilder::new().shard(None).build();
        assert_eq!(whole, explicit);
        assert_eq!(whole, CampaignBuilder::new().shard(ShardPlan::WHOLE).build());
    }

    #[test]
    fn slice_agrees_with_the_shard_ranges() {
        let campaign = CampaignBuilder::new().sizes([2, 3, 4]).seeds(0..2).build();
        for count in [1usize, 2, 3, 5] {
            for index in 0..count {
                let plan = ShardPlan::new(index, count).unwrap();
                let range = plan.range(campaign.len());
                assert_eq!(
                    campaign.slice(range).specs(),
                    campaign.shard(plan).specs(),
                    "slice of {plan}'s range diverged from the shard"
                );
            }
        }
        assert!(campaign.slice(0..0).is_empty());
        assert_eq!(campaign.slice(0..campaign.len()), campaign);
    }

    #[test]
    fn from_specs_keeps_the_given_order() {
        let campaign = CampaignBuilder::new().build();
        let reversed: Vec<ScenarioSpec> = campaign.specs().iter().rev().copied().collect();
        let explicit = Campaign::from_specs(reversed.clone());
        assert_eq!(explicit.specs(), &reversed[..]);
    }
}
