//! The campaign DSL: expand a parameter grid into an ordered work list of scenarios.
//!
//! A [`CampaignBuilder`] collects the values of every grid axis and expands their cross
//! product into a [`Campaign`] — a `Vec<ScenarioSpec>` in the **canonical order**
//! (size → topology → auth mode → corruption pair → adversary → seed). The canonical
//! order is the contract that makes parallel execution deterministic: the executor
//! merges results back into this order no matter which thread finishes first, so the
//! aggregated report and its exports are bit-identical across thread counts.

use crate::grid::ScenarioSpec;
use bsm_core::harness::AdversarySpec;
use bsm_core::problem::{AuthMode, Setting};
use bsm_core::solvability::is_solvable;
use bsm_net::Topology;
use std::fmt;
use std::ops::Range;

/// An expanded, ordered work list of scenario cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Campaign {
    specs: Vec<ScenarioSpec>,
}

impl Campaign {
    /// Wraps an explicit work list, keeping the given order as canonical.
    ///
    /// This is the escape hatch for experiments whose cells do not form a cross
    /// product (e.g. the cost tables, which pick one corruption budget per size).
    pub fn from_specs(specs: Vec<ScenarioSpec>) -> Self {
        Self { specs }
    }

    /// The cells in canonical order.
    pub fn specs(&self) -> &[ScenarioSpec] {
        &self.specs
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Returns `true` when the campaign has no cells.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

impl fmt::Display for Campaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "campaign of {} scenarios", self.specs.len())
    }
}

/// Builder DSL for [`Campaign`]: set each grid axis, then [`build`](Self::build).
///
/// Defaults: sizes `[3]`, every topology, every auth mode, the single corruption pair
/// `(0, 0)`, every adversary strategy, seeds `0..1`, unsolvable cells included.
#[derive(Debug, Clone)]
pub struct CampaignBuilder {
    sizes: Vec<usize>,
    topologies: Vec<Topology>,
    auth_modes: Vec<AuthMode>,
    corruptions: Vec<(usize, usize)>,
    adversaries: Vec<AdversarySpec>,
    seeds: Range<u64>,
    skip_unsolvable: bool,
}

impl Default for CampaignBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CampaignBuilder {
    /// Starts a builder with the default axes (see the type-level docs).
    pub fn new() -> Self {
        Self {
            sizes: vec![3],
            topologies: Topology::ALL.to_vec(),
            auth_modes: AuthMode::ALL.to_vec(),
            corruptions: vec![(0, 0)],
            adversaries: AdversarySpec::ALL.to_vec(),
            seeds: 0..1,
            skip_unsolvable: false,
        }
    }

    /// Market sizes to sweep (parties per side).
    pub fn sizes(mut self, sizes: impl IntoIterator<Item = usize>) -> Self {
        self.sizes = sizes.into_iter().collect();
        self
    }

    /// Topologies to sweep.
    pub fn topologies(mut self, topologies: impl IntoIterator<Item = Topology>) -> Self {
        self.topologies = topologies.into_iter().collect();
        self
    }

    /// Authentication modes to sweep.
    pub fn auth_modes(mut self, modes: impl IntoIterator<Item = AuthMode>) -> Self {
        self.auth_modes = modes.into_iter().collect();
        self
    }

    /// Corruption pairs `(tL, tR)` to sweep. Pairs exceeding a size `k` are skipped
    /// for that size during expansion (they would not form a valid [`Setting`]).
    pub fn corruptions(mut self, pairs: impl IntoIterator<Item = (usize, usize)>) -> Self {
        self.corruptions = pairs.into_iter().collect();
        self
    }

    /// Sweeps the full corruption square `(0..=max) × (0..=max)`.
    pub fn corruption_grid(self, max: usize) -> Self {
        let pairs: Vec<(usize, usize)> =
            (0..=max).flat_map(|l| (0..=max).map(move |r| (l, r))).collect();
        self.corruptions(pairs)
    }

    /// Byzantine strategies to sweep.
    pub fn adversaries(mut self, adversaries: impl IntoIterator<Item = AdversarySpec>) -> Self {
        self.adversaries = adversaries.into_iter().collect();
        self
    }

    /// Seed range to sweep (one scenario per seed per cell).
    pub fn seeds(mut self, seeds: Range<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Excludes cells whose setting Theorems 2–7 rule unsolvable. By default they are
    /// kept and recorded as unsolvable in the report (useful for frontier maps).
    pub fn skip_unsolvable(mut self, skip: bool) -> Self {
        self.skip_unsolvable = skip;
        self
    }

    /// Expands the cross product into a campaign, in canonical order:
    /// size → topology → auth → corruption pair → adversary → seed.
    ///
    /// Corruption pairs that exceed the current size (no valid [`Setting`]) are
    /// dropped; with [`skip_unsolvable`](Self::skip_unsolvable), provably unsolvable
    /// cells are dropped too.
    pub fn build(self) -> Campaign {
        let mut specs = Vec::new();
        for &k in &self.sizes {
            for &topology in &self.topologies {
                for &auth in &self.auth_modes {
                    for &(t_l, t_r) in &self.corruptions {
                        let Ok(setting) = Setting::new(k, topology, auth, t_l, t_r) else {
                            continue;
                        };
                        if self.skip_unsolvable && !is_solvable(&setting) {
                            continue;
                        }
                        for &adversary in &self.adversaries {
                            for seed in self.seeds.clone() {
                                specs.push(ScenarioSpec {
                                    k,
                                    topology,
                                    auth,
                                    t_l,
                                    t_r,
                                    adversary,
                                    seed,
                                });
                            }
                        }
                    }
                }
            }
        }
        Campaign { specs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builder_expands_all_defaults() {
        let campaign = CampaignBuilder::new().build();
        // 1 size × 3 topologies × 2 auth modes × 1 corruption pair × 3 adversaries × 1 seed.
        assert_eq!(campaign.len(), 18);
        assert!(!campaign.is_empty());
        assert!(campaign.to_string().contains("18 scenarios"));
    }

    #[test]
    fn expansion_follows_the_canonical_order() {
        let campaign = CampaignBuilder::new()
            .sizes([2, 3])
            .topologies([Topology::Bipartite])
            .auth_modes([AuthMode::Authenticated])
            .corruptions([(0, 0)])
            .adversaries([AdversarySpec::Crash])
            .seeds(0..2)
            .build();
        let specs = campaign.specs();
        assert_eq!(specs.len(), 4);
        // Seeds vary fastest, sizes slowest.
        assert_eq!((specs[0].k, specs[0].seed), (2, 0));
        assert_eq!((specs[1].k, specs[1].seed), (2, 1));
        assert_eq!((specs[2].k, specs[2].seed), (3, 0));
        assert_eq!((specs[3].k, specs[3].seed), (3, 1));
    }

    #[test]
    fn oversized_corruption_pairs_are_dropped_per_size() {
        let campaign = CampaignBuilder::new()
            .sizes([2, 4])
            .topologies([Topology::FullyConnected])
            .auth_modes([AuthMode::Authenticated])
            .corruptions([(0, 0), (3, 3)])
            .adversaries([AdversarySpec::Crash])
            .build();
        // (3, 3) is invalid at k = 2 but valid at k = 4.
        assert_eq!(campaign.len(), 3);
    }

    #[test]
    fn skip_unsolvable_prunes_the_grid() {
        let all = CampaignBuilder::new()
            .sizes([3])
            .topologies([Topology::FullyConnected])
            .auth_modes([AuthMode::Unauthenticated])
            .corruptions([(1, 1)])
            .adversaries([AdversarySpec::Crash])
            .build();
        assert_eq!(all.len(), 1); // kept, even though Theorem 2 rules it out
        let pruned = CampaignBuilder::new()
            .sizes([3])
            .topologies([Topology::FullyConnected])
            .auth_modes([AuthMode::Unauthenticated])
            .corruptions([(1, 1)])
            .adversaries([AdversarySpec::Crash])
            .skip_unsolvable(true)
            .build();
        assert!(pruned.is_empty());
    }

    #[test]
    fn corruption_grid_covers_the_square() {
        let campaign = CampaignBuilder::new()
            .sizes([4])
            .topologies([Topology::FullyConnected])
            .auth_modes([AuthMode::Authenticated])
            .corruption_grid(1)
            .adversaries([AdversarySpec::Crash])
            .build();
        let pairs: Vec<(usize, usize)> =
            campaign.specs().iter().map(|s| (s.t_l, s.t_r)).collect();
        assert_eq!(pairs, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn from_specs_keeps_the_given_order() {
        let campaign = CampaignBuilder::new().build();
        let reversed: Vec<ScenarioSpec> = campaign.specs().iter().rev().copied().collect();
        let explicit = Campaign::from_specs(reversed.clone());
        assert_eq!(explicit.specs(), &reversed[..]);
    }
}
