//! The multi-threaded campaign executor.
//!
//! Workers are `std::thread` scoped threads over a shared work queue (an atomic cursor
//! into the campaign's canonical work list). Every result is keyed by its index in
//! that list and merged back in canonical order after the workers join, so the
//! aggregated [`CampaignReport`] — and everything exported from it — is **bit-identical
//! regardless of the thread count** or of which worker happened to run which cell.
//!
//! The thread count comes from (in order of precedence) [`Executor::threads`], the
//! `BSM_THREADS` environment variable, and the machine's available parallelism.

use crate::campaign::Campaign;
use crate::grid::{ScenarioSpec, ShardPlan};
use crate::progress::Progress;
use crate::report::{CampaignReport, CellOutcome, CellRecord, CellStats, ExecutionStats, Totals};
use crate::telemetry::CellTelemetry;
use bsm_core::solvability::{characterize, Solvability};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

/// Name of the environment variable that overrides the default worker-thread count.
pub const THREADS_ENV: &str = "BSM_THREADS";

/// Runs campaigns (and arbitrary order-preserving parallel maps) on a worker pool.
#[derive(Debug, Clone)]
pub struct Executor {
    threads: usize,
    progress: Progress,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor {
    /// Creates an executor with the default thread count: `BSM_THREADS` when set to a
    /// positive integer, otherwise the machine's available parallelism.
    pub fn new() -> Self {
        let threads = parse_threads(std::env::var(THREADS_ENV).ok().as_deref())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Self { threads, progress: Progress::Silent }
    }

    /// Overrides the worker-thread count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the progress reporter (default: silent).
    pub fn progress(mut self, progress: Progress) -> Self {
        self.progress = progress;
        self
    }

    /// The configured worker-thread count.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Runs every cell of `campaign` and aggregates the results in canonical order.
    ///
    /// Unsolvable cells are recorded (not errors); cells that fail to build or run are
    /// recorded as failed. The returned [`ExecutionStats`] carries the wall-clock side
    /// of the run and is intentionally not part of the deterministic report.
    pub fn run(&self, campaign: &Campaign) -> (CampaignReport, ExecutionStats) {
        let start = Instant::now();
        let cells = self.map(campaign.specs().to_vec(), run_cell);
        let stats = ExecutionStats {
            threads: self.threads.min(campaign.len()).max(1),
            scenarios: campaign.len(),
            elapsed: start.elapsed(),
        };
        (CampaignReport::new(cells), stats)
    }

    /// Runs every cell of `campaign` like [`run`](Self::run), additionally returning
    /// one [`CellTelemetry`] per cell, index-aligned with
    /// [`CampaignReport::cells`](crate::report::CampaignReport::cells).
    ///
    /// Telemetry is strictly a side channel: the report built here is identical to
    /// the one [`run`](Self::run) builds (the cells are the same values, produced by
    /// the same code path), so exports stay byte-identical with telemetry on or off.
    /// Each cell's crypto counters are attributed exactly via the worker thread's
    /// thread-local delta around that cell — correct under any thread count because
    /// a cell runs entirely on one worker.
    pub fn run_telemetry(
        &self,
        campaign: &Campaign,
    ) -> (CampaignReport, Vec<CellTelemetry>, ExecutionStats) {
        let start = Instant::now();
        let results = self.map(campaign.specs().to_vec(), run_cell_instrumented);
        let (cells, telemetry): (Vec<_>, Vec<_>) = results.into_iter().unzip();
        let stats = ExecutionStats {
            threads: self.threads.min(campaign.len()).max(1),
            scenarios: campaign.len(),
            elapsed: start.elapsed(),
        };
        (CampaignReport::new(cells), telemetry, stats)
    }

    /// Runs one shard of `campaign` (see [`Campaign::shard`]) and aggregates its slice
    /// of the results in canonical order.
    ///
    /// This is the distributed entry point: each process runs its own shard, exports
    /// the shard report, and [`CampaignReport::merge`] recombines the exports into the
    /// single-process report byte for byte.
    ///
    /// [`CampaignReport::merge`]: crate::report::CampaignReport::merge
    pub fn run_shard(
        &self,
        campaign: &Campaign,
        plan: ShardPlan,
    ) -> (CampaignReport, ExecutionStats) {
        self.run(&campaign.shard(plan))
    }

    /// Runs every cell of `campaign`, delivering each completed [`CellRecord`] to
    /// `sink` **in canonical order** and then dropping it — the full record vector is
    /// never materialized.
    ///
    /// This is the streaming counterpart of [`run`](Self::run) for campaigns too
    /// large to hold every record in memory: aggregate counters are folded into a
    /// rolling [`Totals`] (returned alongside the [`ExecutionStats`]), and the sink —
    /// typically a [`StreamingExporter`] — sees exactly the cell sequence
    /// [`CampaignReport::cells`] would contain, so a streamed export is byte-identical
    /// to the in-memory one.
    ///
    /// Workers run cells in parallel and complete them out of order; a reorder buffer
    /// holds cells finished ahead of the emission frontier, and a **bounded** channel
    /// applies backpressure: when the sink (e.g. a slow disk) falls behind, workers
    /// block instead of piling completed cells into memory, so cells ahead of the
    /// frontier stay bounded by a small multiple of the worker count. (Only a
    /// pathologically slow *head* cell can grow the buffer beyond that — emission
    /// cannot pass it, but the cells behind it must be received to reach it.)
    ///
    /// [`StreamingExporter`]: crate::export::StreamingExporter
    /// [`CampaignReport::cells`]: crate::report::CampaignReport::cells
    ///
    /// # Errors
    ///
    /// The first error the sink returns aborts the run and is passed through;
    /// in-flight cells are finished and discarded.
    pub fn run_streaming<E>(
        &self,
        campaign: &Campaign,
        mut sink: impl FnMut(CellRecord) -> Result<(), E>,
    ) -> Result<(Totals, ExecutionStats), E> {
        let mut totals = Totals::default();
        let stats = self.stream_ordered(campaign, run_cell, |record| {
            totals.record(&record.outcome);
            sink(record)
        })?;
        Ok((totals, stats))
    }

    /// The streaming counterpart of [`run_telemetry`](Self::run_telemetry):
    /// [`run_streaming`](Self::run_streaming) where the sink also receives each
    /// cell's [`CellTelemetry`], in the same canonical order as the records.
    ///
    /// The telemetry is produced whether or not the sink keeps it, and nothing about
    /// the record sequence or the folded [`Totals`] depends on it — a sink that
    /// ignores its second argument emits exactly the artifacts
    /// [`run_streaming`](Self::run_streaming) would.
    ///
    /// # Errors
    ///
    /// The first error the sink returns, as in [`run_streaming`](Self::run_streaming).
    pub fn run_streaming_telemetry<E>(
        &self,
        campaign: &Campaign,
        mut sink: impl FnMut(CellRecord, CellTelemetry) -> Result<(), E>,
    ) -> Result<(Totals, ExecutionStats), E> {
        let mut totals = Totals::default();
        let stats =
            self.stream_ordered(campaign, run_cell_instrumented, |(record, telemetry)| {
                totals.record(&record.outcome);
                sink(record, telemetry)
            })?;
        Ok((totals, stats))
    }

    /// The generic ordered-streaming core behind
    /// [`run_streaming`](Self::run_streaming) and
    /// [`run_streaming_telemetry`](Self::run_streaming_telemetry): runs `job` on
    /// every spec across the worker pool and hands each result to `emit` **in
    /// canonical order**, never materializing the result vector.
    ///
    /// Workers run cells in parallel and complete them out of order; a reorder
    /// buffer holds results finished ahead of the emission frontier, and a
    /// **bounded** channel applies backpressure: when `emit` (e.g. a slow disk)
    /// falls behind, workers block instead of piling completed results into memory,
    /// so results ahead of the frontier stay bounded by a small multiple of the
    /// worker count. (Only a pathologically slow *head* cell can grow the buffer
    /// beyond that — emission cannot pass it, but the results behind it must be
    /// received to reach it.)
    fn stream_ordered<T: Send, E>(
        &self,
        campaign: &Campaign,
        job: impl Fn(ScenarioSpec) -> T + Sync,
        mut emit: impl FnMut(T) -> Result<(), E>,
    ) -> Result<ExecutionStats, E> {
        let start = Instant::now();
        let specs = campaign.specs();
        let total = specs.len();
        let workers = self.threads.min(total);
        let progress = self.progress;
        let cursor = AtomicUsize::new(0);
        let mut failure: Option<E> = None;

        std::thread::scope(|scope| {
            // Bounded: an emitter slower than the workers must throttle them, not
            // let completed results accumulate toward O(campaign) — the cap this
            // mode exists to remove. Two slots per worker keeps the pipeline full.
            let (tx, rx) = mpsc::sync_channel::<(usize, T)>(workers.max(1) * 2);
            let cursor = &cursor;
            let job = &job;
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= total {
                        break;
                    }
                    // A send error means the receiver gave up (emit failure): stop.
                    if tx.send((idx, job(specs[idx]))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // Reorder buffer: results completed ahead of the emission frontier wait
            // here; `next` is the index the canonical order emits next.
            let mut pending: BTreeMap<usize, T> = BTreeMap::new();
            let mut next = 0usize;
            'receive: for (idx, item) in rx {
                pending.insert(idx, item);
                while let Some(item) = pending.remove(&next) {
                    if let Err(err) = emit(item) {
                        failure = Some(err);
                        break 'receive;
                    }
                    next += 1;
                    progress.tick(next, total, start);
                }
            }
            // On failure the receiver is dropped here; workers exit on their next
            // send, and the scope joins them.
        });
        if let Some(err) = failure {
            return Err(err);
        }
        Ok(ExecutionStats {
            threads: self.threads.min(total).max(1),
            scenarios: total,
            elapsed: start.elapsed(),
        })
    }

    /// Runs one shard of `campaign` in streaming mode: [`run_streaming`] over the
    /// shard's slice of the canonical work list (see [`Campaign::shard`]).
    ///
    /// This is the distributed entry point for campaigns that do not fit in memory:
    /// each process streams its shard's cells into a
    /// [`StreamingExporter`](crate::export::StreamingExporter), and the coordinator
    /// recombines the shard streams with a k-way
    /// [`CellMerge`](crate::report::CellMerge) into an export byte-identical to the
    /// unsharded in-memory run.
    ///
    /// [`run_streaming`]: Self::run_streaming
    ///
    /// # Errors
    ///
    /// The first error the sink returns, as in [`run_streaming`](Self::run_streaming).
    pub fn run_shard_streaming<E>(
        &self,
        campaign: &Campaign,
        plan: ShardPlan,
        sink: impl FnMut(CellRecord) -> Result<(), E>,
    ) -> Result<(Totals, ExecutionStats), E> {
        self.run_streaming(&campaign.shard(plan), sink)
    }

    /// Runs one shard of `campaign` in streaming-telemetry mode:
    /// [`run_streaming_telemetry`](Self::run_streaming_telemetry) over the shard's
    /// slice of the canonical work list (see [`Campaign::shard`]).
    ///
    /// This is how `campaign_ctl run --stream --metrics` writes a `metrics.jsonl`
    /// sidecar next to each shard's `report.jsonl` without perturbing the report
    /// bytes.
    ///
    /// # Errors
    ///
    /// The first error the sink returns, as in [`run_streaming`](Self::run_streaming).
    pub fn run_shard_streaming_telemetry<E>(
        &self,
        campaign: &Campaign,
        plan: ShardPlan,
        sink: impl FnMut(CellRecord, CellTelemetry) -> Result<(), E>,
    ) -> Result<(Totals, ExecutionStats), E> {
        self.run_streaming_telemetry(&campaign.shard(plan), sink)
    }

    /// Runs an explicit contiguous sub-range of `campaign`'s canonical work list in
    /// streaming mode: [`run_streaming`] over [`Campaign::slice`].
    ///
    /// This is the resumption entry point: `campaign_ctl resume` salvages the cell
    /// prefix a crashed shard already exported, computes the un-run tail of the
    /// shard's range with [`ShardPlan::remainder`], and re-runs exactly that range —
    /// the emitted cells splice after the salvaged prefix into the sequence an
    /// uninterrupted [`run_shard_streaming`](Self::run_shard_streaming) would emit.
    ///
    /// [`run_streaming`]: Self::run_streaming
    ///
    /// # Errors
    ///
    /// The first error the sink returns, as in [`run_streaming`](Self::run_streaming).
    ///
    /// # Panics
    ///
    /// Panics when `range` is out of bounds for the work list (see
    /// [`Campaign::slice`]).
    pub fn run_range_streaming<E>(
        &self,
        campaign: &Campaign,
        range: std::ops::Range<usize>,
        sink: impl FnMut(CellRecord) -> Result<(), E>,
    ) -> Result<(Totals, ExecutionStats), E> {
        self.run_streaming(&campaign.slice(range), sink)
    }

    /// Applies `f` to every item on the worker pool, returning the results **in input
    /// order** (a deterministic parallel map).
    ///
    /// This is the engine's generic escape hatch: experiments whose jobs are not plain
    /// scenarios (e.g. the tailored impossibility attacks) get the same parallelism and
    /// ordering guarantee as campaigns.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let total = items.len();
        if total == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(total).max(1);
        // The shared work queue: an atomic cursor over the slotted items. Workers take
        // the item at their claimed index; results keep the index so the merge below
        // can restore canonical order no matter which worker finished first.
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let cursor = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let start = Instant::now();
        let f = &f;
        let slots = &slots;
        let cursor = &cursor;
        let done = &done;
        let progress = self.progress;

        let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            let idx = cursor.fetch_add(1, Ordering::Relaxed);
                            if idx >= total {
                                break;
                            }
                            let item = slots[idx]
                                .lock()
                                .expect("work slot lock is never poisoned")
                                .take()
                                .expect("each slot is claimed exactly once");
                            local.push((idx, f(item)));
                            let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                            progress.tick(finished, total, start);
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker threads do not panic"))
                .collect()
        });
        indexed.sort_unstable_by_key(|(idx, _)| *idx);
        indexed.into_iter().map(|(_, r)| r).collect()
    }
}

/// Runs one campaign cell: characterize, then execute the prescribed plan.
fn run_cell(spec: ScenarioSpec) -> CellRecord {
    run_cell_instrumented(spec).0
}

/// Runs one campaign cell and attributes its cost: the crypto-counter delta is the
/// *worker thread's* thread-local delta around the cell — exact under any thread
/// count, because each cell runs start to finish on the one thread that claimed it
/// (see [`bsm_crypto::counters::thread_snapshot`]).
///
/// The [`CellRecord`] half is exactly what [`run_cell`] produces; the instrumentation
/// reads state the run drops anyway (the thread counters, [`Metrics`] breakdown and
/// corrupted set of the outcome), so instrumented and plain runs build identical
/// records.
///
/// [`Metrics`]: bsm_net::Metrics
fn run_cell_instrumented(spec: ScenarioSpec) -> (CellRecord, CellTelemetry) {
    let before = bsm_crypto::counters::thread_snapshot();
    let start = Instant::now();
    let (outcome, telemetry) = match spec.setting() {
        Err(err) => (CellOutcome::Failed { message: err.to_string() }, None),
        Ok(setting) => match characterize(&setting) {
            Solvability::Unsolvable(imp) => (
                CellOutcome::Unsolvable { theorem: imp.theorem.to_string(), reason: imp.reason },
                None,
            ),
            Solvability::Solvable(plan) => {
                match spec.build_scenario().and_then(|s| s.run_with_plan(plan)) {
                    Ok(run) => {
                        let stats = CellStats {
                            plan: run.plan,
                            all_honest_decided: run.all_honest_decided,
                            violations: run.violations.len(),
                            slots: run.slots,
                            messages: run.metrics.total_messages(),
                            signatures: run.signatures,
                        };
                        let metrics = &run.metrics;
                        let telemetry = CellTelemetry {
                            spec,
                            status: "completed",
                            crypto: bsm_crypto::CounterSnapshot::default(), // filled below
                            messages: metrics.total_messages(),
                            delivered: metrics.delivered_messages,
                            dropped: metrics.dropped_by_faults,
                            delayed: metrics.delayed_by_faults,
                            rejected: metrics.rejected_by_topology,
                            slots: metrics.slots,
                            fanout: metrics.fanout_by_role(&run.corrupted),
                            wall_nanos: 0, // filled below
                        };
                        (CellOutcome::Completed(stats), Some(telemetry))
                    }
                    Err(err) => (CellOutcome::Failed { message: err.to_string() }, None),
                }
            }
        },
    };
    let crypto = bsm_crypto::counters::thread_snapshot() - before;
    let wall_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let status = match &outcome {
        CellOutcome::Completed(_) => "completed",
        CellOutcome::Unsolvable { .. } => "unsolvable",
        CellOutcome::Failed { .. } => "failed",
    };
    let telemetry = match telemetry {
        Some(partial) => CellTelemetry { crypto, wall_nanos, ..partial },
        None => CellTelemetry::without_run(spec, status, crypto, wall_nanos),
    };
    (CellRecord { spec, outcome }, telemetry)
}

/// Parses a `BSM_THREADS`-style value; `None` for unset, empty, zero or non-numeric.
fn parse_threads(value: Option<&str>) -> Option<usize> {
    value.and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignBuilder;
    use bsm_core::harness::AdversarySpec;
    use bsm_core::problem::AuthMode;
    use bsm_net::Topology;

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 2 ")), Some(2));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("-1")), None);
        assert_eq!(parse_threads(Some("lots")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn map_preserves_input_order() {
        let executor = Executor::new().threads(4);
        let doubled = executor.map((0..100usize).collect(), |n| n * 2);
        assert_eq!(doubled, (0..100usize).map(|n| n * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_on_empty_input_spawns_nothing() {
        let executor = Executor::new().threads(8);
        let out: Vec<usize> = executor.map(Vec::new(), |n: usize| n);
        assert!(out.is_empty());
    }

    #[test]
    fn thread_count_is_clamped_and_reported() {
        assert_eq!(Executor::new().threads(0).thread_count(), 1);
        assert_eq!(Executor::new().threads(3).thread_count(), 3);
    }

    #[test]
    fn campaign_reports_are_identical_across_thread_counts() {
        let campaign =
            CampaignBuilder::new().sizes([2, 3]).corruptions([(0, 0), (1, 1)]).seeds(0..2).build();
        let (serial, _) = Executor::new().threads(1).run(&campaign);
        let (parallel, stats) = Executor::new().threads(4).run(&campaign);
        assert_eq!(serial, parallel);
        assert_eq!(stats.scenarios, campaign.len());
    }

    #[test]
    fn shard_runs_cover_exactly_the_shard_slice() {
        let campaign = CampaignBuilder::new().sizes([2, 3]).seeds(0..2).build();
        let executor = Executor::new().threads(2);
        let (whole, _) = executor.run(&campaign);
        let mut rejoined = Vec::new();
        for index in 0..3 {
            let plan = ShardPlan::new(index, 3).unwrap();
            let (report, stats) = executor.run_shard(&campaign, plan);
            assert_eq!(stats.scenarios, plan.range(campaign.len()).len());
            rejoined.extend_from_slice(report.cells());
        }
        assert_eq!(rejoined, whole.cells(), "shard runs diverge from the whole run");
    }

    #[test]
    fn streaming_run_emits_the_in_memory_cell_sequence_without_retaining_it() {
        let campaign =
            CampaignBuilder::new().sizes([2, 3]).corruptions([(0, 0), (1, 1)]).seeds(0..2).build();
        let (reference, _) = Executor::new().threads(1).run(&campaign);
        let mut streamed = Vec::new();
        let (totals, stats) = Executor::new()
            .threads(4)
            .run_streaming(&campaign, |cell| {
                streamed.push(cell);
                Ok::<(), std::convert::Infallible>(())
            })
            .unwrap();
        assert_eq!(streamed, reference.cells());
        assert_eq!(totals, reference.totals());
        assert_eq!(stats.scenarios, campaign.len());
    }

    #[test]
    fn streaming_shard_runs_cover_exactly_the_shard_slice() {
        let campaign = CampaignBuilder::new().sizes([2, 3]).seeds(0..2).build();
        let executor = Executor::new().threads(2);
        let (whole, _) = executor.run(&campaign);
        let mut rejoined = Vec::new();
        let mut summed = Totals::default();
        for index in 0..3 {
            let plan = ShardPlan::new(index, 3).unwrap();
            let (totals, stats) = executor
                .run_shard_streaming(&campaign, plan, |cell| {
                    rejoined.push(cell);
                    Ok::<(), std::convert::Infallible>(())
                })
                .unwrap();
            assert_eq!(stats.scenarios, plan.range(campaign.len()).len());
            summed += totals;
        }
        assert_eq!(rejoined, whole.cells());
        assert_eq!(summed, whole.totals());
    }

    #[test]
    fn range_runs_splice_into_the_uninterrupted_shard_sequence() {
        let campaign = CampaignBuilder::new().sizes([2, 3]).seeds(0..2).build();
        let executor = Executor::new().threads(2);
        let plan = ShardPlan::new(1, 3).unwrap();
        let mut uninterrupted = Vec::new();
        executor
            .run_shard_streaming(&campaign, plan, |cell| {
                uninterrupted.push(cell);
                Ok::<(), std::convert::Infallible>(())
            })
            .unwrap();
        // Pretend the first `done` cells survived a crash; re-run only the tail.
        for done in 0..=uninterrupted.len() {
            let remainder = plan.remainder(campaign.len(), done);
            let mut spliced = uninterrupted[..done].to_vec();
            let (totals, stats) = executor
                .run_range_streaming(&campaign, remainder, |cell| {
                    spliced.push(cell);
                    Ok::<(), std::convert::Infallible>(())
                })
                .unwrap();
            assert_eq!(spliced, uninterrupted, "splice after {done} cells diverged");
            assert_eq!(stats.scenarios, uninterrupted.len() - done);
            let mut tail_totals = Totals::default();
            for cell in &uninterrupted[done..] {
                tail_totals.record(&cell.outcome);
            }
            assert_eq!(totals, tail_totals);
        }
    }

    #[test]
    fn streaming_run_aborts_on_the_first_sink_error() {
        let campaign = CampaignBuilder::new().sizes([3]).seeds(0..2).build();
        let mut emitted = 0usize;
        let err = Executor::new()
            .threads(2)
            .run_streaming(&campaign, |_| {
                emitted += 1;
                if emitted == 3 {
                    Err("sink full")
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        assert_eq!(err, "sink full");
        assert_eq!(emitted, 3, "no cell may be emitted after the sink fails");
    }

    #[test]
    fn streaming_run_of_an_empty_campaign_is_empty() {
        let campaign = Campaign::from_specs(Vec::new());
        let (totals, stats) = Executor::new()
            .threads(4)
            .run_streaming(&campaign, |_| Err("must not be called"))
            .unwrap();
        assert_eq!(totals, Totals::default());
        assert_eq!(stats.scenarios, 0);
    }

    #[test]
    fn run_cell_covers_all_three_outcomes() {
        let solvable = ScenarioSpec {
            k: 3,
            topology: Topology::FullyConnected,
            auth: AuthMode::Authenticated,
            t_l: 1,
            t_r: 1,
            adversary: AdversarySpec::Lying,
            faults: bsm_net::FaultSpec::NONE,
            seed: 4,
        };
        let record = run_cell(solvable);
        let stats = record.outcome.stats().expect("solvable cell completes");
        assert!(stats.messages > 0);
        assert!(stats.signatures > 0);

        let unsolvable = ScenarioSpec { auth: AuthMode::Unauthenticated, ..solvable };
        assert!(matches!(
            run_cell(unsolvable).outcome,
            CellOutcome::Unsolvable { ref theorem, .. } if theorem == "Theorem 2"
        ));

        let invalid = ScenarioSpec { t_l: 99, ..solvable };
        assert!(matches!(run_cell(invalid).outcome, CellOutcome::Failed { .. }));
    }
}
