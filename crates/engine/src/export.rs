//! Structured result export: hand-rolled JSON and CSV writers (no serde).
//!
//! Both document writers are pure functions of a [`CampaignReport`]: key order, number
//! formatting and row order are all fixed, so two runs of the same campaign — with any
//! thread counts — export byte-identical documents. Timing data never appears here by
//! construction (it lives in [`crate::report::ExecutionStats`]).
//!
//! # Streaming writers
//!
//! Campaigns too large to hold every [`CellRecord`] in memory use the streaming
//! writers instead of the in-memory [`to_json`]/[`to_csv`] pair:
//!
//! * [`StreamingExporter`] — the **shard side**: writes one [`cell_json`] line per
//!   completed cell (in strictly increasing coordinate order, enforced) and closes the
//!   stream with a rolling-[`Totals`] footer line. The format is JSON lines, read back
//!   lazily by [`crate::import::StreamingCells`].
//! * [`MergedJsonWriter`] — the **coordinator side**: given the merged totals up front
//!   (summed from shard footers), reproduces the [`to_json`] document byte for byte
//!   from a stream of merged cells, verifying the folded totals at
//!   [`finish`](MergedJsonWriter::finish).
//! * [`StreamingCsvWriter`] — reproduces the [`to_csv`] document byte for byte from
//!   the same merged stream (CSV has no totals, so no up-front knowledge is needed).
//!
//! All three enforce the canonical-coordinate-order invariant: cells must arrive in
//! strictly increasing [`ScenarioSpec`] order, which is what makes the streamed merge
//! byte-identical to the in-memory [`CampaignReport::merge`] path.
//!
//! # Crash-safe artifact writes
//!
//! Final artifacts (`report.json`, `report.csv`, `BENCH_engine.json`) must never be
//! observable half-written: a crashed process that leaves a truncated file at a
//! tracked path poisons every later `merge`/`diff`/`cmp` that globs it. [`AtomicFile`]
//! and [`atomic_write`] write to a sibling `<name>.tmp` file and atomically rename it
//! over the destination only on success — a crash at any instant leaves either the
//! old artifact or no artifact, never a truncated one. (The deliberately *incremental*
//! streamed `report.jsonl` is the one exception: it is written at a `.partial` path
//! and renamed into place when complete, so an interrupted stream is salvageable by
//! [`crate::import::StreamingCells::salvage`] instead of being mistaken for a finished
//! export.)
//!
//! [`CampaignReport::merge`]: crate::report::CampaignReport::merge

use crate::grid::ScenarioSpec;
use crate::report::{CampaignReport, CellOutcome, CellRecord, Totals};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// Escapes a string for inclusion in a JSON document (quotes, backslashes, control
/// characters; non-ASCII passes through as UTF-8).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Quotes a CSV field when it contains a delimiter, quote or newline (RFC 4180 style).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Writes the common JSON key/value pairs of one cell's coordinates (shared by the
/// report cell lines, the telemetry sidecar lines and the heartbeat's last
/// coordinate, so all three render coordinates identically).
pub(crate) fn spec_fields_json(s: &ScenarioSpec) -> String {
    format!(
        "\"k\": {}, \"topology\": \"{}\", \"auth\": \"{}\", \"t_l\": {}, \"t_r\": {}, \
         \"adversary\": \"{}\", \"faults\": \"{}\", \"seed\": {}",
        s.k, s.topology, s.auth, s.t_l, s.t_r, s.adversary, s.faults, s.seed
    )
}

/// Writes the common JSON key/value pairs of one cell's coordinates.
fn spec_json(record: &CellRecord) -> String {
    spec_fields_json(&record.spec)
}

/// Renders the aggregate counters as the JSON object used by [`to_json`]'s `totals`
/// field and by the streamed-export footer line (fixed key order, integers only).
pub fn totals_json(totals: &Totals) -> String {
    format!(
        "{{\"scenarios\": {}, \"completed\": {}, \"solved_clean\": {}, \
         \"unsolvable\": {}, \"failed\": {}, \"violations\": {}, \"slots\": {}, \
         \"messages\": {}, \"signatures\": {}}}",
        totals.scenarios,
        totals.completed,
        totals.solved_clean,
        totals.unsolvable,
        totals.failed,
        totals.violations,
        totals.slots,
        totals.messages,
        totals.signatures
    )
}

/// Renders one cell as the JSON object used by [`to_json`]'s `cells` array and, one
/// object per line, by the streamed shard export.
///
/// The object always carries the grid coordinates and a `status`; completed cells add
/// the outcome stats, unsolvable cells the theorem and reason, failed cells the error
/// message.
pub fn cell_json(cell: &CellRecord) -> String {
    let tail = match &cell.outcome {
        CellOutcome::Completed(stats) => format!(
            "\"plan\": \"{}\", \"all_honest_decided\": {}, \"violations\": {}, \
             \"slots\": {}, \"messages\": {}, \"signatures\": {}",
            json_escape(&stats.plan.to_string()),
            stats.all_honest_decided,
            stats.violations,
            stats.slots,
            stats.messages,
            stats.signatures
        ),
        CellOutcome::Unsolvable { theorem, reason } => {
            format!(
                "\"theorem\": \"{}\", \"reason\": \"{}\"",
                json_escape(theorem),
                json_escape(reason)
            )
        }
        CellOutcome::Failed { message } => {
            format!("\"message\": \"{}\"", json_escape(message))
        }
    };
    format!("{{{}, \"status\": \"{}\", {}}}", spec_json(cell), cell.outcome.status(), tail)
}

/// Renders a campaign report as a pretty-printed JSON document.
///
/// Layout: a `totals` object with the aggregate counters ([`totals_json`]), then a
/// `cells` array with one [`cell_json`] object per cell in canonical order. The
/// streaming counterpart — identical bytes without materializing the report — is
/// [`MergedJsonWriter`].
pub fn to_json(report: &CampaignReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    // The scenario header key comes first, and only when the report carries one, so
    // scenario-less reports render byte-identically to pre-scenario exports.
    if let Some(scenario) = report.scenario() {
        let _ = writeln!(out, "  \"scenario\": \"{}\",", json_escape(scenario));
    }
    let _ = writeln!(out, "  \"totals\": {},", totals_json(&report.totals()));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in report.cells().iter().enumerate() {
        let _ = writeln!(
            out,
            "    {}{}",
            cell_json(cell),
            if i + 1 == report.cells().len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// The CSV header row shared by every export.
pub const CSV_HEADER: &str =
    "k,topology,auth,t_l,t_r,adversary,faults,seed,status,plan,all_honest_decided,violations,slots,messages,signatures,detail";

/// Renders one cell as its [`to_csv`] row (no trailing newline).
///
/// Outcome-specific columns are left empty when they do not apply; `detail` carries
/// the impossibility theorem/reason or the failure message.
pub fn csv_row(cell: &CellRecord) -> String {
    let s = &cell.spec;
    let (plan, decided, violations, slots, messages, signatures, detail) = match &cell.outcome {
        CellOutcome::Completed(stats) => (
            stats.plan.to_string(),
            stats.all_honest_decided.to_string(),
            stats.violations.to_string(),
            stats.slots.to_string(),
            stats.messages.to_string(),
            stats.signatures.to_string(),
            String::new(),
        ),
        CellOutcome::Unsolvable { theorem, reason } => (
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            format!("{theorem}: {reason}"),
        ),
        CellOutcome::Failed { message } => (
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            message.clone(),
        ),
    };
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        s.k,
        csv_field(&s.topology.to_string()),
        csv_field(&s.auth.to_string()),
        s.t_l,
        s.t_r,
        csv_field(&s.adversary.to_string()),
        csv_field(&s.faults.to_string()),
        s.seed,
        cell.outcome.status(),
        csv_field(&plan),
        decided,
        violations,
        slots,
        messages,
        signatures,
        csv_field(&detail)
    )
}

/// Renders a campaign report as CSV: [`CSV_HEADER`] then one [`csv_row`] per cell in
/// canonical order. The streaming counterpart is [`StreamingCsvWriter`].
pub fn to_csv(report: &CampaignReport) -> String {
    let mut out = String::new();
    out.push_str(CSV_HEADER);
    out.push('\n');
    for cell in report.cells() {
        let _ = writeln!(out, "{}", csv_row(cell));
    }
    out
}

// ---------------------------------------------------------------------------
// Streaming writers
// ---------------------------------------------------------------------------

/// Errors of the streaming writers.
#[derive(Debug)]
pub enum StreamError {
    /// Writing to the underlying sink failed.
    Io(std::io::Error),
    /// A cell arrived at or before the previous cell's coordinates, breaking the
    /// strictly-increasing canonical order the streamed formats require. (Boxed to
    /// keep the `Err` variant small.)
    OutOfOrder {
        /// Coordinates of the previously written cell.
        previous: Box<ScenarioSpec>,
        /// Coordinates of the offending cell.
        next: Box<ScenarioSpec>,
    },
    /// At [`MergedJsonWriter::finish`], the totals folded from the streamed cells
    /// disagree with the totals declared up front — a shard footer lied, or a shard
    /// stream was silently truncated. (Boxed to keep the `Err` variant small.)
    TotalsMismatch {
        /// The totals the document header was written with.
        declared: Box<Totals>,
        /// The totals folded from the cells actually streamed.
        folded: Box<Totals>,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(err) => write!(f, "stream write failed: {err}"),
            StreamError::OutOfOrder { previous, next } => {
                write!(f, "cell out of canonical coordinate order: {next} after {previous}")
            }
            StreamError::TotalsMismatch { declared, folded } => write!(
                f,
                "streamed cells do not match the declared totals: declared [{declared}], \
                 folded [{folded}]"
            ),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StreamError {
    fn from(err: std::io::Error) -> Self {
        StreamError::Io(err)
    }
}

/// Enforces the strictly-increasing canonical coordinate order shared by every
/// streaming writer (including the telemetry sidecar exporter).
pub(crate) fn check_order(
    last: &mut Option<ScenarioSpec>,
    next: ScenarioSpec,
) -> Result<(), StreamError> {
    if let Some(previous) = *last {
        if next <= previous {
            return Err(StreamError::OutOfOrder {
                previous: Box::new(previous),
                next: Box::new(next),
            });
        }
    }
    *last = Some(next);
    Ok(())
}

/// The shard-side streaming exporter: coordinate-sorted [`cell_json`] lines plus a
/// rolling-[`Totals`] footer, written as cells complete.
///
/// This is what lets a shard run campaigns too large to hold every [`CellRecord`] in
/// memory: [`Executor::run_shard_streaming`] folds each completed cell into the
/// rolling totals, hands it to [`write_cell`](Self::write_cell), and drops it. The
/// resulting document is JSON lines — one cell object per line, byte-identical to the
/// objects in [`to_json`]'s `cells` array, closed by a `{"totals": {...}}` footer
/// line that [`crate::import::StreamingCells`] verifies against the streamed cells.
///
/// Cells must arrive in strictly increasing coordinate order (shard runs of built
/// campaigns always do); out-of-order writes are rejected so a malformed stream can
/// never be exported in the first place.
///
/// [`Executor::run_shard_streaming`]: crate::executor::Executor::run_shard_streaming
#[derive(Debug)]
pub struct StreamingExporter<W: Write> {
    writer: W,
    totals: Totals,
    last: Option<ScenarioSpec>,
    scenario: Option<String>,
}

impl<W: Write> StreamingExporter<W> {
    /// Starts a streamed export over `writer` (nothing is written until the first
    /// cell).
    pub fn new(writer: W) -> Self {
        Self { writer, totals: Totals::default(), last: None, scenario: None }
    }

    /// Tags the stream with a canonical scenario serialization, embedded in the
    /// totals footer so `merge`/`diff` can reject mixed-scenario artifacts. Without
    /// one, the footer stays byte-identical to the scenario-less format.
    pub fn set_scenario(&mut self, scenario: impl Into<String>) {
        self.scenario = Some(scenario.into());
    }

    /// Writes one cell line and folds it into the rolling totals.
    ///
    /// # Errors
    ///
    /// [`StreamError::OutOfOrder`] when `cell` does not follow the previous cell in
    /// canonical coordinate order; [`StreamError::Io`] on write failure.
    pub fn write_cell(&mut self, cell: &CellRecord) -> Result<(), StreamError> {
        check_order(&mut self.last, cell.spec)?;
        writeln!(self.writer, "{}", cell_json(cell))?;
        self.totals.record(&cell.outcome);
        Ok(())
    }

    /// The totals folded so far.
    pub fn totals(&self) -> Totals {
        self.totals
    }

    /// Flushes the underlying sink without footering the stream — the
    /// crash-injection hooks call this so an injected death leaves only whole
    /// cell lines on disk (the shape a real SIGKILL at a write boundary leaves).
    ///
    /// # Errors
    ///
    /// [`StreamError::Io`] on flush failure.
    pub fn flush(&mut self) -> Result<(), StreamError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Writes the totals footer, flushes the sink and returns the final totals.
    ///
    /// # Errors
    ///
    /// [`StreamError::Io`] on write or flush failure.
    pub fn finish(mut self) -> Result<Totals, StreamError> {
        match &self.scenario {
            Some(scenario) => writeln!(
                self.writer,
                "{{\"totals\": {}, \"scenario\": \"{}\"}}",
                totals_json(&self.totals),
                json_escape(scenario)
            )?,
            None => writeln!(self.writer, "{{\"totals\": {}}}", totals_json(&self.totals))?,
        }
        self.writer.flush()?;
        Ok(self.totals)
    }
}

/// The coordinator-side streaming writer: reproduces the [`to_json`] document byte
/// for byte from a stream of merged cells, without materializing a report.
///
/// The [`to_json`] layout puts the totals *before* the cells, so a streaming writer
/// must know them up front: the coordinator sums the per-shard footer totals (see
/// [`crate::import::footer_totals`]) and passes the sum to [`new`](Self::new), which
/// writes the document header. Every [`write_cell`](Self::write_cell) then appends
/// one cell in canonical order, and [`finish`](Self::finish) closes the document —
/// verifying that the totals folded from the streamed cells match the declared ones,
/// so a lying footer or a truncated shard stream cannot produce a silently wrong
/// document.
#[derive(Debug)]
pub struct MergedJsonWriter<W: Write> {
    writer: W,
    declared: Totals,
    folded: Totals,
    last: Option<ScenarioSpec>,
    /// The previous cell's rendered line, held back until we know whether a comma
    /// follows it (`to_json` separates cells with commas but leaves none after the
    /// last).
    pending: Option<String>,
}

impl<W: Write> MergedJsonWriter<W> {
    /// Writes the document header (`totals` first, then the opening of the `cells`
    /// array) and prepares for streamed cells.
    ///
    /// # Errors
    ///
    /// [`StreamError::Io`] on write failure.
    pub fn new(writer: W, totals: Totals) -> Result<Self, StreamError> {
        Self::with_scenario(writer, totals, None)
    }

    /// Like [`new`](Self::new), with an optional canonical scenario serialization
    /// rendered as the document's first key — matching [`to_json`] of a report tagged
    /// via [`CampaignReport::with_scenario`](crate::report::CampaignReport::with_scenario).
    ///
    /// # Errors
    ///
    /// [`StreamError::Io`] on write failure.
    pub fn with_scenario(
        mut writer: W,
        totals: Totals,
        scenario: Option<String>,
    ) -> Result<Self, StreamError> {
        writeln!(writer, "{{")?;
        if let Some(scenario) = &scenario {
            writeln!(writer, "  \"scenario\": \"{}\",", json_escape(scenario))?;
        }
        write!(writer, "  \"totals\": {},\n  \"cells\": [\n", totals_json(&totals))?;
        Ok(Self { writer, declared: totals, folded: Totals::default(), last: None, pending: None })
    }

    /// Appends one merged cell (strictly increasing coordinate order required).
    ///
    /// # Errors
    ///
    /// [`StreamError::OutOfOrder`] for order violations, [`StreamError::Io`] on write
    /// failure.
    pub fn write_cell(&mut self, cell: &CellRecord) -> Result<(), StreamError> {
        check_order(&mut self.last, cell.spec)?;
        if let Some(previous) = self.pending.take() {
            writeln!(self.writer, "{previous},")?;
        }
        self.pending = Some(format!("    {}", cell_json(cell)));
        self.folded.record(&cell.outcome);
        Ok(())
    }

    /// Closes the `cells` array and the document, verifies the folded totals against
    /// the declared ones, flushes and returns the totals.
    ///
    /// # Errors
    ///
    /// [`StreamError::TotalsMismatch`] when the streamed cells do not add up to the
    /// declared totals (the written document is invalid and should be discarded);
    /// [`StreamError::Io`] on write or flush failure.
    pub fn finish(mut self) -> Result<Totals, StreamError> {
        if let Some(previous) = self.pending.take() {
            writeln!(self.writer, "{previous}")?;
        }
        write!(self.writer, "  ]\n}}\n")?;
        self.writer.flush()?;
        if self.declared != self.folded {
            return Err(StreamError::TotalsMismatch {
                declared: Box::new(self.declared),
                folded: Box::new(self.folded),
            });
        }
        Ok(self.folded)
    }
}

/// Streaming counterpart of [`to_csv`]: the header row at construction, then one
/// [`csv_row`] per cell in canonical order — byte-identical to the in-memory export.
///
/// CSV carries no totals, so unlike [`MergedJsonWriter`] nothing needs to be known up
/// front.
#[derive(Debug)]
pub struct StreamingCsvWriter<W: Write> {
    writer: W,
    last: Option<ScenarioSpec>,
}

impl<W: Write> StreamingCsvWriter<W> {
    /// Writes the [`CSV_HEADER`] row and prepares for streamed cells.
    ///
    /// # Errors
    ///
    /// [`StreamError::Io`] on write failure.
    pub fn new(mut writer: W) -> Result<Self, StreamError> {
        writeln!(writer, "{CSV_HEADER}")?;
        Ok(Self { writer, last: None })
    }

    /// Appends one cell row (strictly increasing coordinate order required).
    ///
    /// # Errors
    ///
    /// [`StreamError::OutOfOrder`] for order violations, [`StreamError::Io`] on write
    /// failure.
    pub fn write_cell(&mut self, cell: &CellRecord) -> Result<(), StreamError> {
        check_order(&mut self.last, cell.spec)?;
        writeln!(self.writer, "{}", csv_row(cell))?;
        Ok(())
    }

    /// Flushes the sink.
    ///
    /// # Errors
    ///
    /// [`StreamError::Io`] on flush failure.
    pub fn finish(mut self) -> Result<(), StreamError> {
        self.writer.flush()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Crash-safe artifact writes (temp file + atomic rename)
// ---------------------------------------------------------------------------

/// The sibling temp path `AtomicFile` stages its bytes at: `<dest>.tmp` in the same
/// directory (same filesystem, so the final `rename` is atomic).
fn staging_path(dest: &Path) -> PathBuf {
    let mut name = dest.file_name().map_or_else(std::ffi::OsString::new, |n| n.to_os_string());
    name.push(".tmp");
    dest.with_file_name(name)
}

/// A crash-safe file writer: bytes go to a sibling `<dest>.tmp` file, and only
/// [`persist`](Self::persist) moves them to the destination — with an atomic rename,
/// after a flush and fsync.
///
/// A process that crashes (or errors out) mid-write therefore never leaves a
/// truncated file at the tracked destination path: dropping an unpersisted
/// `AtomicFile` removes the temp file, and a hard kill leaves only `<dest>.tmp`,
/// which the next writer truncates and reuses. This is the write discipline behind
/// every final campaign artifact (`report.json`, `report.csv`, `BENCH_engine.json`);
/// see [`atomic_write`] for the one-shot convenience form.
///
/// The writer is buffered internally; wrap a `&mut AtomicFile` in a streaming writer
/// (e.g. [`StreamingCsvWriter`]) and call [`persist`](Self::persist) after the
/// writer's `finish`.
#[derive(Debug)]
pub struct AtomicFile {
    /// `None` once persisted (disarms the Drop cleanup).
    writer: Option<BufWriter<File>>,
    staging: PathBuf,
    dest: PathBuf,
}

impl AtomicFile {
    /// Creates (truncating any stale leftover) the staging file for `dest`.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] creating `<dest>.tmp`.
    pub fn create(dest: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dest = dest.into();
        let staging = staging_path(&dest);
        let file = File::create(&staging)?;
        Ok(Self { writer: Some(BufWriter::new(file)), staging, dest })
    }

    /// The destination path the staged bytes will land at.
    pub fn dest(&self) -> &Path {
        &self.dest
    }

    /// Flushes, fsyncs and atomically renames the staged file to the destination.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from the flush, sync or rename; the staging file is
    /// removed on failure, so no partial artifact survives either way.
    pub fn persist(mut self) -> std::io::Result<()> {
        let writer = self.writer.take().expect("persist is the only taker and consumes self");
        let result = (|| {
            let file = writer.into_inner().map_err(|err| err.into_error())?;
            file.sync_all()?;
            std::fs::rename(&self.staging, &self.dest)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&self.staging);
        }
        result
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.writer.as_mut().expect("writer present until persist").write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.writer.as_mut().expect("writer present until persist").flush()
    }
}

impl Drop for AtomicFile {
    /// Removes the staging file when the writer was dropped without
    /// [`persist`](Self::persist) — an error path never leaves debris behind.
    fn drop(&mut self) {
        if self.writer.take().is_some() {
            let _ = std::fs::remove_file(&self.staging);
        }
    }
}

/// Writes `contents` to `dest` crash-safely: staged at `<dest>.tmp`, fsynced, then
/// atomically renamed into place. The one-shot form of [`AtomicFile`].
///
/// # Errors
///
/// Any [`std::io::Error`] from the write, sync or rename; on failure neither a
/// truncated `dest` nor a leftover temp file remains.
pub fn atomic_write(dest: impl Into<PathBuf>, contents: impl AsRef<[u8]>) -> std::io::Result<()> {
    let mut file = AtomicFile::create(dest)?;
    file.write_all(contents.as_ref())?;
    file.persist()
}

/// The artifact names whose `<name>.tmp` staging siblings [`sweep_stale_tmp`] may
/// remove — exactly the destinations the engine publishes through [`AtomicFile`].
/// Anything else ending in `.tmp` is not ours and is never touched.
const SWEEPABLE_STAGING: &[&str] = &[
    "report.json",
    "report.csv",
    "report.jsonl",
    "metrics.jsonl",
    "progress.json",
    "supervise.json",
    "BENCH_engine.json",
    "fuzz.log",
];

/// Removes stale [`AtomicFile`] staging files (`<artifact>.tmp`) left in `dir` by
/// a SIGKILLed process.
///
/// The Drop/persist discipline cleans staging files on every *graceful* path, but
/// a hard kill leaves `<dest>.tmp` behind with no owner — and nothing truncates it
/// until (unless) the same artifact is written again. The supervisor sweeps a
/// shard's dir before every relaunch and after quarantine. Two guards keep the
/// sweep from ever eating live or foreign data: only the engine's own artifact
/// names are matched (the private `SWEEPABLE_STAGING` list), and only files last
/// modified at or
/// before `older_than` are removed (pass the *owning attempt's* launch time —
/// debris from a dead predecessor is always older, a successor's live staging
/// file never is). Returns the removed paths. A missing `dir` sweeps nothing.
///
/// # Errors
///
/// Any [`std::io::Error`] listing `dir` or removing a matched file.
pub fn sweep_stale_tmp(dir: &Path, older_than: SystemTime) -> std::io::Result<Vec<PathBuf>> {
    let mut removed = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(removed),
        Err(err) => return Err(err),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_suffix(".tmp") else { continue };
        if !SWEEPABLE_STAGING.contains(&stem) {
            continue;
        }
        let modified = entry.metadata()?.modified()?;
        if modified <= older_than {
            std::fs::remove_file(entry.path())?;
            removed.push(entry.path());
        }
    }
    removed.sort();
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignBuilder;
    use crate::executor::Executor;
    use crate::grid::ScenarioSpec;
    use crate::report::{CellRecord, CellStats};
    use bsm_core::harness::AdversarySpec;
    use bsm_core::problem::AuthMode;
    use bsm_core::solvability::ProtocolPlan;
    use bsm_matching::Side;
    use bsm_net::Topology;

    #[test]
    fn json_escaping_handles_quotes_and_control_characters() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        // Non-ASCII (the ΠbSM plan name) passes through unescaped.
        assert_eq!(json_escape("ΠbSM"), "ΠbSM");
    }

    #[test]
    fn csv_fields_are_quoted_only_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn exports_cover_every_outcome_shape() {
        let spec = ScenarioSpec {
            k: 3,
            topology: Topology::Bipartite,
            auth: AuthMode::Authenticated,
            t_l: 0,
            t_r: 3,
            adversary: AdversarySpec::Lying,
            faults: bsm_net::FaultSpec::NONE,
            seed: 1,
        };
        let cells = vec![
            CellRecord {
                spec,
                outcome: CellOutcome::Completed(CellStats {
                    plan: ProtocolPlan::BipartiteAuthLocal { committee_side: Side::Left },
                    all_honest_decided: true,
                    violations: 0,
                    slots: 9,
                    messages: 42,
                    signatures: 17,
                }),
            },
            CellRecord {
                spec,
                outcome: CellOutcome::Unsolvable {
                    theorem: "Theorem 6".into(),
                    reason: "both sides too corrupt".into(),
                },
            },
            CellRecord { spec, outcome: CellOutcome::Failed { message: "sim, error".into() } },
        ];
        let report = CampaignReport::new(cells);

        let json = to_json(&report);
        assert!(json.contains("\"scenarios\": 3"), "{json}");
        assert!(json.contains("\"status\": \"completed\""));
        assert!(json.contains("\"theorem\": \"Theorem 6\""));
        assert!(json.contains("\"message\": \"sim, error\""));
        assert!(json.contains("ΠbSM"));

        let csv = to_csv(&report);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], CSV_HEADER);
        assert!(lines[1].starts_with("3,bipartite,authenticated,0,3,lying,none,1,completed,"));
        assert!(lines[2].contains("unsolvable"));
        assert!(lines[3].contains("\"sim, error\""), "{csv}");
        // Every row has the same column count (quotes respected).
        assert!(lines[1].matches(',').count() >= CSV_HEADER.matches(',').count());
    }

    #[test]
    fn export_is_identical_across_thread_counts() {
        let campaign = CampaignBuilder::new().sizes([3]).corruptions([(1, 0)]).build();
        let (one, _) = Executor::new().threads(1).run(&campaign);
        let (four, _) = Executor::new().threads(4).run(&campaign);
        assert_eq!(to_json(&one), to_json(&four));
        assert_eq!(to_csv(&one), to_csv(&four));
    }

    fn small_report() -> CampaignReport {
        let campaign = CampaignBuilder::new().sizes([2, 3]).corruptions([(0, 0), (1, 1)]).build();
        Executor::new().threads(2).run(&campaign).0
    }

    #[test]
    fn streaming_exporter_writes_cell_lines_and_a_totals_footer() {
        let report = small_report();
        let mut buf = Vec::new();
        let mut exporter = StreamingExporter::new(&mut buf);
        for cell in report.cells() {
            exporter.write_cell(cell).unwrap();
        }
        assert_eq!(exporter.totals(), report.totals());
        let totals = exporter.finish().unwrap();
        assert_eq!(totals, report.totals());
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), report.cells().len() + 1);
        for (line, cell) in lines.iter().zip(report.cells()) {
            assert_eq!(*line, cell_json(cell));
        }
        let footer = lines.last().unwrap();
        assert_eq!(*footer, format!("{{\"totals\": {}}}", totals_json(&report.totals())));
    }

    #[test]
    fn streaming_writers_reject_out_of_order_and_duplicate_cells() {
        let report = small_report();
        let (a, b) = (&report.cells()[0], &report.cells()[1]);
        let mut exporter = StreamingExporter::new(Vec::new());
        exporter.write_cell(b).unwrap();
        let err = exporter.write_cell(a).unwrap_err();
        assert!(matches!(err, StreamError::OutOfOrder { .. }), "{err}");
        assert!(err.to_string().contains("out of canonical coordinate order"), "{err}");
        // A duplicate is an order violation too (strictly increasing required).
        let mut exporter = StreamingExporter::new(Vec::new());
        exporter.write_cell(a).unwrap();
        assert!(exporter.write_cell(a).is_err());
        let mut csv = StreamingCsvWriter::new(Vec::new()).unwrap();
        csv.write_cell(b).unwrap();
        assert!(csv.write_cell(a).is_err());
        let mut json = MergedJsonWriter::new(Vec::new(), report.totals()).unwrap();
        json.write_cell(b).unwrap();
        assert!(json.write_cell(a).is_err());
    }

    #[test]
    fn merged_json_writer_reproduces_to_json_byte_for_byte() {
        let report = small_report();
        let mut buf = Vec::new();
        let mut writer = MergedJsonWriter::new(&mut buf, report.totals()).unwrap();
        for cell in report.cells() {
            writer.write_cell(cell).unwrap();
        }
        assert_eq!(writer.finish().unwrap(), report.totals());
        assert_eq!(String::from_utf8(buf).unwrap(), to_json(&report));
    }

    #[test]
    fn merged_json_writer_handles_the_empty_report() {
        let empty = CampaignReport::new(Vec::new());
        let mut buf = Vec::new();
        let writer = MergedJsonWriter::new(&mut buf, empty.totals()).unwrap();
        writer.finish().unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), to_json(&empty));
    }

    #[test]
    fn merged_json_writer_detects_totals_mismatch_at_finish() {
        let report = small_report();
        // Declare the full totals but stream one cell short.
        let mut writer = MergedJsonWriter::new(Vec::new(), report.totals()).unwrap();
        for cell in &report.cells()[..report.cells().len() - 1] {
            writer.write_cell(cell).unwrap();
        }
        let err = writer.finish().unwrap_err();
        assert!(matches!(err, StreamError::TotalsMismatch { .. }), "{err}");
        assert!(err.to_string().contains("declared ["), "{err}");
    }

    #[test]
    fn streaming_csv_writer_reproduces_to_csv_byte_for_byte() {
        let report = small_report();
        let mut buf = Vec::new();
        let mut writer = StreamingCsvWriter::new(&mut buf).unwrap();
        for cell in report.cells() {
            writer.write_cell(cell).unwrap();
        }
        writer.finish().unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), to_csv(&report));
    }

    /// A scratch directory unique to the calling test (under the OS temp dir, so
    /// parallel test binaries never collide on relative paths).
    fn scratch_dir(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("bsm-engine-export-tests").join(test);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_lands_the_bytes_and_no_temp_file() {
        let dir = scratch_dir("atomic_write_lands");
        let dest = dir.join("report.json");
        atomic_write(&dest, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&dest).unwrap(), "first");
        // Overwrite is atomic too: the old artifact is replaced, never truncated.
        atomic_write(&dest, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&dest).unwrap(), "second");
        assert!(!staging_path(&dest).exists(), "staging file must not survive persist");
    }

    #[test]
    fn unpersisted_atomic_file_leaves_neither_dest_nor_temp() {
        let dir = scratch_dir("atomic_drop_cleans");
        let dest = dir.join("report.csv");
        {
            let mut file = AtomicFile::create(&dest).unwrap();
            assert_eq!(file.dest(), dest.as_path());
            file.write_all(b"half a row").unwrap();
            file.flush().unwrap();
            assert!(staging_path(&dest).exists(), "bytes are staged before persist");
            // Dropped here without persist — simulates the error path of a writer.
        }
        assert!(!dest.exists(), "an unpersisted write must not create the destination");
        assert!(!staging_path(&dest).exists(), "drop must remove the staging file");
    }

    #[test]
    fn sweep_removes_crash_leftovers_but_not_drop_cleaned_or_foreign_files() {
        let dir = scratch_dir("sweep_stale_tmp");
        // Graceful path: Drop already cleaned the staging file — nothing to sweep.
        {
            let mut file = AtomicFile::create(dir.join("report.csv")).unwrap();
            file.write_all(b"half a row").unwrap();
        }
        assert_eq!(sweep_stale_tmp(&dir, SystemTime::now()).unwrap(), Vec::<PathBuf>::new());
        // Crash path: a SIGKILL leaves <dest>.tmp behind with no owner.
        std::fs::write(dir.join("report.csv.tmp"), "orphaned staging").unwrap();
        std::fs::write(dir.join("progress.json.tmp"), "{").unwrap();
        // Never touched: live salvage data, foreign temp files, real artifacts.
        std::fs::write(dir.join("report.jsonl.partial"), "salvageable").unwrap();
        std::fs::write(dir.join("notes.tmp"), "not ours").unwrap();
        std::fs::write(dir.join("report.json"), "real artifact").unwrap();
        // A cutoff in the past removes nothing (a live successor's staging file
        // is always newer than the attempt that owns the sweep).
        let past = SystemTime::UNIX_EPOCH;
        assert_eq!(sweep_stale_tmp(&dir, past).unwrap(), Vec::<PathBuf>::new());
        assert!(dir.join("report.csv.tmp").exists());
        let removed = sweep_stale_tmp(&dir, SystemTime::now()).unwrap();
        assert_eq!(removed, vec![dir.join("progress.json.tmp"), dir.join("report.csv.tmp")]);
        assert!(!dir.join("report.csv.tmp").exists());
        assert!(!dir.join("progress.json.tmp").exists());
        assert!(dir.join("report.jsonl.partial").exists(), "salvage data survives");
        assert!(dir.join("notes.tmp").exists(), "unknown .tmp names are not ours");
        assert!(dir.join("report.json").exists());
        // A missing directory sweeps nothing instead of erroring.
        let gone = dir.join("no-such-subdir");
        assert_eq!(sweep_stale_tmp(&gone, SystemTime::now()).unwrap(), Vec::<PathBuf>::new());
    }

    #[test]
    fn atomic_file_backs_the_streaming_writers() {
        let report = small_report();
        let dir = scratch_dir("atomic_streaming_csv");
        let dest = dir.join("report.csv");
        let mut file = AtomicFile::create(&dest).unwrap();
        let mut writer = StreamingCsvWriter::new(&mut file).unwrap();
        for cell in report.cells() {
            writer.write_cell(cell).unwrap();
        }
        writer.finish().unwrap();
        file.persist().unwrap();
        assert_eq!(std::fs::read_to_string(&dest).unwrap(), to_csv(&report));
    }
}
