//! Structured result export: hand-rolled JSON and CSV writers (no serde).
//!
//! Both writers are pure functions of a [`CampaignReport`]: key order, number
//! formatting and row order are all fixed, so two runs of the same campaign — with any
//! thread counts — export byte-identical documents. Timing data never appears here by
//! construction (it lives in [`crate::report::ExecutionStats`]).

use crate::report::{CampaignReport, CellOutcome, CellRecord};
use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON document (quotes, backslashes, control
/// characters; non-ASCII passes through as UTF-8).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Quotes a CSV field when it contains a delimiter, quote or newline (RFC 4180 style).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Writes the common JSON key/value pairs of one cell's coordinates.
fn spec_json(record: &CellRecord) -> String {
    let s = &record.spec;
    format!(
        "\"k\": {}, \"topology\": \"{}\", \"auth\": \"{}\", \"t_l\": {}, \"t_r\": {}, \
         \"adversary\": \"{}\", \"seed\": {}",
        s.k, s.topology, s.auth, s.t_l, s.t_r, s.adversary, s.seed
    )
}

/// Renders a campaign report as a pretty-printed JSON document.
///
/// Layout: a `totals` object with the aggregate counters, then a `cells` array with
/// one object per cell in canonical order. Cell objects always carry the grid
/// coordinates and a `status`; completed cells add the outcome stats, unsolvable cells
/// the theorem and reason, failed cells the error message.
pub fn to_json(report: &CampaignReport) -> String {
    let totals = report.totals();
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"totals\": {{\"scenarios\": {}, \"completed\": {}, \"solved_clean\": {}, \
         \"unsolvable\": {}, \"failed\": {}, \"violations\": {}, \"slots\": {}, \
         \"messages\": {}, \"signatures\": {}}},",
        totals.scenarios,
        totals.completed,
        totals.solved_clean,
        totals.unsolvable,
        totals.failed,
        totals.violations,
        totals.slots,
        totals.messages,
        totals.signatures
    );
    out.push_str("  \"cells\": [\n");
    for (i, cell) in report.cells().iter().enumerate() {
        let tail = match &cell.outcome {
            CellOutcome::Completed(stats) => format!(
                "\"plan\": \"{}\", \"all_honest_decided\": {}, \"violations\": {}, \
                 \"slots\": {}, \"messages\": {}, \"signatures\": {}",
                json_escape(&stats.plan.to_string()),
                stats.all_honest_decided,
                stats.violations,
                stats.slots,
                stats.messages,
                stats.signatures
            ),
            CellOutcome::Unsolvable { theorem, reason } => format!(
                "\"theorem\": \"{}\", \"reason\": \"{}\"",
                json_escape(theorem),
                json_escape(reason)
            ),
            CellOutcome::Failed { message } => {
                format!("\"message\": \"{}\"", json_escape(message))
            }
        };
        let _ = writeln!(
            out,
            "    {{{}, \"status\": \"{}\", {}}}{}",
            spec_json(cell),
            cell.outcome.status(),
            tail,
            if i + 1 == report.cells().len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// The CSV header row shared by every export.
pub const CSV_HEADER: &str =
    "k,topology,auth,t_l,t_r,adversary,seed,status,plan,all_honest_decided,violations,slots,messages,signatures,detail";

/// Renders a campaign report as CSV: [`CSV_HEADER`] then one row per cell in
/// canonical order. Outcome-specific columns are left empty when they do not apply;
/// `detail` carries the impossibility theorem/reason or the failure message.
pub fn to_csv(report: &CampaignReport) -> String {
    let mut out = String::new();
    out.push_str(CSV_HEADER);
    out.push('\n');
    for cell in report.cells() {
        let s = &cell.spec;
        let (plan, decided, violations, slots, messages, signatures, detail) = match &cell.outcome {
            CellOutcome::Completed(stats) => (
                stats.plan.to_string(),
                stats.all_honest_decided.to_string(),
                stats.violations.to_string(),
                stats.slots.to_string(),
                stats.messages.to_string(),
                stats.signatures.to_string(),
                String::new(),
            ),
            CellOutcome::Unsolvable { theorem, reason } => (
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                format!("{theorem}: {reason}"),
            ),
            CellOutcome::Failed { message } => (
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                message.clone(),
            ),
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            s.k,
            csv_field(&s.topology.to_string()),
            csv_field(&s.auth.to_string()),
            s.t_l,
            s.t_r,
            csv_field(&s.adversary.to_string()),
            s.seed,
            cell.outcome.status(),
            csv_field(&plan),
            decided,
            violations,
            slots,
            messages,
            signatures,
            csv_field(&detail)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignBuilder;
    use crate::executor::Executor;
    use crate::grid::ScenarioSpec;
    use crate::report::{CellRecord, CellStats};
    use bsm_core::harness::AdversarySpec;
    use bsm_core::problem::AuthMode;
    use bsm_core::solvability::ProtocolPlan;
    use bsm_matching::Side;
    use bsm_net::Topology;

    #[test]
    fn json_escaping_handles_quotes_and_control_characters() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        // Non-ASCII (the ΠbSM plan name) passes through unescaped.
        assert_eq!(json_escape("ΠbSM"), "ΠbSM");
    }

    #[test]
    fn csv_fields_are_quoted_only_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn exports_cover_every_outcome_shape() {
        let spec = ScenarioSpec {
            k: 3,
            topology: Topology::Bipartite,
            auth: AuthMode::Authenticated,
            t_l: 0,
            t_r: 3,
            adversary: AdversarySpec::Lying,
            seed: 1,
        };
        let cells = vec![
            CellRecord {
                spec,
                outcome: CellOutcome::Completed(CellStats {
                    plan: ProtocolPlan::BipartiteAuthLocal { committee_side: Side::Left },
                    all_honest_decided: true,
                    violations: 0,
                    slots: 9,
                    messages: 42,
                    signatures: 17,
                }),
            },
            CellRecord {
                spec,
                outcome: CellOutcome::Unsolvable {
                    theorem: "Theorem 6".into(),
                    reason: "both sides too corrupt".into(),
                },
            },
            CellRecord { spec, outcome: CellOutcome::Failed { message: "sim, error".into() } },
        ];
        let report = CampaignReport::new(cells);

        let json = to_json(&report);
        assert!(json.contains("\"scenarios\": 3"), "{json}");
        assert!(json.contains("\"status\": \"completed\""));
        assert!(json.contains("\"theorem\": \"Theorem 6\""));
        assert!(json.contains("\"message\": \"sim, error\""));
        assert!(json.contains("ΠbSM"));

        let csv = to_csv(&report);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], CSV_HEADER);
        assert!(lines[1].starts_with("3,bipartite,authenticated,0,3,lying,1,completed,"));
        assert!(lines[2].contains("unsolvable"));
        assert!(lines[3].contains("\"sim, error\""), "{csv}");
        // Every row has the same column count (quotes respected).
        assert!(lines[1].matches(',').count() >= CSV_HEADER.matches(',').count());
    }

    #[test]
    fn export_is_identical_across_thread_counts() {
        let campaign = CampaignBuilder::new().sizes([3]).corruptions([(1, 0)]).build();
        let (one, _) = Executor::new().threads(1).run(&campaign);
        let (four, _) = Executor::new().threads(4).run(&campaign);
        assert_eq!(to_json(&one), to_json(&four));
        assert_eq!(to_csv(&one), to_csv(&four));
    }
}
