//! Structured result import: a hand-rolled JSON reader for the [`crate::export`]
//! format (no serde).
//!
//! [`from_json`] is the inverse of [`crate::export::to_json`]: it parses an exported
//! campaign document back into a [`CampaignReport`], reconstructing every
//! [`CellRecord`] — grid coordinates, outcome shape and all outcome fields. This is
//! what makes campaigns *shardable across processes*: each shard exports its report as
//! JSON, and the merge step imports the shard documents and recombines them with
//! [`CampaignReport::merge`] into a report byte-identical to a single-process run.
//!
//! The reader accepts any JSON that the writer can produce (plus insignificant
//! whitespace and reordered keys) and rejects everything else with a positioned
//! [`ImportError`]. Totals in the document are *verified* against the cells rather
//! than trusted, so a hand-edited or truncated document cannot smuggle in
//! inconsistent aggregates.
//!
//! # Streaming import
//!
//! Streamed shard exports (JSON lines written by [`crate::export::StreamingExporter`])
//! are read back with [`StreamingCells`], an iterator that parses one cell per line
//! without ever loading the whole document — the lazy per-shard cell source the k-way
//! [`crate::report::CellMerge`] runs over. The totals footer closing the stream is
//! verified against the cells actually yielded, and [`footer_totals`] reads just that
//! footer (one O(1)-memory pass) so a merge coordinator can pre-compute the merged
//! totals before streaming a single cell.
//!
//! # Crash salvage
//!
//! A shard process that dies mid-run leaves a truncated, footerless `report.jsonl`
//! behind. The strict reader above can only *reject* such a stream; the salvage read
//! mode — [`StreamingCells::salvage`], returning a [`SalvagedPrefix`] — instead stops
//! cleanly at the first broken line and recovers everything before it: the valid
//! ordered cell prefix, its folded [`Totals`] and the last-good coordinate. This is
//! the read path crash recovery is built on: `campaign_ctl resume` salvages the
//! prefix, re-runs only the missing tail of the shard's canonical range, and splices
//! the two back into a complete footered export byte-identical to an uninterrupted
//! run.

use crate::grid::ScenarioSpec;
use crate::report::{CampaignReport, CellOutcome, CellRecord, CellStats, Totals};
use bsm_core::harness::AdversarySpec;
use bsm_core::problem::AuthMode;
use bsm_core::solvability::ProtocolPlan;
use bsm_matching::Side;
use bsm_net::{FaultSpec, Topology};
use std::fmt;
use std::io::BufRead;

/// Errors produced while importing an exported campaign document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportError {
    /// The document is not well-formed JSON (of the subset the exporter emits).
    Syntax {
        /// Byte offset of the offending character.
        offset: usize,
        /// What the parser expected or found.
        message: String,
    },
    /// The document is valid JSON but does not match the export schema.
    Schema(String),
    /// Reading the underlying stream failed (I/O, not syntax).
    Io(String),
    /// A streamed (JSON lines) document broke the stream contract at a line.
    Stream {
        /// 1-based line number of the offending line (0: the failure is not tied to
        /// one line, e.g. a missing footer at end of stream).
        line: usize,
        /// What went wrong, including any nested parse error.
        message: String,
    },
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Syntax { offset, message } => {
                write!(f, "JSON syntax error at byte {offset}: {message}")
            }
            ImportError::Schema(message) => write!(f, "campaign schema error: {message}"),
            ImportError::Io(message) => write!(f, "stream read failed: {message}"),
            ImportError::Stream { line: 0, message } => {
                write!(f, "streamed campaign error: {message}")
            }
            ImportError::Stream { line, message } => {
                write!(f, "streamed campaign error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ImportError {}

/// A parsed JSON value of the subset the exporter emits (no floats, no null).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Value {
    Object(Vec<(String, Value)>),
    Array(Vec<Value>),
    String(String),
    Number(u64),
    Bool(bool),
}

impl Value {
    pub(crate) fn type_name(&self) -> &'static str {
        match self {
            Value::Object(_) => "object",
            Value::Array(_) => "array",
            Value::String(_) => "string",
            Value::Number(_) => "number",
            Value::Bool(_) => "boolean",
        }
    }
}

/// A recursive-descent parser over the document bytes.
pub(crate) struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(text: &'a str) -> Self {
        Self { bytes: text.as_bytes(), pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ImportError {
        ImportError::Syntax { offset: self.pos, message: message.into() }
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), ImportError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", byte as char)))
        }
    }

    pub(crate) fn parse_document(&mut self) -> Result<Value, ImportError> {
        let value = self.parse_value()?;
        self.skip_whitespace();
        if self.pos != self.bytes.len() {
            return Err(self.error("trailing content after the document"));
        }
        Ok(value)
    }

    fn parse_value(&mut self) -> Result<Value, ImportError> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') | Some(b'f') => self.parse_bool(),
            Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected character {:?}", other as char))),
            None => Err(self.error("unexpected end of document")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, ImportError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key_offset = self.pos;
            let key = self.parse_string()?;
            // Duplicate keys are well-formed JSON but the writer never emits them, and
            // silently keeping the first match would let `"seed": 0, "seed": 5`
            // import as 0 — reject them with the offending position instead.
            if fields.iter().any(|(existing, _)| *existing == key) {
                return Err(ImportError::Schema(format!(
                    "duplicate object key {key:?} at byte {key_offset}"
                )));
            }
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ImportError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_bool(&mut self) -> Result<Value, ImportError> {
        for (literal, value) in [("true", true), ("false", false)] {
            if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
                self.pos += literal.len();
                return Ok(Value::Bool(value));
            }
        }
        Err(self.error("expected 'true' or 'false'"))
    }

    fn parse_number(&mut self) -> Result<Value, ImportError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E') | Some(b'-') | Some(b'+')) {
            return Err(self.error("only unsigned integers appear in campaign exports"));
        }
        let digits =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("digit range is ASCII");
        // The writer renders integers canonically, so `007` is something the writer
        // cannot produce — reject it rather than silently normalizing to 7.
        if digits.len() > 1 && digits.starts_with('0') {
            return Err(ImportError::Syntax {
                offset: start,
                message: format!("non-canonical integer with leading zeros: {digits}"),
            });
        }
        digits
            .parse::<u64>()
            .map(Value::Number)
            .map_err(|_| self.error(format!("integer out of range: {digits}")))
    }

    /// Parses a JSON string literal, decoding the escapes the exporter emits
    /// (`\" \\ \/ \n \r \t \b \f \uXXXX` including surrogate pairs).
    fn parse_string(&mut self) -> Result<String, ImportError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&byte) = rest.first() else {
                return Err(self.error("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    out.push(self.parse_escape()?);
                }
                0x00..=0x1f => {
                    return Err(self.error("unescaped control character in string"));
                }
                _ => {
                    // Consume one UTF-8 scalar (the document is a &str, so slicing on
                    // char boundaries is safe).
                    let text = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_escape(&mut self) -> Result<char, ImportError> {
        let Some(byte) = self.peek() else {
            return Err(self.error("unterminated escape"));
        };
        self.pos += 1;
        Ok(match byte {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'u' => {
                let high = self.parse_hex4()?;
                if (0xd800..0xdc00).contains(&high) {
                    // Surrogate pair: the writer never emits these today (non-ASCII
                    // passes through raw), but a conforming document may.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let low = self.parse_hex4()?;
                        if !(0xdc00..0xe000).contains(&low) {
                            return Err(self.error("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((high - 0xd800) << 10) + (low - 0xdc00);
                        char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))?
                    } else {
                        return Err(self.error("lone high surrogate"));
                    }
                } else {
                    char::from_u32(high).ok_or_else(|| self.error("invalid \\u escape"))?
                }
            }
            other => return Err(self.error(format!("unknown escape \\{}", other as char))),
        })
    }

    fn parse_hex4(&mut self) -> Result<u32, ImportError> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(self.error("truncated \\u escape"));
        };
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .filter(|h| h.bytes().all(|b| b.is_ascii_hexdigit()))
            .ok_or_else(|| self.error("non-hex \\u escape"))?;
        self.pos = end;
        Ok(u32::from_str_radix(hex, 16).expect("validated hex digits"))
    }
}

// ---------------------------------------------------------------------------
// Schema mapping: Value → CampaignReport
// ---------------------------------------------------------------------------

pub(crate) fn schema(message: impl Into<String>) -> ImportError {
    ImportError::Schema(message.into())
}

pub(crate) fn field<'v>(
    fields: &'v [(String, Value)],
    name: &str,
) -> Result<&'v Value, ImportError> {
    fields
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, value)| value)
        .ok_or_else(|| schema(format!("missing field {name:?}")))
}

pub(crate) fn as_object(value: &Value, what: &str) -> Result<Vec<(String, Value)>, ImportError> {
    match value {
        Value::Object(fields) => Ok(fields.clone()),
        other => Err(schema(format!("{what}: expected object, found {}", other.type_name()))),
    }
}

pub(crate) fn as_array(value: &Value, what: &str) -> Result<Vec<Value>, ImportError> {
    match value {
        Value::Array(items) => Ok(items.clone()),
        other => Err(schema(format!("{what}: expected array, found {}", other.type_name()))),
    }
}

pub(crate) fn number(fields: &[(String, Value)], name: &str) -> Result<u64, ImportError> {
    match field(fields, name)? {
        Value::Number(n) => Ok(*n),
        other => Err(schema(format!("{name}: expected number, found {}", other.type_name()))),
    }
}

pub(crate) fn usize_field(fields: &[(String, Value)], name: &str) -> Result<usize, ImportError> {
    usize::try_from(number(fields, name)?)
        .map_err(|_| schema(format!("{name}: value exceeds usize")))
}

pub(crate) fn string<'v>(
    fields: &'v [(String, Value)],
    name: &str,
) -> Result<&'v str, ImportError> {
    match field(fields, name)? {
        Value::String(s) => Ok(s),
        other => Err(schema(format!("{name}: expected string, found {}", other.type_name()))),
    }
}

pub(crate) fn boolean(fields: &[(String, Value)], name: &str) -> Result<bool, ImportError> {
    match field(fields, name)? {
        Value::Bool(b) => Ok(*b),
        other => Err(schema(format!("{name}: expected boolean, found {}", other.type_name()))),
    }
}

fn parse_topology(name: &str) -> Result<Topology, ImportError> {
    Topology::ALL
        .into_iter()
        .find(|t| t.name() == name)
        .ok_or_else(|| schema(format!("unknown topology {name:?}")))
}

fn parse_auth(name: &str) -> Result<AuthMode, ImportError> {
    AuthMode::ALL
        .into_iter()
        .find(|a| a.name() == name)
        .ok_or_else(|| schema(format!("unknown auth mode {name:?}")))
}

fn parse_adversary(name: &str) -> Result<AdversarySpec, ImportError> {
    AdversarySpec::ALL
        .into_iter()
        .find(|a| a.name() == name)
        .ok_or_else(|| schema(format!("unknown adversary {name:?}")))
}

/// Every plan the characterization can prescribe; matched against the rendered name
/// so the import stays in lockstep with [`ProtocolPlan`]'s `Display`.
const ALL_PLANS: [ProtocolPlan; 5] = [
    ProtocolPlan::CommitteeBroadcastBsm { committee_side: Side::Left },
    ProtocolPlan::CommitteeBroadcastBsm { committee_side: Side::Right },
    ProtocolPlan::DolevStrongBsm,
    ProtocolPlan::BipartiteAuthLocal { committee_side: Side::Left },
    ProtocolPlan::BipartiteAuthLocal { committee_side: Side::Right },
];

fn parse_plan(name: &str) -> Result<ProtocolPlan, ImportError> {
    ALL_PLANS
        .into_iter()
        .find(|p| p.to_string() == name)
        .ok_or_else(|| schema(format!("unknown protocol plan {name:?}")))
}

/// Parses the grid-coordinate fields shared by report cells, telemetry sidecar lines
/// and heartbeat documents into a [`ScenarioSpec`].
pub(crate) fn parse_spec(fields: &[(String, Value)]) -> Result<ScenarioSpec, ImportError> {
    Ok(ScenarioSpec {
        k: usize_field(fields, "k")?,
        topology: parse_topology(string(fields, "topology")?)?,
        auth: parse_auth(string(fields, "auth")?)?,
        t_l: usize_field(fields, "t_l")?,
        t_r: usize_field(fields, "t_r")?,
        adversary: parse_adversary(string(fields, "adversary")?)?,
        faults: string(fields, "faults")?
            .parse::<FaultSpec>()
            .map_err(|err| schema(err.to_string()))?,
        seed: number(fields, "seed")?,
    })
}

fn parse_cell(value: &Value) -> Result<CellRecord, ImportError> {
    let fields = as_object(value, "cell")?;
    let spec = parse_spec(&fields)?;
    let outcome = match string(&fields, "status")? {
        "completed" => CellOutcome::Completed(CellStats {
            plan: parse_plan(string(&fields, "plan")?)?,
            all_honest_decided: boolean(&fields, "all_honest_decided")?,
            violations: usize_field(&fields, "violations")?,
            slots: number(&fields, "slots")?,
            messages: number(&fields, "messages")?,
            signatures: number(&fields, "signatures")?,
        }),
        "unsolvable" => CellOutcome::Unsolvable {
            theorem: string(&fields, "theorem")?.to_string(),
            reason: string(&fields, "reason")?.to_string(),
        },
        "failed" => CellOutcome::Failed { message: string(&fields, "message")?.to_string() },
        other => return Err(schema(format!("unknown cell status {other:?}"))),
    };
    Ok(CellRecord { spec, outcome })
}

/// Parses a `totals` object's fields into a [`Totals`].
fn parse_totals(fields: &[(String, Value)]) -> Result<Totals, ImportError> {
    Ok(Totals {
        scenarios: usize_field(fields, "scenarios")?,
        completed: usize_field(fields, "completed")?,
        solved_clean: usize_field(fields, "solved_clean")?,
        unsolvable: usize_field(fields, "unsolvable")?,
        failed: usize_field(fields, "failed")?,
        violations: usize_field(fields, "violations")?,
        slots: number(fields, "slots")?,
        messages: number(fields, "messages")?,
        signatures: number(fields, "signatures")?,
    })
}

/// Verifies the document's `totals` object against the totals recomputed from the
/// imported cells — a tampered or truncated document fails loudly here.
fn verify_totals(fields: &[(String, Value)], recomputed: Totals) -> Result<(), ImportError> {
    let declared = parse_totals(fields)?;
    if declared != recomputed {
        return Err(schema(format!(
            "totals do not match the cells: declared [{declared}], recomputed [{recomputed}]"
        )));
    }
    Ok(())
}

/// Parses a document produced by [`crate::export::to_json`] back into the report.
///
/// Round-trip contract: `from_json(&to_json(&report))` reconstructs a report equal to
/// the original (`==`), and re-exporting it yields byte-identical JSON and CSV.
///
/// # Errors
///
/// [`ImportError::Syntax`] for malformed JSON, [`ImportError::Schema`] for well-formed
/// JSON that does not match the export layout (unknown axis names, missing fields,
/// totals inconsistent with the cells).
pub fn from_json(json: &str) -> Result<CampaignReport, ImportError> {
    let document = Parser::new(json).parse_document()?;
    let root = as_object(&document, "document root")?;
    let cells_value = match field(&root, "cells")? {
        Value::Array(items) => items.clone(),
        other => return Err(schema(format!("cells: expected array, found {}", other.type_name()))),
    };
    let cells = cells_value.iter().map(parse_cell).collect::<Result<Vec<_>, _>>()?;
    let mut report = CampaignReport::new(cells);
    // Reports exported from a declarative scenario file carry the canonical
    // scenario text as an optional root key; scenario-less documents omit it.
    if let Some((_, value)) = root.iter().find(|(key, _)| key == "scenario") {
        match value {
            Value::String(text) => report = report.with_scenario(text.clone()),
            other => {
                return Err(schema(format!(
                    "scenario: expected string, found {}",
                    other.type_name()
                )))
            }
        }
    }
    let totals_fields = as_object(field(&root, "totals")?, "totals")?;
    verify_totals(&totals_fields, report.totals())?;
    Ok(report)
}

// ---------------------------------------------------------------------------
// Streaming import (JSON lines)
// ---------------------------------------------------------------------------

/// What a parsed stream line turned out to be. A footer optionally carries the
/// canonical scenario text of the scenario file that produced the stream.
#[derive(Debug)]
enum StreamLine {
    Cell(CellRecord),
    Footer(Totals, Option<String>),
}

/// Parses one line of a streamed shard export: either a cell object or the
/// `{"totals": {...}}` footer (with an optional trailing `"scenario"` tag for
/// exports produced from a declarative scenario file).
fn parse_stream_line(text: &str) -> Result<StreamLine, ImportError> {
    let value = Parser::new(text).parse_document()?;
    let fields = as_object(&value, "stream line")?;
    match fields.as_slice() {
        [(key, totals_value)] if key == "totals" => {
            let totals_fields = as_object(totals_value, "totals")?;
            Ok(StreamLine::Footer(parse_totals(&totals_fields)?, None))
        }
        [(key, totals_value), (tag, tag_value)] if key == "totals" && tag == "scenario" => {
            let totals_fields = as_object(totals_value, "totals")?;
            let scenario = match tag_value {
                Value::String(text) => text.clone(),
                other => {
                    return Err(schema(format!(
                        "scenario: expected string, found {}",
                        other.type_name()
                    )))
                }
            };
            Ok(StreamLine::Footer(parse_totals(&totals_fields)?, Some(scenario)))
        }
        _ => Ok(StreamLine::Cell(parse_cell(&value)?)),
    }
}

/// A lazy cell iterator over a streamed shard export — the inverse of
/// [`crate::export::StreamingExporter`], reading one line at a time so a document of
/// any size is imported in constant memory.
///
/// The iterator yields `Ok(cell)` per cell line, in the strictly increasing canonical
/// coordinate order it verifies as it goes, and ends (`None`) only after a well-formed
/// totals footer whose counters match the cells actually streamed. Every contract
/// violation — unparsable line, out-of-order cell, truncated stream (EOF before the
/// footer, including a cut-off cell line), a footer disagreeing with the cells, or
/// content after the footer — is yielded as one `Err` carrying the line number, after
/// which the iterator fuses to `None`.
///
/// This is the per-shard cell source the streaming k-way merge
/// ([`crate::report::CellMerge`]) runs over.
#[derive(Debug)]
pub struct StreamingCells<R: BufRead> {
    reader: R,
    /// Line buffer reused across the whole stream (one allocation, not one per line).
    buf: String,
    line: usize,
    folded: Totals,
    last: Option<ScenarioSpec>,
    scenario: Option<String>,
    state: StreamState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamState {
    /// Still expecting cell lines (or the footer).
    Cells,
    /// Footer verified; the stream ended cleanly.
    Done,
    /// An error was yielded; the iterator is fused.
    Failed,
}

impl<R: BufRead> StreamingCells<R> {
    /// Starts streaming cells from `reader` (nothing is read until the first
    /// [`next`](Iterator::next)).
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            buf: String::new(),
            line: 0,
            folded: Totals::default(),
            last: None,
            scenario: None,
            state: StreamState::Cells,
        }
    }

    /// The totals folded from the cells yielded so far. After the iterator has ended
    /// without an error, these are the verified totals of the whole stream.
    pub fn totals(&self) -> Totals {
        self.folded
    }

    /// `true` once the totals footer has been read and verified.
    pub fn finished(&self) -> bool {
        self.state == StreamState::Done
    }

    /// The canonical scenario text carried by the footer, for streams exported from a
    /// declarative scenario file. `None` until the footer has been read, and for
    /// scenario-less streams.
    pub fn scenario(&self) -> Option<&str> {
        self.scenario.as_deref()
    }

    /// Fails the stream: fuses the iterator and yields `err`.
    fn fail(&mut self, err: ImportError) -> Option<Result<CellRecord, ImportError>> {
        self.state = StreamState::Failed;
        Some(Err(err))
    }

    /// A [`ImportError::Stream`] at the current line.
    fn stream_error(&self, message: impl Into<String>) -> ImportError {
        ImportError::Stream { line: self.line, message: message.into() }
    }

    /// Reads the next line into the reused buffer (`self.buf`); `Ok(false)` at EOF.
    fn read_line(&mut self) -> Result<bool, ImportError> {
        self.buf.clear();
        let read =
            self.reader.read_line(&mut self.buf).map_err(|err| ImportError::Io(err.to_string()))?;
        if read == 0 {
            return Ok(false);
        }
        self.line += 1;
        while self.buf.ends_with('\n') || self.buf.ends_with('\r') {
            self.buf.pop();
        }
        Ok(true)
    }
}

impl<R: BufRead> Iterator for StreamingCells<R> {
    type Item = Result<CellRecord, ImportError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.state != StreamState::Cells {
            return None;
        }
        match self.read_line() {
            Err(err) => return self.fail(err),
            Ok(false) => {
                return self.fail(ImportError::Stream {
                    line: 0,
                    message: "stream ended without a totals footer (truncated export?)".into(),
                });
            }
            Ok(true) => {}
        }
        if self.buf.trim().is_empty() {
            return self.fail(self.stream_error("blank line in cell stream"));
        }
        let parsed = match parse_stream_line(&self.buf) {
            Ok(parsed) => parsed,
            Err(err) => {
                let err = self.stream_error(err.to_string());
                return self.fail(err);
            }
        };
        match parsed {
            StreamLine::Footer(declared, scenario) => {
                if declared != self.folded {
                    let (folded, line) = (self.folded, self.line);
                    return self.fail(ImportError::Stream {
                        line,
                        message: format!(
                            "totals footer does not match the streamed cells: declared \
                             [{declared}], folded [{folded}]"
                        ),
                    });
                }
                // The footer must be the last line of the stream.
                loop {
                    match self.read_line() {
                        Err(err) => return self.fail(err),
                        Ok(false) => break,
                        Ok(true) if self.buf.trim().is_empty() => {}
                        Ok(true) => {
                            let err = self.stream_error("content after the totals footer");
                            return self.fail(err);
                        }
                    }
                }
                self.scenario = scenario;
                self.state = StreamState::Done;
                None
            }
            StreamLine::Cell(record) => {
                if let Some(previous) = self.last {
                    if record.spec <= previous {
                        let err = self.stream_error(format!(
                            "cells out of canonical coordinate order: {} after {previous}",
                            record.spec
                        ));
                        return self.fail(err);
                    }
                }
                self.last = Some(record.spec);
                self.folded.record(&record.outcome);
                Some(Ok(record))
            }
        }
    }
}

/// The salvageable prefix of a (possibly truncated) streamed shard export — what
/// [`StreamingCells::salvage`] recovers from a crashed run's `report.jsonl`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvagedPrefix {
    /// The valid cells before the first break, in canonical coordinate order.
    pub cells: Vec<CellRecord>,
    /// The totals folded from `cells` (*not* a footer claim — recomputed).
    pub totals: Totals,
    /// `true` when the stream ended with a verified footer: nothing was lost and
    /// `cells` is the complete export.
    pub complete: bool,
    /// Why salvage stopped before a verified footer (`None` when `complete`): the
    /// stream-contract violation at the first broken line, e.g. a cut-off cell, a
    /// missing footer, or a footer disagreeing with the cells.
    pub truncation: Option<String>,
}

impl SalvagedPrefix {
    /// The coordinates of the last salvaged cell — the resumption point. `None` when
    /// nothing was salvageable.
    pub fn last_coordinate(&self) -> Option<ScenarioSpec> {
        self.cells.last().map(|cell| cell.spec)
    }
}

impl<R: BufRead> StreamingCells<R> {
    /// Salvages the valid cell prefix of a (possibly truncated) streamed export.
    ///
    /// Where the strict iterator yields an error at the first broken line, salvage
    /// *stops cleanly* there instead: every cell before the break is returned, with
    /// its folded [`Totals`] and the last-good coordinate, and the break itself is
    /// recorded in [`SalvagedPrefix::truncation`]. An intact stream (footer present
    /// and verified) salvages completely: `complete` is `true` and `cells` is the
    /// whole export.
    ///
    /// Note that salvage trusts each *line*, not the stream: a stream whose middle
    /// was damaged (rather than its tail cut off) still salvages every parseable,
    /// in-order cell before the damage — callers resuming a run must verify the
    /// prefix against the canonical work list, which `campaign_ctl resume` does.
    ///
    /// # Errors
    ///
    /// Only [`ImportError::Io`]: a failing *reader* is an environment problem, not a
    /// truncated document, and salvaging a prefix of unknown completeness from it
    /// could silently lose cells.
    pub fn salvage(reader: R) -> Result<SalvagedPrefix, ImportError> {
        let mut stream = StreamingCells::new(reader);
        let mut cells = Vec::new();
        let mut truncation = None;
        for item in &mut stream {
            match item {
                Ok(cell) => cells.push(cell),
                Err(err @ ImportError::Io(_)) => return Err(err),
                Err(err) => {
                    truncation = Some(err.to_string());
                    break;
                }
            }
        }
        let complete = stream.finished();
        Ok(SalvagedPrefix { totals: stream.totals(), complete, cells, truncation })
    }
}

/// Reads just the totals footer of a streamed shard export — and the scenario tag it
/// carries, if any — in one constant-memory forward pass: cell lines are skipped
/// without being parsed (or allocated — two line buffers are reused across the whole
/// file), and only the last non-empty line is interpreted.
///
/// This is how a merge coordinator learns the merged totals *before* streaming any
/// cell: sum the footers of all shards, hand the sum to
/// [`crate::export::MergedJsonWriter::new`], and let the writer's finish-time
/// verification catch any footer that lied. The scenario tag is what lets the
/// coordinator refuse to merge shards produced from different scenario files.
///
/// # Errors
///
/// [`ImportError::Io`] on read failure, [`ImportError::Stream`] when the stream is
/// empty or its last line is not a well-formed `{"totals": {...}}` footer.
pub fn footer_meta<R: BufRead>(mut reader: R) -> Result<(Totals, Option<String>), ImportError> {
    let mut buf = String::new();
    let mut last = String::new();
    let (mut line, mut last_line) = (0usize, 0usize);
    loop {
        buf.clear();
        let read = reader.read_line(&mut buf).map_err(|err| ImportError::Io(err.to_string()))?;
        if read == 0 {
            break;
        }
        line += 1;
        if !buf.trim().is_empty() {
            std::mem::swap(&mut last, &mut buf);
            last_line = line;
        }
    }
    if last_line == 0 {
        return Err(ImportError::Stream {
            line: 0,
            message: "empty stream: no totals footer".into(),
        });
    }
    match parse_stream_line(last.trim_end_matches(['\n', '\r'])) {
        Ok(StreamLine::Footer(totals, scenario)) => Ok((totals, scenario)),
        Ok(StreamLine::Cell(_)) => Err(ImportError::Stream {
            line: last_line,
            message: "stream ends in a cell line, not a totals footer (truncated export?)".into(),
        }),
        Err(err) => Err(ImportError::Stream { line: last_line, message: err.to_string() }),
    }
}

/// [`footer_meta`] without the scenario tag — the totals-only convenience most
/// callers (and pre-scenario code) want.
///
/// # Errors
///
/// Exactly those of [`footer_meta`].
pub fn footer_totals<R: BufRead>(reader: R) -> Result<Totals, ImportError> {
    footer_meta(reader).map(|(totals, _)| totals)
}

/// Collects a whole streamed shard export into an in-memory [`CampaignReport`] —
/// the convenience path for tools (e.g. `campaign_ctl diff`) that want to treat a
/// `.jsonl` export like a `.json` one and do not care about memory. A scenario tag
/// in the stream's footer is carried onto the report, exactly as [`from_json`]
/// carries a document's `"scenario"` key.
///
/// # Errors
///
/// Any error [`StreamingCells`] yields.
pub fn from_jsonl<R: BufRead>(reader: R) -> Result<CampaignReport, ImportError> {
    let mut stream = StreamingCells::new(reader);
    let cells = stream.by_ref().collect::<Result<Vec<_>, _>>()?;
    let report = CampaignReport::new(cells);
    Ok(match stream.scenario() {
        Some(tag) => report.with_scenario(tag.to_string()),
        None => report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignBuilder;
    use crate::executor::Executor;
    use crate::export::{to_json, StreamingExporter};

    #[test]
    fn import_inverts_export_on_a_real_campaign() {
        let campaign = CampaignBuilder::new().sizes([2, 3]).corruptions([(0, 0), (1, 1)]).build();
        let (report, _) = Executor::new().threads(2).run(&campaign);
        let imported = from_json(&to_json(&report)).unwrap();
        assert_eq!(imported, report);
        assert_eq!(to_json(&imported), to_json(&report));
    }

    #[test]
    fn syntax_errors_carry_a_byte_offset() {
        let err = from_json("{\"totals\": ").unwrap_err();
        assert!(matches!(err, ImportError::Syntax { .. }), "{err}");
        assert!(err.to_string().contains("byte"));
        for bad in ["", "[1,]", "{\"a\" 1}", "{\"a\": 1e3}", "\"unclosed", "nope", "{} trailing"] {
            assert!(from_json(bad).is_err(), "{bad:?} should not import");
        }
    }

    #[test]
    fn schema_errors_name_the_problem() {
        // Well-formed JSON, wrong shape.
        let err = from_json("[1, 2]").unwrap_err();
        assert!(err.to_string().contains("expected object"), "{err}");
        let err = from_json("{\"cells\": []}").unwrap_err();
        assert!(err.to_string().contains("totals"), "{err}");
        let doc = "{\"totals\": {}, \"cells\": [{\"k\": 1, \"topology\": \"hypercube\", \
                   \"auth\": \"authenticated\", \"t_l\": 0, \"t_r\": 0, \
                   \"adversary\": \"crash\", \"seed\": 0, \"status\": \"failed\", \
                   \"message\": \"x\"}]}";
        let err = from_json(doc).unwrap_err();
        assert!(err.to_string().contains("unknown topology"), "{err}");
    }

    #[test]
    fn tampered_totals_are_rejected() {
        let campaign = CampaignBuilder::new().sizes([2]).build();
        let (report, _) = Executor::new().threads(1).run(&campaign);
        let json = to_json(&report);
        let tampered = json.replacen(
            &format!("\"scenarios\": {}", report.totals().scenarios),
            "\"scenarios\": 9999",
            1,
        );
        let err = from_json(&tampered).unwrap_err();
        assert!(err.to_string().contains("totals do not match"), "{err}");
    }

    #[test]
    fn string_escapes_decode_including_surrogate_pairs() {
        let mut parser = Parser::new(r#""a\"b\\c\n\t\u0001\ud83e\udd80é""#);
        let parsed = parser.parse_string().unwrap();
        assert_eq!(parsed, "a\"b\\c\n\t\u{1}🦀é");
        for bad in [r#""\ud800x""#, r#""\ud800 ""#, r#""\uZZZZ""#, r#""\q""#] {
            assert!(Parser::new(bad).parse_string().is_err(), "{bad} should not parse");
        }
    }

    /// A real campaign report and its streamed (JSON lines) export.
    fn streamed_report() -> (CampaignReport, String) {
        let campaign = CampaignBuilder::new().sizes([2, 3]).corruptions([(0, 0), (1, 1)]).build();
        let (report, _) = Executor::new().threads(2).run(&campaign);
        let mut buf = Vec::new();
        let mut exporter = StreamingExporter::new(&mut buf);
        for cell in report.cells() {
            exporter.write_cell(cell).unwrap();
        }
        exporter.finish().unwrap();
        (report, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn streaming_cells_invert_the_streaming_exporter() {
        let (report, text) = streamed_report();
        let mut stream = StreamingCells::new(text.as_bytes());
        let cells: Vec<CellRecord> = (&mut stream).collect::<Result<_, _>>().unwrap();
        assert_eq!(cells, report.cells());
        assert!(stream.finished(), "footer must have been verified");
        assert_eq!(stream.totals(), report.totals());
        // The convenience collector agrees.
        assert_eq!(from_jsonl(text.as_bytes()).unwrap(), report);
    }

    #[test]
    fn truncated_stream_mid_cell_fails_with_the_line_number() {
        let (_, text) = streamed_report();
        // Cut the stream in the middle of the third cell line.
        let offset = text.match_indices('\n').nth(1).unwrap().0 + 10;
        let truncated = &text[..offset];
        let err =
            StreamingCells::new(truncated.as_bytes()).collect::<Result<Vec<_>, _>>().unwrap_err();
        assert!(matches!(err, ImportError::Stream { line: 3, .. }), "{err}");
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn stream_without_a_footer_is_rejected_as_truncated() {
        let (_, text) = streamed_report();
        let footer_start = text.rfind("{\"totals\"").unwrap();
        let err = StreamingCells::new(&text.as_bytes()[..footer_start])
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert!(err.to_string().contains("without a totals footer"), "{err}");
    }

    #[test]
    fn footer_mismatching_the_streamed_cells_is_rejected() {
        let (_, text) = streamed_report();
        // Drop the second cell line: the footer no longer matches the cells.
        let lines: Vec<&str> = text.lines().collect();
        let tampered: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 1)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let err =
            StreamingCells::new(tampered.as_bytes()).collect::<Result<Vec<_>, _>>().unwrap_err();
        assert!(err.to_string().contains("totals footer does not match"), "{err}");
    }

    #[test]
    fn content_after_the_footer_is_rejected() {
        let (_, text) = streamed_report();
        let first_cell = text.lines().next().unwrap();
        let trailing = format!("{text}{first_cell}\n");
        let err =
            StreamingCells::new(trailing.as_bytes()).collect::<Result<Vec<_>, _>>().unwrap_err();
        assert!(err.to_string().contains("content after the totals footer"), "{err}");
    }

    #[test]
    fn out_of_order_and_malformed_stream_lines_are_rejected() {
        let (_, text) = streamed_report();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.swap(0, 1);
        let swapped: String = lines.iter().map(|l| format!("{l}\n")).collect();
        let err =
            StreamingCells::new(swapped.as_bytes()).collect::<Result<Vec<_>, _>>().unwrap_err();
        assert!(err.to_string().contains("out of canonical coordinate order"), "{err}");

        for bad in ["not json\n", "{\"k\": }\n", "\n", "[1]\n"] {
            let err =
                StreamingCells::new(bad.as_bytes()).collect::<Result<Vec<_>, _>>().unwrap_err();
            assert!(matches!(err, ImportError::Stream { .. }), "{bad:?}: {err}");
        }
    }

    #[test]
    fn footer_totals_reads_only_the_footer() {
        let (report, text) = streamed_report();
        assert_eq!(footer_totals(text.as_bytes()).unwrap(), report.totals());
        // An empty stream and a footerless stream both fail.
        assert!(footer_totals(&b""[..]).unwrap_err().to_string().contains("empty stream"));
        let footer_start = text.rfind("{\"totals\"").unwrap();
        let err = footer_totals(&text.as_bytes()[..footer_start]).unwrap_err();
        assert!(err.to_string().contains("not a totals footer"), "{err}");
    }

    #[test]
    fn scenario_tagged_footers_and_documents_carry_the_tag() {
        let tag = "name = \"demo\"\n";
        // Streamed form: the footer's second key survives a full read and footer_meta.
        let campaign = CampaignBuilder::new().sizes([2]).build();
        let (report, _) = Executor::new().threads(1).run(&campaign);
        let report = report.with_scenario(tag);
        let mut buf = Vec::new();
        let mut exporter = StreamingExporter::new(&mut buf);
        exporter.set_scenario(tag);
        for cell in report.cells() {
            exporter.write_cell(cell).unwrap();
        }
        exporter.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut stream = StreamingCells::new(text.as_bytes());
        let cells: Vec<CellRecord> = (&mut stream).collect::<Result<_, _>>().unwrap();
        assert_eq!(cells, report.cells());
        assert_eq!(stream.scenario(), Some(tag));
        let (totals, scenario) = footer_meta(text.as_bytes()).unwrap();
        assert_eq!(totals, report.totals());
        assert_eq!(scenario.as_deref(), Some(tag));
        // Document form: the root "scenario" key round-trips through from_json.
        let imported = from_json(&to_json(&report)).unwrap();
        assert_eq!(imported.scenario(), Some(tag));
        assert_eq!(imported, report);
        assert_eq!(to_json(&imported), to_json(&report));
        // from_jsonl carries the footer tag onto the collected report too.
        let collected = from_jsonl(text.as_bytes()).unwrap();
        assert_eq!(collected.scenario(), Some(tag));
        assert_eq!(collected, report);
    }

    #[test]
    fn empty_shard_stream_is_just_a_zero_footer() {
        let mut buf = Vec::new();
        let exporter = StreamingExporter::new(&mut buf);
        assert_eq!(exporter.totals(), Totals::default());
        exporter.finish().unwrap();
        let mut stream = StreamingCells::new(&buf[..]);
        assert!(stream.next().is_none());
        assert!(stream.finished());
        assert_eq!(stream.totals(), Totals::default());
        assert_eq!(footer_totals(&buf[..]).unwrap(), Totals::default());
        assert!(from_jsonl(&buf[..]).unwrap().cells().is_empty());
    }

    #[test]
    fn duplicate_object_keys_are_rejected_with_the_position() {
        let err = from_json("{\"totals\": {}, \"totals\": {}}").unwrap_err();
        assert!(matches!(err, ImportError::Schema(_)), "{err}");
        assert!(err.to_string().contains("duplicate object key \"totals\""), "{err}");
        assert!(err.to_string().contains("at byte 15"), "{err}");
        // The motivating case: `"seed": 0, "seed": 5` must not import as seed 0.
        let (_, text) = streamed_report();
        let first = text.lines().next().unwrap();
        let doctored = first.replacen("\"seed\": 0", "\"seed\": 0, \"seed\": 5", 1);
        assert!(doctored.contains("\"seed\": 0, \"seed\": 5"), "{doctored}");
        let err = parse_stream_line(&doctored).unwrap_err();
        assert!(err.to_string().contains("duplicate object key \"seed\""), "{err}");
    }

    #[test]
    fn non_canonical_integers_with_leading_zeros_are_rejected() {
        let err = from_json("{\"totals\": {\"scenarios\": 007}}").unwrap_err();
        assert!(matches!(err, ImportError::Syntax { .. }), "{err}");
        assert!(err.to_string().contains("leading zeros"), "{err}");
        for bad in ["00", "01", "0007"] {
            let doc = format!("{{\"a\": {bad}}}");
            assert!(from_json(&doc).is_err(), "{bad} should not parse");
        }
        // A lone zero is the canonical rendering and still parses.
        let mut parser = Parser::new("0");
        assert_eq!(parser.parse_number().unwrap(), Value::Number(0));
    }

    #[test]
    fn salvage_of_an_intact_stream_is_complete() {
        let (report, text) = streamed_report();
        let salvaged = StreamingCells::salvage(text.as_bytes()).unwrap();
        assert!(salvaged.complete);
        assert_eq!(salvaged.truncation, None);
        assert_eq!(salvaged.cells, report.cells());
        assert_eq!(salvaged.totals, report.totals());
        assert_eq!(salvaged.last_coordinate(), Some(report.cells().last().unwrap().spec));
    }

    #[test]
    fn salvage_stops_cleanly_at_a_mid_line_truncation() {
        let (report, text) = streamed_report();
        // Cut in the middle of the third cell line: two whole cells survive.
        let offset = text.match_indices('\n').nth(1).unwrap().0 + 10;
        let salvaged = StreamingCells::salvage(&text.as_bytes()[..offset]).unwrap();
        assert!(!salvaged.complete);
        assert_eq!(salvaged.cells, &report.cells()[..2]);
        assert_eq!(salvaged.last_coordinate(), Some(report.cells()[1].spec));
        let mut expected = Totals::default();
        for cell in &report.cells()[..2] {
            expected.record(&cell.outcome);
        }
        assert_eq!(salvaged.totals, expected);
        assert!(salvaged.truncation.unwrap().contains("line 3"));
    }

    #[test]
    fn salvage_at_a_cell_boundary_keeps_every_whole_cell() {
        let (report, text) = streamed_report();
        // Cut exactly after the fourth cell line (a clean line boundary, no footer).
        let offset = text.match_indices('\n').nth(3).unwrap().0 + 1;
        let salvaged = StreamingCells::salvage(&text.as_bytes()[..offset]).unwrap();
        assert!(!salvaged.complete);
        assert_eq!(salvaged.cells, &report.cells()[..4]);
        assert!(salvaged.truncation.unwrap().contains("without a totals footer"));
    }

    #[test]
    fn salvage_of_a_footerless_stream_keeps_all_cells() {
        let (report, text) = streamed_report();
        let footer_start = text.rfind("{\"totals\"").unwrap();
        let salvaged = StreamingCells::salvage(&text.as_bytes()[..footer_start]).unwrap();
        assert!(!salvaged.complete);
        assert_eq!(salvaged.cells, report.cells());
        assert_eq!(salvaged.totals, report.totals());
        assert!(salvaged.truncation.unwrap().contains("without a totals footer"));
    }

    #[test]
    fn salvage_cut_exactly_at_the_footer_line_recovers_everything_but_completeness() {
        let (report, text) = streamed_report();
        // The whole footer line is present but its newline is cut off — still a
        // parseable, verifiable footer, so salvage is complete.
        let salvaged = StreamingCells::salvage(text.trim_end().as_bytes()).unwrap();
        assert!(salvaged.complete);
        assert_eq!(salvaged.cells, report.cells());
        // Cut *inside* the footer line: all cells survive, completeness is lost.
        let footer_start = text.rfind("{\"totals\"").unwrap();
        let salvaged = StreamingCells::salvage(&text.as_bytes()[..footer_start + 12]).unwrap();
        assert!(!salvaged.complete);
        assert_eq!(salvaged.cells, report.cells());
        assert_eq!(salvaged.totals, report.totals());
    }

    #[test]
    fn salvage_of_an_empty_stream_is_an_empty_incomplete_prefix() {
        let salvaged = StreamingCells::salvage(&b""[..]).unwrap();
        assert!(!salvaged.complete);
        assert!(salvaged.cells.is_empty());
        assert_eq!(salvaged.totals, Totals::default());
        assert_eq!(salvaged.last_coordinate(), None);
    }

    #[test]
    fn salvage_surfaces_reader_io_errors_instead_of_guessing() {
        struct FailingReader;
        impl std::io::Read for FailingReader {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        let reader = std::io::BufReader::new(FailingReader);
        let err = StreamingCells::salvage(reader).unwrap_err();
        assert!(matches!(err, ImportError::Io(_)), "{err}");
    }

    /// Property-style round-trip: every outcome shape with adversarial strings (JSON
    /// metacharacters, control characters, non-ASCII) survives
    /// `from_json(to_json(...))` with every `CellRecord` field intact.
    #[test]
    fn import_round_trips_every_outcome_shape_and_escaped_strings() {
        // A tiny deterministic LCG so the test needs no RNG dependency.
        let mut state = 0x2545f4914f6cdd1du64;
        let mut next = move |bound: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % bound
        };
        let nasty = [
            "plain",
            "with \"quotes\" and \\backslashes\\",
            "line\nbreak\ttab\rreturn",
            "control\u{1}\u{1f}chars",
            "unicode Πbψم🦀",
            "comma, separated, value",
            "",
        ];
        let fault_choices: [FaultSpec; 3] = [
            FaultSpec::NONE,
            "partition=2+3;loss=125".parse().unwrap(),
            "crash=L1@4..9;jitter=2".parse().unwrap(),
        ];
        let mut cells = Vec::new();
        for i in 0..200u64 {
            let spec = ScenarioSpec {
                k: 1 + next(6) as usize,
                topology: Topology::ALL[next(3) as usize],
                auth: AuthMode::ALL[next(2) as usize],
                t_l: next(3) as usize,
                t_r: next(3) as usize,
                adversary: AdversarySpec::ALL[next(3) as usize],
                faults: fault_choices[next(3) as usize],
                seed: i,
            };
            let outcome = match next(3) {
                0 => CellOutcome::Completed(CellStats {
                    plan: ALL_PLANS[next(5) as usize],
                    all_honest_decided: next(2) == 0,
                    violations: next(10) as usize,
                    slots: next(1000),
                    messages: next(u64::MAX),
                    signatures: next(100_000),
                }),
                1 => CellOutcome::Unsolvable {
                    theorem: nasty[next(7) as usize].to_string(),
                    reason: nasty[next(7) as usize].to_string(),
                },
                _ => CellOutcome::Failed { message: nasty[next(7) as usize].to_string() },
            };
            cells.push(CellRecord { spec, outcome });
        }
        let report = CampaignReport::new(cells);
        let imported = from_json(&to_json(&report)).unwrap();
        assert_eq!(imported, report, "round-trip altered a cell");
        // Second generation: the re-export is also byte-identical.
        assert_eq!(to_json(&imported), to_json(&report));
    }
}
