//! Grid coordinates: one fully specified scenario per cell of a campaign grid.
//!
//! A [`ScenarioSpec`] is the engine's unit of work. It pins every axis a campaign can
//! vary — market size, topology, authentication, per-side corruption counts, byzantine
//! strategy and seed — so that a cell can be rebuilt (and re-run) from its coordinates
//! alone, on any worker thread, and the aggregated results can be merged in the
//! canonical grid order regardless of the order the threads finish in.

use bsm_core::harness::{AdversarySpec, HarnessError, Scenario, ScenarioOutcome};
use bsm_core::problem::{AuthMode, Setting, SettingError};
use bsm_net::{FaultSpec, Topology};
use std::fmt;
use std::ops::Range;
use std::str::FromStr;

/// The coordinates of one campaign cell.
///
/// `ScenarioSpec` is `Copy`: moving a cell to a worker thread costs a few machine
/// words, and the expensive state (preference profile, PKI, runtimes) is built inside
/// the worker from the seed.
///
/// The derived `Ord` (field order below: size, topology, auth, corruption pair,
/// adversary, fault plan, seed) **is** the canonical coordinate order — the order
/// [`CampaignBuilder::build`] expands in, [`CampaignReport::merge`] restores, the
/// streaming writers enforce, and the k-way [`CellMerge`] yields. Reordering these
/// fields would silently change every export; the determinism tests
/// (`campaign_determinism.rs`, `shard_merge.rs`, `streaming_merge.rs`) exist to catch
/// exactly that.
///
/// [`CampaignBuilder::build`]: crate::campaign::CampaignBuilder::build
/// [`CampaignReport::merge`]: crate::report::CampaignReport::merge
/// [`CellMerge`]: crate::report::CellMerge
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScenarioSpec {
    /// Market size (parties per side).
    pub k: usize,
    /// Communication topology.
    pub topology: Topology,
    /// Cryptographic assumptions.
    pub auth: AuthMode,
    /// Number of corrupted left-side parties (also the budget `tL`).
    pub t_l: usize,
    /// Number of corrupted right-side parties (also the budget `tR`).
    pub t_r: usize,
    /// Byzantine strategy of the corrupted parties.
    pub adversary: AdversarySpec,
    /// Declarative fault plan (scheduled partitions, crash/recovery, loss, jitter).
    pub faults: FaultSpec,
    /// Seed for profile generation, randomized adversaries and fault draws.
    pub seed: u64,
}

impl ScenarioSpec {
    /// The [`Setting`] these coordinates describe.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SettingError`] for out-of-range coordinates
    /// (`k == 0`, or a corruption count exceeding `k`).
    pub fn setting(&self) -> Result<Setting, SettingError> {
        Setting::new(self.k, self.topology, self.auth, self.t_l, self.t_r)
    }

    /// Builds the runnable scenario for this cell.
    ///
    /// The corrupted parties are the `t_l` highest-indexed left parties and the `t_r`
    /// highest-indexed right parties — the same "boundary" convention the experiment
    /// binaries use, so a cell exercises its full corruption budget.
    ///
    /// # Errors
    ///
    /// Propagates [`SettingError`] (wrapped by the harness) and harness build errors.
    pub fn build_scenario(&self) -> Result<Scenario, HarnessError> {
        let setting = self.setting()?;
        let k = self.k as u32;
        let left: Vec<u32> = (0..k).rev().take(self.t_l).collect();
        let right: Vec<u32> = (0..k).rev().take(self.t_r).collect();
        Scenario::builder(setting)
            .seed(self.seed)
            .corrupt_left(left)
            .corrupt_right(right)
            .adversary(self.adversary)
            .faults(self.faults)
            .build()
    }

    /// Builds and runs the scenario with the plan prescribed by the solvability
    /// characterization.
    ///
    /// # Errors
    ///
    /// Propagates build and run errors, including [`HarnessError::Unsolvable`].
    pub fn run(&self) -> Result<ScenarioOutcome, HarnessError> {
        self.build_scenario()?.run()
    }
}

/// One contiguous slice of a campaign's canonical work list: shard `index` of `count`.
///
/// A `ShardPlan` is how one campaign is split across processes or machines. Every
/// shard runs the same deterministic expansion (so all shards agree on the canonical
/// work list without communicating), then keeps only its own coordinate range via
/// [`range`](Self::range). The ranges of the `count` shards partition the work list:
/// contiguous, disjoint, and balanced to within one cell. Because each shard is a
/// contiguous run of the canonical order, merging shard reports back in coordinate
/// order reproduces the single-process report byte for byte.
///
/// The CLI spelling is 1-based (`--shard 2/3` is the second of three shards);
/// internally [`index`](Self::index) is 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardPlan {
    index: usize,
    count: usize,
}

/// Errors constructing or parsing a [`ShardPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardPlanError {
    /// The shard count was zero.
    ZeroCount,
    /// The (0-based) shard index was not below the shard count.
    IndexOutOfRange {
        /// The offending 0-based index.
        index: usize,
        /// The shard count.
        count: usize,
    },
    /// The textual form was not `I/K` with integers `1 ≤ I ≤ K`.
    Malformed(String),
}

impl fmt::Display for ShardPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardPlanError::ZeroCount => write!(f, "shard count must be at least 1"),
            ShardPlanError::IndexOutOfRange { index, count } => {
                write!(f, "shard index {index} out of range for {count} shard(s)")
            }
            ShardPlanError::Malformed(s) => {
                write!(f, "malformed shard spec {s:?} (expected I/K with 1 ≤ I ≤ K)")
            }
        }
    }
}

impl std::error::Error for ShardPlanError {}

impl ShardPlan {
    /// The trivial plan: one shard holding the whole campaign.
    pub const WHOLE: ShardPlan = ShardPlan { index: 0, count: 1 };

    /// Creates shard `index` (0-based) of `count`.
    ///
    /// # Errors
    ///
    /// [`ShardPlanError::ZeroCount`] when `count == 0`,
    /// [`ShardPlanError::IndexOutOfRange`] when `index >= count`.
    pub fn new(index: usize, count: usize) -> Result<Self, ShardPlanError> {
        if count == 0 {
            return Err(ShardPlanError::ZeroCount);
        }
        if index >= count {
            return Err(ShardPlanError::IndexOutOfRange { index, count });
        }
        Ok(Self { index, count })
    }

    /// The 0-based shard index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The total number of shards.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The contiguous index range this shard owns in a work list of `total` cells.
    ///
    /// The split is balanced: the first `total % count` shards get one extra cell.
    /// The ranges of all `count` shards partition `0..total` in order.
    pub fn range(&self, total: usize) -> Range<usize> {
        let base = total / self.count;
        let extra = total % self.count;
        let start = self.index * base + self.index.min(extra);
        let len = base + usize::from(self.index < extra);
        start..start + len
    }

    /// The un-run tail of this shard's [`range`](Self::range) after its first `done`
    /// cells completed — the range a crash-interrupted shard must still execute.
    ///
    /// Because shard exports stream cells in canonical order, a salvaged prefix of
    /// `done` cells is exactly the first `done` cells of the shard's range, so the
    /// remainder is the rest of it. `done` past the end of the range yields the empty
    /// range at its end (an already-complete shard has nothing left to run).
    pub fn remainder(&self, total: usize, done: usize) -> Range<usize> {
        let range = self.range(total);
        range.start.saturating_add(done).min(range.end)..range.end
    }
}

impl FromStr for ShardPlan {
    type Err = ShardPlanError;

    /// Parses the 1-based CLI spelling `I/K` (e.g. `"2/3"`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let malformed = || ShardPlanError::Malformed(s.to_string());
        let (index, count) = s.split_once('/').ok_or_else(malformed)?;
        let index: usize = index.trim().parse().map_err(|_| malformed())?;
        let count: usize = count.trim().parse().map_err(|_| malformed())?;
        if index == 0 {
            return Err(malformed());
        }
        ShardPlan::new(index - 1, count)
    }
}

impl fmt::Display for ShardPlan {
    /// Renders the 1-based CLI spelling (`2/3` for index 1 of 3).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index + 1, self.count)
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "k={} {} {} tL={} tR={} {} faults={} seed={}",
            self.k,
            self.topology,
            self.auth,
            self.t_l,
            self.t_r,
            self.adversary,
            self.faults,
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            k: 3,
            topology: Topology::FullyConnected,
            auth: AuthMode::Authenticated,
            t_l: 1,
            t_r: 1,
            adversary: AdversarySpec::Crash,
            faults: FaultSpec::NONE,
            seed: 7,
        }
    }

    #[test]
    fn spec_builds_a_boundary_scenario() {
        let scenario = spec().build_scenario().unwrap();
        assert_eq!(scenario.setting().k(), 3);
        assert_eq!(scenario.corrupted().len(), 2);
        // Highest indices are corrupted.
        assert!(scenario.corrupted().contains(&bsm_net::PartyId::left(2)));
        assert!(scenario.corrupted().contains(&bsm_net::PartyId::right(2)));
    }

    #[test]
    fn spec_runs_clean_on_a_solvable_cell() {
        let outcome = spec().run().unwrap();
        assert!(outcome.violations.is_empty());
        assert!(outcome.all_honest_decided);
    }

    #[test]
    fn invalid_coordinates_surface_as_setting_errors() {
        let bad = ScenarioSpec { t_l: 9, ..spec() };
        assert!(bad.setting().is_err());
        assert!(bad.build_scenario().is_err());
    }

    #[test]
    fn display_names_every_axis() {
        let rendered = spec().to_string();
        for needle in [
            "k=3",
            "fully-connected",
            "authenticated",
            "tL=1",
            "tR=1",
            "crash",
            "faults=none",
            "seed=7",
        ] {
            assert!(rendered.contains(needle), "missing {needle} in {rendered}");
        }
    }

    #[test]
    fn shard_ranges_partition_any_total() {
        for count in 1..=7usize {
            for total in [0usize, 1, 5, 72, 576, 1081] {
                let mut next = 0;
                let mut sizes = Vec::new();
                for index in 0..count {
                    let range = ShardPlan::new(index, count).unwrap().range(total);
                    assert_eq!(range.start, next, "gap before shard {index}/{count} at {total}");
                    sizes.push(range.len());
                    next = range.end;
                }
                assert_eq!(next, total, "shards of {count} do not cover {total}");
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced split of {total} into {count}: {sizes:?}");
            }
        }
    }

    #[test]
    fn remainder_is_the_unrun_tail_of_the_shard_range() {
        for count in 1..=5usize {
            for total in [0usize, 1, 7, 72] {
                for index in 0..count {
                    let plan = ShardPlan::new(index, count).unwrap();
                    let range = plan.range(total);
                    assert_eq!(plan.remainder(total, 0), range, "0 done = the whole range");
                    for done in 0..=range.len() {
                        let rest = plan.remainder(total, done);
                        assert_eq!(rest.start, range.start + done);
                        assert_eq!(rest.end, range.end);
                    }
                    // Past-the-end salvage counts clamp to the empty tail.
                    let over = plan.remainder(total, range.len() + 3);
                    assert_eq!(over, range.end..range.end);
                    assert_eq!(plan.remainder(total, usize::MAX), range.end..range.end);
                }
            }
        }
    }

    #[test]
    fn shard_plan_validates_its_coordinates() {
        assert_eq!(ShardPlan::new(0, 0), Err(ShardPlanError::ZeroCount));
        assert_eq!(
            ShardPlan::new(3, 3),
            Err(ShardPlanError::IndexOutOfRange { index: 3, count: 3 })
        );
        assert_eq!(ShardPlan::WHOLE.range(10), 0..10);
        assert!(ShardPlanError::ZeroCount.to_string().contains("at least 1"));
        assert!(ShardPlan::new(3, 3).unwrap_err().to_string().contains("out of range"));
    }

    #[test]
    fn shard_plan_round_trips_through_the_cli_spelling() {
        let plan: ShardPlan = "2/3".parse().unwrap();
        assert_eq!((plan.index(), plan.count()), (1, 3));
        assert_eq!(plan.to_string(), "2/3");
        assert_eq!(plan.to_string().parse::<ShardPlan>().unwrap(), plan);
        for bad in ["", "3", "0/3", "4/3", "a/b", "1/", "/3", "1/0"] {
            assert!(bad.parse::<ShardPlan>().is_err(), "{bad:?} should not parse");
        }
        assert!("9/4".parse::<ShardPlan>().unwrap_err().to_string().contains("out of range"));
        assert!("x/y".parse::<ShardPlan>().unwrap_err().to_string().contains("malformed"));
    }
}
