//! Grid coordinates: one fully specified scenario per cell of a campaign grid.
//!
//! A [`ScenarioSpec`] is the engine's unit of work. It pins every axis a campaign can
//! vary — market size, topology, authentication, per-side corruption counts, byzantine
//! strategy and seed — so that a cell can be rebuilt (and re-run) from its coordinates
//! alone, on any worker thread, and the aggregated results can be merged in the
//! canonical grid order regardless of the order the threads finish in.

use bsm_core::harness::{AdversarySpec, HarnessError, Scenario, ScenarioOutcome};
use bsm_core::problem::{AuthMode, Setting, SettingError};
use bsm_net::Topology;
use std::fmt;

/// The coordinates of one campaign cell.
///
/// `ScenarioSpec` is `Copy`: moving a cell to a worker thread costs a few machine
/// words, and the expensive state (preference profile, PKI, runtimes) is built inside
/// the worker from the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScenarioSpec {
    /// Market size (parties per side).
    pub k: usize,
    /// Communication topology.
    pub topology: Topology,
    /// Cryptographic assumptions.
    pub auth: AuthMode,
    /// Number of corrupted left-side parties (also the budget `tL`).
    pub t_l: usize,
    /// Number of corrupted right-side parties (also the budget `tR`).
    pub t_r: usize,
    /// Byzantine strategy of the corrupted parties.
    pub adversary: AdversarySpec,
    /// Seed for profile generation and randomized adversaries.
    pub seed: u64,
}

impl ScenarioSpec {
    /// The [`Setting`] these coordinates describe.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SettingError`] for out-of-range coordinates
    /// (`k == 0`, or a corruption count exceeding `k`).
    pub fn setting(&self) -> Result<Setting, SettingError> {
        Setting::new(self.k, self.topology, self.auth, self.t_l, self.t_r)
    }

    /// Builds the runnable scenario for this cell.
    ///
    /// The corrupted parties are the `t_l` highest-indexed left parties and the `t_r`
    /// highest-indexed right parties — the same "boundary" convention the experiment
    /// binaries use, so a cell exercises its full corruption budget.
    ///
    /// # Errors
    ///
    /// Propagates [`SettingError`] (wrapped by the harness) and harness build errors.
    pub fn build_scenario(&self) -> Result<Scenario, HarnessError> {
        let setting = self.setting()?;
        let k = self.k as u32;
        let left: Vec<u32> = (0..k).rev().take(self.t_l).collect();
        let right: Vec<u32> = (0..k).rev().take(self.t_r).collect();
        Scenario::builder(setting)
            .seed(self.seed)
            .corrupt_left(left)
            .corrupt_right(right)
            .adversary(self.adversary)
            .build()
    }

    /// Builds and runs the scenario with the plan prescribed by the solvability
    /// characterization.
    ///
    /// # Errors
    ///
    /// Propagates build and run errors, including [`HarnessError::Unsolvable`].
    pub fn run(&self) -> Result<ScenarioOutcome, HarnessError> {
        self.build_scenario()?.run()
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "k={} {} {} tL={} tR={} {} seed={}",
            self.k, self.topology, self.auth, self.t_l, self.t_r, self.adversary, self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            k: 3,
            topology: Topology::FullyConnected,
            auth: AuthMode::Authenticated,
            t_l: 1,
            t_r: 1,
            adversary: AdversarySpec::Crash,
            seed: 7,
        }
    }

    #[test]
    fn spec_builds_a_boundary_scenario() {
        let scenario = spec().build_scenario().unwrap();
        assert_eq!(scenario.setting().k(), 3);
        assert_eq!(scenario.corrupted().len(), 2);
        // Highest indices are corrupted.
        assert!(scenario.corrupted().contains(&bsm_net::PartyId::left(2)));
        assert!(scenario.corrupted().contains(&bsm_net::PartyId::right(2)));
    }

    #[test]
    fn spec_runs_clean_on_a_solvable_cell() {
        let outcome = spec().run().unwrap();
        assert!(outcome.violations.is_empty());
        assert!(outcome.all_honest_decided);
    }

    #[test]
    fn invalid_coordinates_surface_as_setting_errors() {
        let bad = ScenarioSpec { t_l: 9, ..spec() };
        assert!(bad.setting().is_err());
        assert!(bad.build_scenario().is_err());
    }

    #[test]
    fn display_names_every_axis() {
        let rendered = spec().to_string();
        for needle in ["k=3", "fully-connected", "authenticated", "tL=1", "tR=1", "crash", "seed=7"] {
            assert!(rendered.contains(needle), "missing {needle} in {rendered}");
        }
    }
}
