//! Supervised shard execution: the watchdog layer that turns crash-*recoverable*
//! campaigns into crash-*tolerant* ones.
//!
//! The pieces were already in the engine — per-shard `progress.json` heartbeats
//! ([`crate::telemetry::Heartbeat`]) are the dead-shard detection signal, and the
//! salvage/resume path ([`crate::import::StreamingCells::salvage`] +
//! [`crate::grid::ShardPlan::remainder`]) is the reassignment mechanism — but
//! nothing watched, retried or reassigned anything. This module glues them
//! together:
//!
//! * [`run_supervisor`] — the coordinator loop: spawns one worker subprocess per
//!   shard (the caller provides the [`std::process::Command`] for each launch),
//!   polls each shard's heartbeat for liveness, and on crash, non-zero exit or
//!   stall kills the worker and relaunches the remainder with bounded attempts and
//!   exponential backoff. A shard that exhausts its attempts is *quarantined* and
//!   the run degrades gracefully instead of hanging or panicking.
//! * [`SuperviseSummary`] — the machine-readable outcome (`supervise.json`): the
//!   full attempt history per shard plus the quarantined coordinate ranges, with
//!   [`SuperviseSummary::to_json`] / [`parse_supervise`] round-tripping it through
//!   the same integers-only JSON subset as every other engine document.
//! * [`ChaosSpec`] / [`CrashMode`] / [`CrashPoint`] — deterministic crash
//!   injection. The supervisor arms a worker by setting [`CRASH_ENV`] in its
//!   environment (driven by a `--chaos` spec naming *which shard dies how, on
//!   which attempt*); the worker checks [`CrashPoint::from_env`] and dies at the
//!   exact requested point — a SIGKILL-style exit at a cell boundary, a torn
//!   half-line, a hang (so the watchdog has something real to kill), before its
//!   first heartbeat, or between footer and final rename. Chaos is keyed on
//!   *cells completed in canonical order*, never wall-clock, so every injected
//!   failure is reproducible.
//!
//! # Liveness model
//!
//! A heartbeat carries a monotone `seq` (bumped on every rewrite) and the worker's
//! `attempt` number. The supervisor polls every [`SuperviseConfig::poll_ms`]
//! milliseconds and counts polls during which the `(attempt, seq)` pair did not
//! advance; a worker whose counter exceeds [`SuperviseConfig::stall_polls`] is
//! declared stalled and killed. Progress is thus measured in *heartbeat
//! advancement*, not wall-clock alone — a slow-but-beating shard is never killed,
//! and tests can tighten the deadline deterministically. The deadline
//! (`poll_ms × stall_polls`) must comfortably exceed the time a healthy worker
//! needs to complete [`crate::telemetry::HEARTBEAT_EVERY`] cells.

use crate::export::sweep_stale_tmp;
use crate::grid::ShardPlan;
use crate::import::{
    as_array, as_object, number, schema, string, usize_field, ImportError, Parser,
};
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus};
use std::str::FromStr;
use std::time::{Duration, Instant, SystemTime};

/// Environment variable arming a worker's deterministic crash injection; the value
/// is a [`CrashMode`] rendered by its `Display` impl (e.g. `5`, `torn5`, `hang3`,
/// `early`, `finish`). Set by the supervisor from the `--chaos` spec; honored by
/// `campaign_ctl run --stream` and `resume`.
pub const CRASH_ENV: &str = "BSM_CRASH_AFTER_CELLS";

/// Environment variable carrying the supervisor-assigned attempt number (1-based)
/// a worker stamps into its heartbeat. Absent (or `1`) for unsupervised runs.
pub const ATTEMPT_ENV: &str = "BSM_ATTEMPT";

/// Exit code of an injected crash — distinct from real failure codes so a chaos
/// death is recognizable in attempt histories (the value mimics `128 + SIGKILL`,
/// which is what a genuinely KILLed worker reports).
pub const CRASH_EXIT: i32 = 137;

/// Default bounded attempts per shard (first run + retries) before quarantine.
pub const DEFAULT_MAX_ATTEMPTS: u32 = 3;
/// Default exponential-backoff base in milliseconds (delay before attempt 2).
pub const DEFAULT_BACKOFF_MS: u64 = 500;
/// Default heartbeat poll interval in milliseconds.
pub const DEFAULT_POLL_MS: u64 = 200;
/// Default number of no-advance polls before a worker is declared stalled.
pub const DEFAULT_STALL_POLLS: u32 = 150;

/// Upper bound on one backoff delay, whatever the attempt number.
const BACKOFF_CAP_MS: u64 = 30_000;

/// The delay in milliseconds applied before launching `attempt` (1-based):
/// `0` for the first attempt, then `base_ms × 2^(attempt − 2)`, capped at 30 s.
///
/// ```rust
/// use bsm_engine::supervise::backoff_ms;
/// assert_eq!(backoff_ms(100, 1), 0);
/// assert_eq!(backoff_ms(100, 2), 100);
/// assert_eq!(backoff_ms(100, 3), 200);
/// assert_eq!(backoff_ms(100, 4), 400);
/// ```
pub fn backoff_ms(base_ms: u64, attempt: u32) -> u64 {
    if attempt <= 1 {
        return 0;
    }
    let doublings = (attempt - 2).min(20);
    base_ms.saturating_mul(1u64 << doublings).min(BACKOFF_CAP_MS)
}

/// Whether the process `pid` is currently alive: `Some(true/false)` on Linux
/// (via `/proc`), `None` when the question cannot be answered (pid 0 — the
/// "unknown" placeholder old heartbeats parse to — or a non-Linux platform).
pub fn pid_alive(pid: u32) -> Option<bool> {
    if pid == 0 {
        return None;
    }
    if cfg!(target_os = "linux") {
        Some(Path::new(&format!("/proc/{pid}")).exists())
    } else {
        None
    }
}

/// The worker-side attempt number from [`ATTEMPT_ENV`] (default 1 when unset).
///
/// # Errors
///
/// A description when the variable is set but not a positive integer.
pub fn attempt_from_env() -> Result<u32, String> {
    match std::env::var(ATTEMPT_ENV) {
        Err(std::env::VarError::NotPresent) => Ok(1),
        Err(err) => Err(format!("{ATTEMPT_ENV}: {err}")),
        Ok(value) => match value.parse::<u32>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("{ATTEMPT_ENV}: expected a positive integer, got {value:?}")),
        },
    }
}

// ---------------------------------------------------------------------------
// Crash injection: modes, specs, worker-side trigger
// ---------------------------------------------------------------------------

/// One deterministic way for a worker to die, keyed on cells completed in
/// canonical order (for a resumed worker, replayed salvaged cells count too, so
/// "after the Nth cell" means the same stream position on every attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Exit (code [`CRASH_EXIT`]) right after the Nth cell line is flushed —
    /// a clean-boundary SIGKILL leaving N whole lines in the partial.
    Boundary(usize),
    /// Append a torn half-line after the Nth flushed cell, then exit — the
    /// mid-write SIGKILL shape [`crate::import::StreamingCells::salvage`] trims.
    Torn(usize),
    /// Stop making progress after the Nth cell without exiting — heartbeats stop
    /// advancing and the supervisor's stall watchdog must kill the worker.
    Hang(usize),
    /// Exit before the run creates its heartbeat or opens any artifact — the
    /// "died before first heartbeat" case (no partial exists, so the relaunch is
    /// a fresh `run`, not a `resume`).
    Early,
    /// Exit after the stream is footered and flushed but before the final
    /// atomic rename — the partial is complete, and resume salvages all of it.
    Finish,
}

impl FromStr for CrashMode {
    type Err = String;

    /// Parses the [`CRASH_ENV`] encoding: `early`, `finish`, `N` (boundary),
    /// `tornN`, `hangN` — counts must be ≥ 1 (use `early` to die before work).
    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let count = |digits: &str, what: &str| -> Result<usize, String> {
            match digits.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(format!(
                    "chaos {what}: expected a cell count >= 1, got {digits:?} \
                     (use `early` to die before any cell)"
                )),
            }
        };
        if text == "early" {
            Ok(CrashMode::Early)
        } else if text == "finish" {
            Ok(CrashMode::Finish)
        } else if let Some(digits) = text.strip_prefix("torn") {
            Ok(CrashMode::Torn(count(digits, "torn")?))
        } else if let Some(digits) = text.strip_prefix("hang") {
            Ok(CrashMode::Hang(count(digits, "hang")?))
        } else {
            Ok(CrashMode::Boundary(count(text, "boundary")?))
        }
    }
}

impl fmt::Display for CrashMode {
    /// The inverse of [`FromStr`] — what the supervisor writes into [`CRASH_ENV`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashMode::Boundary(n) => write!(f, "{n}"),
            CrashMode::Torn(n) => write!(f, "torn{n}"),
            CrashMode::Hang(n) => write!(f, "hang{n}"),
            CrashMode::Early => write!(f, "early"),
            CrashMode::Finish => write!(f, "finish"),
        }
    }
}

/// A `--chaos` spec: which shard dies how, on which attempt. Comma-separated
/// `SHARD:ATTEMPT:MODE` entries (1-based shard and attempt, [`CrashMode`] syntax
/// for the mode), e.g. `2:1:5,2:2:torn5,3:1:early`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaosSpec {
    entries: Vec<(usize, u32, CrashMode)>,
}

impl ChaosSpec {
    /// A spec with no injected failures (what unsupervised reality looks like).
    pub const NONE: ChaosSpec = ChaosSpec { entries: Vec::new() };

    /// The crash mode armed for `shard` (1-based) on `attempt` (1-based), if any.
    pub fn mode_for(&self, shard: usize, attempt: u32) -> Option<CrashMode> {
        self.entries.iter().find(|(s, a, _)| *s == shard && *a == attempt).map(|(_, _, mode)| *mode)
    }

    /// True when the spec injects no failures at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl FromStr for ChaosSpec {
    type Err = String;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let mut entries = Vec::new();
        for entry in text.split(',').filter(|e| !e.is_empty()) {
            let parts: Vec<&str> = entry.split(':').collect();
            let [shard, attempt, mode] = parts.as_slice() else {
                return Err(format!(
                    "chaos entry {entry:?}: expected SHARD:ATTEMPT:MODE (e.g. 2:1:torn5)"
                ));
            };
            let shard = shard
                .parse::<usize>()
                .ok()
                .filter(|&s| s >= 1)
                .ok_or_else(|| format!("chaos entry {entry:?}: shard must be >= 1"))?;
            let attempt = attempt
                .parse::<u32>()
                .ok()
                .filter(|&a| a >= 1)
                .ok_or_else(|| format!("chaos entry {entry:?}: attempt must be >= 1"))?;
            let mode =
                mode.parse::<CrashMode>().map_err(|err| format!("chaos entry {entry:?}: {err}"))?;
            if entries.iter().any(|(s, a, _)| *s == shard && *a == attempt) {
                return Err(format!(
                    "chaos entry {entry:?}: shard {shard} attempt {attempt} named twice"
                ));
            }
            entries.push((shard, attempt, mode));
        }
        Ok(ChaosSpec { entries })
    }
}

impl fmt::Display for ChaosSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (shard, attempt, mode) in &self.entries {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{shard}:{attempt}:{mode}")?;
            first = false;
        }
        Ok(())
    }
}

/// The worker-side trigger: counts streamed cells and dies at the armed point.
///
/// The worker checks [`CrashPoint::from_env`] once at startup; an unarmed worker
/// pays nothing. The three call sites a streamed run threads it through:
/// `die_early_if_armed` before any artifact exists, `cell_written` after each
/// cell reaches the stream (flush first, so whole lines are on disk — the caller
/// decides when to call [`CrashPoint::fire`]), and `die_before_publish_if_armed`
/// between footer and final rename.
#[derive(Debug)]
pub struct CrashPoint {
    mode: CrashMode,
    seen: usize,
}

impl CrashPoint {
    /// Reads [`CRASH_ENV`]: `Ok(None)` when unset (the common case).
    ///
    /// # Errors
    ///
    /// A description when the variable is set but unparseable — a typo'd chaos
    /// spec must fail the run loudly, not silently un-inject the crash.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var(CRASH_ENV) {
            Err(std::env::VarError::NotPresent) => Ok(None),
            Err(err) => Err(format!("{CRASH_ENV}: {err}")),
            Ok(value) => {
                let mode =
                    value.parse::<CrashMode>().map_err(|err| format!("{CRASH_ENV}: {err}"))?;
                Ok(Some(CrashPoint { mode, seen: 0 }))
            }
        }
    }

    /// Builds an armed trigger directly (tests).
    pub fn new(mode: CrashMode) -> Self {
        CrashPoint { mode, seen: 0 }
    }

    /// Dies now when armed with [`CrashMode::Early`] — call before creating the
    /// heartbeat or any artifact.
    pub fn die_early_if_armed(&self) {
        if self.mode == CrashMode::Early {
            eprintln!("chaos: injected crash (early) before any artifact");
            std::process::exit(CRASH_EXIT);
        }
    }

    /// Dies now when armed with [`CrashMode::Finish`] — call after the stream is
    /// footered and flushed, before the final atomic rename.
    pub fn die_before_publish_if_armed(&self) {
        if self.mode == CrashMode::Finish {
            eprintln!("chaos: injected crash (finish) before final rename");
            std::process::exit(CRASH_EXIT);
        }
    }

    /// Records one cell written to the stream; `true` when the armed point is
    /// *now* — the caller must flush its stream (whole lines on disk) and then
    /// call [`CrashPoint::fire`].
    pub fn cell_written(&mut self) -> bool {
        self.seen += 1;
        matches!(
            self.mode,
            CrashMode::Boundary(n) | CrashMode::Torn(n) | CrashMode::Hang(n) if n == self.seen
        )
    }

    /// Executes the armed death: appends the torn fragment (torn mode), hangs
    /// forever (hang mode — the watchdog's job is to kill us), or exits.
    pub fn fire(&self, partial: &Path) -> ! {
        match self.mode {
            CrashMode::Torn(_) => {
                // Half of a cell line, no trailing newline: exactly what a
                // SIGKILL between write() calls leaves behind.
                let fragment = "{\"k\": 3, \"topology\": \"fully-conn";
                let _ = std::fs::OpenOptions::new()
                    .append(true)
                    .create(true)
                    .open(partial)
                    .and_then(|mut file| file.write_all(fragment.as_bytes()));
                eprintln!("chaos: injected torn write after {} cell(s)", self.seen);
            }
            CrashMode::Hang(_) => {
                eprintln!("chaos: injected hang after {} cell(s)", self.seen);
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
            _ => {
                eprintln!("chaos: injected crash after {} cell(s)", self.seen);
            }
        }
        std::process::exit(CRASH_EXIT);
    }
}

// ---------------------------------------------------------------------------
// Supervisor configuration and summary
// ---------------------------------------------------------------------------

/// Tuning for one [`run_supervisor`] invocation.
#[derive(Debug, Clone)]
pub struct SuperviseConfig {
    /// Shard count (one worker subprocess per shard).
    pub shards: usize,
    /// Total cells in the campaign (for quarantined coordinate ranges).
    pub total_cells: usize,
    /// Bounded attempts per shard (first run + retries) before quarantine.
    pub max_attempts: u32,
    /// Exponential-backoff base in milliseconds (see [`backoff_ms`]).
    pub backoff_base_ms: u64,
    /// Heartbeat poll interval in milliseconds.
    pub poll_ms: u64,
    /// No-advance polls before a worker is declared stalled and killed.
    pub stall_polls: u32,
    /// Deterministic crash injection plan ([`ChaosSpec::NONE`] in production).
    pub chaos: ChaosSpec,
}

/// How one worker attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// Exit 0 with a complete footered `report.jsonl` published.
    Completed,
    /// Non-zero exit, killed by a signal, or exit 0 without a published export.
    Crashed,
    /// Heartbeat stopped advancing past the deadline; the supervisor killed it.
    Stalled,
    /// The subprocess could not be spawned at all.
    SpawnFailed,
}

impl AttemptOutcome {
    /// The canonical `supervise.json` rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            AttemptOutcome::Completed => "completed",
            AttemptOutcome::Crashed => "crashed",
            AttemptOutcome::Stalled => "stalled",
            AttemptOutcome::SpawnFailed => "spawn-failed",
        }
    }

    fn parse(text: &str) -> Result<Self, ImportError> {
        match text {
            "completed" => Ok(AttemptOutcome::Completed),
            "crashed" => Ok(AttemptOutcome::Crashed),
            "stalled" => Ok(AttemptOutcome::Stalled),
            "spawn-failed" => Ok(AttemptOutcome::SpawnFailed),
            other => Err(schema(format!("unknown attempt outcome {other:?}"))),
        }
    }
}

/// One row of a shard's attempt history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptRecord {
    /// The shard (1-based, as on the `--shard I/K` command line).
    pub shard: usize,
    /// The attempt number (1-based).
    pub attempt: u32,
    /// Whether the attempt resumed salvaged state (`resume`) or started fresh
    /// (`run`).
    pub resumed: bool,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
    /// Encoded exit status: the exit code when the worker exited, `128 + signal`
    /// when it was killed (137 for SIGKILL — also [`CRASH_EXIT`]), 0 otherwise.
    pub exit: u64,
    /// Cells done per the shard's last heartbeat when the attempt ended (a lower
    /// bound — the heartbeat rewrites every few cells, not on every cell).
    pub done: usize,
    /// The backoff delay applied before this attempt launched (0 for attempt 1).
    pub backoff_ms: u64,
}

/// A shard that exhausted its attempts: its un-merged coordinate range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinedShard {
    /// The shard (1-based).
    pub shard: usize,
    /// First cell index of the shard's canonical range.
    pub start: usize,
    /// Cells in the range.
    pub cells: usize,
    /// Attempts spent before quarantine.
    pub attempts: u32,
}

/// The machine-readable outcome of a supervised run — what `supervise.json`
/// holds. [`SuperviseSummary::to_json`] and [`parse_supervise`] round-trip it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperviseSummary {
    /// Shard count of the run.
    pub shards: usize,
    /// Total cells in the campaign.
    pub total_cells: usize,
    /// The attempt bound the run was configured with.
    pub max_attempts: u32,
    /// Every attempt, in launch order.
    pub attempts: Vec<AttemptRecord>,
    /// Shards that exhausted their attempts (empty on a clean run).
    pub quarantined: Vec<QuarantinedShard>,
}

impl SuperviseSummary {
    /// True when any shard was quarantined — the run produced partial artifacts
    /// and the process should exit with the degraded code.
    pub fn degraded(&self) -> bool {
        !self.quarantined.is_empty()
    }

    /// The 1-based shard numbers that published a complete export, in order.
    pub fn completed_shards(&self) -> Vec<usize> {
        let mut shards: Vec<usize> = self
            .attempts
            .iter()
            .filter(|record| record.outcome == AttemptOutcome::Completed)
            .map(|record| record.shard)
            .collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    /// Renders the canonical `supervise.json` document (integers-only JSON, like
    /// every other engine artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"total_cells\": {},\n", self.total_cells));
        out.push_str(&format!("  \"max_attempts\": {},\n", self.max_attempts));
        out.push_str(&format!(
            "  \"outcome\": \"{}\",\n",
            if self.degraded() { "degraded" } else { "complete" }
        ));
        out.push_str("  \"attempts\": [\n");
        for (index, record) in self.attempts.iter().enumerate() {
            let comma = if index + 1 == self.attempts.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"shard\": {}, \"attempt\": {}, \"mode\": \"{}\", \"outcome\": \"{}\", \
                 \"exit\": {}, \"done\": {}, \"backoff_ms\": {}}}{comma}\n",
                record.shard,
                record.attempt,
                if record.resumed { "resume" } else { "run" },
                record.outcome.as_str(),
                record.exit,
                record.done,
                record.backoff_ms,
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"quarantined\": [\n");
        for (index, shard) in self.quarantined.iter().enumerate() {
            let comma = if index + 1 == self.quarantined.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"shard\": {}, \"start\": {}, \"cells\": {}, \"attempts\": {}}}{comma}\n",
                shard.shard, shard.start, shard.cells, shard.attempts,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Parses a `supervise.json` document back into a [`SuperviseSummary`].
///
/// # Errors
///
/// [`ImportError::Syntax`] for malformed JSON, [`ImportError::Schema`] for a
/// well-formed document that is not a supervise summary (including an `outcome`
/// field inconsistent with the quarantine list).
pub fn parse_supervise(text: &str) -> Result<SuperviseSummary, ImportError> {
    let value = Parser::new(text.trim_end()).parse_document()?;
    let fields = as_object(&value, "supervise document")?;
    let mut attempts = Vec::new();
    for item in as_array(crate::import::field(&fields, "attempts")?, "attempts")? {
        let record = as_object(&item, "attempt record")?;
        let mode = string(&record, "mode")?;
        let resumed = match mode {
            "resume" => true,
            "run" => false,
            other => return Err(schema(format!("unknown attempt mode {other:?}"))),
        };
        attempts.push(AttemptRecord {
            shard: usize_field(&record, "shard")?,
            attempt: u32::try_from(number(&record, "attempt")?)
                .map_err(|_| schema("attempt: value exceeds u32"))?,
            resumed,
            outcome: AttemptOutcome::parse(string(&record, "outcome")?)?,
            exit: number(&record, "exit")?,
            done: usize_field(&record, "done")?,
            backoff_ms: number(&record, "backoff_ms")?,
        });
    }
    let mut quarantined = Vec::new();
    for item in as_array(crate::import::field(&fields, "quarantined")?, "quarantined")? {
        let record = as_object(&item, "quarantine record")?;
        quarantined.push(QuarantinedShard {
            shard: usize_field(&record, "shard")?,
            start: usize_field(&record, "start")?,
            cells: usize_field(&record, "cells")?,
            attempts: u32::try_from(number(&record, "attempts")?)
                .map_err(|_| schema("attempts: value exceeds u32"))?,
        });
    }
    let summary = SuperviseSummary {
        shards: usize_field(&fields, "shards")?,
        total_cells: usize_field(&fields, "total_cells")?,
        max_attempts: u32::try_from(number(&fields, "max_attempts")?)
            .map_err(|_| schema("max_attempts: value exceeds u32"))?,
        attempts,
        quarantined,
    };
    let declared = string(&fields, "outcome")?;
    let expected = if summary.degraded() { "degraded" } else { "complete" };
    if declared != expected {
        return Err(schema(format!(
            "outcome {declared:?} contradicts the quarantine list (expected {expected:?})"
        )));
    }
    Ok(summary)
}

// ---------------------------------------------------------------------------
// The supervisor loop
// ---------------------------------------------------------------------------

/// Per-shard state in the supervisor loop.
enum Slot {
    /// Waiting out the backoff before (re)launching `attempt` at `at`.
    Launch { attempt: u32, at: Instant, backoff: u64 },
    /// A live worker being watched.
    Running {
        child: Child,
        attempt: u32,
        backoff: u64,
        seen: Option<(u64, u64)>,
        stale: u32,
        resumed: bool,
    },
    /// Published a complete export.
    Done,
    /// Exhausted its attempts.
    Quarantined,
}

/// Encodes an [`ExitStatus`] for attempt records: the exit code when the worker
/// exited, `128 + signal` when it was killed, 255 when neither is known.
fn encode_exit(status: ExitStatus) -> u64 {
    if let Some(code) = status.code() {
        return u64::try_from(code.max(0)).unwrap_or(255);
    }
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(signal) = status.signal() {
            return 128 + u64::try_from(signal.max(0)).unwrap_or(127);
        }
    }
    255
}

/// The shard's current `(attempt, seq)` heartbeat pair, when one parses.
fn read_beat(dir: &Path) -> Option<(u64, u64)> {
    let text = std::fs::read_to_string(dir.join("progress.json")).ok()?;
    let snapshot = crate::telemetry::parse_progress(&text).ok()?;
    Some((u64::from(snapshot.attempt), snapshot.seq))
}

/// The shard's last-heartbeat `done` count (0 when no heartbeat parses).
fn read_done(dir: &Path) -> usize {
    std::fs::read_to_string(dir.join("progress.json"))
        .ok()
        .and_then(|text| crate::telemetry::parse_progress(&text).ok())
        .map_or(0, |snapshot| snapshot.done)
}

/// Runs the supervisor loop: one worker subprocess per shard, watched, retried
/// with exponential backoff, and quarantined after
/// [`SuperviseConfig::max_attempts`].
///
/// `dirs[i]` is shard `i+1`'s out-dir (where its heartbeat and artifacts land).
/// `spawn(shard, attempt, resume)` builds the launch command for 1-based `shard`;
/// `resume` is true when salvageable state exists in the shard's dir, in which
/// case the command must finish the interrupted run instead of starting over.
/// The supervisor itself arms [`ATTEMPT_ENV`] and (per the chaos spec)
/// [`CRASH_ENV`] on the returned command, sweeps stale `*.tmp` staging debris
/// before every relaunch, and reaps every child it spawns or kills.
///
/// The function always runs to a terminal state for every shard — a quarantined
/// shard degrades the summary, it never hangs or aborts the others.
///
/// # Errors
///
/// Only unrecoverable supervisor-side I/O (e.g. `try_wait` failing); worker
/// failures are data, not errors.
pub fn run_supervisor<S>(
    config: &SuperviseConfig,
    dirs: &[PathBuf],
    mut spawn: S,
) -> std::io::Result<SuperviseSummary>
where
    S: FnMut(usize, u32, bool) -> Command,
{
    assert_eq!(dirs.len(), config.shards, "one out-dir per shard");
    let max_attempts = config.max_attempts.max(1);
    let mut attempts: Vec<AttemptRecord> = Vec::new();
    let mut quarantined: Vec<QuarantinedShard> = Vec::new();
    let mut slots: Vec<Slot> = (0..config.shards)
        .map(|_| Slot::Launch { attempt: 1, at: Instant::now(), backoff: 0 })
        .collect();
    // On failure: schedule the next attempt, or quarantine after the bound.
    let next_slot = |attempt: u32, shard: usize, quarantined: &mut Vec<QuarantinedShard>| -> Slot {
        if attempt >= max_attempts {
            let range = ShardPlan::new(shard - 1, config.shards)
                .map(|plan| plan.range(config.total_cells))
                .unwrap_or(0..0);
            eprintln!(
                "supervise: shard {shard}/{} QUARANTINED after {attempt} attempt(s) \
                 (cells {}..{})",
                config.shards, range.start, range.end
            );
            quarantined.push(QuarantinedShard {
                shard,
                start: range.start,
                cells: range.len(),
                attempts: attempt,
            });
            Slot::Quarantined
        } else {
            let delay = backoff_ms(config.backoff_base_ms, attempt + 1);
            Slot::Launch {
                attempt: attempt + 1,
                at: Instant::now() + Duration::from_millis(delay),
                backoff: delay,
            }
        }
    };
    loop {
        let mut active = false;
        for (index, slot) in slots.iter_mut().enumerate() {
            let shard = index + 1;
            let dir = &dirs[index];
            match slot {
                Slot::Done | Slot::Quarantined => {}
                Slot::Launch { attempt, at, backoff } => {
                    active = true;
                    if Instant::now() < *at {
                        continue;
                    }
                    let (attempt, backoff) = (*attempt, *backoff);
                    // A SIGKILLed worker leaves AtomicFile staging debris its
                    // successor would otherwise never clean; sweep before spawning
                    // so the new attempt starts from known staging state.
                    let _ = sweep_stale_tmp(dir, SystemTime::now());
                    let resume = dir.join("report.jsonl.partial").exists()
                        || dir.join("report.jsonl").exists();
                    let mut command = spawn(shard, attempt, resume);
                    command.env(ATTEMPT_ENV, attempt.to_string());
                    command.env_remove(CRASH_ENV);
                    if let Some(mode) = config.chaos.mode_for(shard, attempt) {
                        command.env(CRASH_ENV, mode.to_string());
                    }
                    match command.spawn() {
                        Ok(child) => {
                            eprintln!(
                                "supervise: shard {shard}/{} attempt {attempt} launched \
                                 ({}, pid {})",
                                config.shards,
                                if resume { "resume" } else { "run" },
                                child.id()
                            );
                            *slot = Slot::Running {
                                child,
                                attempt,
                                backoff,
                                seen: None,
                                stale: 0,
                                resumed: resume,
                            };
                        }
                        Err(err) => {
                            eprintln!(
                                "supervise: shard {shard}/{} attempt {attempt} failed to \
                                 spawn: {err}",
                                config.shards
                            );
                            attempts.push(AttemptRecord {
                                shard,
                                attempt,
                                resumed: resume,
                                outcome: AttemptOutcome::SpawnFailed,
                                exit: 0,
                                done: read_done(dir),
                                backoff_ms: backoff,
                            });
                            *slot = next_slot(attempt, shard, &mut quarantined);
                        }
                    }
                }
                Slot::Running { child, attempt, backoff, seen, stale, resumed } => {
                    active = true;
                    if let Some(status) = child.try_wait()? {
                        let done = read_done(dir);
                        let published = dir.join("report.jsonl").exists();
                        if status.success() && published {
                            eprintln!(
                                "supervise: shard {shard}/{} attempt {attempt} completed \
                                 ({done} cell(s))",
                                config.shards
                            );
                            attempts.push(AttemptRecord {
                                shard,
                                attempt: *attempt,
                                resumed: *resumed,
                                outcome: AttemptOutcome::Completed,
                                exit: 0,
                                done,
                                backoff_ms: *backoff,
                            });
                            *slot = Slot::Done;
                        } else {
                            let exit = encode_exit(status);
                            eprintln!(
                                "supervise: shard {shard}/{} attempt {attempt} crashed \
                                 (exit {exit}, {done} cell(s) per last heartbeat)",
                                config.shards
                            );
                            attempts.push(AttemptRecord {
                                shard,
                                attempt: *attempt,
                                resumed: *resumed,
                                outcome: AttemptOutcome::Crashed,
                                exit,
                                done,
                                backoff_ms: *backoff,
                            });
                            *slot = next_slot(*attempt, shard, &mut quarantined);
                        }
                        continue;
                    }
                    // Still running: liveness is heartbeat advancement, measured
                    // as the (attempt, seq) pair — seq restarts on relaunch, and
                    // the attempt field disambiguates a fresh worker's low seq
                    // from the dead predecessor's stale file.
                    let beat = read_beat(dir);
                    if beat.is_some() && beat != *seen {
                        *seen = beat;
                        *stale = 0;
                    } else {
                        *stale += 1;
                    }
                    if *stale > config.stall_polls {
                        eprintln!(
                            "supervise: shard {shard}/{} attempt {attempt} STALLED \
                             (no heartbeat advance across {} polls); killing pid {}",
                            config.shards,
                            config.stall_polls,
                            child.id()
                        );
                        let _ = child.kill();
                        let _ = child.wait();
                        attempts.push(AttemptRecord {
                            shard,
                            attempt: *attempt,
                            resumed: *resumed,
                            outcome: AttemptOutcome::Stalled,
                            exit: 137,
                            done: read_done(dir),
                            backoff_ms: *backoff,
                        });
                        *slot = next_slot(*attempt, shard, &mut quarantined);
                    }
                }
            }
        }
        if !active {
            break;
        }
        std::thread::sleep(Duration::from_millis(config.poll_ms.max(1)));
    }
    // Quarantined dirs keep their salvageable .partial (a later manual resume can
    // still finish them) but not their staging debris.
    for shard in &quarantined {
        let _ = sweep_stale_tmp(&dirs[shard.shard - 1], SystemTime::now());
    }
    quarantined.sort_by_key(|q| q.shard);
    Ok(SuperviseSummary {
        shards: config.shards,
        total_cells: config.total_cells,
        max_attempts,
        attempts,
        quarantined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_modes_round_trip_through_the_env_encoding() {
        for (text, mode) in [
            ("5", CrashMode::Boundary(5)),
            ("torn7", CrashMode::Torn(7)),
            ("hang3", CrashMode::Hang(3)),
            ("early", CrashMode::Early),
            ("finish", CrashMode::Finish),
        ] {
            assert_eq!(text.parse::<CrashMode>().unwrap(), mode);
            assert_eq!(mode.to_string(), text);
        }
        for bad in ["", "0", "torn0", "hang", "tornx", "-3", "late"] {
            assert!(bad.parse::<CrashMode>().is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn chaos_specs_parse_and_answer_lookups() {
        let spec: ChaosSpec = "2:1:5,2:2:torn5,3:1:early".parse().unwrap();
        assert_eq!(spec.mode_for(2, 1), Some(CrashMode::Boundary(5)));
        assert_eq!(spec.mode_for(2, 2), Some(CrashMode::Torn(5)));
        assert_eq!(spec.mode_for(3, 1), Some(CrashMode::Early));
        assert_eq!(spec.mode_for(1, 1), None);
        assert_eq!(spec.mode_for(2, 3), None);
        assert_eq!(spec.to_string(), "2:1:5,2:2:torn5,3:1:early");
        assert_eq!(spec.to_string().parse::<ChaosSpec>().unwrap(), spec);
        assert!(ChaosSpec::NONE.is_empty());
        assert!("".parse::<ChaosSpec>().unwrap().is_empty());
        for bad in ["2:1", "0:1:5", "2:0:5", "2:1:late", "x:1:5", "2:1:5,2:1:7"] {
            assert!(bad.parse::<ChaosSpec>().is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn backoff_doubles_from_the_base_and_caps() {
        assert_eq!(backoff_ms(500, 1), 0);
        assert_eq!(backoff_ms(500, 2), 500);
        assert_eq!(backoff_ms(500, 3), 1000);
        assert_eq!(backoff_ms(500, 4), 2000);
        assert_eq!(backoff_ms(500, 40), BACKOFF_CAP_MS);
        assert_eq!(backoff_ms(0, 7), 0);
        assert_eq!(backoff_ms(u64::MAX, 3), BACKOFF_CAP_MS);
    }

    #[test]
    fn crash_point_counts_cells_and_fires_at_the_boundary() {
        let mut point = CrashPoint::new(CrashMode::Boundary(3));
        assert!(!point.cell_written());
        assert!(!point.cell_written());
        assert!(point.cell_written());
        assert!(!point.cell_written(), "the trigger fires exactly once");
        let mut early = CrashPoint::new(CrashMode::Early);
        assert!(!early.cell_written(), "early never fires at a cell boundary");
    }

    #[test]
    fn pid_liveness_answers_for_this_process_and_declines_pid_zero() {
        assert_eq!(pid_alive(0), None);
        if cfg!(target_os = "linux") {
            assert_eq!(pid_alive(std::process::id()), Some(true));
        }
    }

    fn summary() -> SuperviseSummary {
        SuperviseSummary {
            shards: 3,
            total_cells: 72,
            max_attempts: 3,
            attempts: vec![
                AttemptRecord {
                    shard: 1,
                    attempt: 1,
                    resumed: false,
                    outcome: AttemptOutcome::Completed,
                    exit: 0,
                    done: 24,
                    backoff_ms: 0,
                },
                AttemptRecord {
                    shard: 2,
                    attempt: 1,
                    resumed: false,
                    outcome: AttemptOutcome::Crashed,
                    exit: 137,
                    done: 5,
                    backoff_ms: 0,
                },
                AttemptRecord {
                    shard: 2,
                    attempt: 2,
                    resumed: true,
                    outcome: AttemptOutcome::Stalled,
                    exit: 137,
                    done: 5,
                    backoff_ms: 100,
                },
                AttemptRecord {
                    shard: 2,
                    attempt: 3,
                    resumed: true,
                    outcome: AttemptOutcome::Crashed,
                    exit: 1,
                    done: 5,
                    backoff_ms: 200,
                },
                AttemptRecord {
                    shard: 3,
                    attempt: 1,
                    resumed: false,
                    outcome: AttemptOutcome::Completed,
                    exit: 0,
                    done: 24,
                    backoff_ms: 0,
                },
            ],
            quarantined: vec![QuarantinedShard { shard: 2, start: 24, cells: 24, attempts: 3 }],
        }
    }

    #[test]
    fn summaries_round_trip_through_json() {
        let summary = summary();
        assert!(summary.degraded());
        assert_eq!(summary.completed_shards(), vec![1, 3]);
        let parsed = parse_supervise(&summary.to_json()).unwrap();
        assert_eq!(parsed, summary);
        let clean = SuperviseSummary { quarantined: Vec::new(), ..summary };
        assert!(!clean.degraded());
        assert_eq!(parse_supervise(&clean.to_json()).unwrap(), clean);
    }

    #[test]
    fn summary_documents_reject_wrong_shapes() {
        assert!(parse_supervise("[]").is_err());
        assert!(parse_supervise("{\"shards\": 1}").is_err());
        // An outcome field contradicting the quarantine list is a lie, not data.
        let lied = summary().to_json().replace("\"degraded\"", "\"complete\"");
        assert!(parse_supervise(&lied).is_err());
        let truncated = &summary().to_json()[..40];
        assert!(parse_supervise(truncated).is_err());
    }

    #[cfg(unix)]
    fn shell_config(shards: usize) -> SuperviseConfig {
        SuperviseConfig {
            shards,
            total_cells: 12,
            max_attempts: 2,
            backoff_base_ms: 0,
            poll_ms: 5,
            stall_polls: 10,
            chaos: ChaosSpec::NONE,
        }
    }

    #[cfg(unix)]
    fn shell(script: String) -> Command {
        let mut command = Command::new("sh");
        command.arg("-c").arg(script);
        command.stdout(std::process::Stdio::null()).stderr(std::process::Stdio::null());
        command
    }

    #[cfg(unix)]
    #[test]
    fn supervisor_completes_workers_that_publish_and_quarantines_ones_that_crash() {
        let base = std::env::temp_dir().join(format!("bsm-supervise-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let dirs = vec![base.join("shard-1"), base.join("shard-2")];
        for dir in &dirs {
            std::fs::create_dir_all(dir).unwrap();
        }
        // Shard 1 "publishes" a report.jsonl and exits 0; shard 2 always exits 3.
        let ok = dirs[0].join("report.jsonl");
        let summary = run_supervisor(&shell_config(2), &dirs, |shard, _, _| match shard {
            1 => shell(format!("echo cells > {}", ok.display())),
            _ => shell("exit 3".into()),
        })
        .unwrap();
        assert!(summary.degraded());
        assert_eq!(summary.completed_shards(), vec![1]);
        assert_eq!(summary.quarantined.len(), 1);
        assert_eq!(summary.quarantined[0].shard, 2);
        assert_eq!(summary.quarantined[0].attempts, 2);
        let shard2: Vec<_> = summary.attempts.iter().filter(|record| record.shard == 2).collect();
        assert_eq!(shard2.len(), 2, "bounded attempts: first run + one retry");
        assert!(shard2.iter().all(|record| record.outcome == AttemptOutcome::Crashed));
        assert!(shard2.iter().all(|record| record.exit == 3));
        let _ = std::fs::remove_dir_all(&base);
    }

    #[cfg(unix)]
    #[test]
    fn supervisor_kills_and_records_a_stalled_worker() {
        let base = std::env::temp_dir().join(format!("bsm-supervise-stall-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let dirs = vec![base.join("shard-1")];
        std::fs::create_dir_all(&dirs[0]).unwrap();
        // The worker never beats and never exits: only the stall watchdog ends it.
        let mut config = shell_config(1);
        config.max_attempts = 1;
        let summary = run_supervisor(&config, &dirs, |_, _, _| shell("sleep 600".into())).unwrap();
        assert!(summary.degraded());
        assert_eq!(summary.attempts.len(), 1);
        assert_eq!(summary.attempts[0].outcome, AttemptOutcome::Stalled);
        assert_eq!(summary.attempts[0].exit, 137, "stall kill is a SIGKILL");
        let _ = std::fs::remove_dir_all(&base);
    }
}
