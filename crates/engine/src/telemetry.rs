//! Per-cell telemetry: attributed cost counters, the `metrics.jsonl` sidecar
//! stream, log-bucketed histograms, and live shard heartbeats.
//!
//! The campaign engine's reports are deliberately *deterministic*: every exported
//! artifact is a pure function of the campaign, byte-identical across thread counts,
//! shardings and re-runs. That purity makes them useless for observability — no cost
//! can be attributed to a cell, and a running shard is invisible until it finishes.
//! This module is the side channel that fixes both, without ever touching a report
//! byte:
//!
//! * [`CellTelemetry`] — one cell's attributed cost profile: the crypto-counter delta
//!   measured *on the worker thread that ran the cell* (exact even under a parallel
//!   executor, see [`bsm_crypto::counters::thread_snapshot`]), the netsim message
//!   accounting with its honest/byzantine fan-out split, and the cell's wall time.
//! * [`TelemetryExporter`] / [`TelemetryCells`] — the `metrics.jsonl` sidecar writer
//!   and reader: one coordinate-sorted JSON line per cell, written next to
//!   `report.jsonl` and verified back in strictly increasing canonical order.
//! * [`Histogram`] — fixed log-bucketed (power-of-two boundary) histograms, plus
//!   [`CampaignStats`]: the p50/p90/p99, top-N and per-axis rollup aggregation behind
//!   `campaign_ctl stats`.
//! * [`Heartbeat`] — a `progress.json` per shard out-dir, atomically rewritten every
//!   N cells, which is the dead-shard detection signal a coordinator daemon polls;
//!   [`ProgressSnapshot`] parses it back.
//!
//! # Deterministic vs timing fields
//!
//! Every [`CellTelemetry`] field except the wall time is deterministic for a fixed
//! build: the crypto memo state is per-cell, so the counter deltas — like the message
//! counts — depend only on the cell's coordinates. The JSON line therefore segregates
//! the two kinds: all deterministic fields first, then a single trailing
//! `"timing": {...}` object. Stripping the timing suffix ([`CellTelemetry::
//! deterministic_json`] renders it directly) yields the *deterministic projection*,
//! and two traces of the same campaign — any thread counts, any sharding — can be
//! `diff`ed projection-to-projection.

use crate::export::{check_order, spec_fields_json, StreamError};
use crate::grid::ScenarioSpec;
use crate::import::{
    as_object, field, number, parse_spec, schema, string, usize_field, ImportError, Parser,
};
use bsm_crypto::CounterSnapshot;
use bsm_net::{FanoutSummary, RoleFanout};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One cell's attributed cost profile — the unit of the `metrics.jsonl` sidecar.
///
/// Produced by the executor's `*_telemetry` entry points alongside the cell's
/// [`CellRecord`](crate::report::CellRecord); cells that did not complete (unsolvable
/// or failed) still carry their crypto delta and wall time, with the network fields
/// zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellTelemetry {
    /// The cell's grid coordinates.
    pub spec: ScenarioSpec,
    /// `"completed"`, `"unsolvable"` or `"failed"` — mirrors the report cell.
    pub status: &'static str,
    /// Crypto work attributed to this cell: the worker thread's counter delta around
    /// the cell (exact under any thread count — each cell runs entirely on one
    /// worker).
    pub crypto: CounterSnapshot,
    /// Messages accepted into the network (honest + byzantine).
    pub messages: u64,
    /// Messages actually delivered to a recipient.
    pub delivered: u64,
    /// Messages dropped by the fault injector.
    pub dropped: u64,
    /// Messages delayed (jittered) by the fault injector.
    pub delayed: u64,
    /// Messages discarded by the topology (no such channel).
    pub rejected: u64,
    /// Simulated slots the cell executed.
    pub slots: u64,
    /// Per-role fan-out split of the per-party send counts.
    pub fanout: FanoutSummary,
    /// Wall-clock nanoseconds the cell took on its worker thread. The **only**
    /// non-deterministic field; always rendered last, inside the `timing` object.
    pub wall_nanos: u64,
}

impl CellTelemetry {
    /// Telemetry for a cell with no scenario run (unsolvable or failed): network
    /// fields zero, crypto delta and wall time still attributed.
    pub fn without_run(
        spec: ScenarioSpec,
        status: &'static str,
        crypto: CounterSnapshot,
        wall_nanos: u64,
    ) -> Self {
        Self {
            spec,
            status,
            crypto,
            messages: 0,
            delivered: 0,
            dropped: 0,
            delayed: 0,
            rejected: 0,
            slots: 0,
            fanout: FanoutSummary::default(),
            wall_nanos,
        }
    }

    /// The deterministic projection of this cell's sidecar line: every field except
    /// the timing object, rendered exactly as [`to_json`](Self::to_json) renders them.
    ///
    /// Two traces of the same campaign (any thread counts, any sharding) agree
    /// projection-for-projection; equivalently, stripping the trailing
    /// `, "timing": {...}` from a full line yields this string.
    pub fn deterministic_json(&self) -> String {
        let f = &self.fanout;
        format!(
            "{{{}, \"status\": \"{}\", \"digests\": {}, \"verified\": {}, \
             \"cache_hits\": {}, \"messages\": {}, \"delivered\": {}, \"dropped\": {}, \
             \"delayed\": {}, \"rejected\": {}, \"slots\": {}, \"honest_senders\": {}, \
             \"honest_sent\": {}, \"honest_max\": {}, \"byz_senders\": {}, \"byz_sent\": {}, \
             \"byz_max\": {}}}",
            spec_fields_json(&self.spec),
            self.status,
            self.crypto.digests_computed,
            self.crypto.signatures_verified,
            self.crypto.verify_cache_hits,
            self.messages,
            self.delivered,
            self.dropped,
            self.delayed,
            self.rejected,
            self.slots,
            f.honest.senders,
            f.honest.total,
            f.honest.max,
            f.byzantine.senders,
            f.byzantine.total,
            f.byzantine.max,
        )
    }

    /// Renders the full sidecar line: the deterministic projection plus the trailing
    /// `timing` object (fixed key order, integers only).
    pub fn to_json(&self) -> String {
        let deterministic = self.deterministic_json();
        format!(
            "{}, \"timing\": {{\"wall_nanos\": {}}}}}",
            &deterministic[..deterministic.len() - 1],
            self.wall_nanos
        )
    }
}

/// Parses one `metrics.jsonl` line back into a [`CellTelemetry`].
///
/// # Errors
///
/// [`ImportError::Syntax`] for malformed JSON, [`ImportError::Schema`] when the line
/// does not match the sidecar schema (unknown status, missing fields, a `timing`
/// object without `wall_nanos`).
pub fn parse_telemetry_line(text: &str) -> Result<CellTelemetry, ImportError> {
    let value = Parser::new(text).parse_document()?;
    let fields = as_object(&value, "telemetry line")?;
    let spec = parse_spec(&fields)?;
    let status = match string(&fields, "status")? {
        "completed" => "completed",
        "unsolvable" => "unsolvable",
        "failed" => "failed",
        other => return Err(schema(format!("unknown telemetry status {other:?}"))),
    };
    let timing = as_object(field(&fields, "timing")?, "timing")?;
    Ok(CellTelemetry {
        spec,
        status,
        crypto: CounterSnapshot {
            digests_computed: number(&fields, "digests")?,
            signatures_verified: number(&fields, "verified")?,
            verify_cache_hits: number(&fields, "cache_hits")?,
        },
        messages: number(&fields, "messages")?,
        delivered: number(&fields, "delivered")?,
        dropped: number(&fields, "dropped")?,
        delayed: number(&fields, "delayed")?,
        rejected: number(&fields, "rejected")?,
        slots: number(&fields, "slots")?,
        fanout: FanoutSummary {
            honest: RoleFanout {
                senders: number(&fields, "honest_senders")?,
                total: number(&fields, "honest_sent")?,
                max: number(&fields, "honest_max")?,
            },
            byzantine: RoleFanout {
                senders: number(&fields, "byz_senders")?,
                total: number(&fields, "byz_sent")?,
                max: number(&fields, "byz_max")?,
            },
        },
        wall_nanos: number(&timing, "wall_nanos")?,
    })
}

/// The `metrics.jsonl` sidecar writer: one [`CellTelemetry::to_json`] line per cell,
/// in strictly increasing canonical coordinate order (enforced, like every streaming
/// writer in [`crate::export`]).
///
/// The sidecar is strictly a side channel: nothing here feeds back into a report, so
/// every report artifact stays byte-identical whether or not a telemetry exporter ran
/// alongside it. There is no footer — the file is staged through an
/// [`AtomicFile`](crate::export::AtomicFile) and only appears at its final path once
/// complete, so a truncated sidecar is never observable.
#[derive(Debug)]
pub struct TelemetryExporter<W: Write> {
    writer: W,
    last: Option<ScenarioSpec>,
    cells: usize,
}

impl<W: Write> TelemetryExporter<W> {
    /// Starts a sidecar stream over `writer` (nothing is written until the first
    /// cell).
    pub fn new(writer: W) -> Self {
        Self { writer, last: None, cells: 0 }
    }

    /// Writes one telemetry line.
    ///
    /// # Errors
    ///
    /// [`StreamError::OutOfOrder`] when `cell` does not follow the previous cell in
    /// canonical coordinate order; [`StreamError::Io`] on write failure.
    pub fn write_cell(&mut self, cell: &CellTelemetry) -> Result<(), StreamError> {
        check_order(&mut self.last, cell.spec)?;
        writeln!(self.writer, "{}", cell.to_json())?;
        self.cells += 1;
        Ok(())
    }

    /// Flushes the sink and returns the number of cells written.
    ///
    /// # Errors
    ///
    /// [`StreamError::Io`] on flush failure.
    pub fn finish(mut self) -> Result<usize, StreamError> {
        self.writer.flush()?;
        Ok(self.cells)
    }
}

/// A lazy reader over a `metrics.jsonl` sidecar — the inverse of
/// [`TelemetryExporter`], verifying schema and strictly increasing coordinate order
/// line by line. Ends cleanly at EOF (the sidecar has no footer; it is atomically
/// published, so a partial file is never observable at its final path).
#[derive(Debug)]
pub struct TelemetryCells<R: BufRead> {
    reader: R,
    buf: String,
    line: usize,
    last: Option<ScenarioSpec>,
    failed: bool,
}

impl<R: BufRead> TelemetryCells<R> {
    /// Starts reading sidecar lines from `reader`.
    pub fn new(reader: R) -> Self {
        Self { reader, buf: String::new(), line: 0, last: None, failed: false }
    }

    fn fail(&mut self, err: ImportError) -> Option<Result<CellTelemetry, ImportError>> {
        self.failed = true;
        Some(Err(err))
    }
}

impl<R: BufRead> Iterator for TelemetryCells<R> {
    type Item = Result<CellTelemetry, ImportError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        self.buf.clear();
        match self.reader.read_line(&mut self.buf) {
            Err(err) => return self.fail(ImportError::Io(err.to_string())),
            Ok(0) => return None,
            Ok(_) => {}
        }
        self.line += 1;
        let line = self.line;
        let text = self.buf.trim_end_matches(['\n', '\r']);
        if text.trim().is_empty() {
            return self.fail(ImportError::Stream {
                line,
                message: "blank line in telemetry stream".into(),
            });
        }
        let cell = match parse_telemetry_line(text) {
            Ok(cell) => cell,
            Err(err) => {
                return self.fail(ImportError::Stream { line, message: err.to_string() });
            }
        };
        if let Some(previous) = self.last {
            if cell.spec <= previous {
                return self.fail(ImportError::Stream {
                    line,
                    message: format!(
                        "telemetry out of canonical coordinate order: {} after {previous}",
                        cell.spec
                    ),
                });
            }
        }
        self.last = Some(cell.spec);
        Some(Ok(cell))
    }
}

// ---------------------------------------------------------------------------
// Histograms and campaign statistics
// ---------------------------------------------------------------------------

/// Number of buckets in a [`Histogram`]: bucket 0 holds exactly `{0}` and bucket
/// `i ≥ 1` holds `[2^(i-1), 2^i - 1]`, up to bucket 64 = `[2^63, u64::MAX]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-boundary, log-bucketed histogram over `u64` samples.
///
/// The boundaries are powers of two, so bucketing is *total* (every `u64` lands in
/// exactly one bucket) and *monotone* (larger values land in the same or a later
/// bucket) by construction — properties the telemetry tests pin. Fixed boundaries
/// mean two histograms of different campaigns are always comparable bucket for
/// bucket; quantiles are reported as the upper bound of the bucket containing the
/// target rank, i.e. within 2× of the exact order statistic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// The bucket index `value` lands in: 0 for 0, otherwise `64 - leading_zeros`
    /// (so bucket `i` covers `[2^(i-1), 2^i - 1]`).
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The inclusive `[low, high]` range of values bucket `index` covers.
    ///
    /// # Panics
    ///
    /// Panics when `index >= HISTOGRAM_BUCKETS`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < HISTOGRAM_BUCKETS, "bucket index {index} out of range");
        match index {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            i => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples, rounded down; 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Largest sample recorded; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The quantile `q` (in `[0, 1]`), reported as the upper bound of the bucket
    /// containing the target rank (clamped to [`max`](Self::max), so a quantile
    /// never exceeds the largest sample). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_bounds(index).1.min(self.max);
            }
        }
        self.max
    }
}

/// Rollup of the cells sharing one axis value (one `k`, one adversary, one topology).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AxisRollup {
    /// Cells in this group.
    pub cells: u64,
    /// Total wall nanoseconds across the group.
    pub wall_nanos: u64,
    /// Total messages across the group.
    pub messages: u64,
    /// Total digests computed across the group.
    pub digests: u64,
}

impl AxisRollup {
    fn record(&mut self, cell: &CellTelemetry) {
        self.cells += 1;
        self.wall_nanos = self.wall_nanos.saturating_add(cell.wall_nanos);
        self.messages += cell.messages;
        self.digests += cell.crypto.digests_computed;
    }

    /// Mean wall nanoseconds per cell, rounded down; zero for an empty group.
    pub fn mean_wall_nanos(&self) -> u64 {
        self.wall_nanos.checked_div(self.cells).unwrap_or(0)
    }
}

/// Aggregated statistics over a telemetry stream — the model behind
/// `campaign_ctl stats`.
///
/// Histograms cover cell wall time, messages and digests; rollups group by market
/// size, adversary and topology; `top` keeps every cell's (wall, coordinates) pair so
/// the most expensive cells can be ranked.
#[derive(Debug, Clone, Default)]
pub struct CampaignStats {
    /// Cells folded in.
    pub cells: u64,
    /// Histogram of per-cell wall nanoseconds (timing — varies run to run).
    pub wall: Histogram,
    /// Histogram of per-cell message counts (deterministic).
    pub messages: Histogram,
    /// Histogram of per-cell digest counts (deterministic).
    pub digests: Histogram,
    /// Sum of the per-cell crypto deltas (equals the campaign's global counter delta).
    pub crypto: CounterSnapshot,
    /// Rollup by market size `k`.
    pub by_k: BTreeMap<usize, AxisRollup>,
    /// Rollup by adversary name.
    pub by_adversary: BTreeMap<String, AxisRollup>,
    /// Rollup by topology name.
    pub by_topology: BTreeMap<String, AxisRollup>,
    /// Every cell's `(wall_nanos, spec)`, in stream order; sorted on demand by
    /// [`top_cells`](Self::top_cells).
    costs: Vec<(u64, ScenarioSpec)>,
}

impl CampaignStats {
    /// Folds one cell into the statistics.
    pub fn record(&mut self, cell: &CellTelemetry) {
        self.cells += 1;
        self.wall.record(cell.wall_nanos);
        self.messages.record(cell.messages);
        self.digests.record(cell.crypto.digests_computed);
        self.crypto.digests_computed += cell.crypto.digests_computed;
        self.crypto.signatures_verified += cell.crypto.signatures_verified;
        self.crypto.verify_cache_hits += cell.crypto.verify_cache_hits;
        self.by_k.entry(cell.spec.k).or_default().record(cell);
        self.by_adversary.entry(cell.spec.adversary.to_string()).or_default().record(cell);
        self.by_topology.entry(cell.spec.topology.to_string()).or_default().record(cell);
        self.costs.push((cell.wall_nanos, cell.spec));
    }

    /// Reads and folds a whole sidecar stream, verifying schema and coordinate order.
    ///
    /// # Errors
    ///
    /// The first error the underlying [`TelemetryCells`] reader yields.
    pub fn from_stream<R: BufRead>(reader: R) -> Result<Self, ImportError> {
        let mut stats = Self::default();
        for cell in TelemetryCells::new(reader) {
            stats.record(&cell?);
        }
        Ok(stats)
    }

    /// The `n` most expensive cells by wall time, descending (ties broken by
    /// coordinate order, so the ranking is stable).
    pub fn top_cells(&self, n: usize) -> Vec<(u64, ScenarioSpec)> {
        let mut sorted = self.costs.clone();
        sorted.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        sorted.truncate(n);
        sorted
    }

    /// Renders the human-readable stats report `campaign_ctl stats` prints.
    pub fn render(&self, top_n: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "cells: {}", self.cells);
        let _ = writeln!(
            out,
            "crypto: digests={} verified={} cache_hits={}",
            self.crypto.digests_computed,
            self.crypto.signatures_verified,
            self.crypto.verify_cache_hits
        );
        for (name, unit, hist) in [
            ("wall", "us", &self.wall),
            ("messages", "", &self.messages),
            ("digests", "", &self.digests),
        ] {
            // Wall time renders in microseconds for readability; counts render raw.
            let scale = |v: u64| if unit == "us" { v / 1_000 } else { v };
            let _ = writeln!(
                out,
                "{name}: p50={}{unit} p90={}{unit} p99={}{unit} mean={}{unit} max={}{unit}",
                scale(hist.quantile(0.50)),
                scale(hist.quantile(0.90)),
                scale(hist.quantile(0.99)),
                scale(hist.mean()),
                scale(hist.max()),
            );
        }
        let _ = writeln!(out, "top {} cells by wall time:", top_n.min(self.costs.len()));
        for (wall, spec) in self.top_cells(top_n) {
            let _ = writeln!(out, "  {:>9}us  {spec}", wall / 1_000);
        }
        type AxisGroups<'a> = Box<dyn Iterator<Item = (String, &'a AxisRollup)> + 'a>;
        let axes: [(&str, AxisGroups<'_>); 3] = [
            ("k", Box::new(self.by_k.iter().map(|(k, r)| (k.to_string(), r)))),
            ("adversary", Box::new(self.by_adversary.iter().map(|(a, r)| (a.clone(), r)))),
            ("topology", Box::new(self.by_topology.iter().map(|(t, r)| (t.clone(), r)))),
        ];
        for (axis, groups) in axes {
            let _ = writeln!(out, "by {axis}:");
            for (value, rollup) in groups {
                let _ = writeln!(
                    out,
                    "  {value:<16} cells={:<5} wall={}us mean={}us messages={} digests={}",
                    rollup.cells,
                    rollup.wall_nanos / 1_000,
                    rollup.mean_wall_nanos() / 1_000,
                    rollup.messages,
                    rollup.digests,
                );
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Live shard heartbeats
// ---------------------------------------------------------------------------

/// Cells between heartbeat rewrites when the caller has no better idea. Each beat is
/// an fsync'd atomic rewrite, so beating on every cell would serialize fast campaigns
/// on disk flushes; every 32 cells keeps the signal fresh at negligible cost.
pub const HEARTBEAT_EVERY: usize = 32;

/// A live shard heartbeat: `progress.json` in the shard's out-dir, atomically
/// rewritten every `every` cells (plus once at creation and once at
/// [`finish`](Self::finish)).
///
/// The heartbeat is the dead-shard detection signal for a coordinator daemon: the
/// file always parses as complete JSON (each rewrite is a temp-file +
/// atomic-rename, never an in-place write, so a reader can never observe a torn
/// document), and a shard whose heartbeat stops advancing is dead. The document
/// carries `done`/`total`, the rate, the last finished coordinate, the process-global
/// crypto-counter delta since the heartbeat started, and the wall time; the two
/// non-integer timing values are rendered as decimal *strings* so the document stays
/// inside the integers-only JSON subset the engine's parsers accept.
///
/// `progress.json` is not a report artifact: it exists only while telemetry of a live
/// run is useful and never participates in merges or byte-identity comparisons.
#[derive(Debug)]
pub struct Heartbeat {
    path: PathBuf,
    every: usize,
    total: usize,
    done: usize,
    seq: u64,
    attempt: u32,
    last: Option<ScenarioSpec>,
    start: Instant,
    base: CounterSnapshot,
}

impl Heartbeat {
    /// Creates the heartbeat and writes the initial (0-done) `progress.json` into
    /// `dir` — a coordinator sees the shard as *alive* before its first cell lands.
    ///
    /// # Errors
    ///
    /// Any I/O error creating `dir` or writing the initial beat.
    pub fn new(dir: &Path, total: usize, every: usize) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut heartbeat = Self {
            path: dir.join("progress.json"),
            every: every.max(1),
            total,
            done: 0,
            seq: 0,
            attempt: 1,
            last: None,
            start: Instant::now(),
            base: bsm_crypto::counters::snapshot(),
        };
        heartbeat.write()?;
        Ok(heartbeat)
    }

    /// Pre-counts `done` cells as already finished (a resumed shard's salvaged
    /// prefix) and rewrites the beat to reflect them.
    ///
    /// # Errors
    ///
    /// Any I/O error rewriting the beat.
    pub fn starting_at(mut self, done: usize) -> std::io::Result<Self> {
        self.done = done;
        self.write()?;
        Ok(self)
    }

    /// Stamps the supervisor-assigned attempt number (1-based; see
    /// [`crate::supervise::ATTEMPT_ENV`]) and rewrites the beat. The supervisor's
    /// liveness check keys on the `(attempt, seq)` pair, so a relaunched worker's
    /// restarted `seq` is never mistaken for its dead predecessor's.
    ///
    /// # Errors
    ///
    /// Any I/O error rewriting the beat.
    pub fn attempt(mut self, attempt: u32) -> std::io::Result<Self> {
        self.attempt = attempt.max(1);
        self.write()?;
        Ok(self)
    }

    /// The path of the heartbeat document.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records one finished cell; rewrites `progress.json` every `every` cells.
    ///
    /// # Errors
    ///
    /// Any I/O error rewriting the beat.
    pub fn tick(&mut self, last: ScenarioSpec) -> std::io::Result<()> {
        self.done += 1;
        self.last = Some(last);
        if self.done.is_multiple_of(self.every) {
            self.write()?;
        }
        Ok(())
    }

    /// Writes the final beat (whatever `done` has reached) and consumes the
    /// heartbeat.
    ///
    /// # Errors
    ///
    /// Any I/O error rewriting the beat.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.write()
    }

    /// Atomically rewrites `progress.json` with the current state, bumping the
    /// monotone `seq` — the advancement signal a supervisor's stall watchdog
    /// polls (wall-clock alone cannot distinguish slow from wedged).
    fn write(&mut self) -> std::io::Result<()> {
        self.seq += 1;
        let wall = self.start.elapsed().as_secs_f64();
        let rate = if wall > 0.0 { self.done as f64 / wall } else { 0.0 };
        let delta = bsm_crypto::counters::snapshot() - self.base;
        let last = match &self.last {
            Some(spec) => format!(", \"last\": {{{}}}", spec_fields_json(spec)),
            None => String::new(),
        };
        let doc = format!(
            "{{\"done\": {}, \"total\": {}, \"seq\": {}, \"pid\": {}, \"attempt\": {}, \
             \"rate_per_sec\": \"{:.1}\", \
             \"wall_seconds\": \"{:.3}\"{}, \"crypto\": {{\"digests\": {}, \
             \"verified\": {}, \"cache_hits\": {}}}}}\n",
            self.done,
            self.total,
            self.seq,
            std::process::id(),
            self.attempt,
            rate,
            wall,
            last,
            delta.digests_computed,
            delta.signatures_verified,
            delta.verify_cache_hits,
        );
        crate::export::atomic_write(&self.path, doc)
    }
}

/// A parsed heartbeat document — what a coordinator (or `campaign_ctl stats`) reads
/// back from `progress.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// Cells finished so far.
    pub done: usize,
    /// Cells the shard owns in total.
    pub total: usize,
    /// Monotone rewrite counter — the advancement signal a stall watchdog keys
    /// on (0 when parsed from a pre-`seq` heartbeat file).
    pub seq: u64,
    /// The writing worker's process id (0 when parsed from a pre-`pid` file —
    /// [`crate::supervise::pid_alive`] treats 0 as "unknown").
    pub pid: u32,
    /// The supervisor-assigned attempt number (1 when absent or unsupervised).
    pub attempt: u32,
    /// Cells per second, as written (timing — informational).
    pub rate_per_sec: f64,
    /// Wall seconds since the heartbeat started (timing — informational).
    pub wall_seconds: f64,
    /// The last finished coordinate (`None` before the first beat-covered cell).
    pub last: Option<ScenarioSpec>,
    /// Process-global crypto-counter delta since the heartbeat started.
    pub crypto: CounterSnapshot,
}

/// Parses a `progress.json` heartbeat document.
///
/// # Errors
///
/// [`ImportError::Syntax`] for malformed JSON (including a torn write, which the
/// atomic-rename discipline makes impossible to observe from `Heartbeat` itself),
/// [`ImportError::Schema`] for a well-formed document that is not a heartbeat.
pub fn parse_progress(text: &str) -> Result<ProgressSnapshot, ImportError> {
    let value = Parser::new(text.trim_end()).parse_document()?;
    let fields = as_object(&value, "progress document")?;
    let timing_float = |name: &str| -> Result<f64, ImportError> {
        string(&fields, name)?
            .parse::<f64>()
            .map_err(|_| schema(format!("{name}: expected a decimal string")))
    };
    let last = match fields.iter().find(|(key, _)| key == "last") {
        Some((_, value)) => Some(parse_spec(&as_object(value, "last")?)?),
        None => None,
    };
    // Supervision fields arrived after the format's first release; a heartbeat
    // written by an older engine parses with "unknown" defaults instead of
    // failing, so a mixed-version fleet stays observable.
    let optional = |name: &str, default: u64| -> Result<u64, ImportError> {
        match fields.iter().any(|(key, _)| key == name) {
            true => number(&fields, name),
            false => Ok(default),
        }
    };
    let narrow = |name: &str, value: u64| -> Result<u32, ImportError> {
        u32::try_from(value).map_err(|_| schema(format!("{name}: value exceeds u32")))
    };
    let crypto = as_object(field(&fields, "crypto")?, "crypto")?;
    Ok(ProgressSnapshot {
        done: usize_field(&fields, "done")?,
        total: usize_field(&fields, "total")?,
        seq: optional("seq", 0)?,
        pid: narrow("pid", optional("pid", 0)?)?,
        attempt: narrow("attempt", optional("attempt", 1)?)?,
        rate_per_sec: timing_float("rate_per_sec")?,
        wall_seconds: timing_float("wall_seconds")?,
        last,
        crypto: CounterSnapshot {
            digests_computed: number(&crypto, "digests")?,
            signatures_verified: number(&crypto, "verified")?,
            verify_cache_hits: number(&crypto, "cache_hits")?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsm_core::harness::AdversarySpec;
    use bsm_core::problem::AuthMode;
    use bsm_net::Topology;

    fn spec(seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            k: 3,
            topology: Topology::FullyConnected,
            auth: AuthMode::Authenticated,
            t_l: 1,
            t_r: 1,
            adversary: AdversarySpec::Crash,
            faults: bsm_net::FaultSpec::NONE,
            seed,
        }
    }

    fn telemetry(seed: u64) -> CellTelemetry {
        CellTelemetry {
            spec: spec(seed),
            status: "completed",
            crypto: CounterSnapshot {
                digests_computed: 100 + seed,
                signatures_verified: 50,
                verify_cache_hits: 3,
            },
            messages: 400,
            delivered: 390,
            dropped: 8,
            delayed: 4,
            rejected: 2,
            slots: 11,
            fanout: FanoutSummary {
                honest: RoleFanout { senders: 4, total: 350, max: 99 },
                byzantine: RoleFanout { senders: 2, total: 50, max: 30 },
            },
            wall_nanos: 123_456,
        }
    }

    #[test]
    fn telemetry_line_round_trips() {
        let cell = telemetry(7);
        let parsed = parse_telemetry_line(&cell.to_json()).unwrap();
        assert_eq!(parsed, cell);
        // The without-run shape round-trips too.
        let bare = CellTelemetry::without_run(
            spec(9),
            "failed",
            CounterSnapshot { digests_computed: 5, ..Default::default() },
            77,
        );
        assert_eq!(parse_telemetry_line(&bare.to_json()).unwrap(), bare);
    }

    #[test]
    fn timing_is_the_trailing_suffix_of_the_full_line() {
        let cell = telemetry(1);
        let full = cell.to_json();
        let deterministic = cell.deterministic_json();
        // Stripping the timing suffix textually yields the deterministic projection.
        let stripped = full
            .strip_suffix(&format!(", \"timing\": {{\"wall_nanos\": {}}}}}", cell.wall_nanos))
            .expect("timing must be the final key");
        assert_eq!(format!("{stripped}}}"), deterministic);
        // Two cells differing only in wall time agree on the projection.
        let other = CellTelemetry { wall_nanos: 999, ..cell };
        assert_eq!(other.deterministic_json(), deterministic);
        assert_ne!(other.to_json(), full);
    }

    #[test]
    fn malformed_telemetry_lines_are_rejected() {
        for bad in [
            "not json",
            "{\"k\": 3}",
            "[1]",
            // Valid spec but an unknown status.
            &telemetry(0).to_json().replace("completed", "exploded"),
            // Missing timing object.
            &telemetry(0).deterministic_json(),
        ] {
            assert!(parse_telemetry_line(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn exporter_enforces_canonical_order_and_reader_inverts_it() {
        let cells = [telemetry(0), telemetry(1), telemetry(5)];
        let mut buf = Vec::new();
        let mut exporter = TelemetryExporter::new(&mut buf);
        for cell in &cells {
            exporter.write_cell(cell).unwrap();
        }
        assert_eq!(exporter.finish().unwrap(), 3);
        let read: Vec<CellTelemetry> =
            TelemetryCells::new(&buf[..]).collect::<Result<_, _>>().unwrap();
        assert_eq!(read, cells);

        let mut exporter = TelemetryExporter::new(Vec::new());
        exporter.write_cell(&telemetry(5)).unwrap();
        let err = exporter.write_cell(&telemetry(0)).unwrap_err();
        assert!(matches!(err, StreamError::OutOfOrder { .. }), "{err}");
    }

    #[test]
    fn reader_rejects_out_of_order_blank_and_malformed_lines() {
        let (a, b) = (telemetry(0).to_json(), telemetry(1).to_json());
        for (bad, needle) in [
            (format!("{b}\n{a}\n"), "out of canonical coordinate order"),
            (format!("{a}\n\n{b}\n"), "blank line"),
            (format!("{a}\nnot json\n"), "line 2"),
        ] {
            let err =
                TelemetryCells::new(bad.as_bytes()).collect::<Result<Vec<_>, _>>().unwrap_err();
            assert!(err.to_string().contains(needle), "{bad:?}: {err}");
        }
        // An empty stream is an empty (not failed) telemetry set.
        assert!(TelemetryCells::new(&b""[..]).next().is_none());
    }

    #[test]
    fn histogram_bucketing_is_total_monotone_and_bound_consistent() {
        // Totality + bucket/bound agreement at every boundary and extreme.
        let mut probes = vec![0u64, 1, 2, 3, u64::MAX];
        for shift in 1..64u32 {
            let boundary = 1u64 << shift;
            probes.extend([boundary - 1, boundary, boundary + 1]);
        }
        let mut last_index = 0usize;
        probes.sort_unstable();
        for &value in &probes {
            let index = Histogram::bucket_index(value);
            assert!(index < HISTOGRAM_BUCKETS, "{value} fell out of range");
            let (low, high) = Histogram::bucket_bounds(index);
            assert!(low <= value && value <= high, "{value} outside bucket {index}");
            assert!(index >= last_index, "bucketing not monotone at {value}");
            last_index = index;
        }
        // Bounds tile u64 exactly: each bucket starts right after the previous ends.
        for index in 1..HISTOGRAM_BUCKETS {
            let (low, _) = Histogram::bucket_bounds(index);
            let (_, previous_high) = Histogram::bucket_bounds(index - 1);
            assert_eq!(low, previous_high + 1, "gap before bucket {index}");
        }
        assert_eq!(Histogram::bucket_bounds(HISTOGRAM_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn histogram_quantiles_and_mean_behave() {
        let mut hist = Histogram::new();
        assert_eq!(hist.quantile(0.5), 0);
        assert_eq!(hist.mean(), 0);
        for v in 1..=100u64 {
            hist.record(v);
        }
        assert_eq!(hist.count(), 100);
        assert_eq!(hist.mean(), 50);
        assert_eq!(hist.max(), 100);
        // Quantiles report bucket upper bounds: p50 of 1..=100 lands in [33..64].
        let p50 = hist.quantile(0.50);
        assert!((50..=63).contains(&p50), "p50 = {p50}");
        // p99 and p100 land in the top bucket, clamped to the true max.
        assert_eq!(hist.quantile(1.0), 100);
        assert!(hist.quantile(0.99) <= 100);
        // Monotone in q.
        assert!(hist.quantile(0.5) <= hist.quantile(0.9));
        assert!(hist.quantile(0.9) <= hist.quantile(0.99));
    }

    #[test]
    fn campaign_stats_fold_rollups_and_rank_top_cells() {
        let mut stats = CampaignStats::default();
        for seed in 0..4 {
            let mut cell = telemetry(seed);
            cell.wall_nanos = (4 - seed) * 1_000_000; // earlier seeds are slower
            cell.spec.k = 3 + seed as usize % 2;
            stats.record(&cell);
        }
        assert_eq!(stats.cells, 4);
        assert_eq!(stats.crypto.signatures_verified, 200);
        assert_eq!(stats.by_k.len(), 2);
        assert_eq!(stats.by_adversary["crash"].cells, 4);
        assert_eq!(stats.by_topology["fully-connected"].messages, 1600);
        let top = stats.top_cells(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 4_000_000);
        assert_eq!(top[0].1.seed, 0);
        assert!(top[0].0 >= top[1].0);
        let rendered = stats.render(3);
        for needle in ["cells: 4", "p50=", "p99=", "top 3 cells", "by k:", "by adversary:"] {
            assert!(rendered.contains(needle), "missing {needle} in:\n{rendered}");
        }
        // Stream round-trip: export, fold from the stream, same statistics.
        let mut buf = Vec::new();
        let mut exporter = TelemetryExporter::new(&mut buf);
        for seed in 0..4 {
            exporter.write_cell(&telemetry(seed)).unwrap();
        }
        exporter.finish().unwrap();
        let streamed = CampaignStats::from_stream(&buf[..]).unwrap();
        assert_eq!(streamed.cells, 4);
        assert_eq!(streamed.messages.count(), 4);
    }

    #[test]
    fn heartbeat_writes_parse_and_advance() {
        let dir = std::env::temp_dir().join("bsm-engine-telemetry-tests").join("heartbeat_basic");
        let _ = std::fs::remove_dir_all(&dir);
        let mut heartbeat = Heartbeat::new(&dir, 10, 2).unwrap();
        let initial = parse_progress(&std::fs::read_to_string(heartbeat.path()).unwrap()).unwrap();
        assert_eq!((initial.done, initial.total), (0, 10));
        assert_eq!(initial.last, None);
        assert_eq!(initial.seq, 1, "the creation beat is rewrite #1");
        assert_eq!(initial.pid, std::process::id());
        assert_eq!(initial.attempt, 1);
        heartbeat.tick(spec(0)).unwrap();
        heartbeat.tick(spec(1)).unwrap(); // every=2: this tick rewrites
        let mid = parse_progress(&std::fs::read_to_string(heartbeat.path()).unwrap()).unwrap();
        assert_eq!(mid.done, 2);
        assert_eq!(mid.last, Some(spec(1)));
        heartbeat.tick(spec(2)).unwrap();
        let path = heartbeat.path().to_path_buf();
        heartbeat.finish().unwrap();
        let done = parse_progress(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(done.done, 3, "finish must flush the un-beaten tail");
        assert_eq!(done.last, Some(spec(2)));
        assert!(done.wall_seconds >= 0.0);
        assert_eq!(done.seq, 3, "seq is monotone across every rewrite");
    }

    #[test]
    fn supervised_heartbeat_stamps_the_attempt_number() {
        let dir = std::env::temp_dir().join("bsm-engine-telemetry-tests").join("heartbeat_attempt");
        let _ = std::fs::remove_dir_all(&dir);
        let heartbeat =
            Heartbeat::new(&dir, 10, 32).unwrap().starting_at(6).unwrap().attempt(3).unwrap();
        let beat = parse_progress(&std::fs::read_to_string(heartbeat.path()).unwrap()).unwrap();
        assert_eq!((beat.done, beat.total, beat.attempt), (6, 10, 3));
        assert_eq!(beat.seq, 3, "new + starting_at + attempt = three rewrites");
    }

    #[test]
    fn pre_supervision_heartbeats_parse_with_defaults() {
        // A heartbeat written before seq/pid/attempt existed must still parse —
        // a mixed-version fleet stays observable.
        let old = "{\"done\": 4, \"total\": 9, \"rate_per_sec\": \"2.0\", \
                   \"wall_seconds\": \"2.000\", \"crypto\": {\"digests\": 0, \
                   \"verified\": 0, \"cache_hits\": 0}}";
        let parsed = parse_progress(old).unwrap();
        assert_eq!((parsed.done, parsed.total), (4, 9));
        assert_eq!((parsed.seq, parsed.pid, parsed.attempt), (0, 0, 1));
    }

    #[test]
    fn resumed_heartbeat_starts_at_the_salvaged_count() {
        let dir = std::env::temp_dir().join("bsm-engine-telemetry-tests").join("heartbeat_resume");
        let _ = std::fs::remove_dir_all(&dir);
        let heartbeat = Heartbeat::new(&dir, 10, 32).unwrap().starting_at(6).unwrap();
        let beat = parse_progress(&std::fs::read_to_string(heartbeat.path()).unwrap()).unwrap();
        assert_eq!((beat.done, beat.total), (6, 10));
    }

    #[test]
    fn progress_documents_reject_wrong_shapes() {
        for bad in [
            "",
            "[1]",
            "{\"done\": 1}",
            // rate as a bare number would be a float — the schema wants a string.
            "{\"done\": 1, \"total\": 2, \"rate_per_sec\": 1, \"wall_seconds\": \"0.1\", \
             \"crypto\": {\"digests\": 0, \"verified\": 0, \"cache_hits\": 0}}",
            "{\"done\": 1, \"total\": 2, \"rate_per_sec\": \"x\", \"wall_seconds\": \"0.1\", \
             \"crypto\": {\"digests\": 0, \"verified\": 0, \"cache_hits\": 0}}",
        ] {
            assert!(parse_progress(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
