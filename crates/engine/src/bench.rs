//! The fixed benchmark campaign behind `BENCH_engine.json`.
//!
//! `campaign_ctl bench` runs a **fixed, Dolev-Strong-heavy** campaign — authenticated
//! fully-connected settings only, so every solvable cell executes the signature-chain
//! hot path — and writes a [`BenchSnapshot`] as JSON. The snapshot is the engine's
//! tracked performance trajectory: the repo root carries the latest
//! `BENCH_engine.json`, and a PR that touches the hot path re-runs the mode and
//! reports the before/after deltas.
//!
//! Two kinds of numbers live side by side:
//!
//! * **wall-clock** (`wall_seconds`, `scenarios_per_sec`) — honest but noisy on
//!   shared single-core CI hardware,
//! * **work counters** (`digests_computed`, `signatures_verified`,
//!   `verify_cache_hits`, read as before/after deltas of
//!   [`bsm_crypto::counters`]) — deterministic for a fixed campaign, so a hot-path
//!   optimization shows up as a hard counter drop no matter the hardware.
//!
//! The deterministic campaign *outputs* (`messages`, `slots`, `signatures`) are
//! included as a cross-check: an optimization must move the work counters while
//! leaving these — and every exported report — untouched.

use crate::campaign::{Campaign, CampaignBuilder};
use crate::executor::Executor;
use bsm_core::harness::AdversarySpec;
use bsm_core::problem::AuthMode;
use bsm_net::Topology;

/// The JSON keys every snapshot carries, in output order. The CI `bench-smoke` job
/// fails when any of them is missing from the written `BENCH_engine.json`.
pub const REQUIRED_KEYS: [&str; 13] = [
    "mode",
    "threads",
    "cells",
    "completed",
    "wall_seconds",
    "scenarios_per_sec",
    "signatures_issued",
    "signatures_verified",
    "verify_cache_hits",
    "digests_computed",
    "messages",
    "slots",
    "violations",
];

/// The fixed Dolev-Strong-heavy benchmark campaign.
///
/// Authenticated + fully connected pins the plan to Dolev-Strong broadcast (Theorem 5)
/// for every cell, and the corruption pairs raise `t` so the signature chains grow:
/// per cell, each of the `2k` parties runs `2k` broadcast instances of `t + 2` rounds,
/// which is exactly the chain-verification workload the hot-path optimizations target.
///
/// `quick` selects the small CI grid (12 cells); the full grid (72 cells, sizes up to
/// `k = 14` and `t` up to 10) is the one the tracked repo-root `BENCH_engine.json` is
/// produced from.
pub fn dolev_strong_campaign(quick: bool) -> Campaign {
    let builder = CampaignBuilder::new()
        .topologies([Topology::FullyConnected])
        .auth_modes([AuthMode::Authenticated])
        .adversaries(AdversarySpec::ALL);
    if quick {
        builder.sizes([3, 4]).corruptions([(1, 1)]).seeds(0..2).build()
    } else {
        builder.sizes([10, 12, 14]).corruptions([(4, 4), (5, 5)]).seeds(0..4).build()
    }
}

/// One measured run of the fixed benchmark campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// `"quick"` (CI grid) or `"full"` (the tracked baseline grid).
    pub mode: String,
    /// Worker threads used.
    pub threads: usize,
    /// Cells in the campaign.
    pub cells: usize,
    /// Cells whose protocol ran to completion.
    pub completed: usize,
    /// Wall-clock time of the run, in seconds.
    pub wall_seconds: f64,
    /// Cells per wall-clock second.
    pub scenarios_per_sec: f64,
    /// Signatures produced during the campaign (deterministic report total).
    pub signatures_issued: u64,
    /// Full signature verifications performed (process-counter delta).
    pub signatures_verified: u64,
    /// Verifications answered from a per-verifier memo (process-counter delta).
    ///
    /// **Expected to be 0 on this campaign** — genuinely, not from a wiring gap (the
    /// memo and its counter are exercised by `crates/broadcast` tests): a
    /// [`Verifier`](bsm_crypto::Verifier) memo is per-party-per-instance and only
    /// remembers *successful* verifications, while Dolev-Strong skips every further
    /// chain for a value it has already extracted before touching a signature. A hit
    /// therefore needs two chains for the same **not-yet-extracted** value sharing a
    /// valid prefix — i.e. a chain with a valid prefix and a broken tail, followed by
    /// a valid chain — and none of the benchmark's adversaries forge such chains. The
    /// key is kept in the snapshot as a tripwire: a nonzero value means the protocol
    /// started re-verifying chains it used to skip.
    pub verify_cache_hits: u64,
    /// Digests computed (process-counter delta).
    pub digests_computed: u64,
    /// Messages delivered across completed cells (deterministic report total).
    pub messages: u64,
    /// Simulated slots across completed cells (deterministic report total).
    pub slots: u64,
    /// Property violations across completed cells (must stay 0).
    pub violations: usize,
}

impl BenchSnapshot {
    /// Renders the snapshot as a small stable-key-order JSON document (one key per
    /// line, every [`REQUIRED_KEYS`] entry present).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"mode\": \"{}\",\n  \"threads\": {},\n  \"cells\": {},\n  \
             \"completed\": {},\n  \"wall_seconds\": {:.3},\n  \
             \"scenarios_per_sec\": {:.1},\n  \"signatures_issued\": {},\n  \
             \"signatures_verified\": {},\n  \"verify_cache_hits\": {},\n  \
             \"digests_computed\": {},\n  \"messages\": {},\n  \"slots\": {},\n  \
             \"violations\": {}\n}}\n",
            self.mode,
            self.threads,
            self.cells,
            self.completed,
            self.wall_seconds,
            self.scenarios_per_sec,
            self.signatures_issued,
            self.signatures_verified,
            self.verify_cache_hits,
            self.digests_computed,
            self.messages,
            self.slots,
            self.violations
        )
    }
}

/// Runs the fixed benchmark campaign on `executor` and snapshots throughput and
/// crypto-work counters.
///
/// The counter deltas are process-global ([`bsm_crypto::counters`]): run the bench in
/// a process that is not concurrently hashing for other reasons (as `campaign_ctl
/// bench` does) for exact numbers.
pub fn run(executor: &Executor, quick: bool) -> BenchSnapshot {
    let campaign = dolev_strong_campaign(quick);
    let before = bsm_crypto::counters::snapshot();
    let (report, stats) = executor.run(&campaign);
    let delta = bsm_crypto::counters::snapshot() - before;
    let totals = report.totals();
    BenchSnapshot {
        mode: if quick { "quick".into() } else { "full".into() },
        threads: stats.threads,
        cells: campaign.len(),
        completed: totals.completed,
        wall_seconds: stats.elapsed.as_secs_f64(),
        scenarios_per_sec: stats.throughput(),
        signatures_issued: totals.signatures,
        signatures_verified: delta.signatures_verified,
        verify_cache_hits: delta.verify_cache_hits,
        digests_computed: delta.digests_computed,
        messages: totals.messages,
        slots: totals.slots,
        violations: totals.violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_is_dolev_strong_only_and_fixed() {
        let campaign = dolev_strong_campaign(true);
        assert_eq!(campaign.len(), 12);
        for spec in campaign.specs() {
            assert_eq!(spec.topology, Topology::FullyConnected);
            assert_eq!(spec.auth, AuthMode::Authenticated);
        }
        assert_eq!(dolev_strong_campaign(false).len(), 72);
    }

    #[test]
    fn snapshot_json_carries_every_required_key() {
        let executor = Executor::new().threads(1);
        let snapshot = run(&executor, true);
        assert_eq!(snapshot.cells, 12);
        assert_eq!(snapshot.completed, 12, "every authenticated full-mesh cell is solvable");
        assert_eq!(snapshot.violations, 0);
        assert!(snapshot.signatures_issued > 0);
        assert!(snapshot.signatures_verified > 0, "Dolev-Strong chains must verify");
        assert!(snapshot.digests_computed > 0);
        let json = snapshot.to_json();
        for key in REQUIRED_KEYS {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key} in {json}");
        }
    }
}
