//! Deterministic aggregation of campaign results.
//!
//! A [`CampaignReport`] holds one [`CellRecord`] per campaign cell, in the campaign's
//! canonical order, plus aggregate [`Totals`] derived from them. Everything in the
//! report is a pure function of the campaign definition — wall-clock timing and thread
//! counts live in [`ExecutionStats`], which is deliberately kept *outside* the report
//! so that exports stay bit-identical across thread counts and machines.

use crate::grid::ScenarioSpec;
use bsm_core::solvability::ProtocolPlan;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::ops::AddAssign;
use std::time::Duration;

/// What happened when one cell was run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// The prescribed protocol ran to completion (possibly with property violations —
    /// those are data, not errors).
    Completed(CellStats),
    /// Theorems 2–7 rule the setting unsolvable; nothing was run.
    Unsolvable {
        /// The theorem establishing the impossibility.
        theorem: String,
        /// The violated condition, human-readable.
        reason: String,
    },
    /// The cell could not be built or run (invalid coordinates, simulator error).
    Failed {
        /// The error message.
        message: String,
    },
}

impl CellOutcome {
    /// Short status keyword used in exports (`completed` / `unsolvable` / `failed`).
    pub fn status(&self) -> &'static str {
        match self {
            CellOutcome::Completed(_) => "completed",
            CellOutcome::Unsolvable { .. } => "unsolvable",
            CellOutcome::Failed { .. } => "failed",
        }
    }

    /// The stats, when the cell completed.
    pub fn stats(&self) -> Option<&CellStats> {
        match self {
            CellOutcome::Completed(stats) => Some(stats),
            _ => None,
        }
    }
}

/// Per-cell outcome statistics for a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellStats {
    /// The protocol plan that was executed.
    pub plan: ProtocolPlan,
    /// Whether every honest party decided within the slot budget.
    pub all_honest_decided: bool,
    /// Number of bSM property violations (0 = the run satisfies Definition 1).
    pub violations: usize,
    /// Simulated slots ("rounds" at topology granularity).
    pub slots: u64,
    /// Messages accepted into the network (honest + byzantine).
    pub messages: u64,
    /// Signatures produced during the run.
    pub signatures: u64,
}

/// One campaign cell: its grid coordinates plus what happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// The coordinates the cell was built from.
    pub spec: ScenarioSpec,
    /// The result.
    pub outcome: CellOutcome,
}

/// Aggregate counters over a whole campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Totals {
    /// Number of cells in the campaign.
    pub scenarios: usize,
    /// Cells whose protocol ran to completion.
    pub completed: usize,
    /// Completed cells with zero violations and all honest parties decided.
    pub solved_clean: usize,
    /// Cells ruled unsolvable by the characterization.
    pub unsolvable: usize,
    /// Cells that failed to build or run.
    pub failed: usize,
    /// Total property violations across completed cells.
    pub violations: usize,
    /// Total simulated slots across completed cells.
    pub slots: u64,
    /// Total messages across completed cells.
    pub messages: u64,
    /// Total signatures across completed cells.
    pub signatures: u64,
}

impl Totals {
    /// Folds one cell outcome into the running totals (incrementing `scenarios`).
    ///
    /// This is the streaming counterpart of [`CampaignReport::new`]'s aggregation: the
    /// streamed export path folds every completed cell into a rolling `Totals` instead
    /// of retaining the full [`CellRecord`] vector, and both paths produce the same
    /// totals for the same cells.
    pub fn record(&mut self, outcome: &CellOutcome) {
        self.scenarios += 1;
        match outcome {
            CellOutcome::Completed(stats) => {
                self.completed += 1;
                if stats.violations == 0 && stats.all_honest_decided {
                    self.solved_clean += 1;
                }
                self.violations += stats.violations;
                self.slots += stats.slots;
                self.messages += stats.messages;
                self.signatures += stats.signatures;
            }
            CellOutcome::Unsolvable { .. } => self.unsolvable += 1,
            CellOutcome::Failed { .. } => self.failed += 1,
        }
    }
}

/// Field-wise addition, used to pre-compute merged totals from per-shard footers
/// before any merged cell has been streamed.
impl AddAssign for Totals {
    fn add_assign(&mut self, other: Totals) {
        self.scenarios += other.scenarios;
        self.completed += other.completed;
        self.solved_clean += other.solved_clean;
        self.unsolvable += other.unsolvable;
        self.failed += other.failed;
        self.violations += other.violations;
        self.slots += other.slots;
        self.messages += other.messages;
        self.signatures += other.signatures;
    }
}

impl fmt::Display for Totals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} scenarios: {} completed ({} clean), {} unsolvable, {} failed, \
             {} violations, {} slots, {} messages, {} signatures",
            self.scenarios,
            self.completed,
            self.solved_clean,
            self.unsolvable,
            self.failed,
            self.violations,
            self.slots,
            self.messages,
            self.signatures
        )
    }
}

/// The aggregated result of one campaign run, in canonical cell order.
///
/// The report is a pure function of the campaign definition: running the same campaign
/// with any number of worker threads produces an identical (`==`, and byte-identical
/// once exported) report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    cells: Vec<CellRecord>,
    totals: Totals,
    scenario: Option<String>,
}

impl CampaignReport {
    /// Builds a report from per-cell records already in canonical order.
    pub fn new(cells: Vec<CellRecord>) -> Self {
        let mut totals = Totals::default();
        for cell in &cells {
            totals.record(&cell.outcome);
        }
        Self { cells, totals, scenario: None }
    }

    /// Tags the report with the canonical serialization of the scenario file it was
    /// run from. The tag is embedded in exports (as the JSON document's first key and
    /// the JSONL footer) and checked by [`merge`](Self::merge), so artifacts from
    /// different scenarios can never be silently combined.
    #[must_use]
    pub fn with_scenario(mut self, scenario: impl Into<String>) -> Self {
        self.scenario = Some(scenario.into());
        self
    }

    /// The canonical scenario serialization this report is tagged with, if any.
    pub fn scenario(&self) -> Option<&str> {
        self.scenario.as_deref()
    }

    /// Recombines shard reports into one report in canonical coordinate order.
    ///
    /// The shards may be given in any order: cells are re-sorted by their grid
    /// coordinates (the same nesting the canonical expansion uses — size, topology,
    /// auth, corruption pair, adversary, fault plan, seed) and the totals are recomputed from the
    /// union. [`CampaignBuilder::build`] normalizes its axes so expansion order *is*
    /// coordinate order, which makes exporting the merged report reproduce the
    /// unsharded `to_json`/`to_csv` documents byte for byte. (A hand-assembled
    /// [`Campaign::from_specs`] work list in non-coordinate order is still merged
    /// deterministically, but in coordinate order rather than its original order.)
    ///
    /// [`CampaignBuilder::build`]: crate::campaign::CampaignBuilder::build
    /// [`Campaign::from_specs`]: crate::campaign::Campaign::from_specs
    ///
    /// # Examples
    ///
    /// ```rust
    /// use bsm_engine::{CampaignBuilder, CampaignReport, Executor, ShardPlan};
    ///
    /// let campaign = CampaignBuilder::new().sizes([3]).seeds(0..2).build();
    /// let executor = Executor::new().threads(2);
    /// let (whole, _) = executor.run(&campaign);
    /// // Run the campaign as two shards (as two processes would) and recombine.
    /// let halves: Vec<_> = (0..2)
    ///     .map(|i| executor.run_shard(&campaign, ShardPlan::new(i, 2).unwrap()).0)
    ///     .collect();
    /// let merged = CampaignReport::merge(halves).unwrap();
    /// assert_eq!(merged, whole);
    /// ```
    ///
    /// # Errors
    ///
    /// [`MergeError::DuplicateCell`] when two shards carry the same coordinates —
    /// overlapping shard ranges, or the same shard imported twice — and
    /// [`MergeError::ScenarioMismatch`] when the shards carry different scenario tags
    /// (the common tag, if any, is propagated to the merged report).
    pub fn merge(shards: impl IntoIterator<Item = CampaignReport>) -> Result<Self, MergeError> {
        let shards: Vec<CampaignReport> = shards.into_iter().collect();
        let mut scenario: Option<String> = None;
        for (i, shard) in shards.iter().enumerate() {
            if i > 0 && shard.scenario != scenario {
                return Err(MergeError::ScenarioMismatch {
                    first: scenario,
                    other: shard.scenario.clone(),
                });
            }
            scenario.clone_from(&shard.scenario);
        }
        let mut cells: Vec<CellRecord> =
            shards.into_iter().flat_map(|report| report.cells).collect();
        cells.sort_by_key(|cell| cell.spec);
        if let Some(dup) = cells.windows(2).find(|pair| pair[0].spec == pair[1].spec) {
            return Err(MergeError::DuplicateCell(dup[0].spec));
        }
        let mut merged = Self::new(cells);
        merged.scenario = scenario;
        Ok(merged)
    }

    /// The per-cell records, in canonical order.
    pub fn cells(&self) -> &[CellRecord] {
        &self.cells
    }

    /// The aggregate counters.
    pub fn totals(&self) -> Totals {
        self.totals
    }
}

/// Errors recombining shard reports with [`CampaignReport::merge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// Two shards carried a cell with the same grid coordinates.
    DuplicateCell(ScenarioSpec),
    /// Shards carried different scenario tags — artifacts of different scenario files
    /// (or a mix of tagged and untagged artifacts) must not be combined.
    ScenarioMismatch {
        /// The scenario tag of the first shard(s).
        first: Option<String>,
        /// The conflicting tag.
        other: Option<String>,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::DuplicateCell(spec) => {
                write!(f, "duplicate cell across shards: {spec}")
            }
            MergeError::ScenarioMismatch { first, other } => {
                let name = |s: &Option<String>| match s {
                    Some(tag) => format!("{tag:?}"),
                    None => "no scenario tag".to_string(),
                };
                write!(
                    f,
                    "shards come from different scenarios: {} vs {}",
                    name(first),
                    name(other)
                )
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// A streaming k-way merge of coordinate-sorted [`CellRecord`] streams.
///
/// This is [`CampaignReport::merge`] without the memory: instead of materializing
/// every shard report, the coordinator holds **one pending cell per shard** in a
/// binary heap and yields the union in canonical coordinate order. Feeding the merged
/// stream through the streaming writers in [`crate::export`] reproduces the unsharded
/// in-memory export byte for byte, which is the contract
/// `crates/engine/tests/streaming_merge.rs` proves.
///
/// Each input stream must yield cells in strictly increasing coordinate order (the
/// order [`crate::import::StreamingCells`] verifies and
/// [`crate::export::StreamingExporter`] enforces on write). The merge is fail-fast:
/// the first shard read error, duplicate coordinate or ordering violation is yielded
/// as an error and the iterator then fuses to `None`.
#[derive(Debug)]
pub struct CellMerge<I, E>
where
    I: Iterator<Item = Result<CellRecord, E>>,
{
    shards: Vec<I>,
    heap: BinaryHeap<Reverse<MergeEntry>>,
    last: Option<ScenarioSpec>,
    started: bool,
    done: bool,
}

/// One shard's pending cell. Ordered by (coordinates, shard index) so the heap pops
/// the globally smallest cell and ties (duplicates across shards) pop adjacently,
/// where the duplicate check catches them.
#[derive(Debug)]
struct MergeEntry {
    record: CellRecord,
    shard: usize,
}

impl Ord for MergeEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.record.spec, self.shard).cmp(&(other.record.spec, other.shard))
    }
}

impl PartialOrd for MergeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for MergeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for MergeEntry {}

impl<I, E> CellMerge<I, E>
where
    I: Iterator<Item = Result<CellRecord, E>>,
{
    /// Prepares a merge over `shards` (in any order; the heap restores coordinate
    /// order). Streams are only pulled from once iteration starts.
    pub fn new(shards: Vec<I>) -> Self {
        let heap = BinaryHeap::with_capacity(shards.len());
        Self { shards, heap, last: None, started: false, done: false }
    }

    /// Pulls the next cell of shard `shard` into the heap; surfaces read errors.
    fn refill(&mut self, shard: usize) -> Result<(), CellMergeError<E>> {
        match self.shards[shard].next() {
            None => Ok(()),
            Some(Ok(record)) => {
                self.heap.push(Reverse(MergeEntry { record, shard }));
                Ok(())
            }
            Some(Err(error)) => Err(CellMergeError::Shard { shard, error }),
        }
    }
}

impl<I, E> Iterator for CellMerge<I, E>
where
    I: Iterator<Item = Result<CellRecord, E>>,
{
    type Item = Result<CellRecord, CellMergeError<E>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            for shard in 0..self.shards.len() {
                if let Err(err) = self.refill(shard) {
                    self.done = true;
                    return Some(Err(err));
                }
            }
        }
        let Some(Reverse(entry)) = self.heap.pop() else {
            self.done = true;
            return None;
        };
        if let Err(err) = self.refill(entry.shard) {
            self.done = true;
            return Some(Err(err));
        }
        if let Some(previous) = self.last {
            match entry.record.spec.cmp(&previous) {
                std::cmp::Ordering::Equal => {
                    self.done = true;
                    return Some(Err(CellMergeError::DuplicateCell(entry.record.spec)));
                }
                std::cmp::Ordering::Less => {
                    self.done = true;
                    return Some(Err(CellMergeError::OutOfOrder {
                        shard: entry.shard,
                        spec: entry.record.spec,
                    }));
                }
                std::cmp::Ordering::Greater => {}
            }
        }
        self.last = Some(entry.record.spec);
        Some(Ok(entry.record))
    }
}

/// Errors of a streaming [`CellMerge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellMergeError<E> {
    /// Reading shard `shard`'s cell stream failed.
    Shard {
        /// 0-based index of the failing stream (the order given to [`CellMerge::new`]).
        shard: usize,
        /// The underlying stream error.
        error: E,
    },
    /// Two streams carried a cell with the same grid coordinates — overlapping shard
    /// ranges, or the same shard merged twice.
    DuplicateCell(ScenarioSpec),
    /// A stream yielded cells out of canonical coordinate order.
    OutOfOrder {
        /// 0-based index of the unsorted stream.
        shard: usize,
        /// The coordinates that arrived after a larger coordinate.
        spec: ScenarioSpec,
    },
}

impl<E: fmt::Display> fmt::Display for CellMergeError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellMergeError::Shard { shard, error } => {
                write!(f, "shard stream {shard} failed: {error}")
            }
            CellMergeError::DuplicateCell(spec) => {
                write!(f, "duplicate cell across shard streams: {spec}")
            }
            CellMergeError::OutOfOrder { shard, spec } => {
                write!(f, "shard stream {shard} is out of canonical coordinate order at {spec}")
            }
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for CellMergeError<E> {}

/// Wall-clock statistics of one executor run. Kept separate from [`CampaignReport`] so
/// exports stay deterministic.
#[derive(Debug, Clone, Copy)]
pub struct ExecutionStats {
    /// Worker threads used.
    pub threads: usize,
    /// Scenarios executed.
    pub scenarios: usize,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl ExecutionStats {
    /// Scenarios per second (0 when nothing ran or time was unmeasurably short).
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.scenarios as f64 / secs
        } else {
            0.0
        }
    }
}

impl fmt::Display for ExecutionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} scenarios in {:.2?} on {} thread{} ({:.1} scenarios/sec)",
            self.scenarios,
            self.elapsed,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.throughput()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsm_core::harness::AdversarySpec;
    use bsm_core::problem::AuthMode;
    use bsm_net::Topology;

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            k: 3,
            topology: Topology::FullyConnected,
            auth: AuthMode::Authenticated,
            t_l: 0,
            t_r: 0,
            adversary: AdversarySpec::Crash,
            faults: bsm_net::FaultSpec::NONE,
            seed: 0,
        }
    }

    fn completed(violations: usize) -> CellRecord {
        CellRecord {
            spec: spec(),
            outcome: CellOutcome::Completed(CellStats {
                plan: ProtocolPlan::DolevStrongBsm,
                all_honest_decided: true,
                violations,
                slots: 10,
                messages: 100,
                signatures: 5,
            }),
        }
    }

    #[test]
    fn totals_aggregate_by_outcome() {
        let cells = vec![
            completed(0),
            completed(2),
            CellRecord {
                spec: spec(),
                outcome: CellOutcome::Unsolvable {
                    theorem: "Theorem 2".into(),
                    reason: "x".into(),
                },
            },
            CellRecord { spec: spec(), outcome: CellOutcome::Failed { message: "boom".into() } },
        ];
        let report = CampaignReport::new(cells);
        let totals = report.totals();
        assert_eq!(totals.scenarios, 4);
        assert_eq!(totals.completed, 2);
        assert_eq!(totals.solved_clean, 1);
        assert_eq!(totals.unsolvable, 1);
        assert_eq!(totals.failed, 1);
        assert_eq!(totals.violations, 2);
        assert_eq!(totals.slots, 20);
        assert_eq!(totals.messages, 200);
        assert_eq!(totals.signatures, 10);
        assert!(totals.to_string().contains("4 scenarios"));
        assert_eq!(report.cells().len(), 4);
    }

    #[test]
    fn outcome_status_and_stats() {
        assert_eq!(completed(0).outcome.status(), "completed");
        assert!(completed(0).outcome.stats().is_some());
        let unsolvable =
            CellOutcome::Unsolvable { theorem: "Theorem 3".into(), reason: "y".into() };
        assert_eq!(unsolvable.status(), "unsolvable");
        assert!(unsolvable.stats().is_none());
        assert_eq!(CellOutcome::Failed { message: "m".into() }.status(), "failed");
    }

    #[test]
    fn merge_restores_coordinate_order_and_recomputes_totals() {
        let mut late = completed(1);
        late.spec.seed = 9;
        let early = completed(0);
        // Shards given out of order; the merge re-sorts by coordinates.
        let shards =
            vec![CampaignReport::new(vec![late.clone()]), CampaignReport::new(vec![early.clone()])];
        let merged = CampaignReport::merge(shards).unwrap();
        assert_eq!(merged.cells(), &[early, late]);
        assert_eq!(merged.totals().scenarios, 2);
        assert_eq!(merged.totals().completed, 2);
        assert_eq!(merged.totals().violations, 1);
    }

    #[test]
    fn merge_rejects_overlapping_shards() {
        let shards =
            vec![CampaignReport::new(vec![completed(0)]), CampaignReport::new(vec![completed(0)])];
        let err = CampaignReport::merge(shards).unwrap_err();
        assert_eq!(err, MergeError::DuplicateCell(spec()));
        assert!(err.to_string().contains("duplicate cell"));
    }

    #[test]
    fn merge_rejects_mixed_scenario_tags_and_propagates_a_common_one() {
        let mut late = completed(0);
        late.spec.seed = 9;
        let tagged =
            |cell: CellRecord| CampaignReport::new(vec![cell]).with_scenario("name = \"x\"");
        // Tagged + untagged is a mismatch.
        let err = CampaignReport::merge(vec![
            tagged(completed(0)),
            CampaignReport::new(vec![late.clone()]),
        ])
        .unwrap_err();
        assert!(matches!(err, MergeError::ScenarioMismatch { .. }), "{err}");
        assert!(err.to_string().contains("different scenarios"), "{err}");
        // Same tag everywhere merges and keeps the tag.
        let merged = CampaignReport::merge(vec![tagged(completed(0)), tagged(late)]).unwrap();
        assert_eq!(merged.scenario(), Some("name = \"x\""));
        assert_eq!(merged.totals().scenarios, 2);
    }

    #[test]
    fn merge_of_nothing_is_the_empty_report() {
        let merged = CampaignReport::merge(Vec::new()).unwrap();
        assert!(merged.cells().is_empty());
        assert_eq!(merged.totals(), Totals::default());
    }

    #[test]
    fn totals_record_matches_report_aggregation() {
        let cells = vec![
            completed(0),
            completed(3),
            CellRecord {
                spec: spec(),
                outcome: CellOutcome::Unsolvable {
                    theorem: "Theorem 4".into(),
                    reason: "z".into(),
                },
            },
        ];
        let mut rolling = Totals::default();
        for cell in &cells {
            rolling.record(&cell.outcome);
        }
        assert_eq!(rolling, CampaignReport::new(cells).totals());
    }

    #[test]
    fn totals_addition_is_field_wise() {
        let mut left = Totals::default();
        left.record(&completed(2).outcome);
        let mut right = Totals::default();
        right.record(&CellOutcome::Failed { message: "x".into() });
        right.record(&completed(0).outcome);
        let mut sum = left;
        sum += right;
        assert_eq!(sum.scenarios, 3);
        assert_eq!(sum.completed, 2);
        assert_eq!(sum.solved_clean, 1);
        assert_eq!(sum.failed, 1);
        assert_eq!(sum.violations, 2);
        assert_eq!(sum.slots, 20);
    }

    /// Cells with distinct seeds, used to build sorted shard streams for merge tests.
    fn seeded(seed: u64) -> CellRecord {
        let mut cell = completed(0);
        cell.spec.seed = seed;
        cell
    }

    type OkStream = std::vec::IntoIter<Result<CellRecord, MergeError>>;

    fn stream(seeds: &[u64]) -> OkStream {
        seeds.iter().map(|&s| Ok(seeded(s))).collect::<Vec<_>>().into_iter()
    }

    #[test]
    fn cell_merge_interleaves_sorted_streams_in_coordinate_order() {
        let merged: Result<Vec<CellRecord>, _> =
            CellMerge::new(vec![stream(&[1, 4, 6]), stream(&[0, 5]), stream(&[2, 3])]).collect();
        let seeds: Vec<u64> = merged.unwrap().iter().map(|c| c.spec.seed).collect();
        assert_eq!(seeds, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn cell_merge_of_no_streams_or_empty_streams_is_empty() {
        let empty: Vec<OkStream> = Vec::new();
        assert_eq!(CellMerge::new(empty).count(), 0);
        let merged: Result<Vec<CellRecord>, _> =
            CellMerge::new(vec![stream(&[]), stream(&[7]), stream(&[])]).collect();
        assert_eq!(merged.unwrap().len(), 1);
    }

    #[test]
    fn cell_merge_rejects_duplicates_and_unsorted_streams_then_fuses() {
        let mut merge = CellMerge::new(vec![stream(&[0, 1]), stream(&[1])]);
        assert_eq!(merge.next().unwrap().unwrap().spec.seed, 0);
        assert_eq!(merge.next().unwrap().unwrap().spec.seed, 1);
        let err = merge.next().unwrap().unwrap_err();
        assert!(matches!(err, CellMergeError::DuplicateCell(_)), "{err}");
        assert!(err.to_string().contains("duplicate cell"), "{err}");
        assert!(merge.next().is_none(), "merge must fuse after an error");

        let mut merge = CellMerge::new(vec![stream(&[5, 2])]);
        assert_eq!(merge.next().unwrap().unwrap().spec.seed, 5);
        let err = merge.next().unwrap().unwrap_err();
        assert!(matches!(err, CellMergeError::OutOfOrder { shard: 0, .. }), "{err}");
        assert!(err.to_string().contains("out of canonical coordinate order"), "{err}");
        assert!(merge.next().is_none());
    }

    #[test]
    fn cell_merge_surfaces_shard_stream_errors_with_the_shard_index() {
        let failing: Vec<Result<CellRecord, MergeError>> =
            vec![Ok(seeded(0)), Err(MergeError::DuplicateCell(spec()))];
        let mut merge = CellMerge::new(vec![stream(&[1]), failing.into_iter()]);
        // Shard 1's error surfaces on the refill after its first cell is popped.
        let first = merge.next().unwrap();
        let err = match first {
            Err(err) => err,
            Ok(_) => merge.next().unwrap().unwrap_err(),
        };
        assert!(matches!(err, CellMergeError::Shard { shard: 1, .. }), "{err}");
        assert!(err.to_string().contains("shard stream 1 failed"), "{err}");
        assert!(merge.next().is_none());
    }

    #[test]
    fn throughput_is_scenarios_per_second() {
        let stats = ExecutionStats { threads: 2, scenarios: 100, elapsed: Duration::from_secs(4) };
        assert!((stats.throughput() - 25.0).abs() < 1e-9);
        assert!(stats.to_string().contains("2 threads"));
        let zero = ExecutionStats { threads: 1, scenarios: 0, elapsed: Duration::ZERO };
        assert_eq!(zero.throughput(), 0.0);
    }
}
