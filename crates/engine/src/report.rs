//! Deterministic aggregation of campaign results.
//!
//! A [`CampaignReport`] holds one [`CellRecord`] per campaign cell, in the campaign's
//! canonical order, plus aggregate [`Totals`] derived from them. Everything in the
//! report is a pure function of the campaign definition — wall-clock timing and thread
//! counts live in [`ExecutionStats`], which is deliberately kept *outside* the report
//! so that exports stay bit-identical across thread counts and machines.

use crate::grid::ScenarioSpec;
use bsm_core::solvability::ProtocolPlan;
use std::fmt;
use std::time::Duration;

/// What happened when one cell was run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// The prescribed protocol ran to completion (possibly with property violations —
    /// those are data, not errors).
    Completed(CellStats),
    /// Theorems 2–7 rule the setting unsolvable; nothing was run.
    Unsolvable {
        /// The theorem establishing the impossibility.
        theorem: String,
        /// The violated condition, human-readable.
        reason: String,
    },
    /// The cell could not be built or run (invalid coordinates, simulator error).
    Failed {
        /// The error message.
        message: String,
    },
}

impl CellOutcome {
    /// Short status keyword used in exports (`completed` / `unsolvable` / `failed`).
    pub fn status(&self) -> &'static str {
        match self {
            CellOutcome::Completed(_) => "completed",
            CellOutcome::Unsolvable { .. } => "unsolvable",
            CellOutcome::Failed { .. } => "failed",
        }
    }

    /// The stats, when the cell completed.
    pub fn stats(&self) -> Option<&CellStats> {
        match self {
            CellOutcome::Completed(stats) => Some(stats),
            _ => None,
        }
    }
}

/// Per-cell outcome statistics for a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellStats {
    /// The protocol plan that was executed.
    pub plan: ProtocolPlan,
    /// Whether every honest party decided within the slot budget.
    pub all_honest_decided: bool,
    /// Number of bSM property violations (0 = the run satisfies Definition 1).
    pub violations: usize,
    /// Simulated slots ("rounds" at topology granularity).
    pub slots: u64,
    /// Messages accepted into the network (honest + byzantine).
    pub messages: u64,
    /// Signatures produced during the run.
    pub signatures: u64,
}

/// One campaign cell: its grid coordinates plus what happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// The coordinates the cell was built from.
    pub spec: ScenarioSpec,
    /// The result.
    pub outcome: CellOutcome,
}

/// Aggregate counters over a whole campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Totals {
    /// Number of cells in the campaign.
    pub scenarios: usize,
    /// Cells whose protocol ran to completion.
    pub completed: usize,
    /// Completed cells with zero violations and all honest parties decided.
    pub solved_clean: usize,
    /// Cells ruled unsolvable by the characterization.
    pub unsolvable: usize,
    /// Cells that failed to build or run.
    pub failed: usize,
    /// Total property violations across completed cells.
    pub violations: usize,
    /// Total simulated slots across completed cells.
    pub slots: u64,
    /// Total messages across completed cells.
    pub messages: u64,
    /// Total signatures across completed cells.
    pub signatures: u64,
}

impl fmt::Display for Totals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} scenarios: {} completed ({} clean), {} unsolvable, {} failed, \
             {} violations, {} slots, {} messages, {} signatures",
            self.scenarios,
            self.completed,
            self.solved_clean,
            self.unsolvable,
            self.failed,
            self.violations,
            self.slots,
            self.messages,
            self.signatures
        )
    }
}

/// The aggregated result of one campaign run, in canonical cell order.
///
/// The report is a pure function of the campaign definition: running the same campaign
/// with any number of worker threads produces an identical (`==`, and byte-identical
/// once exported) report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    cells: Vec<CellRecord>,
    totals: Totals,
}

impl CampaignReport {
    /// Builds a report from per-cell records already in canonical order.
    pub fn new(cells: Vec<CellRecord>) -> Self {
        let mut totals = Totals { scenarios: cells.len(), ..Totals::default() };
        for cell in &cells {
            match &cell.outcome {
                CellOutcome::Completed(stats) => {
                    totals.completed += 1;
                    if stats.violations == 0 && stats.all_honest_decided {
                        totals.solved_clean += 1;
                    }
                    totals.violations += stats.violations;
                    totals.slots += stats.slots;
                    totals.messages += stats.messages;
                    totals.signatures += stats.signatures;
                }
                CellOutcome::Unsolvable { .. } => totals.unsolvable += 1,
                CellOutcome::Failed { .. } => totals.failed += 1,
            }
        }
        Self { cells, totals }
    }

    /// Recombines shard reports into one report in canonical coordinate order.
    ///
    /// The shards may be given in any order: cells are re-sorted by their grid
    /// coordinates (the same nesting the canonical expansion uses — size, topology,
    /// auth, corruption pair, adversary, seed) and the totals are recomputed from the
    /// union. [`CampaignBuilder::build`] normalizes its axes so expansion order *is*
    /// coordinate order, which makes exporting the merged report reproduce the
    /// unsharded `to_json`/`to_csv` documents byte for byte. (A hand-assembled
    /// [`Campaign::from_specs`] work list in non-coordinate order is still merged
    /// deterministically, but in coordinate order rather than its original order.)
    ///
    /// [`CampaignBuilder::build`]: crate::campaign::CampaignBuilder::build
    /// [`Campaign::from_specs`]: crate::campaign::Campaign::from_specs
    ///
    /// # Errors
    ///
    /// [`MergeError::DuplicateCell`] when two shards carry the same coordinates —
    /// overlapping shard ranges, or the same shard imported twice.
    pub fn merge(shards: impl IntoIterator<Item = CampaignReport>) -> Result<Self, MergeError> {
        let mut cells: Vec<CellRecord> =
            shards.into_iter().flat_map(|report| report.cells).collect();
        cells.sort_by_key(|cell| cell.spec);
        if let Some(dup) = cells.windows(2).find(|pair| pair[0].spec == pair[1].spec) {
            return Err(MergeError::DuplicateCell(dup[0].spec));
        }
        Ok(Self::new(cells))
    }

    /// The per-cell records, in canonical order.
    pub fn cells(&self) -> &[CellRecord] {
        &self.cells
    }

    /// The aggregate counters.
    pub fn totals(&self) -> Totals {
        self.totals
    }
}

/// Errors recombining shard reports with [`CampaignReport::merge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// Two shards carried a cell with the same grid coordinates.
    DuplicateCell(ScenarioSpec),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::DuplicateCell(spec) => {
                write!(f, "duplicate cell across shards: {spec}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Wall-clock statistics of one executor run. Kept separate from [`CampaignReport`] so
/// exports stay deterministic.
#[derive(Debug, Clone, Copy)]
pub struct ExecutionStats {
    /// Worker threads used.
    pub threads: usize,
    /// Scenarios executed.
    pub scenarios: usize,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl ExecutionStats {
    /// Scenarios per second (0 when nothing ran or time was unmeasurably short).
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.scenarios as f64 / secs
        } else {
            0.0
        }
    }
}

impl fmt::Display for ExecutionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} scenarios in {:.2?} on {} thread{} ({:.1} scenarios/sec)",
            self.scenarios,
            self.elapsed,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.throughput()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsm_core::harness::AdversarySpec;
    use bsm_core::problem::AuthMode;
    use bsm_net::Topology;

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            k: 3,
            topology: Topology::FullyConnected,
            auth: AuthMode::Authenticated,
            t_l: 0,
            t_r: 0,
            adversary: AdversarySpec::Crash,
            seed: 0,
        }
    }

    fn completed(violations: usize) -> CellRecord {
        CellRecord {
            spec: spec(),
            outcome: CellOutcome::Completed(CellStats {
                plan: ProtocolPlan::DolevStrongBsm,
                all_honest_decided: true,
                violations,
                slots: 10,
                messages: 100,
                signatures: 5,
            }),
        }
    }

    #[test]
    fn totals_aggregate_by_outcome() {
        let cells = vec![
            completed(0),
            completed(2),
            CellRecord {
                spec: spec(),
                outcome: CellOutcome::Unsolvable {
                    theorem: "Theorem 2".into(),
                    reason: "x".into(),
                },
            },
            CellRecord { spec: spec(), outcome: CellOutcome::Failed { message: "boom".into() } },
        ];
        let report = CampaignReport::new(cells);
        let totals = report.totals();
        assert_eq!(totals.scenarios, 4);
        assert_eq!(totals.completed, 2);
        assert_eq!(totals.solved_clean, 1);
        assert_eq!(totals.unsolvable, 1);
        assert_eq!(totals.failed, 1);
        assert_eq!(totals.violations, 2);
        assert_eq!(totals.slots, 20);
        assert_eq!(totals.messages, 200);
        assert_eq!(totals.signatures, 10);
        assert!(totals.to_string().contains("4 scenarios"));
        assert_eq!(report.cells().len(), 4);
    }

    #[test]
    fn outcome_status_and_stats() {
        assert_eq!(completed(0).outcome.status(), "completed");
        assert!(completed(0).outcome.stats().is_some());
        let unsolvable =
            CellOutcome::Unsolvable { theorem: "Theorem 3".into(), reason: "y".into() };
        assert_eq!(unsolvable.status(), "unsolvable");
        assert!(unsolvable.stats().is_none());
        assert_eq!(CellOutcome::Failed { message: "m".into() }.status(), "failed");
    }

    #[test]
    fn merge_restores_coordinate_order_and_recomputes_totals() {
        let mut late = completed(1);
        late.spec.seed = 9;
        let early = completed(0);
        // Shards given out of order; the merge re-sorts by coordinates.
        let shards =
            vec![CampaignReport::new(vec![late.clone()]), CampaignReport::new(vec![early.clone()])];
        let merged = CampaignReport::merge(shards).unwrap();
        assert_eq!(merged.cells(), &[early, late]);
        assert_eq!(merged.totals().scenarios, 2);
        assert_eq!(merged.totals().completed, 2);
        assert_eq!(merged.totals().violations, 1);
    }

    #[test]
    fn merge_rejects_overlapping_shards() {
        let shards =
            vec![CampaignReport::new(vec![completed(0)]), CampaignReport::new(vec![completed(0)])];
        let err = CampaignReport::merge(shards).unwrap_err();
        assert_eq!(err, MergeError::DuplicateCell(spec()));
        assert!(err.to_string().contains("duplicate cell"));
    }

    #[test]
    fn merge_of_nothing_is_the_empty_report() {
        let merged = CampaignReport::merge(Vec::new()).unwrap();
        assert!(merged.cells().is_empty());
        assert_eq!(merged.totals(), Totals::default());
    }

    #[test]
    fn throughput_is_scenarios_per_second() {
        let stats = ExecutionStats { threads: 2, scenarios: 100, elapsed: Duration::from_secs(4) };
        assert!((stats.throughput() - 25.0).abs() < 1e-9);
        assert!(stats.to_string().contains("2 threads"));
        let zero = ExecutionStats { threads: 1, scenarios: 0, elapsed: Duration::ZERO };
        assert_eq!(zero.throughput(), 0.0);
    }
}
