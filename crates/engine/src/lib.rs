//! `bsm-engine` — the parallel scenario-campaign engine.
//!
//! The paper's claims are empirical over a *grid* of settings; this crate turns the
//! deterministic [`bsm_core`] scenario harness into a throughput machine for sweeping
//! that grid:
//!
//! * [`grid`] — [`ScenarioSpec`]: the coordinates of one campaign cell, rebuildable
//!   (and re-runnable) on any worker thread,
//! * [`campaign`] — the [`CampaignBuilder`] DSL: expand sizes × topologies × auth
//!   modes × corruption pairs × adversaries × seeds into an ordered work list,
//! * [`executor`] — scoped worker threads over a shared work queue (`BSM_THREADS`
//!   or [`Executor::threads`]); results are keyed by grid coordinates and merged in
//!   canonical order, so aggregation is **bit-identical across thread counts**,
//! * [`report`] — [`CampaignReport`]: per-cell outcome stats (plan, violations,
//!   slots, messages, signatures) plus aggregate [`Totals`]; wall-clock throughput
//!   lives in the separate [`ExecutionStats`],
//! * [`export`] — hand-rolled JSON and CSV writers (no serde) whose output is a pure
//!   function of the report, plus the streaming writers ([`StreamingExporter`],
//!   [`MergedJsonWriter`], [`StreamingCsvWriter`]) for campaigns that never
//!   materialize,
//! * [`import`] — the inverse hand-rolled JSON readers: parse an exported document
//!   back into a [`CampaignReport`] (round-trip exact), or iterate a streamed shard
//!   export lazily with [`StreamingCells`],
//! * [`diff`] — [`CampaignDiff`]: cell-level comparison of two reports, rendering
//!   only the differing cells,
//! * [`scenario_file`] — [`ScenarioFile`]: the declarative TOML-subset scenario
//!   format behind `campaign_ctl run --scenario FILE` (see `docs/SCENARIOS.md`);
//!   a file names the grid axes plus a schedule of network faults (partitions,
//!   crash/recovery, loss, jitter), each fault plan a first-class campaign axis,
//!   and its canonical rendering is the scenario tag embedded in report artifacts,
//! * [`fuzz`] — the violation-guided adversary fuzzer: a seeded search loop over
//!   [`bsm_core::script::Script`] space with worst-case tracking, greedy shrinking
//!   of any violating script, and byte-deterministic logs (`campaign_ctl fuzz`,
//!   see `docs/FUZZING.md`),
//! * [`supervise`] — the crash-tolerance layer: the supervisor loop behind
//!   `campaign_ctl supervise` ([`run_supervisor`]: one worker subprocess per
//!   shard, heartbeat-watched, retried with exponential backoff, quarantined
//!   after bounded attempts), the `supervise.json` summary
//!   ([`SuperviseSummary`]), and deterministic crash injection
//!   ([`ChaosSpec`]/[`CrashPoint`]) for testing supervision against real
//!   SIGKILL-style deaths,
//! * [`progress`] — an optional scenarios/sec + ETA reporter on stderr,
//! * [`telemetry`] — the observability side channel: per-cell attributed cost
//!   records ([`CellTelemetry`]) streamed to a `metrics.jsonl` sidecar, log-bucketed
//!   [`Histogram`]s and `campaign_ctl stats` aggregation ([`CampaignStats`]), and
//!   live `progress.json` shard heartbeats ([`Heartbeat`]); report artifacts stay
//!   byte-identical with telemetry on or off.
//!
//! # Sharded campaigns
//!
//! A campaign can be split across processes or machines with a [`ShardPlan`]: every
//! process expands the same campaign (deterministically — no coordination), runs its
//! contiguous slice of the canonical work list, and exports its shard report.
//! [`CampaignReport::merge`] recombines imported shard reports in canonical
//! coordinate order, so the merged export is **byte-identical** to a single-process
//! run:
//!
//! ```rust
//! use bsm_engine::{CampaignBuilder, CampaignReport, Executor, ShardPlan};
//!
//! let campaign = CampaignBuilder::new().sizes([3]).seeds(0..2).build();
//! let executor = Executor::new().threads(2);
//! let (whole, _) = executor.run(&campaign);
//! let shards: Vec<_> = (0..3)
//!     .map(|i| executor.run_shard(&campaign, ShardPlan::new(i, 3).unwrap()).0)
//!     .collect();
//! let merged = CampaignReport::merge(shards).unwrap();
//! assert_eq!(bsm_engine::to_json(&merged), bsm_engine::to_json(&whole));
//! ```
//!
//! # Streaming campaigns
//!
//! Campaigns too large to hold every [`CellRecord`] in memory use the streaming path:
//! [`Executor::run_shard_streaming`] folds completed cells into a rolling [`Totals`]
//! and hands each one — in canonical order — to a [`StreamingExporter`], which writes
//! one coordinate-sorted JSON line per cell plus a totals footer. The coordinator
//! reads shard streams back lazily with [`StreamingCells`], merges them with the
//! k-way [`CellMerge`] (a binary heap holding one pending cell per shard), and
//! re-renders the canonical document with [`MergedJsonWriter`] /
//! [`StreamingCsvWriter`] — byte-identical to the in-memory [`CampaignReport::merge`]
//! path, as `crates/engine/tests/streaming_merge.rs` proves:
//!
//! ```rust
//! use bsm_engine::{
//!     footer_totals, CampaignBuilder, CellMerge, Executor, MergedJsonWriter, ShardPlan,
//!     StreamingCells, StreamingExporter, Totals,
//! };
//!
//! let campaign = CampaignBuilder::new().sizes([3]).seeds(0..2).build();
//! let executor = Executor::new().threads(2);
//! // Shard side: stream cells to disk as they complete (Vec<u8> stands in for a file).
//! let mut shards: Vec<Vec<u8>> = Vec::new();
//! for index in 0..2 {
//!     let mut buf = Vec::new();
//!     let mut exporter = StreamingExporter::new(&mut buf);
//!     let plan = ShardPlan::new(index, 2).unwrap();
//!     executor.run_shard_streaming(&campaign, plan, |cell| exporter.write_cell(&cell)).unwrap();
//!     exporter.finish().unwrap();
//!     shards.push(buf);
//! }
//! // Coordinator side: sum the footers, then k-way-merge the cell streams.
//! let mut totals = Totals::default();
//! for shard in &shards {
//!     totals += footer_totals(&shard[..]).unwrap();
//! }
//! let mut out = Vec::new();
//! let mut writer = MergedJsonWriter::new(&mut out, totals).unwrap();
//! let streams: Vec<_> = shards.iter().map(|s| StreamingCells::new(&s[..])).collect();
//! for cell in CellMerge::new(streams) {
//!     writer.write_cell(&cell.unwrap()).unwrap();
//! }
//! writer.finish().unwrap();
//! // Byte-identical to the unsharded in-memory export.
//! let (whole, _) = executor.run(&campaign);
//! assert_eq!(String::from_utf8(out).unwrap(), bsm_engine::to_json(&whole));
//! ```
//!
//! # Crash recovery
//!
//! A shard that dies mid-stream leaves a truncated JSONL export behind.
//! [`StreamingCells::salvage`] reads back its valid ordered cell prefix (stopping
//! cleanly at the first broken or missing line instead of erroring), and
//! [`Executor::run_range_streaming`] re-runs exactly the un-run tail of the shard's
//! range — [`ShardPlan::remainder`] computes it — so the salvaged prefix plus the
//! fresh cells splice into an export byte-identical to an uninterrupted run. Final
//! artifacts are published with [`AtomicFile`] / [`atomic_write`] (temp file +
//! atomic rename), so a crash can never leave a truncated file at a tracked path.
//!
//! # Quickstart
//!
//! ```rust
//! use bsm_engine::{CampaignBuilder, Executor};
//!
//! let campaign = CampaignBuilder::new()
//!     .sizes([3, 4])
//!     .corruptions([(0, 0), (1, 1)])
//!     .seeds(0..3)
//!     .build();
//! let (report, stats) = Executor::new().threads(2).run(&campaign);
//! assert_eq!(report.totals().scenarios, campaign.len());
//! assert_eq!(stats.scenarios, campaign.len());
//! // Same campaign, different thread count: bit-identical export.
//! let (again, _) = Executor::new().threads(1).run(&campaign);
//! assert_eq!(bsm_engine::export::to_json(&report), bsm_engine::export::to_json(&again));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bench;
pub mod campaign;
pub mod diff;
pub mod executor;
pub mod export;
pub mod fuzz;
pub mod grid;
pub mod import;
pub mod progress;
pub mod report;
pub mod scenario_file;
pub mod supervise;
pub mod telemetry;

pub use bench::BenchSnapshot;
pub use campaign::{Campaign, CampaignBuilder};
pub use diff::{CampaignDiff, CellDiff};
pub use executor::{Executor, THREADS_ENV};
pub use export::{
    atomic_write, cell_json, csv_row, sweep_stale_tmp, to_csv, to_json, totals_json, AtomicFile,
    MergedJsonWriter, StreamError, StreamingCsvWriter, StreamingExporter,
};
pub use fuzz::{run_fuzz, shrink, violation_signature, FoundViolation, FuzzConfig, FuzzReport};
pub use grid::{ScenarioSpec, ShardPlan, ShardPlanError};
pub use import::{
    footer_meta, footer_totals, from_json, from_jsonl, ImportError, SalvagedPrefix, StreamingCells,
};
pub use progress::Progress;
pub use report::{
    CampaignReport, CellMerge, CellMergeError, CellOutcome, CellRecord, CellStats, ExecutionStats,
    MergeError, Totals,
};
pub use scenario_file::{ScenarioError, ScenarioFile};
pub use supervise::{
    parse_supervise, run_supervisor, AttemptOutcome, AttemptRecord, ChaosSpec, CrashMode,
    CrashPoint, QuarantinedShard, SuperviseConfig, SuperviseSummary,
};
pub use telemetry::{
    parse_progress, parse_telemetry_line, CampaignStats, CellTelemetry, Heartbeat, Histogram,
    ProgressSnapshot, TelemetryCells, TelemetryExporter,
};

// Campaign-friendliness audit: everything the executor moves across worker threads
// must be Send + Sync. Failing this compiles-time check means a core type regressed
// (e.g. an Rc sneaked into the harness).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<bsm_core::problem::Setting>();
    assert_send_sync::<bsm_core::harness::Scenario>();
    assert_send_sync::<bsm_core::harness::ScenarioOutcome>();
    assert_send_sync::<ScenarioSpec>();
    assert_send_sync::<Campaign>();
    assert_send_sync::<CellRecord>();
    assert_send_sync::<CampaignReport>();
    assert_send_sync::<ShardPlan>();
    assert_send_sync::<CampaignDiff>();
};
