//! Declarative scenario files: a hand-rolled TOML-subset reader for campaign
//! descriptions (no external dependencies, like every parser in this workspace).
//!
//! A scenario file names a whole campaign declaratively — party counts, topologies,
//! auth models, adversaries, seed count, and a schedule of network faults — so an
//! experiment is a reviewable artifact instead of a command line. `campaign_ctl run
//! --scenario FILE` loads one, and the format is specified key by key in
//! `docs/SCENARIOS.md` (whose worked examples are the literal files under
//! `examples/scenarios/`, parsed verbatim by `crates/engine/tests/scenario_file.rs`).
//!
//! # The TOML subset
//!
//! The reader accepts exactly what the format needs and nothing more:
//!
//! * blank lines and `#` comments (full-line or trailing),
//! * `key = value` pairs, where a value is a double-quoted string (with `\"` and
//!   `\\` escapes), a non-negative integer, or a (possibly nested) `[...]` array,
//! * a `[grid]` table for the campaign axes,
//! * `[[faults]]` array-of-tables entries, one per fault plan on the fault axis.
//!
//! Everything else — floats, dotted keys, inline tables, multi-line strings — is
//! rejected with a line-positioned [`ScenarioError`], as are unknown keys, duplicate
//! keys and semantically invalid fault plans (e.g. overlapping partition windows).
//!
//! # Canonical form
//!
//! [`ScenarioFile::canonical`] renders the parsed file back as fully-explicit text:
//! every grid axis appears with its resolved, sorted, deduplicated values, and every
//! fault plan renders only its non-default keys. Canonicalization is a *fixpoint*
//! (`parse ∘ canonical ∘ parse = parse ∘ canonical ∘ parse ∘ canonical ∘ parse`) and
//! the canonical text is what report artifacts embed as their scenario tag — two
//! artifacts carry byte-equal tags exactly when they describe the same campaign, which
//! is how `campaign_ctl merge` and `diff` refuse to combine mixed-scenario artifacts.

use crate::campaign::{Campaign, CampaignBuilder};
use bsm_core::harness::AdversarySpec;
use bsm_core::problem::AuthMode;
use bsm_net::{CrashWindow, FaultSpec, PartitionWindow, PartyId, Topology};
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// A line-positioned scenario-file error: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line number of the offending line (0: the error is not tied to one
    /// line, e.g. a missing required key or an unreadable file).
    pub line: usize,
    /// What went wrong, in terms of the format reference (`docs/SCENARIOS.md`).
    pub message: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            0 => write!(f, "scenario file error: {}", self.message),
            line => write!(f, "scenario file error at line {line}: {}", self.message),
        }
    }
}

impl std::error::Error for ScenarioError {}

fn err_at(line: usize, message: impl Into<String>) -> ScenarioError {
    ScenarioError { line, message: message.into() }
}

/// A parsed scenario file: one declarative campaign description.
///
/// Axis vectors are resolved (defaults applied), sorted and deduplicated at parse
/// time, so two files describing the same campaign parse to equal values and render
/// the same [`canonical`](Self::canonical) text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioFile {
    /// The scenario's name (required; informational, carried into the canonical
    /// form but not into any grid coordinate).
    pub name: String,
    /// Market sizes to sweep (`[grid] sizes`; default `[3]`).
    pub sizes: Vec<usize>,
    /// Topologies to sweep (`[grid] topologies`; default: all).
    pub topologies: Vec<Topology>,
    /// Authentication modes to sweep (`[grid] auth`; default: all).
    pub auth: Vec<AuthMode>,
    /// Corruption pairs `(tL, tR)` to sweep (`[grid] corruptions`; default `[[0, 0]]`).
    pub corruptions: Vec<(usize, usize)>,
    /// Byzantine strategies to sweep (`[grid] adversaries`; default: all).
    pub adversaries: Vec<AdversarySpec>,
    /// Number of seeds to sweep — the campaign runs seeds `0..seeds`
    /// (`[grid] seeds`; default 1).
    pub seeds: u64,
    /// Fault plans to sweep, one per `[[faults]]` table; `[FaultSpec::NONE]` when
    /// the file declares none (a bare `[[faults]]` table *is* the fault-free plan).
    pub faults: Vec<FaultSpec>,
}

impl ScenarioFile {
    /// Parses a scenario file from its text.
    ///
    /// # Errors
    ///
    /// A line-positioned [`ScenarioError`] for anything outside the format: syntax
    /// outside the TOML subset, unknown or duplicate keys, values of the wrong type,
    /// unknown axis names, and invalid fault plans (zero-duration or overlapping
    /// partitions, a crash recovery not after its start, a loss rate above 1000‰).
    ///
    /// # Examples
    ///
    /// ```rust
    /// use bsm_engine::ScenarioFile;
    ///
    /// let scenario = ScenarioFile::parse(
    ///     "name = \"partition demo\"\n\
    ///      \n\
    ///      [grid]\n\
    ///      sizes = [3]\n\
    ///      adversaries = [\"crash\"]\n\
    ///      seeds = 2\n\
    ///      \n\
    ///      [[faults]]\n\
    ///      partitions = [[2, 3]]  # slots 2..5 cut every cross-side link\n\
    ///      loss = 50              # plus 5% seeded message loss\n",
    /// )
    /// .unwrap();
    /// assert_eq!(scenario.name, "partition demo");
    /// assert_eq!(scenario.faults.len(), 1);
    /// // 1 size × 3 topologies × 2 auth modes × 1 corruption pair × 1 adversary
    /// // × 1 fault plan × 2 seeds:
    /// assert_eq!(scenario.campaign().len(), 12);
    /// // Canonicalization is a fixpoint: re-parsing the canonical text is identity.
    /// let canonical = scenario.canonical();
    /// assert_eq!(ScenarioFile::parse(&canonical).unwrap().canonical(), canonical);
    /// ```
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        Parser::new(text).parse()
    }

    /// Reads and parses a scenario file from disk.
    ///
    /// # Errors
    ///
    /// A [`ScenarioError`] at line 0 when the file cannot be read; otherwise exactly
    /// the errors of [`parse`](Self::parse).
    pub fn load(path: &Path) -> Result<Self, ScenarioError> {
        let text = std::fs::read_to_string(path)
            .map_err(|err| err_at(0, format!("cannot read {}: {err}", path.display())))?;
        Self::parse(&text)
    }

    /// Renders the fully-explicit canonical form: every grid axis with its resolved,
    /// sorted values; every fault plan with only its non-default keys; no comments.
    ///
    /// This text is the scenario tag embedded in report artifacts (see
    /// [`crate::report::CampaignReport::with_scenario`]): byte-equal tags ⇔ same
    /// campaign.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "name = \"{}\"", escape(&self.name));
        let _ = writeln!(out);
        let _ = writeln!(out, "[grid]");
        let _ = writeln!(out, "sizes = {}", render_ints(self.sizes.iter().map(|&k| k as u64)));
        let _ = writeln!(
            out,
            "topologies = {}",
            render_names(self.topologies.iter().map(|t| t.name()))
        );
        let _ = writeln!(out, "auth = {}", render_names(self.auth.iter().map(|a| a.name())));
        let pairs: Vec<String> =
            self.corruptions.iter().map(|&(l, r)| format!("[{l}, {r}]")).collect();
        let _ = writeln!(out, "corruptions = [{}]", pairs.join(", "));
        let _ = writeln!(
            out,
            "adversaries = {}",
            render_names(self.adversaries.iter().map(|a| a.name()))
        );
        let _ = writeln!(out, "seeds = {}", self.seeds);
        if self.faults != [FaultSpec::NONE] {
            for plan in &self.faults {
                let _ = writeln!(out);
                let _ = writeln!(out, "[[faults]]");
                if plan.partition_windows().next().is_some() {
                    let windows: Vec<String> = plan
                        .partition_windows()
                        .map(|w| format!("[{}, {}]", w.start, w.duration))
                        .collect();
                    let _ = writeln!(out, "partitions = [{}]", windows.join(", "));
                }
                if let Some(crash) = plan.crash {
                    let _ = writeln!(out, "crash_party = \"{}\"", crash.party);
                    let _ = writeln!(out, "crash_start = {}", crash.start);
                    if let Some(recovery) = crash.recovery {
                        let _ = writeln!(out, "crash_recovery = {recovery}");
                    }
                }
                if plan.loss_permille > 0 {
                    let _ = writeln!(out, "loss = {}", plan.loss_permille);
                }
                if plan.jitter > 0 {
                    let _ = writeln!(out, "jitter = {}", plan.jitter);
                }
            }
        }
        out
    }

    /// Expands the scenario into its [`Campaign`] — the same canonical-order work
    /// list a [`CampaignBuilder`] with these axes produces.
    pub fn campaign(&self) -> Campaign {
        CampaignBuilder::new()
            .sizes(self.sizes.iter().copied())
            .topologies(self.topologies.iter().copied())
            .auth_modes(self.auth.iter().copied())
            .corruptions(self.corruptions.iter().copied())
            .adversaries(self.adversaries.iter().copied())
            .fault_plans(self.faults.iter().copied())
            .seeds(0..self.seeds)
            .build()
    }
}

fn escape(text: &str) -> String {
    text.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            other => vec![other],
        })
        .collect()
}

fn render_ints(values: impl Iterator<Item = u64>) -> String {
    let items: Vec<String> = values.map(|v| v.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn render_names<'a>(names: impl Iterator<Item = &'a str>) -> String {
    let items: Vec<String> = names.map(|n| format!("\"{n}\"")).collect();
    format!("[{}]", items.join(", "))
}

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

/// A parsed value of the TOML subset: string, non-negative integer, or array.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TomlValue {
    String(String),
    Integer(u64),
    Array(Vec<TomlValue>),
}

impl TomlValue {
    fn type_name(&self) -> &'static str {
        match self {
            TomlValue::String(_) => "string",
            TomlValue::Integer(_) => "integer",
            TomlValue::Array(_) => "array",
        }
    }
}

/// A character cursor over one line's value text.
struct ValueCursor<'a> {
    rest: &'a str,
    line: usize,
}

impl<'a> ValueCursor<'a> {
    fn skip_spaces(&mut self) {
        self.rest = self.rest.trim_start_matches([' ', '\t']);
    }

    fn parse_value(&mut self) -> Result<TomlValue, ScenarioError> {
        self.skip_spaces();
        match self.rest.chars().next() {
            Some('"') => self.parse_string(),
            Some('[') => self.parse_array(),
            Some(c) if c.is_ascii_digit() => self.parse_integer(),
            _ => Err(err_at(
                self.line,
                format!("expected a string, integer or array, found {:?}", self.rest),
            )),
        }
    }

    fn parse_string(&mut self) -> Result<TomlValue, ScenarioError> {
        let mut chars = self.rest.char_indices();
        chars.next(); // the opening quote
        let mut out = String::new();
        while let Some((index, c)) = chars.next() {
            match c {
                '"' => {
                    self.rest = &self.rest[index + 1..];
                    return Ok(TomlValue::String(out));
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    other => {
                        return Err(err_at(
                            self.line,
                            format!(
                                "unsupported string escape \\{}",
                                other.map(|(_, c)| c.to_string()).unwrap_or_default()
                            ),
                        ));
                    }
                },
                other => out.push(other),
            }
        }
        Err(err_at(self.line, "unterminated string"))
    }

    fn parse_integer(&mut self) -> Result<TomlValue, ScenarioError> {
        let digits: String = self.rest.chars().take_while(char::is_ascii_digit).collect();
        if digits.len() > 1 && digits.starts_with('0') {
            return Err(err_at(self.line, format!("integer {digits} has leading zeros")));
        }
        let value = digits
            .parse::<u64>()
            .map_err(|_| err_at(self.line, format!("integer {digits} is out of range")))?;
        self.rest = &self.rest[digits.len()..];
        Ok(TomlValue::Integer(value))
    }

    fn parse_array(&mut self) -> Result<TomlValue, ScenarioError> {
        self.rest = &self.rest[1..]; // the opening bracket
        let mut items = Vec::new();
        loop {
            self.skip_spaces();
            if let Some(rest) = self.rest.strip_prefix(']') {
                self.rest = rest;
                return Ok(TomlValue::Array(items));
            }
            if !items.is_empty() {
                let Some(rest) = self.rest.strip_prefix(',') else {
                    return Err(err_at(
                        self.line,
                        format!("expected ',' or ']' in array, found {:?}", self.rest),
                    ));
                };
                self.rest = rest;
                self.skip_spaces();
                // A single trailing comma before the closing bracket is accepted.
                if let Some(rest) = self.rest.strip_prefix(']') {
                    self.rest = rest;
                    return Ok(TomlValue::Array(items));
                }
            }
            items.push(self.parse_value()?);
        }
    }
}

/// Parses the text after `key =` as one value followed only by spaces or a comment.
fn parse_line_value(text: &str, line: usize) -> Result<TomlValue, ScenarioError> {
    let mut cursor = ValueCursor { rest: text, line };
    let value = cursor.parse_value()?;
    cursor.skip_spaces();
    if !(cursor.rest.is_empty() || cursor.rest.starts_with('#')) {
        return Err(err_at(line, format!("unexpected trailing content {:?}", cursor.rest)));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// The file parser
// ---------------------------------------------------------------------------

/// Which table the parser is currently inside.
enum Section {
    Top,
    Grid,
    Faults(FaultTable),
}

/// The raw fields of one `[[faults]]` table, finalized into a [`FaultSpec`] when the
/// table ends.
struct FaultTable {
    /// Line of the `[[faults]]` header (where whole-plan errors are positioned).
    header_line: usize,
    partitions: Option<(Vec<PartitionWindow>, usize)>,
    crash_party: Option<(PartyId, usize)>,
    crash_start: Option<(u32, usize)>,
    crash_recovery: Option<(u32, usize)>,
    loss: Option<(u16, usize)>,
    jitter: Option<(u8, usize)>,
}

impl FaultTable {
    fn new(header_line: usize) -> Self {
        Self {
            header_line,
            partitions: None,
            crash_party: None,
            crash_start: None,
            crash_recovery: None,
            loss: None,
            jitter: None,
        }
    }

    /// Builds and validates the [`FaultSpec`], positioning each error at the key
    /// that caused it (falling back to the table header for cross-key problems).
    fn finalize(self) -> Result<FaultSpec, ScenarioError> {
        let mut spec = FaultSpec::NONE;
        if let Some((windows, line)) = &self.partitions {
            let mut windows = windows.clone();
            windows.sort_unstable();
            for (slot, window) in windows.iter().enumerate() {
                spec.partitions[slot] = Some(*window);
            }
            spec.validate().map_err(|message| err_at(*line, message))?;
        }
        spec.crash = match (self.crash_party, self.crash_start) {
            (Some((party, _)), Some((start, _))) => {
                Some(CrashWindow { party, start, recovery: self.crash_recovery.map(|(r, _)| r) })
            }
            (None, None) => {
                if let Some((_, line)) = self.crash_recovery {
                    return Err(err_at(line, "crash_recovery without crash_party/crash_start"));
                }
                None
            }
            (Some(_), None) | (None, Some(_)) => {
                return Err(err_at(
                    self.header_line,
                    "crash_party and crash_start must be given together",
                ));
            }
        };
        spec.loss_permille = self.loss.map(|(v, _)| v).unwrap_or(0);
        spec.jitter = self.jitter.map(|(v, _)| v).unwrap_or(0);
        let fallback = self.crash_recovery.map(|(_, line)| line).unwrap_or(self.header_line);
        spec.validate().map_err(|message| err_at(fallback, message))?;
        Ok(spec)
    }
}

/// The grid axes as parsed (before defaults are applied).
#[derive(Default)]
struct GridTable {
    sizes: Option<Vec<usize>>,
    topologies: Option<Vec<Topology>>,
    auth: Option<Vec<AuthMode>>,
    corruptions: Option<Vec<(usize, usize)>>,
    adversaries: Option<Vec<AdversarySpec>>,
    seeds: Option<u64>,
}

struct Parser<'a> {
    text: &'a str,
    section: Section,
    name: Option<String>,
    grid: GridTable,
    faults: Vec<FaultSpec>,
    saw_faults_table: bool,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            text,
            section: Section::Top,
            name: None,
            grid: GridTable::default(),
            faults: Vec::new(),
            saw_faults_table: false,
        }
    }

    fn parse(mut self) -> Result<ScenarioFile, ScenarioError> {
        for (index, raw) in self.text.lines().enumerate() {
            let line = index + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            if trimmed == "[[faults]]" {
                self.close_section()?;
                self.section = Section::Faults(FaultTable::new(line));
                self.saw_faults_table = true;
                continue;
            }
            if trimmed == "[grid]" {
                self.close_section()?;
                if self.saw_faults_table {
                    // One [grid] table, before the fault plans: keeps the canonical
                    // rendering's section order the only accepted order.
                    return Err(err_at(line, "[grid] must come before any [[faults]] table"));
                }
                self.section = Section::Grid;
                continue;
            }
            if trimmed.starts_with('[') {
                return Err(err_at(line, format!("unknown table {trimmed:?}")));
            }
            let Some((key, value_text)) = trimmed.split_once('=') else {
                return Err(err_at(line, format!("expected key = value, found {trimmed:?}")));
            };
            let key = key.trim();
            let value = parse_line_value(value_text.trim(), line)?;
            match &mut self.section {
                Section::Top => self.top_key(key, value, line)?,
                Section::Grid => self.grid_key(key, value, line)?,
                Section::Faults(_) => self.fault_key(key, value, line)?,
            }
        }
        self.close_section()?;
        self.finish()
    }

    /// Finalizes a `[[faults]]` table when a new section starts or the file ends.
    fn close_section(&mut self) -> Result<(), ScenarioError> {
        if let Section::Faults(_) = &self.section {
            let Section::Faults(table) = std::mem::replace(&mut self.section, Section::Top) else {
                unreachable!("matched Faults above");
            };
            self.faults.push(table.finalize()?);
        }
        Ok(())
    }

    fn top_key(&mut self, key: &str, value: TomlValue, line: usize) -> Result<(), ScenarioError> {
        match key {
            "name" => {
                if self.name.is_some() {
                    return Err(err_at(line, "duplicate key name"));
                }
                self.name = Some(expect_string(value, "name", line)?);
                Ok(())
            }
            other => Err(err_at(line, format!("unknown key {other:?} (expected name)"))),
        }
    }

    fn grid_key(&mut self, key: &str, value: TomlValue, line: usize) -> Result<(), ScenarioError> {
        fn set<T>(
            slot: &mut Option<T>,
            key: &str,
            line: usize,
            value: T,
        ) -> Result<(), ScenarioError> {
            if slot.is_some() {
                return Err(err_at(line, format!("duplicate key {key}")));
            }
            *slot = Some(value);
            Ok(())
        }
        match key {
            "sizes" => {
                let sizes = expect_int_array(value, "sizes", line)?
                    .into_iter()
                    .map(|v| v as usize)
                    .collect();
                set(&mut self.grid.sizes, key, line, nonempty(sizes, "sizes", line)?)
            }
            "topologies" => {
                let names = expect_string_array(value, "topologies", line)?;
                let topologies = names
                    .iter()
                    .map(|n| axis_by_name(&Topology::ALL, Topology::name, n, "topology", line))
                    .collect::<Result<Vec<_>, _>>()?;
                set(&mut self.grid.topologies, key, line, nonempty(topologies, key, line)?)
            }
            "auth" => {
                let names = expect_string_array(value, "auth", line)?;
                let modes = names
                    .iter()
                    .map(|n| axis_by_name(&AuthMode::ALL, AuthMode::name, n, "auth mode", line))
                    .collect::<Result<Vec<_>, _>>()?;
                set(&mut self.grid.auth, key, line, nonempty(modes, key, line)?)
            }
            "corruptions" => {
                let TomlValue::Array(items) = value else {
                    return Err(err_at(
                        line,
                        format!("corruptions: expected array, found {}", value.type_name()),
                    ));
                };
                let mut pairs = Vec::new();
                for item in items {
                    match item {
                        TomlValue::Array(pair) => match pair.as_slice() {
                            [TomlValue::Integer(l), TomlValue::Integer(r)] => {
                                pairs.push((*l as usize, *r as usize));
                            }
                            _ => {
                                return Err(err_at(
                                    line,
                                    "corruptions: each entry must be a [tL, tR] integer pair",
                                ));
                            }
                        },
                        _ => {
                            return Err(err_at(
                                line,
                                "corruptions: each entry must be a [tL, tR] integer pair",
                            ));
                        }
                    }
                }
                set(&mut self.grid.corruptions, key, line, nonempty(pairs, key, line)?)
            }
            "adversaries" => {
                let names = expect_string_array(value, "adversaries", line)?;
                let adversaries = names
                    .iter()
                    .map(|n| {
                        axis_by_name(&AdversarySpec::ALL, AdversarySpec::name, n, "adversary", line)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                set(&mut self.grid.adversaries, key, line, nonempty(adversaries, key, line)?)
            }
            "seeds" => {
                let seeds = expect_integer(value, "seeds", line)?;
                if seeds == 0 {
                    return Err(err_at(line, "seeds must be at least 1"));
                }
                set(&mut self.grid.seeds, key, line, seeds)
            }
            other => Err(err_at(
                line,
                format!(
                    "unknown [grid] key {other:?} (expected sizes, topologies, auth, \
                     corruptions, adversaries or seeds)"
                ),
            )),
        }
    }

    fn fault_key(&mut self, key: &str, value: TomlValue, line: usize) -> Result<(), ScenarioError> {
        let Section::Faults(table) = &mut self.section else {
            unreachable!("fault_key is only dispatched inside [[faults]]");
        };
        fn set<T>(
            slot: &mut Option<(T, usize)>,
            key: &str,
            line: usize,
            value: T,
        ) -> Result<(), ScenarioError> {
            if slot.is_some() {
                return Err(err_at(line, format!("duplicate key {key}")));
            }
            *slot = Some((value, line));
            Ok(())
        }
        match key {
            "partitions" => {
                let TomlValue::Array(items) = value else {
                    return Err(err_at(
                        line,
                        format!("partitions: expected array, found {}", value.type_name()),
                    ));
                };
                if items.len() > 2 {
                    return Err(err_at(line, "at most 2 scheduled partitions per plan"));
                }
                let mut windows = Vec::new();
                for item in items {
                    let TomlValue::Array(pair) = item else {
                        return Err(err_at(
                            line,
                            "partitions: each entry must be a [start, duration] integer pair",
                        ));
                    };
                    match pair.as_slice() {
                        [TomlValue::Integer(start), TomlValue::Integer(duration)] => {
                            windows.push(PartitionWindow {
                                start: int_u32(*start, "partition start", line)?,
                                duration: int_u32(*duration, "partition duration", line)?,
                            });
                        }
                        _ => {
                            return Err(err_at(
                                line,
                                "partitions: each entry must be a [start, duration] integer pair",
                            ));
                        }
                    }
                }
                set(&mut table.partitions, key, line, windows)
            }
            "crash_party" => {
                let name = expect_string(value, "crash_party", line)?;
                let party = name.parse::<PartyId>().map_err(|message| err_at(line, message))?;
                set(&mut table.crash_party, key, line, party)
            }
            "crash_start" => {
                let start = expect_integer(value, "crash_start", line)?;
                set(&mut table.crash_start, key, line, int_u32(start, "crash_start", line)?)
            }
            "crash_recovery" => {
                let recovery = expect_integer(value, "crash_recovery", line)?;
                set(
                    &mut table.crash_recovery,
                    key,
                    line,
                    int_u32(recovery, "crash_recovery", line)?,
                )
            }
            "loss" => {
                let loss = expect_integer(value, "loss", line)?;
                if loss > 1000 {
                    return Err(err_at(line, format!("loss rate {loss}\u{2030} exceeds 1000")));
                }
                set(&mut table.loss, key, line, loss as u16)
            }
            "jitter" => {
                let jitter = expect_integer(value, "jitter", line)?;
                let jitter = u8::try_from(jitter)
                    .map_err(|_| err_at(line, format!("jitter {jitter} exceeds 255 slots")))?;
                set(&mut table.jitter, key, line, jitter)
            }
            other => Err(err_at(
                line,
                format!(
                    "unknown [[faults]] key {other:?} (expected partitions, crash_party, \
                     crash_start, crash_recovery, loss or jitter)"
                ),
            )),
        }
    }

    fn finish(self) -> Result<ScenarioFile, ScenarioError> {
        let name = self.name.ok_or_else(|| err_at(0, "missing required key name"))?;
        fn axis<T: Ord>(values: Option<Vec<T>>, default: Vec<T>) -> Vec<T> {
            let mut values = values.unwrap_or(default);
            values.sort_unstable();
            values.dedup();
            values
        }
        let mut faults = self.faults;
        if faults.is_empty() {
            faults.push(FaultSpec::NONE);
        }
        faults.sort_unstable();
        faults.dedup();
        Ok(ScenarioFile {
            name,
            sizes: axis(self.grid.sizes, vec![3]),
            topologies: axis(self.grid.topologies, Topology::ALL.to_vec()),
            auth: axis(self.grid.auth, AuthMode::ALL.to_vec()),
            corruptions: axis(self.grid.corruptions, vec![(0, 0)]),
            adversaries: axis(self.grid.adversaries, AdversarySpec::ALL.to_vec()),
            seeds: self.grid.seeds.unwrap_or(1),
            faults,
        })
    }
}

fn expect_string(value: TomlValue, key: &str, line: usize) -> Result<String, ScenarioError> {
    match value {
        TomlValue::String(text) => Ok(text),
        other => Err(err_at(line, format!("{key}: expected string, found {}", other.type_name()))),
    }
}

fn expect_integer(value: TomlValue, key: &str, line: usize) -> Result<u64, ScenarioError> {
    match value {
        TomlValue::Integer(v) => Ok(v),
        other => Err(err_at(line, format!("{key}: expected integer, found {}", other.type_name()))),
    }
}

fn expect_int_array(value: TomlValue, key: &str, line: usize) -> Result<Vec<u64>, ScenarioError> {
    let TomlValue::Array(items) = value else {
        return Err(err_at(line, format!("{key}: expected array, found {}", value.type_name())));
    };
    items
        .into_iter()
        .map(|item| match item {
            TomlValue::Integer(v) => Ok(v),
            other => {
                Err(err_at(line, format!("{key}: expected integers, found {}", other.type_name())))
            }
        })
        .collect()
}

fn expect_string_array(
    value: TomlValue,
    key: &str,
    line: usize,
) -> Result<Vec<String>, ScenarioError> {
    let TomlValue::Array(items) = value else {
        return Err(err_at(line, format!("{key}: expected array, found {}", value.type_name())));
    };
    items
        .into_iter()
        .map(|item| match item {
            TomlValue::String(text) => Ok(text),
            other => {
                Err(err_at(line, format!("{key}: expected strings, found {}", other.type_name())))
            }
        })
        .collect()
}

fn nonempty<T>(values: Vec<T>, key: &str, line: usize) -> Result<Vec<T>, ScenarioError> {
    if values.is_empty() {
        return Err(err_at(line, format!("{key} must not be empty")));
    }
    Ok(values)
}

fn axis_by_name<T: Copy>(
    all: &[T],
    name_of: impl Fn(&T) -> &'static str,
    name: &str,
    kind: &str,
    line: usize,
) -> Result<T, ScenarioError> {
    all.iter()
        .find(|value| name_of(value) == name)
        .copied()
        .ok_or_else(|| err_at(line, format!("unknown {kind} {name:?}")))
}

fn int_u32(value: u64, what: &str, line: usize) -> Result<u32, ScenarioError> {
    u32::try_from(value).map_err(|_| err_at(line, format!("{what} {value} exceeds u32")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = "\
# A kitchen-sink scenario exercising every key.
name = \"kitchen sink\"

[grid]
sizes = [4, 3, 3]
topologies = [\"fully-connected\", \"bipartite\"]
auth = [\"authenticated\"]
corruptions = [[1, 1], [0, 0]]
adversaries = [\"lying\", \"crash\"]
seeds = 2

[[faults]]
partitions = [[4, 2], [0, 1]]  # out of order on purpose; parsing sorts them
crash_party = \"L1\"
crash_start = 5
crash_recovery = 9
loss = 25
jitter = 2

[[faults]]
";

    #[test]
    fn full_scenario_parses_with_sorted_deduplicated_axes() {
        let scenario = ScenarioFile::parse(FULL).unwrap();
        assert_eq!(scenario.name, "kitchen sink");
        assert_eq!(scenario.sizes, [3, 4]);
        assert_eq!(scenario.topologies, [Topology::Bipartite, Topology::FullyConnected]);
        assert_eq!(scenario.auth, [AuthMode::Authenticated]);
        assert_eq!(scenario.corruptions, [(0, 0), (1, 1)]);
        assert_eq!(scenario.adversaries, [AdversarySpec::Crash, AdversarySpec::Lying]);
        assert_eq!(scenario.seeds, 2);
        // The bare [[faults]] table is the fault-free plan; it sorts first.
        assert_eq!(scenario.faults.len(), 2);
        assert_eq!(scenario.faults[0], FaultSpec::NONE);
        assert_eq!(
            scenario.faults[1].to_string(),
            "partition=0+1;partition=4+2;crash=L1@5..9;loss=25;jitter=2"
        );
    }

    #[test]
    fn defaults_match_the_campaign_builder() {
        let scenario = ScenarioFile::parse("name = \"defaults\"\n").unwrap();
        assert_eq!(scenario.sizes, [3]);
        assert_eq!(scenario.topologies, Topology::ALL);
        assert_eq!(scenario.auth, AuthMode::ALL);
        assert_eq!(scenario.corruptions, [(0, 0)]);
        assert_eq!(scenario.adversaries, AdversarySpec::ALL);
        assert_eq!(scenario.seeds, 1);
        assert_eq!(scenario.faults, [FaultSpec::NONE]);
        let built = CampaignBuilder::new().build();
        assert_eq!(scenario.campaign(), built);
    }

    #[test]
    fn canonicalization_is_a_fixpoint() {
        for text in [FULL, "name = \"defaults\"\n"] {
            let parsed = ScenarioFile::parse(text).unwrap();
            let canonical = parsed.canonical();
            let reparsed = ScenarioFile::parse(&canonical).unwrap();
            assert_eq!(reparsed, parsed, "canonical text must parse back to the same file");
            assert_eq!(reparsed.canonical(), canonical, "canonical must be a fixpoint");
        }
    }

    #[test]
    fn canonical_form_of_a_faultless_file_has_no_faults_section() {
        let canonical = ScenarioFile::parse("name = \"x\"\n").unwrap().canonical();
        assert!(!canonical.contains("[[faults]]"), "{canonical}");
        assert!(canonical.contains(
            "topologies = [\"bipartite\", \"one-sided\", \
                                    \"fully-connected\"]"
        ));
    }

    #[test]
    fn positioned_errors_name_line_and_problem() {
        for (text, line, needle) in [
            ("name = \"x\"\nbogus = 1\n", 2, "unknown key"),
            ("name = \"x\"\n[grid]\nplanets = [9]\n", 3, "unknown [grid] key"),
            ("name = \"x\"\n[grid]\nsizes = \"three\"\n", 3, "expected array"),
            ("name = \"x\"\n[grid]\nsizes = []\n", 3, "must not be empty"),
            ("name = \"x\"\n[grid]\ntopologies = [\"ring\"]\n", 3, "unknown topology"),
            ("name = \"x\"\n[grid]\nseeds = 0\n", 3, "at least 1"),
            ("name = \"x\"\n[grid]\nseeds = 1\nseeds = 2\n", 4, "duplicate key"),
            ("name = \"x\"\n[[faults]]\nloss = 2000\n", 3, "exceeds 1000"),
            ("name = \"x\"\n[[faults]]\njitter = 999\n", 3, "exceeds 255"),
            ("name = \"x\"\n[[faults]]\npartitions = [[0, 0]]\n", 3, "zero duration"),
            (
                "name = \"x\"\n[[faults]]\npartitions = [[0, 5], [2, 2]]\n",
                3,
                "overlap or are unsorted",
            ),
            ("name = \"x\"\n[[faults]]\npartitions = [[0, 1], [2, 1], [4, 1]]\n", 3, "at most 2"),
            ("name = \"x\"\n[[faults]]\ncrash_start = 3\n", 2, "given together"),
            ("name = \"x\"\n[[faults]]\ncrash_recovery = 3\n", 3, "without crash_party"),
            (
                "name = \"x\"\n[[faults]]\ncrash_party = \"L0\"\ncrash_start = 5\n\
                 crash_recovery = 5\n",
                5,
                "must be after its start",
            ),
            ("name = \"x\"\n[[faults]]\ncrash_party = \"Q7\"\ncrash_start = 1\n", 3, "L or R"),
            ("name = \"x\"\n[weather]\n", 2, "unknown table"),
            ("name = \"x\"\njust words\n", 2, "expected key = value"),
            ("name = \"x\"\n[grid]\nseeds = 1 extra\n", 3, "trailing content"),
            ("name = \"x\"\n[grid]\nsizes = [3\n", 3, "expected ',' or ']'"),
            ("name = \"x\"\n[grid]\nsizes = [03]\n", 3, "leading zeros"),
            ("name = \"x\"\nname = \"y\"\n", 2, "duplicate key name"),
            ("name = \"unterminated\n", 1, "unterminated string"),
            ("name = \"bad\\q\"\n", 1, "unsupported string escape"),
            ("name = \"x\"\n[[faults]]\n[grid]\nseeds = 1\n", 3, "before any [[faults]]"),
        ] {
            let err = ScenarioFile::parse(text).unwrap_err();
            assert_eq!(err.line, line, "{text:?}: {err}");
            assert!(err.to_string().contains(needle), "{text:?}: {err}");
            assert!(err.to_string().contains(&format!("line {line}")), "{err}");
        }
        // The missing-name error is not tied to a line.
        let err = ScenarioFile::parse("[grid]\nseeds = 2\n").unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.to_string().contains("missing required key name"), "{err}");
    }

    #[test]
    fn name_escapes_round_trip_through_the_canonical_form() {
        let scenario = ScenarioFile::parse("name = \"quo\\\"te and back\\\\slash\"\n").unwrap();
        assert_eq!(scenario.name, "quo\"te and back\\slash");
        let canonical = scenario.canonical();
        assert_eq!(ScenarioFile::parse(&canonical).unwrap(), scenario);
    }

    #[test]
    fn comments_blank_lines_and_trailing_commas_are_tolerated() {
        let text = "# header\nname = \"x\"  # trailing\n\n[grid]\nsizes = [3, 4,]\n";
        let scenario = ScenarioFile::parse(text).unwrap();
        assert_eq!(scenario.sizes, [3, 4]);
    }

    #[test]
    fn fault_plans_reach_the_campaign_axis() {
        let text = "name = \"x\"\n\n[grid]\nadversaries = [\"crash\"]\nauth = \
                    [\"authenticated\"]\ntopologies = [\"fully-connected\"]\n\n[[faults]]\n\n\
                    [[faults]]\nloss = 100\n";
        let scenario = ScenarioFile::parse(text).unwrap();
        let campaign = scenario.campaign();
        assert_eq!(campaign.len(), 2, "one cell per fault plan");
        assert_eq!(campaign.specs()[0].faults, FaultSpec::NONE);
        assert_eq!(campaign.specs()[1].faults.loss_permille, 100);
    }

    #[test]
    fn load_reports_unreadable_files_at_line_zero() {
        let err = ScenarioFile::load(Path::new("/nonexistent/scenario.toml")).unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.to_string().contains("cannot read"), "{err}");
    }
}
