//! Progress and throughput reporting for long campaigns.
//!
//! Workers call [`Progress::tick`] after every finished scenario; the reporter decides
//! whether to emit a line (scenarios/sec and ETA) on stderr. Reporting is strictly a
//! side channel: it never influences the work order or the aggregated results, so a
//! silent run and a chatty run produce identical reports.

use std::time::Instant;

/// How execution progress is reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Progress {
    /// No output (the default; used by tests and deterministic comparisons).
    #[default]
    Silent,
    /// One line to stderr every `every` completed scenarios (and at completion).
    Stderr {
        /// Reporting period in scenarios; 0 is treated as "only at completion".
        every: usize,
    },
}

impl Progress {
    /// Reports that `done` of `total` scenarios have completed since `start`.
    pub fn tick(&self, done: usize, total: usize, start: Instant) {
        let every = match *self {
            Progress::Silent => return,
            Progress::Stderr { every } => every,
        };
        let at_period = every > 0 && done.is_multiple_of(every);
        if !at_period && done != total {
            return;
        }
        eprintln!("{}", render(done, total, start.elapsed().as_secs_f64()));
    }
}

/// Formats one progress line: counts, rate and ETA.
fn render(done: usize, total: usize, elapsed_secs: f64) -> String {
    let rate = if elapsed_secs > 0.0 { done as f64 / elapsed_secs } else { 0.0 };
    let eta = if rate > 0.0 { (total.saturating_sub(done)) as f64 / rate } else { f64::NAN };
    if eta.is_finite() {
        format!("[bsm-engine] {done}/{total} scenarios, {rate:.1}/sec, ETA {eta:.1}s")
    } else {
        format!("[bsm-engine] {done}/{total} scenarios")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_reports_rate_and_eta() {
        let line = render(50, 100, 5.0);
        assert!(line.contains("50/100"), "{line}");
        assert!(line.contains("10.0/sec"), "{line}");
        assert!(line.contains("ETA 5.0s"), "{line}");
    }

    #[test]
    fn render_with_no_elapsed_time_omits_the_rate() {
        let line = render(0, 10, 0.0);
        assert!(line.contains("0/10"), "{line}");
        assert!(!line.contains("ETA"), "{line}");
    }

    #[test]
    fn silent_progress_never_panics() {
        Progress::Silent.tick(1, 2, Instant::now());
        Progress::default().tick(2, 2, Instant::now());
        // The stderr reporter is exercised too; output goes to the test's stderr.
        Progress::Stderr { every: 1 }.tick(1, 2, Instant::now());
        Progress::Stderr { every: 0 }.tick(2, 2, Instant::now());
    }
}
