//! Progress and throughput reporting for long campaigns.
//!
//! Workers call [`Progress::tick`] after every finished scenario; the reporter decides
//! whether to emit a line (scenarios/sec and ETA) on stderr. Reporting is strictly a
//! side channel: it never influences the work order or the aggregated results, so a
//! silent run and a chatty run produce identical reports.

use std::time::Instant;

/// How execution progress is reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Progress {
    /// No output (the default; used by tests and deterministic comparisons).
    #[default]
    Silent,
    /// One line to stderr every `every` completed scenarios (and at completion).
    Stderr {
        /// Reporting period in scenarios; 0 is treated as "only at completion".
        every: usize,
    },
}

impl Progress {
    /// Reports that `done` of `total` scenarios have completed since `start`.
    pub fn tick(&self, done: usize, total: usize, start: Instant) {
        if let Some(line) = self.line(done, total, start.elapsed().as_secs_f64()) {
            eprintln!("{line}");
        }
    }

    /// The line this tick emits, if any (the testable core of [`tick`](Self::tick)).
    ///
    /// Period lines fire every `every` completed scenarios strictly *before*
    /// completion; the distinct completion line fires exactly once, at
    /// `done == total` — in particular, a `total` that is a multiple of `every` gets
    /// one completion line, not a period line plus a completion line.
    fn line(&self, done: usize, total: usize, elapsed_secs: f64) -> Option<String> {
        let every = match *self {
            Progress::Silent => return None,
            Progress::Stderr { every } => every,
        };
        if done == total {
            Some(render_completion(total, elapsed_secs))
        } else if every > 0 && done.is_multiple_of(every) {
            Some(render(done, total, elapsed_secs))
        } else {
            None
        }
    }
}

/// Formats one progress line: counts, rate and ETA.
fn render(done: usize, total: usize, elapsed_secs: f64) -> String {
    let rate = if elapsed_secs > 0.0 { done as f64 / elapsed_secs } else { 0.0 };
    let eta = if rate > 0.0 { (total.saturating_sub(done)) as f64 / rate } else { f64::NAN };
    if eta.is_finite() {
        format!("[bsm-engine] {done}/{total} scenarios, {rate:.1}/sec, ETA {eta:.1}s")
    } else {
        format!("[bsm-engine] {done}/{total} scenarios")
    }
}

/// Formats the completion line (no ETA; total elapsed time and final rate instead).
fn render_completion(total: usize, elapsed_secs: f64) -> String {
    if elapsed_secs > 0.0 {
        let rate = total as f64 / elapsed_secs;
        format!(
            "[bsm-engine] done: {total}/{total} scenarios in {elapsed_secs:.1}s ({rate:.1}/sec)"
        )
    } else {
        format!("[bsm-engine] done: {total}/{total} scenarios")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_reports_rate_and_eta() {
        let line = render(50, 100, 5.0);
        assert!(line.contains("50/100"), "{line}");
        assert!(line.contains("10.0/sec"), "{line}");
        assert!(line.contains("ETA 5.0s"), "{line}");
    }

    #[test]
    fn render_with_no_elapsed_time_omits_the_rate() {
        let line = render(0, 10, 0.0);
        assert!(line.contains("0/10"), "{line}");
        assert!(!line.contains("ETA"), "{line}");
    }

    #[test]
    fn silent_progress_never_panics() {
        Progress::Silent.tick(1, 2, Instant::now());
        Progress::default().tick(2, 2, Instant::now());
        // The stderr reporter is exercised too; output goes to the test's stderr.
        Progress::Stderr { every: 1 }.tick(1, 2, Instant::now());
        Progress::Stderr { every: 0 }.tick(2, 2, Instant::now());
    }

    /// Simulates a full run (one tick per completed scenario, as the executor does)
    /// and collects every emitted line.
    fn lines_of_run(progress: Progress, total: usize) -> Vec<String> {
        (1..=total).filter_map(|done| progress.line(done, total, 2.0)).collect()
    }

    #[test]
    fn completion_line_is_emitted_exactly_once_when_total_is_a_multiple_of_every() {
        // total = 100 is a multiple of every = 25: periods at 25/50/75, then one
        // completion line at 100 — not a period line *and* a completion line.
        let lines = lines_of_run(Progress::Stderr { every: 25 }, 100);
        assert_eq!(lines.len(), 4, "{lines:?}");
        assert_eq!(lines.iter().filter(|l| l.contains("done:")).count(), 1, "{lines:?}");
        assert!(lines[3].contains("done: 100/100"), "{lines:?}");
        assert!(lines[..3].iter().all(|l| l.contains("ETA")), "{lines:?}");
        assert!(!lines[3].contains("ETA"), "completion line must not carry an ETA");
        assert_eq!(lines.iter().filter(|l| l.contains("100/100")).count(), 1, "{lines:?}");
    }

    #[test]
    fn non_aligned_totals_also_complete_exactly_once() {
        let lines = lines_of_run(Progress::Stderr { every: 30 }, 100);
        // Periods at 30/60/90, completion at 100.
        assert_eq!(lines.len(), 4, "{lines:?}");
        assert!(lines[3].contains("done: 100/100"), "{lines:?}");
        // `every = 0`: only the completion line.
        let only_completion = lines_of_run(Progress::Stderr { every: 0 }, 50);
        assert_eq!(only_completion.len(), 1, "{only_completion:?}");
        assert!(only_completion[0].contains("done: 50/50"));
        // Silent: nothing at all.
        assert!(lines_of_run(Progress::Silent, 50).is_empty());
    }

    #[test]
    fn completion_render_handles_zero_elapsed_time() {
        assert_eq!(render_completion(5, 0.0), "[bsm-engine] done: 5/5 scenarios");
        let line = render_completion(10, 2.0);
        assert!(line.contains("10/10 scenarios in 2.0s (5.0/sec)"), "{line}");
    }
}
