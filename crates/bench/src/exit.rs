//! Documented process exit codes for `campaign_ctl`.
//!
//! Scripts, CI gates and the supervisor itself branch on these, so the mapping
//! is a contract (asserted by `crates/bench/tests/exit_codes.rs`), not an
//! accident of `ExitCode::FAILURE`:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success |
//! | 1    | internal error: I/O, parse or data failure while doing the work |
//! | 2    | usage error: bad flags, unknown subcommand, invalid combination |
//! | 3    | findings: `diff` saw differing cells, `fuzz` found violations or a replay mismatched |
//! | 4    | degraded: `supervise` quarantined at least one shard (partial artifacts + `supervise.json`) |

use std::process::ExitCode;

/// The exit-code vocabulary of `campaign_ctl` (see the module table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtlCode {
    /// 0 — the subcommand did its work.
    Success,
    /// 1 — an I/O, parse or data failure while doing the work.
    Internal,
    /// 2 — the invocation itself was wrong (flags, subcommand, combination).
    Usage,
    /// 3 — the subcommand worked and found what it looks for (differing cells,
    /// fuzz violations, a replay mismatch) — distinct from failure so scripts
    /// can tell "found something" from "broke".
    Findings,
    /// 4 — a supervised run degraded: at least one shard was quarantined after
    /// exhausting its attempts; merged artifacts cover only the completed
    /// shards and `supervise.json` names the gap.
    Degraded,
}

impl CtlCode {
    /// The raw process exit code.
    pub const fn code(self) -> u8 {
        match self {
            CtlCode::Success => 0,
            CtlCode::Internal => 1,
            CtlCode::Usage => 2,
            CtlCode::Findings => 3,
            CtlCode::Degraded => 4,
        }
    }
}

impl From<CtlCode> for ExitCode {
    fn from(code: CtlCode) -> Self {
        ExitCode::from(code.code())
    }
}

/// A classified subcommand failure: the message plus which non-zero code it
/// maps to. Operational failures convert from plain `String` errors (the
/// subcommand plumbing's native error type) as [`CtlError::Internal`]; usage
/// errors are constructed explicitly at the flag-validation sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtlError {
    /// Exit 2 — the invocation was wrong.
    Usage(String),
    /// Exit 1 — the work failed.
    Internal(String),
}

impl CtlError {
    /// The exit code this failure maps to.
    pub fn code(&self) -> CtlCode {
        match self {
            CtlError::Usage(_) => CtlCode::Usage,
            CtlError::Internal(_) => CtlCode::Internal,
        }
    }

    /// The human-readable description.
    pub fn message(&self) -> &str {
        match self {
            CtlError::Usage(message) | CtlError::Internal(message) => message,
        }
    }
}

impl From<String> for CtlError {
    /// Plain-`String` errors from the subcommand plumbing are operational
    /// failures, not usage mistakes.
    fn from(message: String) -> Self {
        CtlError::Internal(message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(CtlCode::Success.code(), 0);
        assert_eq!(CtlCode::Internal.code(), 1);
        assert_eq!(CtlCode::Usage.code(), 2);
        assert_eq!(CtlCode::Findings.code(), 3);
        assert_eq!(CtlCode::Degraded.code(), 4);
    }

    #[test]
    fn string_errors_classify_as_internal() {
        let err: CtlError = String::from("disk on fire").into();
        assert_eq!(err.code(), CtlCode::Internal);
        assert_eq!(err.message(), "disk on fire");
        assert_eq!(CtlError::Usage("bad flag".into()).code(), CtlCode::Usage);
    }
}
