//! Experiment E2 — Fig. 1 of the paper: the three communication topologies, printed as
//! adjacency matrices together with their channel counts.
//!
//! Usage: `topology_figure [k]`

use bsm_bench::BenchArgs;
use bsm_net::{PartyId, PartySet, Topology};

fn main() {
    let k = BenchArgs::parse().warn_unknown().k_or(3);
    let parties: Vec<PartyId> = PartySet::new(k).iter().collect();
    println!("# E2 — Fig. 1: communication topologies (k = {k})\n");
    for topology in Topology::ALL {
        println!("## {topology} ({} channels)\n", topology.channel_count(k));
        print!("     ");
        for p in &parties {
            print!("{p:>4}");
        }
        println!();
        for a in &parties {
            print!("{a:>4} ");
            for b in &parties {
                let cell = if a == b {
                    "  · "
                } else if topology.connects(*a, *b) {
                    "  ■ "
                } else {
                    "  . "
                };
                print!("{cell}");
            }
            println!();
        }
        println!();
    }
    println!("■ = bidirectional authenticated channel, . = no channel, · = self");
    println!("The matching is always across the two sides, regardless of the topology.");
}
