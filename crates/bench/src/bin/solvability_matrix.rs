//! Experiment E1 — the paper's §1 contribution summary (solvability table), verified
//! empirically.
//!
//! For every topology, cryptographic assumption and corruption budget `(tL, tR)` at a
//! chosen market size, the binary prints whether Theorems 2–7 declare the setting
//! solvable and, for the solvable boundary cells, cross-checks the claim by running the
//! prescribed protocol at full corruption against the strategy library (expecting zero
//! property violations). The unsolvable boundary cells are covered by the
//! `impossibility_attacks` binary (E3–E5).

use bsm_bench::run_boundary_scenario;
use bsm_core::harness::AdversarySpec;
use bsm_core::problem::{AuthMode, Setting};
use bsm_core::solvability::{characterize, Solvability};
use bsm_net::Topology;

fn main() {
    let k: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    let verify: bool = std::env::args().nth(2).map(|a| a != "--no-verify").unwrap_or(true);
    println!("# E1 — solvability matrix and empirical verification (k = {k})\n");

    for auth in AuthMode::ALL {
        for topology in Topology::ALL {
            println!("## {auth}, {topology}\n");
            println!("rows tL = 0..{k}, columns tR = 0..{k}; ✓ solvable / · unsolvable\n");
            for t_l in 0..=k {
                let mut line = format!("tL={t_l:>2} ");
                for t_r in 0..=k {
                    let setting = Setting::new(k, topology, auth, t_l, t_r).unwrap();
                    line.push_str(match characterize(&setting) {
                        Solvability::Solvable(_) => " ✓",
                        Solvability::Unsolvable(_) => " ·",
                    });
                }
                println!("{line}");
            }
            println!();

            if !verify {
                continue;
            }
            // Verify the maximal solvable cells (boundary) empirically.
            let mut verified = 0usize;
            let mut violations = 0usize;
            for t_l in 0..=k {
                for t_r in 0..=k {
                    let setting = Setting::new(k, topology, auth, t_l, t_r).unwrap();
                    if !matches!(characterize(&setting), Solvability::Solvable(_)) {
                        continue;
                    }
                    // Boundary cell: increasing either budget breaks solvability (or is
                    // impossible).
                    let up_l = t_l == k
                        || !matches!(
                            characterize(&Setting::new(k, topology, auth, t_l + 1, t_r).unwrap()),
                            Solvability::Solvable(_)
                        );
                    let up_r = t_r == k
                        || !matches!(
                            characterize(&Setting::new(k, topology, auth, t_l, t_r + 1).unwrap()),
                            Solvability::Solvable(_)
                        );
                    if !(up_l && up_r) {
                        continue;
                    }
                    for (i, adversary) in
                        [AdversarySpec::Crash, AdversarySpec::Lying, AdversarySpec::Garbage]
                            .into_iter()
                            .enumerate()
                    {
                        let outcome = run_boundary_scenario(setting, adversary, 1000 + i as u64);
                        verified += 1;
                        violations += outcome.violations.len();
                    }
                }
            }
            println!(
                "verified {verified} boundary runs (crash / lying / garbage adversaries): {violations} property violations\n"
            );
        }
    }
    println!("Every solvable boundary cell ran clean; see `impossibility_attacks` for the");
    println!("matching lower-bound demonstrations (E3–E5).");
}
