//! Experiment E1 — the paper's §1 contribution summary (solvability table), verified
//! empirically.
//!
//! For every topology, cryptographic assumption and corruption budget `(tL, tR)` at a
//! chosen market size, the binary prints whether Theorems 2–7 declare the setting
//! solvable and, for the solvable boundary cells, cross-checks the claim by running the
//! prescribed protocol at full corruption against the strategy library (expecting zero
//! property violations). The verification runs ride on the `bsm-engine` campaign
//! executor, so boundary cells are checked in parallel. The unsolvable boundary cells
//! are covered by the `impossibility_attacks` binary (E3–E5).
//!
//! Usage: `solvability_matrix [k] [--no-verify] [--threads N] [--seeds N]`

use bsm_bench::BenchArgs;
use bsm_core::harness::AdversarySpec;
use bsm_core::problem::{AuthMode, Setting};
use bsm_core::solvability::{characterize, Solvability};
use bsm_engine::{Campaign, ScenarioSpec};
use bsm_net::Topology;

/// Returns `true` when the cell is solvable and increasing either budget is not.
fn is_solvable_boundary(
    k: usize,
    topology: Topology,
    auth: AuthMode,
    t_l: usize,
    t_r: usize,
) -> bool {
    let solvable = |t_l: usize, t_r: usize| {
        Setting::new(k, topology, auth, t_l, t_r)
            .map(|s| characterize(&s).is_solvable())
            .unwrap_or(false)
    };
    solvable(t_l, t_r) && !solvable(t_l + 1, t_r) && !solvable(t_l, t_r + 1)
}

fn main() {
    let args = BenchArgs::parse().warn_unknown();
    let k = args.k_or(4);
    let executor = args.executor();
    // The thread count and throughput are wall-clock context, not results: stderr,
    // so stdout stays byte-identical across runs and machines.
    eprintln!(
        "[{} engine threads, {} seed(s) per boundary cell]",
        executor.thread_count(),
        args.seeds
    );
    println!("# E1 — solvability matrix and empirical verification (k = {k})\n");

    for auth in AuthMode::ALL {
        for topology in Topology::ALL {
            println!("## {auth}, {topology}\n");
            println!("rows tL = 0..{k}, columns tR = 0..{k}; ✓ solvable / · unsolvable\n");
            for t_l in 0..=k {
                let mut line = format!("tL={t_l:>2} ");
                for t_r in 0..=k {
                    let setting = Setting::new(k, topology, auth, t_l, t_r).unwrap();
                    line.push_str(match characterize(&setting) {
                        Solvability::Solvable(_) => " ✓",
                        Solvability::Unsolvable(_) => " ·",
                    });
                }
                println!("{line}");
            }
            println!();

            if !args.verify {
                continue;
            }
            // Verify the maximal solvable cells (boundary) empirically: a campaign of
            // boundary cells × adversary strategies, run on the engine.
            let mut specs = Vec::new();
            for t_l in 0..=k {
                for t_r in 0..=k {
                    if !is_solvable_boundary(k, topology, auth, t_l, t_r) {
                        continue;
                    }
                    for (i, adversary) in AdversarySpec::ALL.into_iter().enumerate() {
                        // Seed 1000 + i for the first draw (the historical E1 seeds),
                        // striding by the strategy count for additional --seeds draws.
                        for s in 0..args.seeds {
                            specs.push(ScenarioSpec {
                                k,
                                topology,
                                auth,
                                t_l,
                                t_r,
                                adversary,
                                faults: bsm_net::FaultSpec::NONE,
                                seed: 1000 + i as u64 + s * AdversarySpec::ALL.len() as u64,
                            });
                        }
                    }
                }
            }
            let campaign = Campaign::from_specs(specs);
            let (report, stats) = executor.run(&campaign);
            let totals = report.totals();
            // These cells are all solvable, so a failed run is a harness regression —
            // abort loudly rather than printing a quietly reduced "verified" count
            // (the pre-engine code panicked here via run_boundary_scenario).
            if totals.failed > 0 {
                for cell in report.cells() {
                    if let bsm_engine::CellOutcome::Failed { message } = &cell.outcome {
                        eprintln!("boundary run failed at {}: {message}", cell.spec);
                    }
                }
                std::process::exit(1);
            }
            println!(
                "verified {} boundary runs (crash / lying / garbage adversaries): \
                 {} property violations\n",
                totals.completed, totals.violations
            );
            // Wall-clock throughput goes to stderr so stdout stays byte-identical
            // across runs (the repo's determinism convention).
            eprintln!("[{auth}, {topology}: {stats}]");
        }
    }
    println!("Every solvable boundary cell ran clean; see `impossibility_attacks` for the");
    println!("matching lower-bound demonstrations (E3–E5).");
}
