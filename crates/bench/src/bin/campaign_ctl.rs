//! `campaign_ctl` — run, merge and diff sharded campaigns from the command line.
//!
//! The process-level face of the engine's distributed-campaign layer:
//!
//! ```sh
//! # One process per shard (any machines, any thread counts):
//! campaign_ctl run --smoke --shard 1/3 --out shards/1
//! campaign_ctl run --smoke --shard 2/3 --out shards/2
//! campaign_ctl run --smoke --shard 3/3 --out shards/3
//!
//! # Recombine the shard exports; byte-identical to an unsharded run:
//! campaign_ctl merge --out merged shards/1/report.json shards/2/report.json shards/3/report.json
//!
//! # Cell-level comparison of two runs (e.g. before/after a protocol change);
//! # exits non-zero when any cell differs:
//! campaign_ctl diff merged/report.json before/report.json
//! ```
//!
//! `run` executes the standard campaign grid (`--smoke`: the small CI grid; default:
//! the full ~1080-cell sweep — the same grids as `examples/campaign.rs`) and writes
//! `report.json` + `report.csv` to `--out`. All flags come from [`bsm_bench::cli`].

use bsm_bench::cli::BenchArgs;
use bsm_core::harness::AdversarySpec;
use bsm_engine::export::{to_csv, to_json};
use bsm_engine::import::from_json;
use bsm_engine::{Campaign, CampaignBuilder, CampaignDiff, CampaignReport, Progress};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The standard campaign grids, mirrored by `examples/campaign.rs` — the CI gate
/// cross-checks that both produce byte-identical exports.
fn build_campaign(smoke: bool) -> Campaign {
    if smoke {
        // Small CI grid: 1 × 3 × 2 × 2 × 3 × 2 = 72 cells.
        CampaignBuilder::new()
            .sizes([3])
            .corruptions([(0, 0), (1, 1)])
            .adversaries(AdversarySpec::ALL)
            .seeds(0..2)
            .build()
    } else {
        // Full sweep: 3 × 3 × 2 × 4 × 3 × 5 = 1080 cells.
        CampaignBuilder::new()
            .sizes([3, 4, 5])
            .corruptions([(0, 0), (0, 1), (1, 0), (1, 1)])
            .adversaries(AdversarySpec::ALL)
            .seeds(0..5)
            .build()
    }
}

/// Writes `report.json` and `report.csv` for `report` under `dir`.
fn export_report(report: &CampaignReport, dir: &Path) -> Result<(), String> {
    let json_path = dir.join("report.json");
    let csv_path = dir.join("report.csv");
    std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(&json_path, to_json(report)))
        .and_then(|()| std::fs::write(&csv_path, to_csv(report)))
        .map_err(|err| format!("cannot write to {}: {err}", dir.display()))?;
    println!("exported {} and {}", json_path.display(), csv_path.display());
    Ok(())
}

/// Reads and imports one exported `report.json`.
fn import_report(path: &str) -> Result<CampaignReport, String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    from_json(&text).map_err(|err| format!("cannot import {path}: {err}"))
}

fn run(args: &BenchArgs) -> Result<(), String> {
    let campaign = build_campaign(args.smoke);
    let executor = args.executor().progress(Progress::Stderr { every: 250 });
    let (report, stats) = match args.shard {
        Some(plan) => {
            eprintln!("running shard {plan} of {campaign}");
            executor.run_shard(&campaign, plan)
        }
        None => {
            eprintln!("running {campaign}");
            executor.run(&campaign)
        }
    };
    eprintln!("{stats}");
    println!("totals: {}", report.totals());
    let out = args.out.clone().unwrap_or_else(|| PathBuf::from("target/campaign_ctl"));
    export_report(&report, &out)
}

fn merge(args: &BenchArgs) -> Result<(), String> {
    if args.files.is_empty() {
        return Err("merge: no shard exports given (pass report.json paths)".into());
    }
    let shards = args.files.iter().map(|p| import_report(p)).collect::<Result<Vec<_>, _>>()?;
    let merged = CampaignReport::merge(shards).map_err(|err| err.to_string())?;
    println!("merged {} shard(s): {}", args.files.len(), merged.totals());
    let out = args.out.clone().unwrap_or_else(|| PathBuf::from("target/campaign_ctl/merged"));
    export_report(&merged, &out)
}

/// Returns `true` when the reports differ in any cell.
fn diff(args: &BenchArgs) -> Result<bool, String> {
    let [left, right] = args.files.as_slice() else {
        return Err(format!(
            "diff: expected exactly two report.json paths, got {}",
            args.files.len()
        ));
    };
    let diff = CampaignDiff::between(&import_report(left)?, &import_report(right)?);
    print!("{diff}");
    Ok(!diff.is_empty())
}

fn main() -> ExitCode {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let subcommand = if raw.is_empty() { String::new() } else { raw.remove(0) };
    let args = BenchArgs::from_args(raw);
    // Strict CLI: a mistyped flag (e.g. `--shard 4/3`) must not silently fall back to
    // an unsharded full run — in a CI or fleet context that wastes the whole campaign
    // and can ship a wrong artifact with exit 0.
    if !args.unknown.is_empty() {
        eprintln!("campaign_ctl: invalid argument(s): {}", args.unknown.join(", "));
        return ExitCode::FAILURE;
    }
    let result = match subcommand.as_str() {
        "run" => run(&args).map(|()| false),
        "merge" => merge(&args).map(|()| false),
        "diff" => diff(&args),
        other => Err(format!(
            "unknown subcommand {other:?}; usage: campaign_ctl <run|merge|diff> \
             [--smoke] [--shard I/K] [--threads N] [--out DIR] [report.json ...]"
        )),
    };
    match result {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::FAILURE, // diff found differing cells
        Err(message) => {
            eprintln!("campaign_ctl: {message}");
            ExitCode::FAILURE
        }
    }
}
