//! `campaign_ctl` — run, merge and diff sharded campaigns from the command line.
//!
//! The process-level face of the engine's distributed-campaign layer:
//!
//! ```sh
//! # One process per shard (any machines, any thread counts):
//! campaign_ctl run --smoke --shard 1/3 --out shards/1
//! campaign_ctl run --smoke --shard 2/3 --out shards/2
//! campaign_ctl run --smoke --shard 3/3 --out shards/3
//!
//! # Recombine the shard exports; byte-identical to an unsharded run:
//! campaign_ctl merge --out merged shards/1/report.json shards/2/report.json shards/3/report.json
//!
//! # Cell-level comparison of two runs (e.g. before/after a protocol change);
//! # exits non-zero when any cell differs:
//! campaign_ctl diff merged/report.json before/report.json
//! ```
//!
//! `run` executes the standard campaign grid (`--smoke`: the small CI grid; default:
//! the full ~1080-cell sweep — the same grids as `examples/campaign.rs`) and writes
//! `report.json` + `report.csv` to `--out`. All flags come from [`bsm_bench::cli`].
//!
//! # Scenario files (`--scenario`)
//!
//! Instead of the built-in grids, `run --scenario FILE` (also honored by `resume`)
//! loads a declarative scenario file — grid axes plus a schedule of network faults
//! (partitions, crash/recovery, seeded loss and jitter); see `docs/SCENARIOS.md`.
//! The file's canonical rendering is embedded in every report artifact as its
//! *scenario tag*, and `merge`/`diff` refuse to combine artifacts whose tags differ,
//! so mixed-scenario data can never splice silently:
//!
//! ```sh
//! campaign_ctl run --scenario examples/scenarios/partition_heal.toml --stream --metrics
//! ```
//!
//! # Streaming (`--stream`)
//!
//! For campaigns too large to hold every cell in memory, `run --stream` writes a
//! `report.jsonl` — coordinate-sorted cell lines plus a totals footer, streamed to
//! disk as cells complete — plus a per-shard `report.csv` (streamed through
//! `StreamingCsvWriter`, byte-identical to the in-memory export of the same shard),
//! and `merge --stream` k-way-merges shard `report.jsonl` files in constant memory
//! into `report.json` + `report.csv` **byte-identical** to the in-memory `merge` of
//! unstreamed shard exports:
//!
//! ```sh
//! campaign_ctl run --smoke --stream --shard 1/3 --out shards/1   # ... 2/3, 3/3
//! campaign_ctl merge --stream --out merged \
//!     shards/1/report.jsonl shards/2/report.jsonl shards/3/report.jsonl
//! ```
//!
//! `diff` accepts both formats (`.jsonl` exports are detected by extension,
//! case-insensitively).
//!
//! # Crash recovery (`resume`)
//!
//! A streamed run that dies mid-campaign leaves its completed cells at
//! `report.jsonl.partial` — the stream is written there and renamed to
//! `report.jsonl` only once footered. `resume` (with the same `--smoke`/`--shard`
//! flags as the interrupted run) salvages the valid cell prefix, re-runs only the
//! missing cells, and splices prefix + fresh cells into artifacts byte-identical
//! to an uninterrupted run:
//!
//! ```sh
//! campaign_ctl run  --smoke --stream --shard 2/3 --out shards/2   # ... killed!
//! campaign_ctl resume --smoke --shard 2/3 --out shards/2
//! ```
//!
//! All final artifacts (`report.json`, `report.csv`, `BENCH_engine.json`) are
//! published through a temp-file + atomic-rename, so a crash at any instant can
//! never leave a truncated file at a tracked path.
//!
//! # Supervision (`supervise`)
//!
//! `supervise --shards K` turns the crash-*recoverable* pieces above into a
//! crash-*tolerant* whole: the coordinator spawns one worker subprocess per shard
//! (`run --stream --shard i/K`, re-executing this binary), watches each worker's
//! `progress.json` heartbeat for liveness (a heartbeat that stops advancing — not
//! mere slowness — gets the worker killed), and on any death salvages the
//! worker's partial and relaunches the remainder (`resume`) with bounded attempts
//! and exponential backoff. A shard that keeps dying is quarantined and the run
//! degrades gracefully: the completed shards are merged, `supervise.json` records
//! every attempt and the quarantined coordinate ranges, and the process exits
//! with the degraded code 4. With every worker healthy the merged
//! `report.json`/`report.csv` are **byte-identical** to an unsupervised
//! single-process run. `--chaos SHARD:ATTEMPT:MODE,...` injects deterministic
//! crashes (cell-boundary kill, torn half-line, hang, pre-heartbeat death,
//! post-footer/pre-rename death) so the supervision machinery is tested against
//! real process deaths:
//!
//! ```sh
//! campaign_ctl supervise --smoke --shards 3 --out supervised
//! campaign_ctl supervise --smoke --shards 3 --chaos 2:1:torn7 --backoff-ms 0
//! ```
//!
//! # Exit codes
//!
//! The mapping is a documented contract (see [`bsm_bench::exit`]), asserted by
//! `crates/bench/tests/exit_codes.rs`: 0 success, 1 internal error, 2 usage
//! error, 3 findings (`diff` differing cells; `fuzz` violations or a replay
//! mismatch), 4 degraded (`supervise` quarantined at least one shard).
//!
//! # Telemetry (`--metrics`, `stats`)
//!
//! `run --metrics` (in-memory or `--stream`) writes a `metrics.jsonl` sidecar next
//! to the report artifacts: one coordinate-sorted JSON line per cell carrying the
//! cell's attributed crypto-counter delta, message accounting, per-role fan-out and
//! wall time. The sidecar is strictly a side channel — every report artifact is
//! byte-identical with and without it. Independently of `--metrics`, every streamed
//! run heartbeats `progress.json` in its out-dir (done/total, rate, last
//! coordinate, counter delta) every few cells through an atomic rename — the
//! liveness signal the future coordinator daemon polls for dead shards. `stats`
//! aggregates a sidecar into quantiles, top-N cells and per-axis rollups:
//!
//! ```sh
//! campaign_ctl run --smoke --stream --metrics --shard 1/3 --out shards/1
//! campaign_ctl stats shards/1     # p50/p90/p99, top cells, rollups (+ heartbeat)
//! ```
//!
//! # Fuzzing (`fuzz`)
//!
//! `fuzz --budget N --seed S` runs the violation-guided adversary fuzzer: a seeded,
//! byte-deterministic search over serialized adversary scripts, checked against the
//! broadcast and stable-matching property oracles (see `docs/FUZZING.md`). Any
//! violating script is greedily shrunk; `--freeze` writes the minimal script as a
//! canonical regression file under `crates/core/tests/fuzz_regressions/`, and
//! `--replay FILE` re-runs one frozen script and verifies its recorded verdict:
//!
//! ```sh
//! campaign_ctl fuzz --budget 200 --seed 1          # writes fuzz.log to --out
//! campaign_ctl fuzz --replay crates/core/tests/fuzz_regressions/some_attack.toml
//! ```

use bsm_bench::cli::BenchArgs;
use bsm_bench::exit::{CtlCode, CtlError};
use bsm_core::harness::AdversarySpec;
use bsm_core::script::{Script, Verdict};
use bsm_engine::export::{
    atomic_write, to_csv, to_json, AtomicFile, MergedJsonWriter, StreamingCsvWriter,
    StreamingExporter,
};
use bsm_engine::import::{footer_meta, from_json, from_jsonl, StreamingCells};
use bsm_engine::supervise::{
    attempt_from_env, pid_alive, run_supervisor, ChaosSpec, CrashPoint, SuperviseConfig,
    DEFAULT_BACKOFF_MS, DEFAULT_MAX_ATTEMPTS, DEFAULT_POLL_MS, DEFAULT_STALL_POLLS,
};
use bsm_engine::telemetry::{
    parse_progress, CampaignStats, CellTelemetry, Heartbeat, TelemetryExporter, HEARTBEAT_EVERY,
};
use bsm_engine::{
    run_fuzz, Campaign, CampaignBuilder, CampaignDiff, CampaignReport, CellMerge, Executor,
    FuzzConfig, Progress, ScenarioFile, ShardPlan, StreamError, Totals,
};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode, Stdio};

/// The campaign to run, plus the canonical scenario text when one was loaded from
/// `--scenario FILE` (embedded in every report artifact as its scenario tag).
///
/// Without `--scenario`, the standard grids are mirrored by `examples/campaign.rs` —
/// the CI gate cross-checks that both produce byte-identical exports.
fn build_campaign(args: &BenchArgs) -> Result<(Campaign, Option<String>), CtlError> {
    if let Some(path) = &args.scenario {
        if args.smoke {
            return Err(CtlError::Usage(
                "--scenario and --smoke are mutually exclusive (the scenario \
                 file already names its whole grid)"
                    .into(),
            ));
        }
        let scenario = ScenarioFile::load(path).map_err(|err| err.to_string())?;
        eprintln!("loaded scenario {:?} from {}", scenario.name, path.display());
        return Ok((scenario.campaign(), Some(scenario.canonical())));
    }
    let campaign = if args.smoke {
        // Small CI grid: 1 × 3 × 2 × 2 × 3 × 2 = 72 cells.
        CampaignBuilder::new()
            .sizes([3])
            .corruptions([(0, 0), (1, 1)])
            .adversaries(AdversarySpec::ALL)
            .seeds(0..2)
            .build()
    } else {
        // Full sweep: 3 × 3 × 2 × 4 × 3 × 5 = 1080 cells.
        CampaignBuilder::new()
            .sizes([3, 4, 5])
            .corruptions([(0, 0), (0, 1), (1, 0), (1, 1)])
            .adversaries(AdversarySpec::ALL)
            .seeds(0..5)
            .build()
    };
    Ok((campaign, None))
}

/// Writes `report.json` and `report.csv` for `report` under `dir` (each through a
/// temp-file + atomic rename — see [`atomic_write`]).
fn export_report(report: &CampaignReport, dir: &Path) -> Result<(), String> {
    let json_path = dir.join("report.json");
    let csv_path = dir.join("report.csv");
    std::fs::create_dir_all(dir)
        .and_then(|()| atomic_write(&json_path, to_json(report)))
        .and_then(|()| atomic_write(&csv_path, to_csv(report)))
        .map_err(|err| format!("cannot write to {}: {err}", dir.display()))?;
    println!("exported {} and {}", json_path.display(), csv_path.display());
    Ok(())
}

/// Reads and imports one exported report: `report.json`, or a streamed
/// `report.jsonl` (detected by extension, case-insensitively).
fn import_report(path: &str) -> Result<CampaignReport, String> {
    let streamed = Path::new(path).extension().is_some_and(|ext| ext.eq_ignore_ascii_case("jsonl"));
    if streamed {
        let file = File::open(path).map_err(|err| format!("cannot read {path}: {err}"))?;
        return from_jsonl(BufReader::new(file))
            .map_err(|err| format!("cannot import streamed export {path}: {err}"));
    }
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    from_json(&text).map_err(|err| {
        format!(
            "cannot import {path}: {err} (expected a report.json document; streamed \
             report.jsonl exports are detected by their .jsonl extension)"
        )
    })
}

/// Writes the `metrics.jsonl` telemetry sidecar for an in-memory run under `dir`
/// (atomically, like every other artifact).
fn export_metrics(telemetry: &[CellTelemetry], dir: &Path) -> Result<(), String> {
    let path = dir.join("metrics.jsonl");
    let mut out = AtomicFile::create(&path)
        .map_err(|err| format!("cannot write {}: {err}", path.display()))?;
    let mut exporter = TelemetryExporter::new(&mut out);
    for cell in telemetry {
        exporter
            .write_cell(cell)
            .map_err(|err| format!("cannot write telemetry to {}: {err}", path.display()))?;
    }
    exporter.finish().map_err(|err| format!("cannot finish {}: {err}", path.display()))?;
    out.persist().map_err(|err| format!("cannot publish {}: {err}", path.display()))?;
    println!("exported {}", path.display());
    Ok(())
}

/// Removes a stale artifact left by an earlier run, tolerating its absence.
fn remove_stale(path: &Path) -> Result<(), String> {
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(err) => Err(format!("cannot remove stale {}: {err}", path.display())),
    }
}

/// Flushes and fsyncs a completed streamed JSONL export at its `.partial` path,
/// then publishes it at the final path with an atomic rename.
fn publish_partial(jsonl: BufWriter<File>, partial: &Path, dest: &Path) -> Result<(), String> {
    let file = jsonl
        .into_inner()
        .map_err(|err| format!("cannot flush {}: {}", partial.display(), err.into_error()))?;
    file.sync_all().map_err(|err| format!("cannot sync {}: {err}", partial.display()))?;
    drop(file);
    std::fs::rename(partial, dest)
        .map_err(|err| format!("cannot publish {}: {err}", dest.display()))
}

fn run(args: &BenchArgs) -> Result<CtlCode, CtlError> {
    let (campaign, scenario) = build_campaign(args)?;
    let executor = args.executor().progress(Progress::Stderr { every: 250 });
    match args.shard {
        Some(plan) => eprintln!("running shard {plan} of {campaign}"),
        None => eprintln!("running {campaign}"),
    }
    if args.stream {
        return run_streamed(args, &campaign, scenario.as_deref(), &executor);
    }
    // Tag the report with the scenario's canonical text (a no-op without --scenario).
    let tag = |report: CampaignReport| match &scenario {
        Some(text) => report.with_scenario(text.clone()),
        None => report,
    };
    let out = args.out.clone().unwrap_or_else(|| PathBuf::from("target/campaign_ctl"));
    if args.metrics {
        // The telemetry path builds the exact report the plain path builds (the
        // records come from the same cell runner) — the sidecar is a pure addition.
        let target = campaign.shard(args.shard.unwrap_or(ShardPlan::WHOLE));
        let (report, telemetry, stats) = executor.run_telemetry(&target);
        let report = tag(report);
        eprintln!("{stats}");
        println!("totals: {}", report.totals());
        export_report(&report, &out)?;
        export_metrics(&telemetry, &out)?;
        return Ok(CtlCode::Success);
    }
    let (report, stats) = match args.shard {
        Some(plan) => executor.run_shard(&campaign, plan),
        None => executor.run(&campaign),
    };
    let report = tag(report);
    eprintln!("{stats}");
    println!("totals: {}", report.totals());
    export_report(&report, &out)?;
    Ok(CtlCode::Success)
}

/// `run --stream`: cells are folded into rolling totals and streamed to
/// `report.jsonl` **and** `report.csv` as they complete; the full record vector is
/// never held in memory. The per-shard CSV is byte-identical to the `to_csv` export
/// of the same shard run in memory (CSV needs no totals header, so it can stream on
/// the shard side too).
///
/// Crash safety: the JSONL stream is written at `report.jsonl.partial` and renamed
/// to `report.jsonl` only once footered, so a crash (or failure) at any instant
/// leaves the completed cells salvageable for [`resume`] and never a truncated
/// stream at the final path. The CSV (and the `--metrics` sidecar) go through an
/// [`AtomicFile`]. The `progress.json` heartbeat is the one artifact deliberately
/// *left behind* on failure: its last atomic snapshot shows where the run died.
fn run_streamed(
    args: &BenchArgs,
    campaign: &Campaign,
    scenario: Option<&str>,
    executor: &Executor,
) -> Result<CtlCode, CtlError> {
    // Deterministic crash injection (the supervision chaos tests): read the armed
    // point first, so an `early` death happens before any artifact exists.
    let mut crash = CrashPoint::from_env().map_err(CtlError::Usage)?;
    if let Some(point) = &crash {
        point.die_early_if_armed();
    }
    let attempt = attempt_from_env()?;
    let out = args.out.clone().unwrap_or_else(|| PathBuf::from("target/campaign_ctl"));
    std::fs::create_dir_all(&out)
        .map_err(|err| format!("cannot create {}: {err}", out.display()))?;
    let path = out.join("report.jsonl");
    let partial_path = out.join("report.jsonl.partial");
    let csv_path = out.join("report.csv");
    let metrics_path = out.join("metrics.jsonl");
    // A stale report.jsonl from an earlier run must not sit next to this run's
    // partial: an interrupted run would otherwise look complete to a later merge.
    // Same for a stale sidecar, which this run may not regenerate.
    remove_stale(&path)?;
    remove_stale(&metrics_path)?;
    let file = File::create(&partial_path)
        .map_err(|err| format!("cannot write {}: {err}", partial_path.display()))?;
    let mut jsonl = BufWriter::new(file);
    let mut csv_out = AtomicFile::create(&csv_path)
        .map_err(|err| format!("cannot write {}: {err}", csv_path.display()))?;
    let mut metrics_out = match args.metrics {
        true => Some(
            AtomicFile::create(&metrics_path)
                .map_err(|err| format!("cannot write {}: {err}", metrics_path.display()))?,
        ),
        false => None,
    };
    // Every streamed run heartbeats, --metrics or not: liveness is for operators
    // and the future coordinator, not a per-cell data product.
    let shard_len = args.shard.map_or(campaign.len(), |plan| plan.range(campaign.len()).len());
    let mut heartbeat = Heartbeat::new(&out, shard_len, HEARTBEAT_EVERY)
        .and_then(|beat| if attempt > 1 { beat.attempt(attempt) } else { Ok(beat) })
        .map_err(|err| format!("cannot write heartbeat in {}: {err}", out.display()))?;
    let result = (|| -> Result<(Totals, bsm_engine::ExecutionStats), String> {
        let mut exporter = StreamingExporter::new(&mut jsonl);
        if let Some(text) = scenario {
            exporter.set_scenario(text);
        }
        let mut csv = StreamingCsvWriter::new(&mut csv_out)
            .map_err(|err| format!("cannot start {}: {err}", csv_path.display()))?;
        let mut metrics = metrics_out.as_mut().map(TelemetryExporter::new);
        let mut sink =
            |cell: bsm_engine::CellRecord, telemetry: CellTelemetry| -> Result<(), StreamError> {
                exporter.write_cell(&cell)?;
                csv.write_cell(&cell)?;
                if let Some(sidecar) = metrics.as_mut() {
                    sidecar.write_cell(&telemetry)?;
                }
                heartbeat.tick(cell.spec)?;
                if let Some(point) = crash.as_mut() {
                    if point.cell_written() {
                        // Flush first: an injected death leaves whole lines (plus,
                        // for torn mode, the fragment fire() appends after them).
                        exporter.flush()?;
                        point.fire(&partial_path);
                    }
                }
                Ok(())
            };
        let run = match args.shard {
            Some(plan) => executor.run_shard_streaming_telemetry(campaign, plan, &mut sink),
            None => executor.run_streaming_telemetry(campaign, &mut sink),
        };
        let (totals, stats) = run.map_err(|err| {
            format!("streamed export to {} failed: {err}", partial_path.display())
        })?;
        exporter
            .finish()
            .map_err(|err| format!("cannot finish {}: {err}", partial_path.display()))?;
        csv.finish().map_err(|err| format!("cannot finish {}: {err}", csv_path.display()))?;
        if let Some(sidecar) = metrics {
            sidecar
                .finish()
                .map_err(|err| format!("cannot finish {}: {err}", metrics_path.display()))?;
        }
        Ok((totals, stats))
    })();
    let (totals, stats) = match result {
        Ok(finished) => finished,
        Err(message) => {
            // Keep the salvageable prefix at report.jsonl.partial; the CSV and
            // sidecar staging files are discarded by the AtomicFile drops, leaving
            // no partial CSV or metrics.jsonl.
            drop(csv_out);
            drop(metrics_out);
            return Err(format!(
                "{message} (completed cells kept at {}; `campaign_ctl resume` with the \
                 same flags finishes the run)",
                partial_path.display()
            )
            .into());
        }
    };
    if let Some(point) = &crash {
        // The `finish` death promises a complete, footered partial on disk: drain
        // the writer's buffer before dying between footer and rename.
        jsonl.flush().map_err(|err| format!("cannot flush {}: {err}", partial_path.display()))?;
        point.die_before_publish_if_armed();
    }
    publish_partial(jsonl, &partial_path, &path)?;
    csv_out.persist().map_err(|err| format!("cannot publish {}: {err}", csv_path.display()))?;
    if let Some(staged) = metrics_out {
        staged
            .persist()
            .map_err(|err| format!("cannot publish {}: {err}", metrics_path.display()))?;
    }
    heartbeat
        .finish()
        .map_err(|err| format!("cannot write heartbeat in {}: {err}", out.display()))?;
    eprintln!("{stats}");
    println!("totals: {totals}");
    println!("exported {} and {}", path.display(), csv_path.display());
    if args.metrics {
        println!("exported {}", metrics_path.display());
    }
    Ok(CtlCode::Success)
}

/// `resume --out DIR`: finish a crash-interrupted `run --stream`.
///
/// Salvages the valid ordered cell prefix of the interrupted export
/// (`report.jsonl.partial` when present, else `report.jsonl`), verifies it against
/// the shard's canonical work list, re-runs only the un-run remainder of the
/// shard's range ([`ShardPlan::remainder`]), and splices prefix + fresh cells into
/// a complete footered `report.jsonl` + `report.csv` — byte-identical to an
/// uninterrupted `run --stream`. Pass the same `--smoke`/`--shard` flags as the
/// interrupted run; the salvaged prefix is held in memory while the output is
/// rewritten through the same partial-then-rename scheme as `run --stream`.
fn resume(args: &BenchArgs) -> Result<CtlCode, CtlError> {
    if !args.files.is_empty() {
        return Err(CtlError::Usage(
            "resume: file arguments are not supported (pass --out DIR of the \
             interrupted run, plus its --smoke/--shard flags)"
                .into(),
        ));
    }
    if args.metrics {
        // Telemetry (counter deltas, wall times) is measured while a cell runs; it
        // cannot be reconstructed for the cells salvaged from the interrupted
        // export, so a resumed sidecar would silently cover only the fresh tail.
        return Err(CtlError::Usage(
            "resume: --metrics is not supported (per-cell telemetry cannot be \
             reconstructed for salvaged cells; re-run with `run --stream --metrics` \
             for a complete sidecar)"
                .into(),
        ));
    }
    let out = args.out.clone().ok_or_else(|| {
        CtlError::Usage(
            "resume: --out DIR is required (the directory of the interrupted streamed run)".into(),
        )
    })?;
    // Chaos counts *stream-absolute* cells: replayed salvaged cells count too, so
    // "die after the Nth cell" means the same position on every attempt.
    let mut crash = CrashPoint::from_env().map_err(CtlError::Usage)?;
    if let Some(point) = &crash {
        point.die_early_if_armed();
    }
    let attempt = attempt_from_env()?;
    let (campaign, scenario) = build_campaign(args)?;
    let plan = args.shard.unwrap_or(ShardPlan::WHOLE);
    let shard = campaign.shard(plan);
    let path = out.join("report.jsonl");
    let partial_path = out.join("report.jsonl.partial");
    let csv_path = out.join("report.csv");
    let source = if partial_path.exists() { partial_path.clone() } else { path.clone() };
    let file = File::open(&source).map_err(|err| {
        format!(
            "cannot read {}: {err} (nothing to resume; run `campaign_ctl run --stream` first)",
            source.display()
        )
    })?;
    let salvaged = StreamingCells::salvage(BufReader::new(file))
        .map_err(|err| format!("cannot salvage {}: {err}", source.display()))?;
    let done = salvaged.cells.len();
    // The prefix must be exactly the head of this shard's canonical work list —
    // anything else means the flags do not match the interrupted run (or the
    // export lost an interior cell), and splicing would ship a wrong artifact.
    if done > shard.len() {
        return Err(format!(
            "salvaged {done} cell(s) but shard {plan} has only {} — wrong --smoke/--shard \
             flags for this export?",
            shard.len()
        )
        .into());
    }
    for (cell, expected) in salvaged.cells.iter().zip(shard.specs()) {
        if cell.spec != *expected {
            return Err(format!(
                "salvaged cell {} does not match the shard's work list (expected {}) — \
                 wrong --smoke/--shard flags for this export?",
                cell.spec, expected
            )
            .into());
        }
    }
    match (&salvaged.truncation, salvaged.complete) {
        (Some(reason), _) => {
            eprintln!("salvaged {done} cell(s) from {} (stopped at: {reason})", source.display());
        }
        (None, false) => {
            eprintln!("salvaged {done} cell(s) from {} (no footer)", source.display());
        }
        (None, true) => {
            eprintln!("salvaged all {done} cell(s) from {} (complete export)", source.display());
        }
    }
    let remainder = plan.remainder(campaign.len(), done);
    let fresh = remainder.len();
    let executor = args.executor().progress(Progress::Stderr { every: 250 });
    eprintln!("re-running {fresh} remaining cell(s) of shard {plan} of {campaign}");
    // Same crash-safe scheme as `run --stream`: the spliced stream goes to
    // report.jsonl.partial (truncating the source we already hold in memory) and is
    // renamed into place only once footered. A stale sidecar from an earlier
    // `--metrics` run is removed — resume cannot regenerate it (see above).
    remove_stale(&path)?;
    remove_stale(&out.join("metrics.jsonl"))?;
    let jsonl_file = File::create(&partial_path)
        .map_err(|err| format!("cannot write {}: {err}", partial_path.display()))?;
    let mut jsonl = BufWriter::new(jsonl_file);
    let mut csv_out = AtomicFile::create(&csv_path)
        .map_err(|err| format!("cannot write {}: {err}", csv_path.display()))?;
    // The heartbeat starts at the salvaged count, so a watcher sees the resumed
    // shard continue from where the interrupted run's progress.json left off.
    let mut heartbeat = Heartbeat::new(&out, shard.len(), HEARTBEAT_EVERY)
        .and_then(|heartbeat| heartbeat.starting_at(done))
        .and_then(|beat| if attempt > 1 { beat.attempt(attempt) } else { Ok(beat) })
        .map_err(|err| format!("cannot write heartbeat in {}: {err}", out.display()))?;
    let result = (|| -> Result<(Totals, bsm_engine::ExecutionStats), String> {
        let mut exporter = StreamingExporter::new(&mut jsonl);
        if let Some(text) = &scenario {
            exporter.set_scenario(text.clone());
        }
        let mut csv = StreamingCsvWriter::new(&mut csv_out)
            .map_err(|err| format!("cannot start {}: {err}", csv_path.display()))?;
        for cell in &salvaged.cells {
            exporter.write_cell(cell).and_then(|()| csv.write_cell(cell)).map_err(|err| {
                format!("cannot replay the salvaged prefix into {}: {err}", partial_path.display())
            })?;
            if let Some(point) = crash.as_mut() {
                if point.cell_written() {
                    exporter
                        .flush()
                        .map_err(|err| format!("cannot flush {}: {err}", partial_path.display()))?;
                    point.fire(&partial_path);
                }
            }
        }
        let mut sink = |cell: bsm_engine::CellRecord| -> Result<(), StreamError> {
            exporter.write_cell(&cell)?;
            csv.write_cell(&cell)?;
            heartbeat.tick(cell.spec)?;
            if let Some(point) = crash.as_mut() {
                if point.cell_written() {
                    exporter.flush()?;
                    point.fire(&partial_path);
                }
            }
            Ok(())
        };
        let run = executor.run_range_streaming(&campaign, remainder, &mut sink);
        let (_, stats) = run.map_err(|err| {
            format!("streamed export to {} failed: {err}", partial_path.display())
        })?;
        let totals = exporter
            .finish()
            .map_err(|err| format!("cannot finish {}: {err}", partial_path.display()))?;
        csv.finish().map_err(|err| format!("cannot finish {}: {err}", csv_path.display()))?;
        Ok((totals, stats))
    })();
    let (totals, stats) = match result {
        Ok(finished) => finished,
        Err(message) => {
            drop(csv_out);
            return Err(format!(
                "{message} (completed cells kept at {}; rerun `campaign_ctl resume` to \
                 finish)",
                partial_path.display()
            )
            .into());
        }
    };
    if let Some(point) = &crash {
        jsonl.flush().map_err(|err| format!("cannot flush {}: {err}", partial_path.display()))?;
        point.die_before_publish_if_armed();
    }
    publish_partial(jsonl, &partial_path, &path)?;
    csv_out.persist().map_err(|err| format!("cannot publish {}: {err}", csv_path.display()))?;
    heartbeat
        .finish()
        .map_err(|err| format!("cannot write heartbeat in {}: {err}", out.display()))?;
    eprintln!("{stats}");
    println!("totals: {totals}");
    println!("resumed: {done} salvaged + {fresh} fresh cell(s)");
    println!("exported {} and {}", path.display(), csv_path.display());
    Ok(CtlCode::Success)
}

/// `supervise --shards K`: crash-tolerant supervised shard execution.
///
/// Spawns one worker subprocess per shard (`campaign_ctl run --stream --shard
/// i/K`, re-executing this binary), watches each worker's `progress.json`
/// heartbeat, and on crash, stall or non-zero exit salvages the worker's partial
/// and relaunches the remainder (`campaign_ctl resume`) with bounded attempts and
/// exponential backoff ([`run_supervisor`]). Shards that exhaust their attempts
/// are quarantined; the completed shards are merged into `report.json` +
/// `report.csv` (byte-identical to an unsupervised run when nothing is
/// quarantined), `supervise.json` records every attempt and the quarantined
/// ranges, and the process exits degraded (code 4) when anything was quarantined.
fn supervise(args: &BenchArgs) -> Result<CtlCode, CtlError> {
    if !args.files.is_empty() || args.metrics || args.shard.is_some() || args.stream {
        return Err(CtlError::Usage(
            "supervise: --shard, --stream, --metrics and file arguments are not \
             supported (the supervisor shards, streams and merges itself; use \
             --shards K plus --smoke/--scenario, --threads, --out and the \
             supervision tuning flags)"
                .into(),
        ));
    }
    let shards = args.shards.ok_or_else(|| {
        CtlError::Usage(
            "supervise: --shards K is required (worker subprocesses, one per shard)".into(),
        )
    })?;
    let (campaign, _) = build_campaign(args)?;
    let out = args.out.clone().unwrap_or_else(|| PathBuf::from("target/campaign_ctl/supervised"));
    let dirs: Vec<PathBuf> = (1..=shards).map(|i| out.join(format!("shard-{i}"))).collect();
    for dir in &dirs {
        std::fs::create_dir_all(dir)
            .map_err(|err| format!("cannot create {}: {err}", dir.display()))?;
    }
    let exe = std::env::current_exe()
        .map_err(|err| format!("cannot locate the campaign_ctl binary: {err}"))?;
    let config = SuperviseConfig {
        shards,
        total_cells: campaign.len(),
        max_attempts: args.max_attempts.unwrap_or(DEFAULT_MAX_ATTEMPTS),
        backoff_base_ms: args.backoff_ms.unwrap_or(DEFAULT_BACKOFF_MS),
        poll_ms: args.poll_ms.unwrap_or(DEFAULT_POLL_MS),
        stall_polls: args.stall_polls.unwrap_or(DEFAULT_STALL_POLLS),
        chaos: args.chaos.clone().unwrap_or(ChaosSpec::NONE),
    };
    if !config.chaos.is_empty() {
        eprintln!("supervise: chaos armed: {}", config.chaos);
    }
    eprintln!(
        "supervising {shards} worker(s) over {campaign} (max {} attempt(s)/shard)",
        config.max_attempts
    );
    let summary = run_supervisor(&config, &dirs, |shard, _, resume| {
        let mut command = Command::new(&exe);
        match resume {
            true => command.arg("resume"),
            false => command.arg("run").arg("--stream"),
        };
        command.arg("--shard").arg(format!("{shard}/{shards}"));
        if args.smoke {
            command.arg("--smoke");
        }
        if let Some(path) = &args.scenario {
            command.arg("--scenario").arg(path);
        }
        if let Some(threads) = args.threads {
            command.arg("--threads").arg(threads.to_string());
        }
        command.arg("--out").arg(&dirs[shard - 1]);
        // Workers talk through artifacts and heartbeats; their stdio would only
        // interleave illegibly with the supervisor's own reporting.
        command.stdout(Stdio::null()).stderr(Stdio::null());
        command
    })
    .map_err(|err| format!("supervisor loop failed: {err}"))?;
    let summary_path = out.join("supervise.json");
    atomic_write(&summary_path, summary.to_json())
        .map_err(|err| format!("cannot write {}: {err}", summary_path.display()))?;
    let completed = summary.completed_shards();
    let exports: Vec<String> = completed
        .iter()
        .map(|&shard| dirs[shard - 1].join("report.jsonl").to_string_lossy().into_owned())
        .collect();
    let json_path = out.join("report.json");
    let csv_path = out.join("report.csv");
    if exports.is_empty() {
        // Nothing completed: a merged report from some earlier run must not sit
        // next to a supervise.json that says everything was quarantined.
        remove_stale(&json_path)?;
        remove_stale(&csv_path)?;
        eprintln!("supervise: no shard completed; nothing to merge");
    } else {
        let totals = merge_streams(&exports, &out)?;
        println!("merged {} of {shards} shard(s): {totals}", exports.len());
        println!("exported {} and {}", json_path.display(), csv_path.display());
    }
    println!("exported {}", summary_path.display());
    if summary.degraded() {
        for shard in &summary.quarantined {
            eprintln!(
                "supervise: shard {}/{shards} quarantined after {} attempt(s) — cells \
                 {}..{} missing from the merged artifacts",
                shard.shard,
                shard.attempts,
                shard.start,
                shard.start + shard.cells
            );
        }
        return Ok(CtlCode::Degraded);
    }
    println!(
        "supervised run complete: {shards} shard(s) over {} attempt(s)",
        summary.attempts.len()
    );
    Ok(CtlCode::Success)
}

/// `bench`: run the fixed Dolev-Strong-heavy benchmark campaign and write the
/// `BENCH_engine.json` performance snapshot (see [`bsm_engine::bench`]).
///
/// `--smoke` selects the quick CI grid; the default full grid is the one behind the
/// tracked repo-root baseline. `--out DIR` chooses where `BENCH_engine.json` lands
/// (default: the current directory, i.e. the repo root when run from a checkout).
fn bench(args: &BenchArgs) -> Result<CtlCode, CtlError> {
    // The benchmark campaign is fixed by design (the snapshot is only comparable
    // across runs of the same grid); silently accepting run-flavored flags would
    // ship a mislabeled baseline with exit 0.
    if args.shard.is_some()
        || args.stream
        || args.metrics
        || args.scenario.is_some()
        || !args.files.is_empty()
    {
        return Err(CtlError::Usage(
            "bench: --shard, --stream, --metrics, --scenario and file arguments \
             are not supported (the benchmark campaign is fixed and its snapshot \
             already carries the counter deltas; use --smoke, --threads, --out)"
                .into(),
        ));
    }
    let executor = args.executor().progress(Progress::Stderr { every: 250 });
    eprintln!(
        "running {} benchmark campaign on {} thread(s)",
        if args.smoke { "quick" } else { "full" },
        executor.thread_count()
    );
    let snapshot = bsm_engine::bench::run(&executor, args.smoke);
    let dir = args.out.clone().unwrap_or_else(|| PathBuf::from("."));
    let path = dir.join("BENCH_engine.json");
    std::fs::create_dir_all(&dir)
        .and_then(|()| atomic_write(&path, snapshot.to_json()))
        .map_err(|err| format!("cannot write {}: {err}", path.display()))?;
    println!(
        "{} cells in {:.3}s ({:.1} scenarios/sec); {} signatures verified \
         (+{} cache hits), {} digests computed",
        snapshot.cells,
        snapshot.wall_seconds,
        snapshot.scenarios_per_sec,
        snapshot.signatures_verified,
        snapshot.verify_cache_hits,
        snapshot.digests_computed
    );
    println!("exported {}", path.display());
    Ok(CtlCode::Success)
}

/// `fuzz`: the violation-guided adversary fuzzer (see `docs/FUZZING.md`).
///
/// `fuzz --budget N --seed S` runs the seeded search loop over adversary-script
/// space and writes the byte-deterministic `fuzz.log` under `--out` (default
/// `target/campaign_ctl`). Any violating script is greedily shrunk; `--freeze`
/// writes each minimal script as a canonical regression file under
/// `crates/core/tests/fuzz_regressions/`. `fuzz --replay FILE` instead re-runs one
/// frozen script and checks the recorded verdict; `--replay FILE --freeze` rewrites
/// the file canonically with the observed verdict (how verdicts get stamped).
///
/// Returns [`CtlCode::Findings`] — exit 3 — when the search found violations or a
/// replayed verdict did not reproduce.
fn fuzz(args: &BenchArgs) -> Result<CtlCode, CtlError> {
    // The fuzzer owns its own determinism contract; campaign-flavored flags have no
    // meaning here and silently ignoring them would mislabel the run.
    if args.shard.is_some()
        || args.stream
        || args.metrics
        || args.smoke
        || args.scenario.is_some()
        || !args.files.is_empty()
    {
        return Err(CtlError::Usage(
            "fuzz: --shard, --stream, --metrics, --smoke, --scenario and file \
             arguments are not supported (use --budget N, --seed S, --replay FILE, \
             --freeze, --out DIR)"
                .into(),
        ));
    }
    if let Some(path) = &args.replay {
        if args.budget.is_some() || args.seed.is_some() {
            return Err(CtlError::Usage(
                "fuzz: --replay re-runs one frozen script; --budget/--seed only \
                 apply to the search loop"
                    .into(),
            ));
        }
        let mismatched = replay_script(path, args.freeze)?;
        return Ok(if mismatched { CtlCode::Findings } else { CtlCode::Success });
    }
    let budget = args.budget.ok_or_else(|| {
        CtlError::Usage(
            "fuzz: --budget N is required (or --replay FILE to re-run a frozen script)".into(),
        )
    })?;
    let seed = args.seed.unwrap_or(0);
    let report = run_fuzz(&FuzzConfig { budget, seed });
    let out = args.out.clone().unwrap_or_else(|| PathBuf::from("target/campaign_ctl"));
    let log_path = out.join("fuzz.log");
    std::fs::create_dir_all(&out)
        .and_then(|()| atomic_write(&log_path, report.log.clone()))
        .map_err(|err| format!("cannot write {}: {err}", log_path.display()))?;
    println!(
        "fuzzed {} case(s): {} violation(s), worst slots {} (case {:04}), \
         worst messages {} (case {:04})",
        report.cases,
        report.violations.len(),
        report.worst_slots,
        report.worst_slots_case,
        report.worst_messages,
        report.worst_messages_case
    );
    println!("exported {}", log_path.display());
    for violation in &report.violations {
        eprintln!(
            "case {:04}: VIOLATION {} (shrunk {} -> {} action(s))",
            violation.case,
            violation.signature,
            violation.script.actions.len(),
            violation.shrunk.actions.len()
        );
        if args.freeze {
            let dir = PathBuf::from("crates/core/tests/fuzz_regressions");
            let path = dir.join(format!("{}.toml", violation.shrunk.name));
            std::fs::create_dir_all(&dir)
                .and_then(|()| atomic_write(&path, violation.shrunk.canonical()))
                .map_err(|err| format!("cannot freeze {}: {err}", path.display()))?;
            println!("froze {}", path.display());
        }
    }
    Ok(if report.violations.is_empty() { CtlCode::Success } else { CtlCode::Findings })
}

/// `fuzz --replay FILE [--freeze]`: re-run one frozen script deterministically.
///
/// Without `--freeze` the observed verdict must match the one recorded in the file
/// (a missing recorded verdict is reported but does not fail). With `--freeze` the
/// file is rewritten canonically with the observed verdict.
fn replay_script(path: &Path, freeze: bool) -> Result<bool, String> {
    let script =
        Script::load(path).map_err(|err| format!("cannot replay {}: {err}", path.display()))?;
    let outcome =
        script.run().map_err(|err| format!("replay of {} failed to run: {err}", path.display()))?;
    let observed = Verdict::of(&outcome);
    println!(
        "replayed {}: decided={} slots={} violations={:?}",
        path.display(),
        observed.decided,
        observed.slots,
        observed.violations
    );
    if freeze {
        let mut updated = script;
        updated.verdict = Some(observed);
        atomic_write(path, updated.canonical())
            .map_err(|err| format!("cannot freeze {}: {err}", path.display()))?;
        println!("froze {}", path.display());
        return Ok(false);
    }
    match &script.verdict {
        Some(recorded) if *recorded == observed => {
            println!("verdict reproduced");
            Ok(false)
        }
        Some(recorded) => {
            eprintln!(
                "verdict MISMATCH: file records decided={} slots={} violations={:?}",
                recorded.decided, recorded.slots, recorded.violations
            );
            Ok(true)
        }
        None => {
            println!("no recorded verdict (stamp one with --replay FILE --freeze)");
            Ok(false)
        }
    }
}

fn merge(args: &BenchArgs) -> Result<CtlCode, CtlError> {
    if args.files.is_empty() {
        return Err(CtlError::Usage(
            "merge: no shard exports given (pass report.json paths)".into(),
        ));
    }
    if args.metrics {
        return Err(CtlError::Usage(
            "merge: --metrics is not supported (sidecars are per-run; run \
             `campaign_ctl stats` on each shard's metrics.jsonl instead)"
                .into(),
        ));
    }
    if args.stream {
        return merge_streamed(args);
    }
    let shards = args.files.iter().map(|p| import_report(p)).collect::<Result<Vec<_>, _>>()?;
    let merged = CampaignReport::merge(shards).map_err(|err| err.to_string())?;
    println!("merged {} shard(s): {}", args.files.len(), merged.totals());
    let out = args.out.clone().unwrap_or_else(|| PathBuf::from("target/campaign_ctl/merged"));
    export_report(&merged, &out)?;
    Ok(CtlCode::Success)
}

/// `merge --stream`: k-way merge of shard `report.jsonl` streams in constant memory.
fn merge_streamed(args: &BenchArgs) -> Result<CtlCode, CtlError> {
    let out = args.out.clone().unwrap_or_else(|| PathBuf::from("target/campaign_ctl/merged"));
    let totals = merge_streams(&args.files, &out)?;
    println!("merged {} shard stream(s): {totals}", args.files.len());
    println!(
        "exported {} and {}",
        out.join("report.json").display(),
        out.join("report.csv").display()
    );
    Ok(CtlCode::Success)
}

/// The streamed-merge core shared by `merge --stream` and `supervise`: k-way merge
/// of shard `report.jsonl` streams into `report.json` + `report.csv` under `out`,
/// in constant memory.
///
/// Pass 1 reads just the totals footers (the JSON document puts totals before the
/// cells, so the coordinator must know them up front) and the scenario tags they
/// carry — shards from different scenarios refuse to merge; pass 2 lazily streams
/// the cells of all shards through the binary-heap merge into `report.json` +
/// `report.csv`, byte-identical to the in-memory merge. The writers verify the
/// summed footers against the cells actually streamed, so a lying footer or
/// truncated shard fails the merge instead of shipping a wrong artifact.
fn merge_streams(files: &[String], out: &Path) -> Result<Totals, String> {
    let mut declared = Totals::default();
    let mut scenario: Option<String> = None;
    for (index, path) in files.iter().enumerate() {
        let file = File::open(path).map_err(|err| format!("cannot read {path}: {err}"))?;
        let (totals, tag) = footer_meta(BufReader::new(file))
            .map_err(|err| format!("cannot read footer of {path}: {err}"))?;
        declared += totals;
        if index == 0 {
            scenario = tag;
        } else if tag != scenario {
            let render = |t: &Option<String>| t.clone().unwrap_or_else(|| "no scenario tag".into());
            return Err(format!(
                "cannot merge shards from different scenarios: {path} carries {:?} but the \
                 first shard carries {:?}",
                render(&tag),
                render(&scenario)
            ));
        }
    }
    let mut streams = Vec::new();
    for path in files {
        let file = File::open(path).map_err(|err| format!("cannot read {path}: {err}"))?;
        streams.push(StreamingCells::new(BufReader::new(file)));
    }
    std::fs::create_dir_all(out)
        .map_err(|err| format!("cannot create {}: {err}", out.display()))?;
    let json_path = out.join("report.json");
    let csv_path = out.join("report.csv");
    // Atomic publication: a failed (or killed) merge leaves no half-written artifact
    // at the final paths — the AtomicFile drop discards the staging files.
    let mut json_out = AtomicFile::create(&json_path)
        .map_err(|err| format!("cannot write {}: {err}", json_path.display()))?;
    let mut csv_out = AtomicFile::create(&csv_path)
        .map_err(|err| format!("cannot write {}: {err}", csv_path.display()))?;
    let totals = (|| -> Result<Totals, String> {
        let mut json = MergedJsonWriter::with_scenario(&mut json_out, declared, scenario)
            .map_err(|err| format!("cannot start {}: {err}", json_path.display()))?;
        let mut csv = StreamingCsvWriter::new(&mut csv_out)
            .map_err(|err| format!("cannot start {}: {err}", csv_path.display()))?;
        for cell in CellMerge::new(streams) {
            let cell = cell.map_err(|err| format!("streamed merge failed: {err}"))?;
            json.write_cell(&cell)
                .map_err(|err| format!("cannot write {}: {err}", json_path.display()))?;
            csv.write_cell(&cell)
                .map_err(|err| format!("cannot write {}: {err}", csv_path.display()))?;
        }
        let totals =
            json.finish().map_err(|err| format!("cannot finish {}: {err}", json_path.display()))?;
        csv.finish().map_err(|err| format!("cannot finish {}: {err}", csv_path.display()))?;
        Ok(totals)
    })()?;
    json_out.persist().map_err(|err| format!("cannot publish {}: {err}", json_path.display()))?;
    csv_out.persist().map_err(|err| format!("cannot publish {}: {err}", csv_path.display()))?;
    Ok(totals)
}

/// Returns [`CtlCode::Findings`] when the reports differ in any cell.
fn diff(args: &BenchArgs) -> Result<CtlCode, CtlError> {
    if args.metrics {
        return Err(CtlError::Usage(
            "diff: --metrics is not supported (diff compares deterministic \
             report cells; telemetry sidecars carry timing and are not diffable)"
                .into(),
        ));
    }
    let [left, right] = args.files.as_slice() else {
        return Err(CtlError::Usage(format!(
            "diff: expected exactly two report.json paths, got {}",
            args.files.len()
        )));
    };
    let (left, right) = (import_report(left)?, import_report(right)?);
    if left.scenario() != right.scenario() {
        // Cells of different scenarios are different experiments; a cell-level diff
        // would be meaningless (and, under different grids, mostly "missing cell").
        let render = |t: Option<&str>| t.map_or("no scenario tag".into(), |t| format!("{t:?}"));
        return Err(format!(
            "cannot diff reports from different scenarios: {} vs {}",
            render(left.scenario()),
            render(right.scenario())
        )
        .into());
    }
    let diff = CampaignDiff::between(&left, &right);
    print!("{diff}");
    Ok(if diff.is_empty() { CtlCode::Success } else { CtlCode::Findings })
}

/// `stats`: aggregate a telemetry sidecar into quantiles, top cells and per-axis
/// rollups.
///
/// Takes exactly one path — a `metrics.jsonl` file, or a campaign out-dir
/// containing one. For a directory that also holds a `progress.json` heartbeat
/// (any streamed run), the heartbeat snapshot is summarized first, so `stats` on
/// a *running* shard's out-dir doubles as a liveness check. Aggregation streams
/// the sidecar and validates schema and canonical coordinate order as it goes.
fn stats(args: &BenchArgs) -> Result<CtlCode, CtlError> {
    let [target] = args.files.as_slice() else {
        return Err(CtlError::Usage(format!(
            "stats: expected exactly one path (metrics.jsonl, or a campaign --out \
             directory containing one), got {}",
            args.files.len()
        )));
    };
    let target = PathBuf::from(target);
    let (metrics_path, progress_path) = if target.is_dir() {
        (target.join("metrics.jsonl"), Some(target.join("progress.json")))
    } else {
        (target.clone(), None)
    };
    if let Some(progress_path) = progress_path.filter(|path| path.exists()) {
        let text = std::fs::read_to_string(&progress_path)
            .map_err(|err| format!("cannot read {}: {err}", progress_path.display()))?;
        let progress = parse_progress(&text)
            .map_err(|err| format!("cannot parse {}: {err}", progress_path.display()))?;
        let last = progress.last.map_or_else(|| "none".to_string(), |spec| spec.to_string());
        // The liveness verdict the supervisor automates: a finished shard is
        // complete, a beating pid is running, a dead pid with cells left means
        // the run died and `resume` (or `supervise`) can finish it. Old
        // pre-supervision heartbeats parse with pid 0 — liveness unknown.
        let verdict = if progress.done >= progress.total && progress.total > 0 {
            "complete"
        } else {
            match pid_alive(progress.pid) {
                Some(true) => "running",
                Some(false) => "worker dead; `campaign_ctl resume` finishes it",
                None => "liveness unknown",
            }
        };
        println!(
            "heartbeat: {}/{} cell(s) at {:.1}/s over {:.3}s, last {last} \
             [attempt {}, seq {}, pid {}: {verdict}]",
            progress.done,
            progress.total,
            progress.rate_per_sec,
            progress.wall_seconds,
            progress.attempt,
            progress.seq,
            progress.pid
        );
    }
    let file = File::open(&metrics_path).map_err(|err| {
        format!(
            "cannot read {}: {err} (produce a sidecar with `campaign_ctl run --metrics`)",
            metrics_path.display()
        )
    })?;
    let stats = CampaignStats::from_stream(BufReader::new(file))
        .map_err(|err| format!("cannot aggregate {}: {err}", metrics_path.display()))?;
    print!("{}", stats.render(5));
    Ok(CtlCode::Success)
}

/// Routes a parsed invocation to its subcommand, with the cross-cutting usage
/// gates applied first.
fn dispatch(subcommand: &str, args: &BenchArgs) -> Result<CtlCode, CtlError> {
    // Strict CLI: a mistyped flag (e.g. `--shard 4/3`) must not silently fall back to
    // an unsharded full run — in a CI or fleet context that wastes the whole campaign
    // and can ship a wrong artifact with exit 0.
    if !args.unknown.is_empty() {
        return Err(CtlError::Usage(format!("invalid argument(s): {}", args.unknown.join(", "))));
    }
    // Subcommand-specific flags on the wrong subcommand mean the user mixed up
    // invocations; silently ignoring them could run a different experiment than
    // intended.
    if subcommand != "fuzz"
        && (args.budget.is_some() || args.seed.is_some() || args.replay.is_some() || args.freeze)
    {
        return Err(CtlError::Usage(
            "--budget, --seed, --replay and --freeze only apply to `campaign_ctl fuzz`".into(),
        ));
    }
    if subcommand != "supervise"
        && (args.shards.is_some()
            || args.chaos.is_some()
            || args.max_attempts.is_some()
            || args.backoff_ms.is_some()
            || args.poll_ms.is_some()
            || args.stall_polls.is_some())
    {
        return Err(CtlError::Usage(
            "--shards, --chaos, --max-attempts, --backoff-ms, --poll-ms and \
             --stall-polls only apply to `campaign_ctl supervise`"
                .into(),
        ));
    }
    match subcommand {
        "run" => run(args),
        "resume" => resume(args),
        "supervise" => supervise(args),
        "bench" => bench(args),
        "merge" => merge(args),
        "diff" => diff(args),
        "stats" => stats(args),
        "fuzz" => fuzz(args),
        other => Err(CtlError::Usage(format!(
            "unknown subcommand {other:?}; usage: campaign_ctl \
             <run|resume|supervise|bench|merge|diff|stats|fuzz> [--smoke] [--scenario FILE] \
             [--stream] [--metrics] [--shard I/K] [--threads N] [--out DIR] \
             [--shards K] [--chaos SPEC] [--max-attempts N] [--backoff-ms MS] \
             [--poll-ms MS] [--stall-polls N] \
             [--budget N] [--seed S] [--replay FILE] [--freeze] \
             [report.json|report.jsonl|metrics.jsonl ...]"
        ))),
    }
}

fn main() -> ExitCode {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let subcommand = if raw.is_empty() { String::new() } else { raw.remove(0) };
    let args = BenchArgs::from_args(raw);
    match dispatch(&subcommand, &args) {
        Ok(code) => code.into(),
        Err(err) => {
            eprintln!("campaign_ctl: {}", err.message());
            err.code().into()
        }
    }
}
