//! Experiments E3–E5 — the impossibility constructions of Figs. 2–4 (Lemmas 5, 7, 13)
//! executed as concrete attacks just beyond the tight thresholds.

use bsm_core::attacks::{full_side_partition_attack, relay_denial_attack, split_brain_attack, Attack};
use bsm_core::solvability::{characterize, Solvability};
use bsm_net::Topology;

fn run(attack: Attack) {
    println!("## {} — {}", attack.name, attack.reference);
    let setting = *attack.scenario.setting();
    match characterize(&setting) {
        Solvability::Unsolvable(imp) => println!("setting [{setting}] is {imp}"),
        Solvability::Solvable(plan) => println!("setting [{setting}] unexpectedly solvable via {plan}"),
    }
    println!("forced plan: {}", attack.plan);
    match attack.run() {
        Ok(outcome) => {
            for (party, decision) in &outcome.outputs {
                match decision {
                    Some(partner) => println!("  {party} decided to match {partner}"),
                    None => println!("  {party} decided to match nobody"),
                }
            }
            if outcome.violations.is_empty() {
                println!("  -> no violation observed (unexpected)");
            }
            for violation in &outcome.violations {
                println!("  -> VIOLATION: {violation}");
            }
        }
        Err(err) => println!("  attack failed to run: {err}"),
    }
    println!();
}

fn main() {
    println!("# E3–E5 — lower-bound constructions as executable attacks\n");
    run(split_brain_attack());
    run(relay_denial_attack(Topology::Bipartite));
    run(relay_denial_attack(Topology::OneSided));
    run(full_side_partition_attack(Topology::OneSided));
    run(full_side_partition_attack(Topology::Bipartite));
}
