//! Experiments E3–E5 — the impossibility constructions of Figs. 2–4 (Lemmas 5, 7, 13)
//! executed as concrete attacks just beyond the tight thresholds.
//!
//! The attacks carry hand-built adversaries, so they are not plain campaign cells;
//! they run through the engine's order-preserving parallel map instead (each worker
//! builds and runs one attack, the report prints in canonical order).
//!
//! Usage: `impossibility_attacks [--threads N]`

use bsm_bench::BenchArgs;
use bsm_core::attacks::{
    full_side_partition_attack, relay_denial_attack, split_brain_attack, Attack,
};
use bsm_core::solvability::{characterize, Solvability};
use bsm_net::Topology;
use std::fmt::Write as _;

/// Builds one attack, runs it, and renders its report section.
fn report(attack: Attack) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {} — {}", attack.name, attack.reference);
    let setting = *attack.scenario.setting();
    match characterize(&setting) {
        Solvability::Unsolvable(imp) => {
            let _ = writeln!(out, "setting [{setting}] is {imp}");
        }
        // Attack settings are unsolvable by construction; a solvable answer means the
        // characterization regressed, and the report must flag it.
        Solvability::Solvable(plan) => {
            let _ = writeln!(out, "setting [{setting}] unexpectedly solvable via {plan}");
        }
    }
    let _ = writeln!(out, "forced plan: {}", attack.plan);
    match attack.run() {
        Ok(outcome) => {
            for (party, decision) in &outcome.outputs {
                match decision {
                    Some(partner) => {
                        let _ = writeln!(out, "  {party} decided to match {partner}");
                    }
                    None => {
                        let _ = writeln!(out, "  {party} decided to match nobody");
                    }
                }
            }
            if outcome.violations.is_empty() {
                let _ = writeln!(out, "  -> no violation observed (unexpected)");
            }
            for violation in &outcome.violations {
                let _ = writeln!(out, "  -> VIOLATION: {violation}");
            }
        }
        Err(err) => {
            let _ = writeln!(out, "  attack failed to run: {err}");
        }
    }
    out
}

fn main() {
    let args = BenchArgs::parse().warn_unknown();
    let jobs: Vec<Box<dyn Fn() -> Attack + Send + Sync>> = vec![
        Box::new(split_brain_attack),
        Box::new(|| relay_denial_attack(Topology::Bipartite)),
        Box::new(|| relay_denial_attack(Topology::OneSided)),
        Box::new(|| full_side_partition_attack(Topology::OneSided)),
        Box::new(|| full_side_partition_attack(Topology::Bipartite)),
    ];
    let sections = args.executor().map(jobs, |job| report(job()));
    println!("# E3–E5 — lower-bound constructions as executable attacks\n");
    for section in sections {
        println!("{section}");
    }
}
