//! Experiments E6–E8 and E11 — protocol cost tables: rounds (slots) and messages as a
//! function of the market size for every protocol plan, plus the Dolev–Strong versus
//! committee-broadcast ablation.

use bsm_bench::{row, run_boundary_scenario, separator};
use bsm_core::harness::AdversarySpec;
use bsm_core::problem::{AuthMode, Setting};
use bsm_net::Topology;

fn table(title: &str, rows: Vec<Vec<String>>, header: &[&str]) {
    println!("## {title}\n");
    println!("{}", row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    println!("{}", separator(header.len()));
    for r in rows {
        println!("{}", row(&r));
    }
    println!();
}

fn cost_row(setting: Setting, adversary: AdversarySpec, seed: u64) -> Vec<String> {
    let outcome = run_boundary_scenario(setting, adversary, seed);
    vec![
        setting.k().to_string(),
        setting.t_l().to_string(),
        setting.t_r().to_string(),
        outcome.plan.to_string(),
        outcome.slots.to_string(),
        outcome.metrics.total_messages().to_string(),
        outcome.violations.len().to_string(),
    ]
}

fn main() {
    let header = ["k", "tL", "tR", "plan", "slots", "messages", "violations"];

    // E6: authenticated fully-connected (Dolev-Strong plan), crash faults at budget.
    let mut rows = Vec::new();
    for k in [2usize, 3, 4, 5, 6] {
        let t = k / 2;
        let setting = Setting::new(k, Topology::FullyConnected, AuthMode::Authenticated, t, t).unwrap();
        rows.push(cost_row(setting, AdversarySpec::Crash, 60 + k as u64));
    }
    table("E6 — Dolev-Strong bSM, authenticated fully-connected network", rows, &header);

    // E7: unauthenticated plans with and without relays.
    let mut rows = Vec::new();
    for k in [3usize, 4, 5, 6] {
        let t_small = (k - 1) / 3;
        for topology in [Topology::FullyConnected, Topology::OneSided, Topology::Bipartite] {
            let setting =
                Setting::new(k, topology, AuthMode::Unauthenticated, t_small, t_small).unwrap();
            let mut r = cost_row(setting, AdversarySpec::Lying, 70 + k as u64);
            r.insert(3, topology.to_string());
            rows.push(r);
        }
    }
    table(
        "E7 — committee-broadcast bSM, unauthenticated networks (relay overhead visible across topologies)",
        rows,
        &["k", "tL", "tR", "topology", "plan", "slots", "messages", "violations"],
    );

    // E8: ΠbSM with a fully byzantine right side.
    let mut rows = Vec::new();
    for k in [4usize, 5, 6, 7] {
        let t_l = (k - 1) / 3;
        let setting = Setting::new(k, Topology::Bipartite, AuthMode::Authenticated, t_l, k).unwrap();
        rows.push(cost_row(setting, AdversarySpec::Lying, 80 + k as u64));
    }
    table("E8 — ΠbSM (Lemma 9), bipartite authenticated, fully byzantine right side", rows, &header);

    // E11: ablation — Dolev-Strong vs committee broadcast at identical budgets in the
    // authenticated full mesh (both are valid plans there).
    let mut rows = Vec::new();
    for k in [4usize, 6, 8] {
        let t = (k - 1) / 3;
        let auth_setting =
            Setting::new(k, Topology::FullyConnected, AuthMode::Authenticated, t, t).unwrap();
        rows.push(cost_row(auth_setting, AdversarySpec::Crash, 110 + k as u64));
        let unauth_setting =
            Setting::new(k, Topology::FullyConnected, AuthMode::Unauthenticated, t, t).unwrap();
        rows.push(cost_row(unauth_setting, AdversarySpec::Crash, 111 + k as u64));
    }
    table(
        "E11 — ablation: Dolev-Strong (authenticated) vs committee broadcast (unauthenticated) at equal budgets",
        rows,
        &header,
    );
}
