//! Experiments E6–E8 and E11 — protocol cost tables: rounds (slots), messages and
//! signatures as a function of the market size for every protocol plan, plus the
//! Dolev–Strong versus committee-broadcast ablation.
//!
//! Every table is a small explicit campaign run on the `bsm-engine` executor, so the
//! rows of all four tables are computed in parallel while printing stays in canonical
//! order.
//!
//! Usage: `cost_tables [--threads N]`

use bsm_bench::{row, separator, BenchArgs};
use bsm_core::harness::AdversarySpec;
use bsm_core::problem::AuthMode;
use bsm_engine::{Campaign, CellRecord, Executor};
use bsm_net::Topology;

fn table(title: &str, rows: Vec<Vec<String>>, header: &[&str]) {
    println!("## {title}\n");
    println!("{}", row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    println!("{}", separator(header.len()));
    for r in rows {
        println!("{}", row(&r));
    }
    println!();
}

/// Renders one completed campaign cell as a cost-table row.
fn cost_row(record: &CellRecord, with_topology: bool) -> Vec<String> {
    let spec = &record.spec;
    let stats = record.outcome.stats().expect("cost-table cells are solvable and run");
    let mut cells = vec![
        spec.k.to_string(),
        spec.t_l.to_string(),
        spec.t_r.to_string(),
        stats.plan.to_string(),
        stats.slots.to_string(),
        stats.messages.to_string(),
        stats.signatures.to_string(),
        stats.violations.to_string(),
    ];
    if with_topology {
        cells.insert(3, spec.topology.to_string());
    }
    cells
}

fn run(executor: &Executor, specs: Vec<bsm_engine::ScenarioSpec>) -> Vec<CellRecord> {
    let (report, _) = executor.run(&Campaign::from_specs(specs));
    report.cells().to_vec()
}

fn main() {
    let args = BenchArgs::parse().warn_unknown();
    let executor = args.executor();
    let header = ["k", "tL", "tR", "plan", "slots", "messages", "signatures", "violations"];
    let spec = |k: usize, topology, auth, t_l, t_r, adversary, seed| bsm_engine::ScenarioSpec {
        k,
        topology,
        auth,
        t_l,
        t_r,
        adversary,
        faults: bsm_net::FaultSpec::NONE,
        seed,
    };

    // E6: authenticated fully-connected (Dolev-Strong plan), crash faults at budget.
    let specs = [2usize, 3, 4, 5, 6]
        .into_iter()
        .map(|k| {
            let t = k / 2;
            spec(
                k,
                Topology::FullyConnected,
                AuthMode::Authenticated,
                t,
                t,
                AdversarySpec::Crash,
                60 + k as u64,
            )
        })
        .collect();
    let rows = run(&executor, specs).iter().map(|r| cost_row(r, false)).collect();
    table("E6 — Dolev-Strong bSM, authenticated fully-connected network", rows, &header);

    // E7: unauthenticated plans with and without relays.
    let mut specs = Vec::new();
    for k in [3usize, 4, 5, 6] {
        let t_small = (k - 1) / 3;
        for topology in [Topology::FullyConnected, Topology::OneSided, Topology::Bipartite] {
            specs.push(spec(
                k,
                topology,
                AuthMode::Unauthenticated,
                t_small,
                t_small,
                AdversarySpec::Lying,
                70 + k as u64,
            ));
        }
    }
    let rows = run(&executor, specs).iter().map(|r| cost_row(r, true)).collect();
    table(
        "E7 — committee-broadcast bSM, unauthenticated networks (relay overhead visible across topologies)",
        rows,
        &["k", "tL", "tR", "topology", "plan", "slots", "messages", "signatures", "violations"],
    );

    // E8: ΠbSM with a fully byzantine right side.
    let specs = [4usize, 5, 6, 7]
        .into_iter()
        .map(|k| {
            let t_l = (k - 1) / 3;
            spec(
                k,
                Topology::Bipartite,
                AuthMode::Authenticated,
                t_l,
                k,
                AdversarySpec::Lying,
                80 + k as u64,
            )
        })
        .collect();
    let rows = run(&executor, specs).iter().map(|r| cost_row(r, false)).collect();
    table(
        "E8 — ΠbSM (Lemma 9), bipartite authenticated, fully byzantine right side",
        rows,
        &header,
    );

    // E11: ablation — Dolev-Strong vs committee broadcast at identical budgets in the
    // authenticated full mesh (both are valid plans there).
    let mut specs = Vec::new();
    for k in [4usize, 6, 8] {
        let t = (k - 1) / 3;
        specs.push(spec(
            k,
            Topology::FullyConnected,
            AuthMode::Authenticated,
            t,
            t,
            AdversarySpec::Crash,
            110 + k as u64,
        ));
        specs.push(spec(
            k,
            Topology::FullyConnected,
            AuthMode::Unauthenticated,
            t,
            t,
            AdversarySpec::Crash,
            111 + k as u64,
        ));
    }
    let rows = run(&executor, specs).iter().map(|r| cost_row(r, false)).collect();
    table(
        "E11 — ablation: Dolev-Strong (authenticated) vs committee broadcast (unauthenticated) at equal budgets",
        rows,
        &header,
    );
}
