//! Shared, engine-aware argument parsing for the experiment binaries.
//!
//! Every binary accepts the same small vocabulary, replacing the copy-pasted
//! `std::env::args()` handling they used to carry individually:
//!
//! * a positional integer — the market size `k`,
//! * other positionals — file paths (e.g. shard exports for `campaign_ctl merge`),
//! * `--no-verify` — print analytic tables only, skip the empirical runs,
//! * `--threads N` — worker threads for the campaign engine (overrides `BSM_THREADS`),
//! * `--seeds N` — seeds per grid cell for seed-sweeping experiments,
//! * `--shard I/K` — run only shard `I` of `K` of the campaign (1-based),
//! * `--out DIR` — output directory for exported artifacts,
//! * `--smoke` — the small CI grid instead of the full sweep,
//! * `--scenario FILE` — load the campaign from a declarative scenario file
//!   (see `docs/SCENARIOS.md`); mutually exclusive with `--smoke`,
//! * `--stream` — streamed export/merge (constant memory; see `campaign_ctl`),
//! * `--metrics` — write the per-cell telemetry sidecar (`metrics.jsonl`) next to
//!   the report artifacts; never changes a report byte (see `campaign_ctl stats`),
//! * `--budget N` — fuzzing case budget for `campaign_ctl fuzz`,
//! * `--seed S` — master seed for `campaign_ctl fuzz` (default 0),
//! * `--replay FILE` — replay one frozen adversary script instead of searching,
//! * `--freeze` — write found (or replayed) scripts as canonical regression files
//!   (see `docs/FUZZING.md`),
//! * `--shards K` — worker-subprocess count for `campaign_ctl supervise`,
//! * `--max-attempts N` / `--backoff-ms MS` / `--poll-ms MS` / `--stall-polls N`
//!   — supervision tuning: bounded attempts per shard, exponential-backoff base,
//!   heartbeat poll interval, and the no-advance poll count that declares a
//!   worker stalled,
//! * `--chaos SPEC` — deterministic crash injection for the chaos tests:
//!   comma-separated `SHARD:ATTEMPT:MODE` entries (see
//!   [`bsm_engine::supervise::ChaosSpec`]).
//!
//! The vocabulary is deliberately shared across subcommands: `campaign_ctl resume`
//! takes the *same* `--smoke`/`--shard`/`--threads`/`--out` flags as the interrupted
//! `run --stream` it finishes, so an operator (or the future coordinator daemon)
//! replays the original invocation with only the subcommand swapped.

use bsm_engine::supervise::ChaosSpec;
use bsm_engine::{Executor, ShardPlan};
use std::fmt;
use std::path::PathBuf;

/// Parsed command-line arguments shared by the experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// The positional market size, when given.
    pub k: Option<usize>,
    /// `false` when `--no-verify` was passed.
    pub verify: bool,
    /// Worker-thread override from `--threads`.
    pub threads: Option<usize>,
    /// Seeds per cell from `--seeds` (default 1).
    pub seeds: u64,
    /// The shard to run from `--shard I/K` (1-based on the command line).
    pub shard: Option<ShardPlan>,
    /// Output directory from `--out`.
    pub out: Option<PathBuf>,
    /// `true` when `--smoke` was passed (run the small CI grid).
    pub smoke: bool,
    /// Scenario file from `--scenario` (a declarative campaign description; see
    /// `docs/SCENARIOS.md`).
    pub scenario: Option<PathBuf>,
    /// `true` when `--stream` was passed (streamed export/merge instead of the
    /// in-memory report path).
    pub stream: bool,
    /// `true` when `--metrics` was passed (write the `metrics.jsonl` telemetry
    /// sidecar alongside the report artifacts).
    pub metrics: bool,
    /// Fuzzing case budget from `--budget` (`campaign_ctl fuzz`).
    pub budget: Option<u64>,
    /// Fuzzer master seed from `--seed` (`campaign_ctl fuzz`; default 0).
    pub seed: Option<u64>,
    /// Frozen script to replay from `--replay` (`campaign_ctl fuzz`).
    pub replay: Option<PathBuf>,
    /// `true` when `--freeze` was passed (write found/replayed scripts as canonical
    /// regression files).
    pub freeze: bool,
    /// Worker-subprocess count from `--shards` (`campaign_ctl supervise`).
    pub shards: Option<usize>,
    /// Deterministic crash-injection plan from `--chaos` (`campaign_ctl
    /// supervise`; see [`ChaosSpec`]).
    pub chaos: Option<ChaosSpec>,
    /// Bounded attempts per shard from `--max-attempts` (`campaign_ctl
    /// supervise`).
    pub max_attempts: Option<u32>,
    /// Exponential-backoff base in milliseconds from `--backoff-ms`
    /// (`campaign_ctl supervise`; 0 retries immediately).
    pub backoff_ms: Option<u64>,
    /// Heartbeat poll interval in milliseconds from `--poll-ms` (`campaign_ctl
    /// supervise`).
    pub poll_ms: Option<u64>,
    /// No-advance polls before a worker is declared stalled, from
    /// `--stall-polls` (`campaign_ctl supervise`).
    pub stall_polls: Option<u32>,
    /// Non-numeric positional arguments, in order (file paths for subcommands that
    /// consume exports, e.g. `campaign_ctl merge`/`diff`).
    pub files: Vec<String>,
    /// Arguments that were not recognized (reported, then ignored).
    pub unknown: Vec<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            k: None,
            verify: true,
            threads: None,
            seeds: 1,
            shard: None,
            out: None,
            smoke: false,
            scenario: None,
            stream: false,
            metrics: false,
            budget: None,
            seed: None,
            replay: None,
            freeze: false,
            shards: None,
            chaos: None,
            max_attempts: None,
            backoff_ms: None,
            poll_ms: None,
            stall_polls: None,
            files: Vec::new(),
            unknown: Vec::new(),
        }
    }
}

impl BenchArgs {
    /// Parses the process arguments (skipping the binary name).
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable core of [`BenchArgs::parse`]).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut parsed = Self::default();
        let mut iter = args.into_iter().peekable();
        // The value of a `--flag VALUE` pair; never steals a following flag, so
        // `--threads --smoke` reports a missing value instead of swallowing `--smoke`.
        fn value(iter: &mut std::iter::Peekable<impl Iterator<Item = String>>) -> Option<String> {
            match iter.peek() {
                Some(next) if !next.starts_with("--") => iter.next(),
                _ => None,
            }
        }
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--no-verify" => parsed.verify = false,
                "--threads" => match value(&mut iter).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => parsed.threads = Some(n),
                    _ => parsed.unknown.push("--threads (expects a positive integer)".into()),
                },
                "--seeds" => match value(&mut iter).and_then(|v| v.parse::<u64>().ok()) {
                    Some(n) if n > 0 => parsed.seeds = n,
                    _ => parsed.unknown.push("--seeds (expects a positive integer)".into()),
                },
                "--shard" => match value(&mut iter).map(|v| (v.parse::<ShardPlan>(), v)) {
                    Some((Ok(plan), _)) => parsed.shard = Some(plan),
                    Some((Err(err), v)) => parsed.unknown.push(format!("--shard {v} ({err})")),
                    None => parsed.unknown.push("--shard (expects I/K, e.g. 2/3)".into()),
                },
                "--out" => match value(&mut iter) {
                    Some(dir) => parsed.out = Some(PathBuf::from(dir)),
                    None => parsed.unknown.push("--out (expects a directory)".into()),
                },
                "--smoke" => parsed.smoke = true,
                "--scenario" => match value(&mut iter) {
                    Some(file) => parsed.scenario = Some(PathBuf::from(file)),
                    None => parsed.unknown.push("--scenario (expects a file)".into()),
                },
                "--stream" => parsed.stream = true,
                "--metrics" => parsed.metrics = true,
                "--budget" => match value(&mut iter).and_then(|v| v.parse::<u64>().ok()) {
                    Some(n) if n > 0 => parsed.budget = Some(n),
                    _ => parsed.unknown.push("--budget (expects a positive integer)".into()),
                },
                "--seed" => match value(&mut iter).and_then(|v| v.parse::<u64>().ok()) {
                    Some(n) => parsed.seed = Some(n),
                    None => parsed.unknown.push("--seed (expects an integer)".into()),
                },
                "--replay" => match value(&mut iter) {
                    Some(file) => parsed.replay = Some(PathBuf::from(file)),
                    None => parsed.unknown.push("--replay (expects a script file)".into()),
                },
                "--freeze" => parsed.freeze = true,
                "--shards" => match value(&mut iter).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => parsed.shards = Some(n),
                    _ => parsed.unknown.push("--shards (expects a positive integer)".into()),
                },
                "--chaos" => match value(&mut iter).map(|v| (v.parse::<ChaosSpec>(), v)) {
                    Some((Ok(spec), _)) => parsed.chaos = Some(spec),
                    Some((Err(err), v)) => parsed.unknown.push(format!("--chaos {v} ({err})")),
                    None => {
                        parsed.unknown.push("--chaos (expects SHARD:ATTEMPT:MODE entries)".into());
                    }
                },
                "--max-attempts" => match value(&mut iter).and_then(|v| v.parse::<u32>().ok()) {
                    Some(n) if n > 0 => parsed.max_attempts = Some(n),
                    _ => parsed.unknown.push("--max-attempts (expects a positive integer)".into()),
                },
                "--backoff-ms" => match value(&mut iter).and_then(|v| v.parse::<u64>().ok()) {
                    Some(ms) => parsed.backoff_ms = Some(ms),
                    None => parsed.unknown.push("--backoff-ms (expects milliseconds)".into()),
                },
                "--poll-ms" => match value(&mut iter).and_then(|v| v.parse::<u64>().ok()) {
                    Some(ms) if ms > 0 => parsed.poll_ms = Some(ms),
                    _ => parsed.unknown.push("--poll-ms (expects positive milliseconds)".into()),
                },
                "--stall-polls" => match value(&mut iter).and_then(|v| v.parse::<u32>().ok()) {
                    Some(n) if n > 0 => parsed.stall_polls = Some(n),
                    _ => parsed.unknown.push("--stall-polls (expects a positive integer)".into()),
                },
                other if other.starts_with("--") => parsed.unknown.push(other.to_string()),
                other => match other.parse::<usize>() {
                    Ok(k) if parsed.k.is_none() => parsed.k = Some(k),
                    Ok(_) => parsed.unknown.push(other.to_string()),
                    Err(_) => parsed.files.push(other.to_string()),
                },
            }
        }
        parsed
    }

    /// The market size, falling back to `default` when no positional was given.
    pub fn k_or(&self, default: usize) -> usize {
        self.k.unwrap_or(default)
    }

    /// A campaign executor honoring `--threads` (and otherwise `BSM_THREADS` /
    /// available parallelism, per [`Executor::new`]).
    pub fn executor(&self) -> Executor {
        let executor = Executor::new();
        match self.threads {
            Some(n) => executor.threads(n),
            None => executor,
        }
    }

    /// Warns on stderr about unrecognized arguments; returns `self` for chaining.
    pub fn warn_unknown(self) -> Self {
        for arg in &self.unknown {
            eprintln!("warning: ignoring unrecognized argument: {arg}");
        }
        self
    }
}

impl fmt::Display for BenchArgs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "k={:?} verify={} threads={:?} seeds={} shard={} smoke={} scenario={:?} stream={} \
             metrics={} budget={:?} seed={:?} replay={:?} freeze={} shards={:?} chaos={} \
             max_attempts={:?} backoff_ms={:?} poll_ms={:?} stall_polls={:?} files={}",
            self.k,
            self.verify,
            self.threads,
            self.seeds,
            self.shard.map_or_else(|| "none".to_string(), |p| p.to_string()),
            self.smoke,
            self.scenario,
            self.stream,
            self.metrics,
            self.budget,
            self.seed,
            self.replay,
            self.freeze,
            self.shards,
            self.chaos.as_ref().map_or_else(|| "none".to_string(), |c| c.to_string()),
            self.max_attempts,
            self.backoff_ms,
            self.poll_ms,
            self.stall_polls,
            self.files.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> BenchArgs {
        BenchArgs::from_args(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_empty() {
        let parsed = args(&[]);
        assert_eq!(parsed, BenchArgs::default());
        assert_eq!(parsed.k_or(6), 6);
        assert!(parsed.verify);
    }

    #[test]
    fn positional_k_and_flags() {
        let parsed = args(&["5", "--no-verify", "--threads", "3", "--seeds", "10"]);
        assert_eq!(parsed.k, Some(5));
        assert_eq!(parsed.k_or(6), 5);
        assert!(!parsed.verify);
        assert_eq!(parsed.threads, Some(3));
        assert_eq!(parsed.seeds, 10);
        assert!(parsed.unknown.is_empty());
        assert_eq!(parsed.executor().thread_count(), 3);
    }

    #[test]
    fn flag_order_does_not_matter() {
        let a = args(&["--threads", "2", "4"]);
        let b = args(&["4", "--threads", "2"]);
        assert_eq!(a, b);
    }

    #[test]
    fn shard_out_smoke_stream_and_files_parse() {
        let parsed = args(&[
            "--shard",
            "2/3",
            "--out",
            "target/shards",
            "--smoke",
            "--stream",
            "--metrics",
            "a.json",
            "b.json",
        ]);
        let plan = parsed.shard.expect("--shard 2/3 parses");
        assert_eq!((plan.index(), plan.count()), (1, 3));
        assert_eq!(parsed.out.as_deref(), Some(std::path::Path::new("target/shards")));
        assert!(parsed.smoke);
        assert!(parsed.stream);
        assert_eq!(parsed.files, vec!["a.json".to_string(), "b.json".to_string()]);
        assert!(parsed.unknown.is_empty());
        assert!(parsed.metrics);
        assert!(parsed.to_string().contains("shard=2/3"));
        assert!(parsed.to_string().contains("stream=true"));
        assert!(parsed.to_string().contains("metrics=true"));
        assert!(!args(&[]).stream, "--stream must be off by default");
        assert!(!args(&[]).metrics, "--metrics must be off by default");
    }

    #[test]
    fn scenario_flag_takes_a_file() {
        let parsed = args(&["--scenario", "examples/scenarios/partition_heal.toml"]);
        assert_eq!(
            parsed.scenario.as_deref(),
            Some(std::path::Path::new("examples/scenarios/partition_heal.toml"))
        );
        assert!(parsed.unknown.is_empty());
        assert!(parsed.to_string().contains("partition_heal.toml"));
        assert_eq!(args(&["--scenario"]).unknown.len(), 1);
        assert_eq!(args(&["--scenario", "--smoke"]).scenario, None);
    }

    #[test]
    fn bad_shard_specs_are_collected_not_fatal() {
        for bad in [&["--shard", "0/3"][..], &["--shard", "4/3"], &["--shard", "x"], &["--shard"]] {
            let parsed = args(bad);
            assert_eq!(parsed.shard, None, "{bad:?}");
            assert_eq!(parsed.unknown.len(), 1, "{bad:?}");
        }
        assert_eq!(args(&["--out"]).unknown.len(), 1);
    }

    #[test]
    fn a_flag_never_swallows_a_following_flag_as_its_value() {
        let parsed = args(&["--threads", "--smoke", "--out", "--no-verify"]);
        assert_eq!(parsed.threads, None);
        assert!(parsed.smoke, "--smoke must survive a missing --threads value");
        assert_eq!(parsed.out, None);
        assert!(!parsed.verify, "--no-verify must survive a missing --out value");
        assert_eq!(parsed.unknown.len(), 2, "{:?}", parsed.unknown);
        let parsed = args(&["--shard", "--smoke"]);
        assert_eq!(parsed.shard, None);
        assert!(parsed.smoke);
    }

    #[test]
    fn fuzz_flags_parse() {
        let parsed = args(&["--budget", "200", "--seed", "1", "--freeze"]);
        assert_eq!(parsed.budget, Some(200));
        assert_eq!(parsed.seed, Some(1));
        assert!(parsed.freeze);
        assert!(parsed.unknown.is_empty());
        assert!(parsed.to_string().contains("budget=Some(200)"));
        let replay = args(&["--replay", "crates/core/tests/fuzz_regressions/x.toml"]);
        assert_eq!(
            replay.replay.as_deref(),
            Some(std::path::Path::new("crates/core/tests/fuzz_regressions/x.toml"))
        );
        let defaults = args(&[]);
        assert_eq!(defaults.budget, None);
        assert_eq!(defaults.seed, None);
        assert_eq!(defaults.replay, None);
        assert!(!defaults.freeze);
        // Seed 0 is a legal explicit value, budget 0 is not.
        assert_eq!(args(&["--seed", "0"]).seed, Some(0));
        assert_eq!(args(&["--budget", "0"]).unknown.len(), 1);
        // Missing values are collected, never stolen from a following flag.
        assert_eq!(args(&["--budget", "--freeze"]).budget, None);
        assert!(args(&["--budget", "--freeze"]).freeze);
        assert_eq!(args(&["--seed"]).unknown.len(), 1);
        assert_eq!(args(&["--replay", "--freeze"]).replay, None);
    }

    #[test]
    fn supervise_flags_parse() {
        let parsed = args(&[
            "--shards",
            "3",
            "--chaos",
            "2:1:torn7,3:1:early",
            "--max-attempts",
            "2",
            "--backoff-ms",
            "0",
            "--poll-ms",
            "25",
            "--stall-polls",
            "8",
        ]);
        assert_eq!(parsed.shards, Some(3));
        let chaos = parsed.chaos.as_ref().expect("--chaos parses");
        assert_eq!(chaos.to_string(), "2:1:torn7,3:1:early");
        assert_eq!(parsed.max_attempts, Some(2));
        assert_eq!(parsed.backoff_ms, Some(0), "--backoff-ms 0 is legal (retry immediately)");
        assert_eq!(parsed.poll_ms, Some(25));
        assert_eq!(parsed.stall_polls, Some(8));
        assert!(parsed.unknown.is_empty());
        assert!(parsed.to_string().contains("shards=Some(3)"));
        assert!(parsed.to_string().contains("chaos=2:1:torn7,3:1:early"));
        let defaults = args(&[]);
        assert_eq!(defaults.shards, None);
        assert_eq!(defaults.chaos, None);
        assert_eq!(defaults.max_attempts, None);
        assert_eq!(defaults.backoff_ms, None);
        assert_eq!(defaults.poll_ms, None);
        assert_eq!(defaults.stall_polls, None);
        // Bad values are collected, never fatal, never stealing a following flag.
        assert_eq!(args(&["--shards", "0"]).unknown.len(), 1);
        assert_eq!(args(&["--chaos", "2:0:early"]).unknown.len(), 1);
        assert_eq!(args(&["--chaos", "nonsense"]).unknown.len(), 1);
        assert_eq!(args(&["--max-attempts", "0"]).unknown.len(), 1);
        assert_eq!(args(&["--poll-ms", "0"]).unknown.len(), 1);
        assert_eq!(args(&["--stall-polls", "0"]).unknown.len(), 1);
        let starved = args(&["--shards", "--smoke"]);
        assert_eq!(starved.shards, None);
        assert!(starved.smoke);
    }

    #[test]
    fn bad_values_and_extras_are_collected() {
        let parsed = args(&["--threads", "zero", "--seeds", "0", "3", "7", "--wat"]);
        assert_eq!(parsed.k, Some(3));
        assert_eq!(parsed.threads, None);
        assert_eq!(parsed.seeds, 1);
        // second positional + bad --threads + bad --seeds + unknown flag
        assert_eq!(parsed.unknown.len(), 4);
        // warn_unknown only logs; parsing results are unchanged.
        let warned = parsed.clone().warn_unknown();
        assert_eq!(warned, parsed);
        assert!(!parsed.to_string().is_empty());
    }
}
