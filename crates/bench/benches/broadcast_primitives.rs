//! Byzantine broadcast / agreement primitives in isolation: Dolev–Strong, committee
//! broadcast and phase-king driven over the synchronous simulator.

use bsm_broadcast::{
    Committee, CommitteeBroadcast, CommitteeBroadcastConfig, DolevStrong, DolevStrongConfig,
    PhaseKing,
};
use bsm_crypto::{KeyId, Pki};
use bsm_net::{CorruptionBudget, PartyId, PartySet, RoundDriver, SyncNetwork, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

fn run_dolev_strong(k: usize, t: usize) -> u64 {
    let parties = PartySet::new(k);
    let pki = Pki::new(2 * k as u32);
    let key_of: BTreeMap<PartyId, KeyId> =
        parties.iter().map(|p| (p, KeyId(p.dense(k) as u32))).collect();
    let sender = PartyId::left(0);
    let mut net: SyncNetwork<bsm_broadcast::DolevStrongMsg<u64>, u64> =
        SyncNetwork::new(k, Topology::FullyConnected, CorruptionBudget::NONE);
    for party in parties.iter() {
        let config = DolevStrongConfig {
            me: party,
            sender,
            participants: parties.iter().collect(),
            t,
            instance: 1,
            pki: pki.clone(),
            key_of: key_of.clone(),
        };
        let key = pki.signing_key(key_of[&party].0).unwrap();
        let protocol =
            DolevStrong::new(config, key, if party == sender { Some(99) } else { None }, 0);
        net.register(Box::new(RoundDriver::new(party, protocol))).unwrap();
    }
    let outcome = net.run(100).unwrap();
    outcome.metrics.total_messages()
}

fn run_committee_broadcast(k: usize, t: usize) -> u64 {
    let parties = PartySet::new(k);
    let committee = Committee::new(parties.left().collect(), t);
    let sender = PartyId::right(0);
    let mut net: SyncNetwork<bsm_broadcast::CommitteeMsg<u64>, u64> =
        SyncNetwork::new(k, Topology::FullyConnected, CorruptionBudget::NONE);
    for party in parties.iter() {
        let config = CommitteeBroadcastConfig {
            me: party,
            sender,
            committee: committee.clone(),
            all_parties: parties.iter().collect(),
            default: 0,
        };
        let protocol = CommitteeBroadcast::new(config, if party == sender { 99 } else { 0 });
        net.register(Box::new(RoundDriver::new(party, protocol))).unwrap();
    }
    let outcome = net.run(200).unwrap();
    outcome.metrics.total_messages()
}

fn run_phase_king(k: usize, t: usize) -> u64 {
    let parties = PartySet::new(k);
    let committee = Committee::new(parties.left().collect(), t);
    let mut net: SyncNetwork<bsm_broadcast::KingMsg<u64>, u64> =
        SyncNetwork::new(k, Topology::FullyConnected, CorruptionBudget::NONE);
    for party in parties.iter() {
        if party.is_left() {
            let protocol = PhaseKing::new(committee.clone(), party, u64::from(party.index % 2));
            net.register(Box::new(RoundDriver::new(party, protocol))).unwrap();
        } else {
            net.register(Box::new(bsm_net::SilentProcess::new(party))).unwrap();
        }
    }
    let mut net = net;
    for _ in 0..(PhaseKing::<u64>::total_rounds(&committee) + 1) {
        net.step();
    }
    net.metrics().total_messages()
}

fn bench_broadcast_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast_primitives");
    group.sample_size(10);
    for k in [3usize, 5, 8] {
        let t = (k - 1) / 3;
        group.bench_with_input(BenchmarkId::new("dolev_strong", k), &k, |b, &k| {
            b.iter(|| black_box(run_dolev_strong(k, k - 1)))
        });
        group.bench_with_input(BenchmarkId::new("committee_broadcast", k), &k, |b, &k| {
            b.iter(|| black_box(run_committee_broadcast(k, t)))
        });
        group.bench_with_input(BenchmarkId::new("phase_king", k), &k, |b, &k| {
            b.iter(|| black_box(run_phase_king(k, t)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_broadcast_primitives);
criterion_main!(benches);
