//! E9 — the `AG-S` substrate (Theorem 1): Gale–Shapley runtime and proposal counts
//! across workload families and market sizes.

use bsm_matching::gale_shapley::{gale_shapley, ProposingSide};
use bsm_matching::generators::{master_list_profile, similar_profile, uniform_profile};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_gale_shapley(c: &mut Criterion) {
    let mut group = c.benchmark_group("gale_shapley");
    for k in [16usize, 64, 128, 256] {
        let mut rng = StdRng::seed_from_u64(k as u64);
        let uniform = uniform_profile(k, &mut rng);
        let master = master_list_profile(k, &mut rng);
        let similar = similar_profile(k, k / 4, &mut rng);

        group.bench_with_input(BenchmarkId::new("uniform", k), &uniform, |b, profile| {
            b.iter(|| gale_shapley(black_box(profile), ProposingSide::Left))
        });
        group.bench_with_input(BenchmarkId::new("master_list", k), &master, |b, profile| {
            b.iter(|| gale_shapley(black_box(profile), ProposingSide::Left))
        });
        group.bench_with_input(BenchmarkId::new("similar", k), &similar, |b, profile| {
            b.iter(|| gale_shapley(black_box(profile), ProposingSide::Left))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gale_shapley);
criterion_main!(benches);
