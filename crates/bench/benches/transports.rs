//! E10 — relay-overhead ablation: the same authenticated market solved over the three
//! topologies (direct channels vs signed relays, Lemma 8).

use bsm_bench::run_boundary_scenario;
use bsm_core::harness::AdversarySpec;
use bsm_core::problem::{AuthMode, Setting};
use bsm_net::Topology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_transports(c: &mut Criterion) {
    let mut group = c.benchmark_group("transports");
    group.sample_size(10);
    let k = 4usize;
    for topology in Topology::ALL {
        let setting = Setting::new(k, topology, AuthMode::Authenticated, 1, 1).unwrap();
        group.bench_with_input(
            BenchmarkId::new("authenticated", topology.name()),
            &setting,
            |b, &s| b.iter(|| black_box(run_boundary_scenario(s, AdversarySpec::Lying, 7))),
        );
    }
    // The unauthenticated majority relay (Lemma 6) for comparison.
    for topology in [Topology::OneSided, Topology::Bipartite] {
        let setting = Setting::new(k, topology, AuthMode::Unauthenticated, 1, 1).unwrap();
        group.bench_with_input(
            BenchmarkId::new("unauthenticated", topology.name()),
            &setting,
            |b, &s| b.iter(|| black_box(run_boundary_scenario(s, AdversarySpec::Lying, 8))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transports);
criterion_main!(benches);
