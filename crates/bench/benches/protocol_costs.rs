//! E6 / E7 / E11 — end-to-end protocol cost: wall-clock time of full bSM runs for the
//! Dolev–Strong and committee-broadcast plans as the market grows.

use bsm_bench::run_boundary_scenario;
use bsm_core::harness::AdversarySpec;
use bsm_core::problem::{AuthMode, Setting};
use bsm_net::Topology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_protocol_costs(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_costs");
    group.sample_size(10);
    for k in [2usize, 3, 4] {
        let t = (k - 1) / 3;
        let auth = Setting::new(k, Topology::FullyConnected, AuthMode::Authenticated, k / 2, k / 2)
            .unwrap();
        group.bench_with_input(BenchmarkId::new("dolev_strong_full_mesh", k), &auth, |b, &s| {
            b.iter(|| black_box(run_boundary_scenario(s, AdversarySpec::Crash, 1)))
        });
        let unauth =
            Setting::new(k, Topology::FullyConnected, AuthMode::Unauthenticated, t, t).unwrap();
        group.bench_with_input(BenchmarkId::new("committee_full_mesh", k), &unauth, |b, &s| {
            b.iter(|| black_box(run_boundary_scenario(s, AdversarySpec::Crash, 2)))
        });
    }
    // ΠbSM with a fully byzantine right side needs k ≥ 4 for a meaningful committee.
    for k in [4usize, 5] {
        let t = (k - 1) / 3;
        let pibsm = Setting::new(k, Topology::Bipartite, AuthMode::Authenticated, t, k).unwrap();
        group.bench_with_input(BenchmarkId::new("pi_bsm_bipartite", k), &pibsm, |b, &s| {
            b.iter(|| black_box(run_boundary_scenario(s, AdversarySpec::Crash, 3)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocol_costs);
criterion_main!(benches);
