//! The exit-code contract of `campaign_ctl`, asserted end to end.
//!
//! `crates/bench/src/exit.rs` documents the vocabulary — 0 success, 1 internal,
//! 2 usage, 3 findings, 4 degraded — and scripts and CI gates branch on it, so
//! every code is pinned here against the real binary.

use bsm_engine::{CampaignBuilder, Executor};
use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bsm-ctl-exit-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn code_of(args: &[&str]) -> i32 {
    Command::new(env!("CARGO_BIN_EXE_campaign_ctl"))
        .args(args)
        .output()
        .expect("campaign_ctl spawns")
        .status
        .code()
        .expect("campaign_ctl was not signal-killed")
}

/// Writes a tiny in-process report (one size, one seed) to `path`.
fn write_report(path: &Path, seed_start: u64) {
    let campaign = CampaignBuilder::new().sizes([2]).seeds(seed_start..seed_start + 1).build();
    let (report, _) = Executor::new().threads(1).run(&campaign);
    std::fs::write(path, bsm_engine::to_json(&report)).unwrap();
}

#[test]
fn success_is_0() {
    let dir = scratch("success");
    let report = dir.join("a.json");
    write_report(&report, 0);
    let path = report.to_str().unwrap();
    let merged = dir.join("merged");
    assert_eq!(code_of(&["merge", path, "--out", merged.to_str().unwrap()]), 0);
    assert_eq!(code_of(&["diff", path, path]), 0, "identical reports are not findings");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn internal_errors_are_1() {
    let dir = scratch("internal");
    let missing = dir.join("nope.json");
    let missing = missing.to_str().unwrap();
    assert_eq!(code_of(&["merge", missing, "--out", dir.join("out").to_str().unwrap()]), 1);
    assert_eq!(code_of(&["stats", missing]), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_are_2() {
    // The invocation itself is wrong: before any work starts, exit 2.
    assert_eq!(code_of(&["frobnicate"]), 2, "unknown subcommand");
    assert_eq!(code_of(&["run", "--smoke", "--frobnicate"]), 2, "unknown flag");
    assert_eq!(code_of(&["run", "--smoke", "--budget", "9"]), 2, "fuzz flag on run");
    assert_eq!(code_of(&["run", "--smoke", "--shards", "2"]), 2, "supervise flag on run");
    assert_eq!(code_of(&["supervise", "--smoke"]), 2, "supervise requires --shards");
    assert_eq!(code_of(&["fuzz", "--smoke"]), 2, "fuzz requires --budget");
}

#[test]
fn findings_are_3() {
    let dir = scratch("findings");
    let (a, b) = (dir.join("a.json"), dir.join("b.json"));
    write_report(&a, 0);
    write_report(&b, 1);
    let diff = code_of(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(diff, 3, "differing reports are findings, not failures");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degraded_supervised_runs_are_4() {
    let dir = scratch("degraded");
    // One shard, and both allowed attempts die before doing any work: the
    // supervisor quarantines it and reports graceful degradation.
    let code = code_of(&[
        "supervise",
        "--smoke",
        "--shards",
        "1",
        "--chaos",
        "1:1:early,1:2:early",
        "--max-attempts",
        "2",
        "--backoff-ms",
        "0",
        "--poll-ms",
        "25",
        "--out",
        dir.join("sup").to_str().unwrap(),
    ]);
    assert_eq!(code, 4);
    let _ = std::fs::remove_dir_all(&dir);
}
