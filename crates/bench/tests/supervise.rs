//! The chaos matrix: supervised shard execution against deterministic crash
//! injection, end to end through the real `campaign_ctl` binary.
//!
//! Every test spawns a real supervisor that spawns real worker subprocesses and
//! kills/relaunches them through real process deaths (`--chaos`), then asserts
//! the two contracts of `campaign_ctl supervise`:
//!
//! * **byte-identity** — whenever every shard eventually completes, the merged
//!   `report.json`/`report.csv` are byte-identical to an uninterrupted
//!   single-process `run --smoke`, whatever was killed, torn or hung along the
//!   way;
//! * **graceful degradation** — a shard that exhausts its attempts is
//!   quarantined, the completed shards still merge, `supervise.json` records the
//!   full attempt history, and the process exits with the degraded code 4.
//!
//! Crash points are keyed on cells completed in canonical order (never
//! wall-clock), so every scenario here is reproducible.

use bsm_engine::supervise::{parse_supervise, AttemptOutcome, SuperviseSummary};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A scratch directory unique to one test (removed on entry, best-effort).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bsm-ctl-supervise-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_campaign_ctl"))
        .args(args)
        .output()
        .expect("campaign_ctl spawns")
}

/// Runs the uninterrupted single-process reference (`run --smoke`) into `dir`.
fn reference(dir: &Path) {
    let out = ctl(&["run", "--smoke", "--out", dir.to_str().unwrap()]);
    assert!(out.status.success(), "reference run failed: {}", String::from_utf8_lossy(&out.stderr));
}

/// Runs `supervise --smoke --shards 3` with the given chaos spec and extra flags.
fn supervised(dir: &Path, chaos: Option<&str>, extra: &[&str]) -> Output {
    let dir = dir.to_str().unwrap();
    let mut args = vec!["supervise", "--smoke", "--shards", "3", "--out", dir];
    // Fast retries and fast completion detection; the stall deadline stays at
    // its (poll-scaled) default unless a test overrides it.
    args.extend(["--backoff-ms", "0", "--poll-ms", "25"]);
    if let Some(spec) = chaos {
        args.extend(["--chaos", spec]);
    }
    args.extend(extra);
    ctl(&args)
}

fn assert_identical(reference: &Path, supervised: &Path) {
    for artifact in ["report.json", "report.csv"] {
        let want = std::fs::read(reference.join(artifact)).unwrap();
        let got = std::fs::read(supervised.join(artifact))
            .unwrap_or_else(|err| panic!("supervised {artifact} missing: {err}"));
        assert_eq!(want, got, "supervised {artifact} is not byte-identical to the plain run");
    }
}

fn summary(dir: &Path) -> SuperviseSummary {
    let text = std::fs::read_to_string(dir.join("supervise.json")).unwrap();
    parse_supervise(&text).expect("supervise.json parses")
}

/// Collects every `.tmp` and `.partial` file under `root`, recursively.
fn residue(root: &Path) -> (Vec<PathBuf>, Vec<PathBuf>) {
    let (mut tmp, mut partial) = (Vec::new(), Vec::new());
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|ext| ext == "tmp") {
                tmp.push(path);
            } else if path.extension().is_some_and(|ext| ext == "partial") {
                partial.push(path);
            }
        }
    }
    (tmp, partial)
}

/// The shard-2 attempt rows of a summary, in launch order.
fn shard_attempts(summary: &SuperviseSummary, shard: usize) -> Vec<(u32, bool, AttemptOutcome)> {
    summary
        .attempts
        .iter()
        .filter(|record| record.shard == shard)
        .map(|record| (record.attempt, record.resumed, record.outcome))
        .collect()
}

#[test]
fn clean_supervised_run_is_byte_identical_and_leaves_no_residue() {
    let base = scratch("clean");
    let (reference_dir, supervised_dir) = (base.join("ref"), base.join("sup"));
    reference(&reference_dir);
    let out = supervised(&supervised_dir, None, &[]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert_identical(&reference_dir, &supervised_dir);
    let summary = summary(&supervised_dir);
    assert!(!summary.degraded());
    assert_eq!(summary.completed_shards(), vec![1, 2, 3]);
    assert_eq!(summary.attempts.len(), 3, "one attempt per healthy shard");
    assert!(summary.attempts.iter().all(|r| !r.resumed && r.exit == 0 && r.backoff_ms == 0));
    let (tmp, partial) = residue(&supervised_dir);
    assert!(tmp.is_empty(), "stale staging files: {tmp:?}");
    assert!(partial.is_empty(), "unsalvaged partials: {partial:?}");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn boundary_and_torn_and_early_and_finish_deaths_all_recover_byte_identically() {
    let base = scratch("matrix");
    let (reference_dir, supervised_dir) = (base.join("ref"), base.join("sup"));
    reference(&reference_dir);
    // One injected death per shard, each a different shape: shard 1 dies before
    // its first heartbeat, shard 2 is SIGKILLed mid-line (torn half-line after
    // cell 7), shard 3 dies after its footer but before the final rename.
    let out = supervised(&supervised_dir, Some("1:1:early,2:1:torn7,3:1:finish"), &[]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert_identical(&reference_dir, &supervised_dir);
    let summary = summary(&supervised_dir);
    assert!(!summary.degraded());
    // Early death left nothing salvageable: the relaunch is a fresh `run`.
    assert_eq!(
        shard_attempts(&summary, 1),
        vec![(1, false, AttemptOutcome::Crashed), (2, false, AttemptOutcome::Completed)]
    );
    // Torn partial: salvaged and finished by `resume`.
    assert_eq!(
        shard_attempts(&summary, 2),
        vec![(1, false, AttemptOutcome::Crashed), (2, true, AttemptOutcome::Completed)]
    );
    // Complete-but-unpublished partial: `resume` salvages all of it.
    assert_eq!(
        shard_attempts(&summary, 3),
        vec![(1, false, AttemptOutcome::Crashed), (2, true, AttemptOutcome::Completed)]
    );
    // Every injected death reported the chaos exit code (128 + SIGKILL).
    assert!(summary
        .attempts
        .iter()
        .filter(|r| r.outcome == AttemptOutcome::Crashed)
        .all(|r| r.exit == 137));
    let (tmp, partial) = residue(&supervised_dir);
    assert!(tmp.is_empty(), "stale staging files: {tmp:?}");
    assert!(partial.is_empty(), "unsalvaged partials: {partial:?}");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn repeated_boundary_crashes_recover_across_multiple_resumes() {
    let base = scratch("repeat");
    let (reference_dir, supervised_dir) = (base.join("ref"), base.join("sup"));
    reference(&reference_dir);
    // Shard 2 dies after cell 5 on attempt 1 and after cell 9 on attempt 2 (a
    // stream-absolute position: the 9th cell counting the salvaged replay), so
    // attempt 3 resumes a twice-crashed shard.
    let out = supervised(&supervised_dir, Some("2:1:5,2:2:9"), &[]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert_identical(&reference_dir, &supervised_dir);
    let summary = summary(&supervised_dir);
    assert_eq!(
        shard_attempts(&summary, 2),
        vec![
            (1, false, AttemptOutcome::Crashed),
            (2, true, AttemptOutcome::Crashed),
            (3, true, AttemptOutcome::Completed),
        ]
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn hung_worker_is_killed_by_the_stall_watchdog_and_the_retry_completes() {
    let base = scratch("hang");
    let (reference_dir, supervised_dir) = (base.join("ref"), base.join("sup"));
    reference(&reference_dir);
    // Shard 2 stops beating after cell 3 without exiting; only the watchdog
    // (here: no heartbeat advance across 80 × 25 ms) can end it. The generous
    // deadline keeps slow-but-healthy workers safe on loaded CI machines.
    let out = supervised(&supervised_dir, Some("2:1:hang3"), &["--stall-polls", "80"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert_identical(&reference_dir, &supervised_dir);
    let summary = summary(&supervised_dir);
    let shard2 = shard_attempts(&summary, 2);
    assert_eq!(shard2[0], (1, false, AttemptOutcome::Stalled));
    assert_eq!(shard2.last().unwrap().2, AttemptOutcome::Completed);
    let stalled = summary.attempts.iter().find(|r| r.outcome == AttemptOutcome::Stalled).unwrap();
    assert_eq!(stalled.exit, 137, "a stall kill is recorded as 128 + SIGKILL");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn exhausted_attempts_quarantine_the_shard_and_degrade_gracefully() {
    let base = scratch("quarantine");
    let supervised_dir = base.join("sup");
    // Shard 2 dies at the same boundary on every one of its 3 allowed attempts.
    let out = supervised(&supervised_dir, Some("2:1:3,2:2:3,2:3:3"), &["--max-attempts", "3"]);
    assert_eq!(out.status.code(), Some(4), "degraded runs must exit 4");
    let summary = summary(&supervised_dir);
    assert!(summary.degraded());
    assert_eq!(summary.completed_shards(), vec![1, 3]);
    assert_eq!(summary.quarantined.len(), 1);
    let quarantined = summary.quarantined[0];
    assert_eq!(
        (quarantined.shard, quarantined.start, quarantined.cells, quarantined.attempts),
        (2, 24, 24, 3),
        "the quarantine names shard 2's exact canonical range"
    );
    assert_eq!(shard_attempts(&summary, 2).len(), 3, "bounded attempts");
    // Graceful degradation: the completed shards still merged — 48 of 72 cells.
    let json = std::fs::read_to_string(supervised_dir.join("report.json")).unwrap();
    let merged = bsm_engine::from_json(&json).unwrap();
    assert_eq!(merged.totals().scenarios, 48);
    // No staging debris anywhere; the only partial is the quarantined shard's
    // salvageable stream (a later manual resume can still finish it).
    let (tmp, partial) = residue(&supervised_dir);
    assert!(tmp.is_empty(), "stale staging files: {tmp:?}");
    assert_eq!(partial, vec![supervised_dir.join("shard-2").join("report.jsonl.partial")]);
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn chaos_across_different_shards_and_attempts_composes() {
    let base = scratch("compose");
    let (reference_dir, supervised_dir) = (base.join("ref"), base.join("sup"));
    reference(&reference_dir);
    // Shard 1 dies once at a boundary; shard 3 tears a line on attempt 1 and
    // dies at another boundary on attempt 2; everything still converges.
    let out = supervised(&supervised_dir, Some("1:1:2,3:1:torn4,3:2:6"), &[]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert_identical(&reference_dir, &supervised_dir);
    let summary = summary(&supervised_dir);
    assert!(!summary.degraded());
    assert_eq!(shard_attempts(&summary, 1).len(), 2);
    assert_eq!(shard_attempts(&summary, 2).len(), 1, "shard 2 was never touched");
    assert_eq!(shard_attempts(&summary, 3).len(), 3);
    let _ = std::fs::remove_dir_all(&base);
}
