use crate::{Envelope, Outgoing, PartyId, Process, Time};

/// A protocol expressed in lock-step logical rounds rather than raw slots.
///
/// Most of the paper's building blocks (`ΠKing`, `ΠBA`, `ΠBB`, Dolev–Strong) are round
/// protocols: in round `r` a party sends messages that are guaranteed to be delivered
/// before round `r + 1` starts. [`RoundDriver`] adapts a `RoundProtocol` to the
/// slot-level [`Process`] interface, with a configurable number of slots per round to
/// account for relayed channels (2 slots per hop, Lemmas 6/8/10).
pub trait RoundProtocol {
    /// Wire message type.
    type Msg;
    /// Output (decision) type.
    type Output;

    /// Executes logical round `round` (starting from 0), given all messages received
    /// since the previous round, and returns the messages to send this round.
    fn round(&mut self, round: u64, inbox: &[(PartyId, Self::Msg)]) -> Vec<Outgoing<Self::Msg>>;

    /// The decision, once reached.
    fn output(&self) -> Option<Self::Output>;
}

/// Adapts a [`RoundProtocol`] to the slot-driven [`Process`] interface.
///
/// With `slots_per_round = s`, logical round `r` starts at slot `r · s`; messages
/// received during any slot of round `r` are handed to the protocol at the start of
/// round `r + 1`.
#[derive(Debug)]
pub struct RoundDriver<P: RoundProtocol> {
    id: PartyId,
    protocol: P,
    slots_per_round: u64,
    buffer: Vec<(PartyId, P::Msg)>,
}

impl<P: RoundProtocol> RoundDriver<P> {
    /// Wraps `protocol` for party `id` with one slot per round (direct channels).
    pub fn new(id: PartyId, protocol: P) -> Self {
        Self::with_slots_per_round(id, protocol, 1)
    }

    /// Wraps `protocol` with a custom round length in slots (e.g. 2 for relayed
    /// channels).
    ///
    /// # Panics
    ///
    /// Panics if `slots_per_round == 0`.
    pub fn with_slots_per_round(id: PartyId, protocol: P, slots_per_round: u64) -> Self {
        assert!(slots_per_round > 0, "a round must span at least one slot");
        Self { id, protocol, slots_per_round, buffer: Vec::new() }
    }

    /// The wrapped protocol (e.g. to inspect statistics after the run).
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The configured round length in slots.
    pub fn slots_per_round(&self) -> u64 {
        self.slots_per_round
    }
}

impl<P: RoundProtocol> Process<P::Msg, P::Output> for RoundDriver<P> {
    fn id(&self) -> PartyId {
        self.id
    }

    fn step(&mut self, now: Time, inbox: &mut Vec<Envelope<P::Msg>>) -> Vec<Outgoing<P::Msg>> {
        self.buffer.extend(inbox.drain(..).map(|env| (env.from, env.payload)));
        if !now.slot().is_multiple_of(self.slots_per_round) {
            return Vec::new();
        }
        let round = now.slot() / self.slots_per_round;
        let delivered = std::mem::take(&mut self.buffer);
        self.protocol.round(round, &delivered)
    }

    fn output(&self) -> Option<P::Output> {
        self.protocol.output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy round protocol: in round 0 send our index to everyone we know about, then
    /// output the sum of everything received in round 1.
    struct SumProtocol {
        me: PartyId,
        peers: Vec<PartyId>,
        output: Option<u64>,
    }

    impl RoundProtocol for SumProtocol {
        type Msg = u64;
        type Output = u64;

        fn round(&mut self, round: u64, inbox: &[(PartyId, u64)]) -> Vec<Outgoing<u64>> {
            match round {
                0 => self
                    .peers
                    .iter()
                    .map(|&to| Outgoing::new(to, u64::from(self.me.index)))
                    .collect(),
                1 => {
                    self.output = Some(inbox.iter().map(|(_, v)| v).sum());
                    Vec::new()
                }
                _ => Vec::new(),
            }
        }

        fn output(&self) -> Option<u64> {
            self.output
        }
    }

    #[test]
    fn driver_buffers_between_round_boundaries() {
        let me = PartyId::left(0);
        let peer = PartyId::right(0);
        let mut driver = RoundDriver::with_slots_per_round(
            me,
            SumProtocol { me, peers: vec![peer], output: None },
            2,
        );
        assert_eq!(driver.slots_per_round(), 2);

        // Slot 0: round 0 → send.
        let out = driver.step(Time(0), &mut vec![]);
        assert_eq!(out.len(), 1);
        // Slot 1: mid-round, messages received are buffered, nothing sent.
        let env =
            Envelope { from: peer, to: me, sent_at: Time(0), deliver_at: Time(1), payload: 5 };
        assert!(driver.step(Time(1), &mut vec![env]).is_empty());
        assert!(driver.protocol().output.is_none());
        // Slot 2: round 1 → consume the buffered message and decide.
        let env2 =
            Envelope { from: peer, to: me, sent_at: Time(1), deliver_at: Time(2), payload: 7 };
        assert!(driver.step(Time(2), &mut vec![env2]).is_empty());
        assert_eq!(Process::<u64, u64>::output(&driver), Some(12));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_per_round_panics() {
        let me = PartyId::left(0);
        let _ = RoundDriver::with_slots_per_round(
            me,
            SumProtocol { me, peers: vec![], output: None },
            0,
        );
    }
}
