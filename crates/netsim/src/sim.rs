use crate::{
    Adversary, AdversaryContext, CorruptionBudget, Envelope, FaultInjector, Metrics, NoFaults,
    Outgoing, PartyId, PartySet, PassiveAdversary, Process, Time, Topology,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Errors raised while configuring or driving a [`SyncNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A process was registered for a party outside the party set.
    UnknownParty {
        /// The offending party.
        party: PartyId,
    },
    /// Two processes were registered for the same party.
    DuplicateProcess {
        /// The offending party.
        party: PartyId,
    },
    /// `run` was called while some party still has no process registered.
    MissingProcess {
        /// The party without a process.
        party: PartyId,
    },
    /// Corrupting the requested party would exceed the per-side budget.
    CorruptionBudgetExceeded {
        /// The party that could not be corrupted.
        party: PartyId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownParty { party } => write!(f, "party {party} is not in the network"),
            SimError::DuplicateProcess { party } => {
                write!(f, "a process is already registered for party {party}")
            }
            SimError::MissingProcess { party } => {
                write!(f, "no process registered for party {party}")
            }
            SimError::CorruptionBudgetExceeded { party } => {
                write!(f, "corrupting {party} would exceed the corruption budget")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The result of driving a network until all honest parties decided (or a slot budget
/// ran out).
#[derive(Debug, Clone)]
pub struct RunOutcome<O> {
    /// First output recorded for each party (absent if the party never decided; outputs
    /// of parties that were corrupted before deciding are not recorded).
    pub outputs: BTreeMap<PartyId, O>,
    /// Parties that were corrupted at any point of the run.
    pub corrupted: BTreeSet<PartyId>,
    /// Whether every never-corrupted party produced an output within the slot budget.
    pub all_honest_decided: bool,
    /// Number of slots executed.
    pub slots: u64,
    /// Message accounting.
    pub metrics: Metrics,
}

impl<O> RunOutcome<O> {
    /// Parties that stayed honest for the whole run.
    pub fn honest_parties(&self, parties: PartySet) -> Vec<PartyId> {
        parties.iter().filter(|p| !self.corrupted.contains(p)).collect()
    }

    /// The output of a specific party, if it decided.
    pub fn output_of(&self, party: PartyId) -> Option<&O> {
        self.outputs.get(&party)
    }
}

/// A deterministic synchronous network of `2k` parties running [`Process`] state
/// machines under an adaptive byzantine adversary and a message fault injector.
///
/// Slot semantics: at slot `t` every process receives the messages whose delivery slot
/// is `≤ t` that it has not seen yet, then sends messages that will be delivered at slot
/// `t + 1` (delivery within `Δ`). The adversary observes only corrupted parties'
/// inboxes, may corrupt more parties at the start of each slot (within the budget), and
/// sends arbitrary topology-respecting messages on behalf of corrupted parties.
pub struct SyncNetwork<M, O> {
    parties: PartySet,
    topology: Topology,
    budget: CorruptionBudget,
    processes: BTreeMap<PartyId, Box<dyn Process<M, O>>>,
    corrupted: BTreeSet<PartyId>,
    adversary: Box<dyn Adversary<M>>,
    injector: Box<dyn FaultInjector<M>>,
    in_flight: Vec<Envelope<M>>,
    outputs: BTreeMap<PartyId, O>,
    now: Time,
    metrics: Metrics,
    // Reusable per-slot buffers: cleared (not dropped) at the end of every slot, so
    // steady-state stepping performs no per-slot Vec allocations.
    /// Per-party inbox buffers, reused across slots.
    inboxes: BTreeMap<PartyId, Vec<Envelope<M>>>,
    /// Messages due for delivery this slot.
    due: Vec<Envelope<M>>,
    /// Messages staying in flight past this slot (swapped with `in_flight`).
    later: Vec<Envelope<M>>,
    /// Honest sends collected this slot.
    to_send: Vec<(PartyId, Outgoing<M>)>,
    /// Honest parties of the current slot.
    honest: Vec<PartyId>,
}

impl<M, O> fmt::Debug for SyncNetwork<M, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SyncNetwork")
            .field("k", &self.parties.k())
            .field("topology", &self.topology)
            .field("budget", &self.budget)
            .field("now", &self.now)
            .field("corrupted", &self.corrupted)
            .field("in_flight", &self.in_flight.len())
            .finish_non_exhaustive()
    }
}

impl<M: Clone, O: Clone> SyncNetwork<M, O> {
    /// Creates an empty network for a market of size `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, topology: Topology, budget: CorruptionBudget) -> Self {
        Self {
            parties: PartySet::new(k),
            topology,
            budget,
            processes: BTreeMap::new(),
            corrupted: BTreeSet::new(),
            adversary: Box::new(PassiveAdversary),
            injector: Box::new(NoFaults),
            in_flight: Vec::new(),
            outputs: BTreeMap::new(),
            now: Time::ZERO,
            metrics: Metrics::default(),
            inboxes: BTreeMap::new(),
            due: Vec::new(),
            later: Vec::new(),
            to_send: Vec::new(),
            honest: Vec::new(),
        }
    }

    /// The party universe.
    pub fn parties(&self) -> PartySet {
        self.parties
    }

    /// The topology in force.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The current slot.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Parties currently corrupted.
    pub fn corrupted(&self) -> &BTreeSet<PartyId> {
        &self.corrupted
    }

    /// Message accounting so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Registers the protocol state machine for one party.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownParty`] if the process's id is outside the party set
    /// and [`SimError::DuplicateProcess`] if the party already has a process.
    pub fn register(&mut self, process: Box<dyn Process<M, O>>) -> Result<(), SimError> {
        let id = process.id();
        if !self.parties.contains(id) {
            return Err(SimError::UnknownParty { party: id });
        }
        if self.processes.contains_key(&id) {
            return Err(SimError::DuplicateProcess { party: id });
        }
        self.processes.insert(id, process);
        Ok(())
    }

    /// Installs the byzantine adversary (default: [`PassiveAdversary`]).
    pub fn set_adversary(&mut self, adversary: Box<dyn Adversary<M>>) {
        self.adversary = adversary;
    }

    /// Installs the fault injector (default: [`NoFaults`]).
    pub fn set_fault_injector(&mut self, injector: Box<dyn FaultInjector<M>>) {
        self.injector = injector;
    }

    /// Statically corrupts a party before the run starts (or adaptively between slots).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownParty`] for a party outside the set and
    /// [`SimError::CorruptionBudgetExceeded`] if the per-side budget does not allow it.
    pub fn corrupt(&mut self, party: PartyId) -> Result<(), SimError> {
        if !self.parties.contains(party) {
            return Err(SimError::UnknownParty { party });
        }
        if !self.budget.allows(&self.corrupted, party) {
            return Err(SimError::CorruptionBudgetExceeded { party });
        }
        self.corrupted.insert(party);
        // A party corrupted before deciding contributes no honest output.
        self.outputs.remove(&party);
        Ok(())
    }

    /// Validates an outgoing message and, if accepted, enqueues it for delivery at the
    /// next slot.
    fn enqueue(&mut self, from: PartyId, outgoing: Outgoing<M>, byzantine: bool) {
        if !self.parties.contains(outgoing.to) || !self.topology.connects(from, outgoing.to) {
            self.metrics.rejected_by_topology += 1;
            return;
        }
        let mut envelope = Envelope {
            from,
            to: outgoing.to,
            sent_at: self.now,
            deliver_at: self.now + 1,
            payload: outgoing.payload,
        };
        self.metrics.record_sent(from, byzantine);
        match self.injector.action(&envelope, self.now) {
            crate::FaultAction::Deliver => self.in_flight.push(envelope),
            crate::FaultAction::Drop => self.metrics.dropped_by_faults += 1,
            crate::FaultAction::Delay(extra) => {
                envelope.deliver_at = self.now + 1 + extra;
                self.metrics.delayed_by_faults += 1;
                self.in_flight.push(envelope);
            }
        }
    }

    /// Executes a single slot.
    ///
    /// Steady-state stepping is allocation-light: the per-slot inbox, delivery and
    /// send buffers live on the network and are cleared — not dropped — between
    /// slots, and the adversary context borrows the corrupted set instead of cloning
    /// it at every consultation.
    pub fn step(&mut self) {
        // 1. Adaptive corruptions.
        let requested = self.adversary.plan_corruptions(&AdversaryContext {
            now: self.now,
            parties: self.parties,
            topology: self.topology,
            corrupted: &self.corrupted,
            budget: self.budget,
        });
        for party in requested {
            // Requests beyond the budget or outside the party set are ignored: the
            // adversary cannot exceed (tL, tR) by construction.
            let _ = self.corrupt(party);
        }

        // 2. Deliver messages due at this slot (stable split, preserving the enqueue
        // order so same-sender-same-slot messages keep their deterministic order).
        let now = self.now;
        for envelope in self.in_flight.drain(..) {
            if envelope.deliver_at <= now {
                self.due.push(envelope);
            } else {
                self.later.push(envelope);
            }
        }
        std::mem::swap(&mut self.in_flight, &mut self.later);
        for envelope in self.due.drain(..) {
            self.metrics.delivered_messages += 1;
            self.inboxes.entry(envelope.to).or_default().push(envelope);
        }
        // Deterministic delivery order within a slot: sort by sender (stable).
        for inbox in self.inboxes.values_mut() {
            inbox.sort_by_key(|env| (env.from, env.sent_at));
        }

        // 3. Step honest processes.
        self.honest.clear();
        let corrupted = &self.corrupted;
        self.honest.extend(self.processes.keys().copied().filter(|p| !corrupted.contains(p)));
        let mut to_send = std::mem::take(&mut self.to_send);
        for i in 0..self.honest.len() {
            let party = self.honest[i];
            let process = self.processes.get_mut(&party).expect("honest process exists");
            let inbox = self.inboxes.entry(party).or_default();
            for outgoing in process.step(now, inbox) {
                to_send.push((party, outgoing));
            }
            if let std::collections::btree_map::Entry::Vacant(entry) = self.outputs.entry(party) {
                if let Some(output) = process.output() {
                    entry.insert(output);
                }
            }
        }
        for (from, outgoing) in to_send.drain(..) {
            self.enqueue(from, outgoing, false);
        }
        self.to_send = to_send;

        // 4. The adversary acts with the corrupted parties' inboxes. Their buffers are
        // lent out by value for the call and reclaimed (cleared) afterwards.
        let mut corrupted_inboxes: BTreeMap<PartyId, Vec<Envelope<M>>> = BTreeMap::new();
        for &party in &self.corrupted {
            if let Some(inbox) = self.inboxes.get_mut(&party) {
                if !inbox.is_empty() {
                    corrupted_inboxes.insert(party, std::mem::take(inbox));
                }
            }
        }
        let byzantine_sends = self.adversary.act(
            &AdversaryContext {
                now: self.now,
                parties: self.parties,
                topology: self.topology,
                corrupted: &self.corrupted,
                budget: self.budget,
            },
            &corrupted_inboxes,
        );
        for (from, outgoing) in byzantine_sends {
            if !self.corrupted.contains(&from) {
                // The adversary can only speak for parties it controls.
                self.metrics.rejected_by_topology += 1;
                continue;
            }
            self.enqueue(from, outgoing, true);
        }
        for (party, inbox) in corrupted_inboxes {
            self.inboxes.insert(party, inbox);
        }
        // Single end-of-slot sweep: every inbox buffer — honest (drained or not by its
        // process), corrupted (returned from the adversary), or undeliverable (a party
        // with no registered process when `step` is driven directly) — is emptied
        // here, exactly as the former per-slot map dropped its contents. The buffers
        // themselves are retained for the next slot.
        for inbox in self.inboxes.values_mut() {
            inbox.clear();
        }

        self.metrics.slots += 1;
        self.now += 1;
    }

    /// Returns `true` if every currently-honest party has produced an output.
    pub fn all_honest_decided(&self) -> bool {
        self.parties
            .iter()
            .filter(|p| !self.corrupted.contains(p))
            .all(|p| self.outputs.contains_key(&p))
    }

    /// Runs until every honest party decided or `max_slots` slots have elapsed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MissingProcess`] if some party has no registered process.
    pub fn run(mut self, max_slots: u64) -> Result<RunOutcome<O>, SimError> {
        for party in self.parties.iter() {
            if !self.processes.contains_key(&party) {
                return Err(SimError::MissingProcess { party });
            }
        }
        let mut executed = 0u64;
        while executed < max_slots && !self.all_honest_decided() {
            self.step();
            executed += 1;
        }
        let all_honest_decided = self.all_honest_decided();
        // Outputs of parties that were corrupted after deciding stay recorded, but the
        // bSM property checkers only consider never-corrupted parties; drop the rest to
        // keep the outcome unambiguous. Both sets move out — no cloning.
        let mut outputs = self.outputs;
        let corrupted = self.corrupted;
        outputs.retain(|party, _| !corrupted.contains(party));
        Ok(RunOutcome {
            outputs,
            corrupted,
            all_honest_decided,
            slots: executed,
            metrics: self.metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{multicast, SilentProcess};
    use std::collections::BTreeMap;

    /// Every party announces its own index to everyone it can reach, then outputs the
    /// set of indices heard (including its own) after two slots.
    struct GossipProcess {
        id: PartyId,
        parties: PartySet,
        topology: Topology,
        heard: BTreeSet<PartyId>,
        output: Option<Vec<PartyId>>,
    }

    impl GossipProcess {
        fn new(id: PartyId, parties: PartySet, topology: Topology) -> Self {
            Self { id, parties, topology, heard: [id].into_iter().collect(), output: None }
        }
    }

    impl Process<u32, Vec<PartyId>> for GossipProcess {
        fn id(&self) -> PartyId {
            self.id
        }

        fn step(&mut self, now: Time, inbox: &mut Vec<Envelope<u32>>) -> Vec<Outgoing<u32>> {
            for env in inbox.drain(..) {
                self.heard.insert(env.from);
            }
            match now.slot() {
                0 => {
                    let neighbours: Vec<PartyId> = self
                        .parties
                        .iter()
                        .filter(|&p| self.topology.connects(self.id, p))
                        .collect();
                    multicast(neighbours, self.id.index)
                }
                1 => Vec::new(),
                _ => {
                    if self.output.is_none() {
                        self.output = Some(self.heard.iter().copied().collect());
                    }
                    Vec::new()
                }
            }
        }

        fn output(&self) -> Option<Vec<PartyId>> {
            self.output.clone()
        }
    }

    fn gossip_network(
        k: usize,
        topology: Topology,
        budget: CorruptionBudget,
    ) -> SyncNetwork<u32, Vec<PartyId>> {
        let mut net = SyncNetwork::new(k, topology, budget);
        let parties = net.parties();
        for party in parties.iter() {
            net.register(Box::new(GossipProcess::new(party, parties, topology))).unwrap();
        }
        net
    }

    #[test]
    fn gossip_reaches_all_neighbours_in_full_mesh() {
        let net = gossip_network(2, Topology::FullyConnected, CorruptionBudget::NONE);
        let outcome = net.run(10).unwrap();
        assert!(outcome.all_honest_decided);
        for party in PartySet::new(2).iter() {
            let heard = &outcome.outputs[&party];
            assert_eq!(heard.len(), 4, "{party} heard {heard:?}");
        }
        assert_eq!(outcome.metrics.rejected_by_topology, 0);
        assert_eq!(outcome.metrics.honest_messages, 4 * 3);
    }

    #[test]
    fn bipartite_topology_blocks_same_side_messages() {
        let net = gossip_network(2, Topology::Bipartite, CorruptionBudget::NONE);
        let outcome = net.run(10).unwrap();
        for party in PartySet::new(2).iter() {
            let heard = &outcome.outputs[&party];
            // Each party hears itself plus the two parties on the other side.
            assert_eq!(heard.len(), 3, "{party} heard {heard:?}");
            assert!(heard.iter().filter(|p| p.side == party.side).count() == 1);
        }
    }

    #[test]
    fn one_sided_topology_connects_right_side_only() {
        let net = gossip_network(3, Topology::OneSided, CorruptionBudget::NONE);
        let outcome = net.run(10).unwrap();
        for party in PartySet::new(3).iter() {
            let heard = &outcome.outputs[&party];
            if party.is_left() {
                assert_eq!(heard.len(), 4); // itself + 3 right parties
            } else {
                assert_eq!(heard.len(), 6); // everyone
            }
        }
    }

    #[test]
    fn corrupted_parties_crash_under_passive_adversary() {
        let mut net = gossip_network(2, Topology::FullyConnected, CorruptionBudget::new(1, 0));
        net.corrupt(PartyId::left(0)).unwrap();
        let outcome = net.run(10).unwrap();
        // The corrupted party has no recorded output…
        assert!(outcome.output_of(PartyId::left(0)).is_none());
        assert!(outcome.corrupted.contains(&PartyId::left(0)));
        // …and nobody heard from it.
        for party in PartySet::new(2).iter().filter(|p| *p != PartyId::left(0)) {
            assert!(!outcome.outputs[&party].contains(&PartyId::left(0)));
        }
        assert_eq!(outcome.honest_parties(PartySet::new(2)).len(), 3);
    }

    #[test]
    fn corruption_budget_is_enforced() {
        let mut net = gossip_network(2, Topology::FullyConnected, CorruptionBudget::new(1, 0));
        net.corrupt(PartyId::left(0)).unwrap();
        assert_eq!(
            net.corrupt(PartyId::left(1)),
            Err(SimError::CorruptionBudgetExceeded { party: PartyId::left(1) })
        );
        assert_eq!(
            net.corrupt(PartyId::right(5)),
            Err(SimError::UnknownParty { party: PartyId::right(5) })
        );
    }

    #[test]
    fn registration_errors() {
        let mut net: SyncNetwork<u32, Vec<PartyId>> =
            SyncNetwork::new(1, Topology::FullyConnected, CorruptionBudget::NONE);
        assert_eq!(
            net.register(Box::new(SilentProcess::new(PartyId::left(7)))),
            Err(SimError::UnknownParty { party: PartyId::left(7) })
        );
        net.register(Box::new(SilentProcess::new(PartyId::left(0)))).unwrap();
        assert_eq!(
            net.register(Box::new(SilentProcess::new(PartyId::left(0)))),
            Err(SimError::DuplicateProcess { party: PartyId::left(0) })
        );
        // Running with a missing process reports which party is missing.
        let err = net.run(1).unwrap_err();
        assert_eq!(err, SimError::MissingProcess { party: PartyId::right(0) });
    }

    #[test]
    fn run_stops_at_slot_budget_when_processes_never_decide() {
        let mut net: SyncNetwork<u32, Vec<PartyId>> =
            SyncNetwork::new(1, Topology::FullyConnected, CorruptionBudget::NONE);
        for party in net.parties().iter() {
            net.register(Box::new(SilentProcess::new(party))).unwrap();
        }
        let outcome = net.run(5).unwrap();
        assert!(!outcome.all_honest_decided);
        assert_eq!(outcome.slots, 5);
        assert!(outcome.outputs.is_empty());
    }

    #[test]
    fn fault_injector_drops_messages() {
        let mut net = gossip_network(2, Topology::FullyConnected, CorruptionBudget::NONE);
        net.set_fault_injector(Box::new(crate::DropAll));
        let outcome = net.run(10).unwrap();
        for party in PartySet::new(2).iter() {
            assert_eq!(outcome.outputs[&party], vec![party]);
        }
        assert_eq!(outcome.metrics.dropped_by_faults, 12);
        assert_eq!(outcome.metrics.delivered_messages, 0);
    }

    #[test]
    fn fault_schedule_delays_messages_without_losing_them() {
        let run = || {
            let mut net = gossip_network(2, Topology::FullyConnected, CorruptionBudget::NONE);
            let spec: crate::FaultSpec = "jitter=3".parse().unwrap();
            net.set_fault_injector(Box::new(crate::FaultSchedule::new(spec, 9)));
            net.run(20).unwrap()
        };
        let outcome = run();
        assert!(outcome.all_honest_decided);
        assert!(outcome.metrics.delayed_by_faults > 0, "jitter=3 should delay something");
        assert_eq!(outcome.metrics.dropped_by_faults, 0, "jitter never drops");
        let again = run();
        assert_eq!(outcome.outputs, again.outputs);
        assert_eq!(outcome.metrics, again.metrics);
    }

    /// An adversary that equivocates: it sends different values to different recipients
    /// on behalf of every corrupted party, and adaptively corrupts a configured victim
    /// at slot 1.
    struct EquivocatingAdversary {
        adaptively_corrupt: Option<PartyId>,
    }

    impl Adversary<u32> for EquivocatingAdversary {
        fn plan_corruptions(&mut self, ctx: &AdversaryContext<'_>) -> Vec<PartyId> {
            if ctx.now == Time(1) {
                self.adaptively_corrupt.take().into_iter().collect()
            } else {
                Vec::new()
            }
        }

        fn act(
            &mut self,
            ctx: &AdversaryContext<'_>,
            _inboxes: &BTreeMap<PartyId, Vec<Envelope<u32>>>,
        ) -> Vec<(PartyId, Outgoing<u32>)> {
            let mut out = Vec::new();
            for &byzantine in ctx.corrupted {
                for (i, honest) in ctx.honest().into_iter().enumerate() {
                    if ctx.topology.connects(byzantine, honest) {
                        out.push((byzantine, Outgoing::new(honest, 100 + i as u32)));
                    }
                }
                // Attempts to speak over non-existent channels are rejected silently.
                out.push((byzantine, Outgoing::new(byzantine, 0)));
            }
            // Attempt to speak for an honest party: must be rejected.
            if let Some(honest) = ctx.honest().first().copied() {
                if let Some(other) = ctx.honest().get(1).copied() {
                    out.push((honest, Outgoing::new(other, 999)));
                }
            }
            out
        }
    }

    #[test]
    fn adversary_messages_respect_identity_and_topology() {
        let mut net = gossip_network(2, Topology::FullyConnected, CorruptionBudget::new(1, 1));
        net.corrupt(PartyId::left(0)).unwrap();
        net.set_adversary(Box::new(EquivocatingAdversary {
            adaptively_corrupt: Some(PartyId::right(0)),
        }));
        let outcome = net.run(10).unwrap();
        // Both statically and adaptively corrupted parties are recorded.
        assert!(outcome.corrupted.contains(&PartyId::left(0)));
        assert!(outcome.corrupted.contains(&PartyId::right(0)));
        // Spoofed sends (on behalf of honest parties) and self-sends were rejected.
        assert!(outcome.metrics.rejected_by_topology > 0);
        // Byzantine traffic is accounted separately from honest traffic.
        assert!(outcome.metrics.byzantine_messages > 0);
        // Honest parties still decided.
        assert!(outcome.output_of(PartyId::left(1)).is_some());
        assert!(outcome.output_of(PartyId::right(1)).is_some());
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut net = gossip_network(3, Topology::OneSided, CorruptionBudget::new(1, 1));
            net.corrupt(PartyId::right(2)).unwrap();
            net.set_adversary(Box::new(EquivocatingAdversary { adaptively_corrupt: None }));
            let outcome = net.run(10).unwrap();
            (outcome.outputs, outcome.metrics)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn debug_and_accessors() {
        let net = gossip_network(2, Topology::Bipartite, CorruptionBudget::new(1, 1));
        assert_eq!(net.topology(), Topology::Bipartite);
        assert_eq!(net.parties().k(), 2);
        assert_eq!(net.now(), Time::ZERO);
        assert!(net.corrupted().is_empty());
        assert_eq!(net.metrics().total_messages(), 0);
        assert!(format!("{net:?}").contains("SyncNetwork"));
    }

    #[test]
    fn sim_error_display() {
        for err in [
            SimError::UnknownParty { party: PartyId::left(0) },
            SimError::DuplicateProcess { party: PartyId::left(0) },
            SimError::MissingProcess { party: PartyId::left(0) },
            SimError::CorruptionBudgetExceeded { party: PartyId::left(0) },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
