//! Deterministic synchronous network simulator for two-sided byzantine protocols.
//!
//! The paper's model (§2) is a synchronous network: parties have synchronized clocks,
//! all parties start at time 0, and every message is delivered within a publicly known
//! delay `Δ`. This crate models that world with discrete *slots* (1 slot = `Δ`):
//!
//! * [`PartyId`] / [`PartySet`] — the `2k` parties split into sides `L` and `R`,
//! * [`Topology`] — the three communication graphs of Fig. 1 (fully-connected,
//!   one-sided, bipartite),
//! * [`Process`] — the per-party protocol state machine interface, stepped once per slot,
//! * [`RoundProtocol`] / [`RoundDriver`] — a higher-level interface for protocols that
//!   think in lock-step rounds rather than raw slots,
//! * [`Adversary`] — an adaptive byzantine adversary that controls all corrupted
//!   parties, subject to the per-side corruption budget `(tL, tR)`,
//! * [`FaultInjector`] — message-level fault injection (omission networks, §5.2), with
//!   [`FaultSchedule`] applying a declarative [`FaultSpec`] (scheduled partitions,
//!   crash/recovery, seeded loss and delivery jitter — partial synchrony),
//! * [`SyncNetwork`] — the deterministic scheduler tying everything together, plus
//!   [`Metrics`] for message/round accounting used by the benchmarks.
//!
//! Determinism: party iteration follows the total order on [`PartyId`], all collections
//! with observable iteration order are `BTreeMap`/`BTreeSet`, and any randomness lives
//! inside explicitly seeded adversaries or fault injectors. Two runs of the same
//! scenario produce identical transcripts, which is what makes the paper's
//! indistinguishability-based attacks reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod faults;
mod message;
mod metrics;
mod party;
mod process;
mod round;
mod sim;
mod time;
mod topology;

pub use adversary::{Adversary, AdversaryContext, CorruptionBudget, PassiveAdversary};
pub use faults::{
    CrashWindow, DropAll, FaultAction, FaultInjector, FaultSchedule, FaultSpec,
    FaultSpecParseError, NoFaults, PartitionWindow, PredicateFaults, RandomOmissions,
};
pub use message::{multicast, Envelope, Outgoing};
pub use metrics::{FanoutSummary, Metrics, RoleFanout};
pub use party::{PartyId, PartySet};
pub use process::{Process, SilentProcess};
pub use round::{RoundDriver, RoundProtocol};
pub use sim::{RunOutcome, SimError, SyncNetwork};
pub use time::Time;
pub use topology::Topology;

pub use bsm_matching::Side;
