use crate::PartyId;
use bsm_matching::Side;

/// The three communication topologies of Fig. 1.
///
/// The matching itself is always between sides `L` and `R`; the topology only restricts
/// which pairs of parties share a (bidirectional, authenticated) channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Topology {
    /// Only pairs in `L × R` are connected (e.g. international job applicants who can
    /// only talk to potential matches).
    Bipartite,
    /// Like bipartite, but parties in `R` are additionally connected among themselves
    /// (e.g. kidney exchange where recipients must not interact with each other).
    OneSided,
    /// Every pair of distinct parties is connected (a close-knit social group).
    FullyConnected,
}

impl Topology {
    /// All topologies, weakest (bipartite) first.
    pub const ALL: [Topology; 3] =
        [Topology::Bipartite, Topology::OneSided, Topology::FullyConnected];

    /// Returns `true` if parties `a` and `b` share a direct channel in this topology.
    ///
    /// No party has a channel to itself.
    pub fn connects(&self, a: PartyId, b: PartyId) -> bool {
        if a == b {
            return false;
        }
        match (a.side, b.side) {
            (Side::Left, Side::Right) | (Side::Right, Side::Left) => true,
            (Side::Right, Side::Right) => {
                matches!(self, Topology::OneSided | Topology::FullyConnected)
            }
            (Side::Left, Side::Left) => matches!(self, Topology::FullyConnected),
        }
    }

    /// Returns `true` if the parties *within* `side` are pairwise connected.
    pub fn side_connected(&self, side: Side) -> bool {
        matches!((self, side), (Topology::FullyConnected, _) | (Topology::OneSided, Side::Right))
    }

    /// Returns `true` if every channel of `self` is also a channel of `other`.
    ///
    /// The paper's observation "each model is strictly stronger than the previous one"
    /// (§2): bipartite ⊆ one-sided ⊆ fully-connected.
    pub fn is_subgraph_of(&self, other: Topology) -> bool {
        self <= &other
    }

    /// Number of undirected channels in a market of size `k`.
    pub fn channel_count(&self, k: usize) -> usize {
        let cross = k * k;
        let within = k * k.saturating_sub(1) / 2;
        match self {
            Topology::Bipartite => cross,
            Topology::OneSided => cross + within,
            Topology::FullyConnected => cross + 2 * within,
        }
    }

    /// A short lowercase name (used in experiment tables).
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Bipartite => "bipartite",
            Topology::OneSided => "one-sided",
            Topology::FullyConnected => "fully-connected",
        }
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartySet;

    #[test]
    fn cross_side_channels_always_exist() {
        for topology in Topology::ALL {
            assert!(topology.connects(PartyId::left(0), PartyId::right(1)));
            assert!(topology.connects(PartyId::right(2), PartyId::left(0)));
        }
    }

    #[test]
    fn no_self_channels() {
        for topology in Topology::ALL {
            assert!(!topology.connects(PartyId::left(0), PartyId::left(0)));
            assert!(!topology.connects(PartyId::right(3), PartyId::right(3)));
        }
    }

    #[test]
    fn within_side_channels_depend_on_topology() {
        let l = (PartyId::left(0), PartyId::left(1));
        let r = (PartyId::right(0), PartyId::right(1));
        assert!(!Topology::Bipartite.connects(l.0, l.1));
        assert!(!Topology::Bipartite.connects(r.0, r.1));
        assert!(!Topology::OneSided.connects(l.0, l.1));
        assert!(Topology::OneSided.connects(r.0, r.1));
        assert!(Topology::FullyConnected.connects(l.0, l.1));
        assert!(Topology::FullyConnected.connects(r.0, r.1));

        assert!(!Topology::OneSided.side_connected(Side::Left));
        assert!(Topology::OneSided.side_connected(Side::Right));
        assert!(Topology::FullyConnected.side_connected(Side::Left));
        assert!(!Topology::Bipartite.side_connected(Side::Right));
    }

    #[test]
    fn inclusion_order_matches_paper() {
        assert!(Topology::Bipartite.is_subgraph_of(Topology::OneSided));
        assert!(Topology::OneSided.is_subgraph_of(Topology::FullyConnected));
        assert!(Topology::Bipartite.is_subgraph_of(Topology::FullyConnected));
        assert!(!Topology::FullyConnected.is_subgraph_of(Topology::OneSided));
        assert!(Topology::OneSided.is_subgraph_of(Topology::OneSided));
    }

    #[test]
    fn channel_count_matches_enumeration() {
        for topology in Topology::ALL {
            for k in 1..=5usize {
                let set = PartySet::new(k);
                let mut count = 0usize;
                let parties: Vec<PartyId> = set.iter().collect();
                for (i, &a) in parties.iter().enumerate() {
                    for &b in parties.iter().skip(i + 1) {
                        if topology.connects(a, b) {
                            count += 1;
                        }
                    }
                }
                assert_eq!(count, topology.channel_count(k), "{topology} k={k}");
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        assert_eq!(Topology::Bipartite.to_string(), "bipartite");
        assert_eq!(Topology::OneSided.to_string(), "one-sided");
        assert_eq!(Topology::FullyConnected.to_string(), "fully-connected");
    }
}
