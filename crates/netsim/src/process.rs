use crate::{Envelope, Outgoing, PartyId, Time};

/// A per-party protocol state machine, driven once per slot by the simulator.
///
/// `M` is the wire message type and `O` the output (decision) type. A process receives
/// in `step` exactly the messages whose delivery slot has arrived, in a deterministic
/// order (sorted by sender), and returns the messages it wants to send this slot. Every
/// sent message is delivered at the next slot (within `Δ`), unless dropped by a fault
/// injector or blocked by the topology.
///
/// Once [`Process::output`] returns `Some`, the decision is final: the simulator records
/// the first value observed and keeps stepping the process (protocols such as `ΠbSM`
/// keep relaying messages for others after deciding).
pub trait Process<M, O> {
    /// This process's party identifier.
    fn id(&self) -> PartyId;

    /// Executes one slot: consumes delivered messages, returns messages to send.
    ///
    /// The inbox is handed over as `&mut Vec` so the simulator can **reuse the buffer
    /// across slots** instead of allocating one per party per slot: implementations
    /// take the messages with `inbox.drain(..)` (or just read them — the caller clears
    /// whatever is left after the call).
    fn step(&mut self, now: Time, inbox: &mut Vec<Envelope<M>>) -> Vec<Outgoing<M>>;

    /// The decision of this party, once reached.
    fn output(&self) -> Option<O>;
}

/// A process that never sends anything and never decides.
///
/// Used as the stand-in for crashed parties and as a filler process for parties whose
/// behaviour is entirely controlled by the adversary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SilentProcess {
    id: PartyId,
}

impl SilentProcess {
    /// Creates a silent process for `id`.
    pub fn new(id: PartyId) -> Self {
        Self { id }
    }
}

impl<M, O> Process<M, O> for SilentProcess {
    fn id(&self) -> PartyId {
        self.id
    }

    fn step(&mut self, _now: Time, _inbox: &mut Vec<Envelope<M>>) -> Vec<Outgoing<M>> {
        Vec::new()
    }

    fn output(&self) -> Option<O> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_process_does_nothing() {
        let mut p = SilentProcess::new(PartyId::left(1));
        assert_eq!(Process::<u32, u32>::id(&p), PartyId::left(1));
        let out: Vec<Outgoing<u32>> =
            Process::<u32, u32>::step(&mut p, Time::ZERO, &mut Vec::new());
        assert!(out.is_empty());
        assert_eq!(Process::<u32, u32>::output(&p), None);
    }
}
