use crate::{Envelope, Outgoing, PartyId, PartySet, Time, Topology};
use bsm_matching::Side;
use std::collections::{BTreeMap, BTreeSet};

/// The per-side corruption budget `(tL, tR)` of the adversary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptionBudget {
    /// Maximum number of corrupted parties on side `L`.
    pub t_l: usize,
    /// Maximum number of corrupted parties on side `R`.
    pub t_r: usize,
}

impl CorruptionBudget {
    /// A budget of zero corruptions on either side (the fault-free setting).
    pub const NONE: CorruptionBudget = CorruptionBudget { t_l: 0, t_r: 0 };

    /// Creates a budget.
    pub fn new(t_l: usize, t_r: usize) -> Self {
        Self { t_l, t_r }
    }

    /// The budget for one side.
    pub fn for_side(&self, side: Side) -> usize {
        match side {
            Side::Left => self.t_l,
            Side::Right => self.t_r,
        }
    }

    /// Returns `true` if corrupting `candidate` on top of `corrupted` stays within the
    /// budget.
    pub fn allows(&self, corrupted: &BTreeSet<PartyId>, candidate: PartyId) -> bool {
        if corrupted.contains(&candidate) {
            return true;
        }
        let used = corrupted.iter().filter(|p| p.side == candidate.side).count();
        used < self.for_side(candidate.side)
    }
}

/// A read-only view of public network information offered to the adversary.
///
/// The adversary sees the topology, the corruption state, and the messages addressed to
/// corrupted parties — but never the internal state of honest processes, matching the
/// standard byzantine model with private channels.
///
/// The corrupted set is *borrowed* from the simulator: the context is rebuilt (for
/// free) every time the adversary is consulted, instead of cloning the set twice per
/// slot as the former owning design did.
#[derive(Debug, Clone)]
pub struct AdversaryContext<'a> {
    /// Current slot.
    pub now: Time,
    /// The party universe.
    pub parties: PartySet,
    /// The communication topology (also enforced on byzantine messages).
    pub topology: Topology,
    /// Parties currently controlled by the adversary.
    pub corrupted: &'a BTreeSet<PartyId>,
    /// The corruption budget.
    pub budget: CorruptionBudget,
}

impl AdversaryContext<'_> {
    /// Convenience: all parties the adversary does not control.
    pub fn honest(&self) -> Vec<PartyId> {
        self.parties.iter().filter(|p| !self.corrupted.contains(p)).collect()
    }

    /// Returns `true` if a corruption request for `candidate` would be honored this
    /// slot: the party exists in the universe and the per-side budget has room.
    ///
    /// Scripted/adaptive adversaries use this to filter their corruption plans up
    /// front instead of relying on the simulator silently ignoring over-budget
    /// requests (already-corrupted parties are allowed, as
    /// [`CorruptionBudget::allows`] is idempotent).
    pub fn can_corrupt(&self, candidate: PartyId) -> bool {
        candidate.idx() < self.parties.k() && self.budget.allows(self.corrupted, candidate)
    }
}

/// An adaptive byzantine adversary.
///
/// Each slot the simulator first asks for additional corruptions (adaptive adversaries
/// may corrupt mid-protocol; requests beyond the budget are ignored), then hands over
/// the inboxes of all corrupted parties and collects the messages the corrupted parties
/// send this slot. Messages from non-corrupted senders or over non-existent channels are
/// discarded by the simulator.
pub trait Adversary<M> {
    /// Parties to corrupt at the beginning of this slot (may be empty).
    fn plan_corruptions(&mut self, _ctx: &AdversaryContext<'_>) -> Vec<PartyId> {
        Vec::new()
    }

    /// Messages sent by corrupted parties this slot, as `(sender, outgoing)` pairs.
    fn act(
        &mut self,
        _ctx: &AdversaryContext<'_>,
        _inboxes: &BTreeMap<PartyId, Vec<Envelope<M>>>,
    ) -> Vec<(PartyId, Outgoing<M>)> {
        Vec::new()
    }
}

/// The adversary that does nothing: corrupted parties simply crash (send no messages).
///
/// Statically corrupting parties and attaching `PassiveAdversary` models crash faults
/// from time 0, the failure mode discussed for content delivery networks in the paper's
/// introduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassiveAdversary;

impl<M> Adversary<M> for PassiveAdversary {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_accounting_is_per_side() {
        let budget = CorruptionBudget::new(1, 2);
        assert_eq!(budget.for_side(Side::Left), 1);
        assert_eq!(budget.for_side(Side::Right), 2);
        let mut corrupted = BTreeSet::new();
        assert!(budget.allows(&corrupted, PartyId::left(0)));
        corrupted.insert(PartyId::left(0));
        // Already-corrupted parties are always allowed (idempotent).
        assert!(budget.allows(&corrupted, PartyId::left(0)));
        // The left budget is exhausted but the right budget is not.
        assert!(!budget.allows(&corrupted, PartyId::left(1)));
        assert!(budget.allows(&corrupted, PartyId::right(0)));
        corrupted.insert(PartyId::right(0));
        corrupted.insert(PartyId::right(1));
        assert!(!budget.allows(&corrupted, PartyId::right(2)));
        assert_eq!(CorruptionBudget::NONE.for_side(Side::Left), 0);
    }

    #[test]
    fn context_honest_listing() {
        let corrupted: BTreeSet<PartyId> = [PartyId::left(0)].into_iter().collect();
        let ctx = AdversaryContext {
            now: Time::ZERO,
            parties: PartySet::new(2),
            topology: Topology::FullyConnected,
            corrupted: &corrupted,
            budget: CorruptionBudget::new(1, 0),
        };
        let honest = ctx.honest();
        assert_eq!(honest.len(), 3);
        assert!(!honest.contains(&PartyId::left(0)));
    }

    #[test]
    fn can_corrupt_checks_universe_and_budget() {
        let corrupted: BTreeSet<PartyId> = [PartyId::left(0)].into_iter().collect();
        let ctx = AdversaryContext {
            now: Time::ZERO,
            parties: PartySet::new(2),
            topology: Topology::FullyConnected,
            corrupted: &corrupted,
            budget: CorruptionBudget::new(1, 1),
        };
        // Left budget exhausted; right budget open; idempotent on already-corrupted.
        assert!(!ctx.can_corrupt(PartyId::left(1)));
        assert!(ctx.can_corrupt(PartyId::left(0)));
        assert!(ctx.can_corrupt(PartyId::right(1)));
        // Out-of-universe indices are never corruptible, whatever the budget says.
        assert!(!ctx.can_corrupt(PartyId::right(7)));
    }

    #[test]
    fn passive_adversary_never_acts() {
        let corrupted = BTreeSet::new();
        let ctx = AdversaryContext {
            now: Time::ZERO,
            parties: PartySet::new(1),
            topology: Topology::Bipartite,
            corrupted: &corrupted,
            budget: CorruptionBudget::NONE,
        };
        let mut adversary = PassiveAdversary;
        assert!(Adversary::<u32>::plan_corruptions(&mut adversary, &ctx).is_empty());
        assert!(Adversary::<u32>::act(&mut adversary, &ctx, &BTreeMap::new()).is_empty());
    }
}
