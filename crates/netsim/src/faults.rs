//! Message-level fault injection, from simple drop predicates to declarative
//! [`FaultSpec`] schedules with scheduled partitions, crashes, seeded message loss
//! and delivery jitter.
//!
//! The paper's bipartite authenticated protocol (`ΠbSM`, §5.2) reduces the disconnected
//! side to "a fully-connected network *with omissions*: a message may either be received
//! within `2·Δ` units of time, or it is never delivered". Fault injectors let the test
//! suite and benchmarks create such omission networks directly, independent of any
//! byzantine relay behaviour, so the building blocks (`ΠBA`, `ΠBB`) can be exercised
//! against Theorem 8/9's weak-agreement guarantees in isolation.
//!
//! [`FaultSchedule`] extends this toward *partial synchrony*: a [`FaultSpec`] names a
//! deterministic schedule (cross-side partitions with start/duration, a crash with an
//! optional recovery slot) plus seeded stochastic axes (per-message loss probability,
//! bounded extra delivery delay), and the schedule applies it through the same
//! [`FaultInjector`] hook. All randomness is drawn from one seeded stream, so a run
//! under a fault schedule stays byte-for-byte reproducible.

use crate::{Envelope, PartyId, Time};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;
use std::str::FromStr;

/// What a [`FaultInjector`] decides to do with one message at send time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally (next slot).
    Deliver,
    /// Drop silently; the recipient never sees the message.
    Drop,
    /// Deliver, but this many slots *later* than the normal next-slot delivery.
    Delay(u64),
}

/// Message-level fault injection: the hook [`crate::SyncNetwork`] consults for every
/// message accepted into the network.
pub trait FaultInjector<M> {
    /// Decides the fate of `envelope`, sent during slot `now`.
    fn action(&mut self, envelope: &Envelope<M>, now: Time) -> FaultAction;

    /// Returns `true` unless [`action`](Self::action) drops the message — the legacy
    /// boolean view, kept for injectors and tests that only distinguish drop from
    /// deliver.
    fn deliver(&mut self, envelope: &Envelope<M>, now: Time) -> bool {
        !matches!(self.action(envelope, now), FaultAction::Drop)
    }
}

/// Delivers everything (the fault-free network).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl<M> FaultInjector<M> for NoFaults {
    fn action(&mut self, _envelope: &Envelope<M>, _now: Time) -> FaultAction {
        FaultAction::Deliver
    }
}

/// Drops everything — a fully partitioned network.
#[derive(Debug, Clone, Copy, Default)]
pub struct DropAll;

impl<M> FaultInjector<M> for DropAll {
    fn action(&mut self, _envelope: &Envelope<M>, _now: Time) -> FaultAction {
        FaultAction::Drop
    }
}

/// Drops messages matching a predicate (e.g. "every message from L2 to L0 after slot 3").
pub struct PredicateFaults<M> {
    #[allow(clippy::type_complexity)]
    drop_if: Box<dyn FnMut(&Envelope<M>, Time) -> bool + Send>,
}

impl<M> PredicateFaults<M> {
    /// Creates an injector that drops messages for which `drop_if` returns `true`.
    pub fn new(drop_if: impl FnMut(&Envelope<M>, Time) -> bool + Send + 'static) -> Self {
        Self { drop_if: Box::new(drop_if) }
    }
}

impl<M> std::fmt::Debug for PredicateFaults<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredicateFaults").finish_non_exhaustive()
    }
}

impl<M> FaultInjector<M> for PredicateFaults<M> {
    fn action(&mut self, envelope: &Envelope<M>, now: Time) -> FaultAction {
        if (self.drop_if)(envelope, now) {
            FaultAction::Drop
        } else {
            FaultAction::Deliver
        }
    }
}

/// Drops each message independently with probability `drop_probability`, using a seeded
/// RNG so runs remain reproducible.
#[derive(Debug)]
pub struct RandomOmissions {
    drop_probability: f64,
    rng: StdRng,
}

impl RandomOmissions {
    /// Creates a random omission injector.
    ///
    /// # Panics
    ///
    /// Panics if `drop_probability` is not within `[0, 1]`.
    pub fn new(drop_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_probability),
            "drop probability must be in [0, 1], got {drop_probability}"
        );
        Self { drop_probability, rng: StdRng::seed_from_u64(seed) }
    }
}

impl<M> FaultInjector<M> for RandomOmissions {
    fn action(&mut self, _envelope: &Envelope<M>, _now: Time) -> FaultAction {
        if self.rng.random_bool(self.drop_probability) {
            FaultAction::Drop
        } else {
            FaultAction::Deliver
        }
    }
}

// ---------------------------------------------------------------------------
// Declarative fault schedules
// ---------------------------------------------------------------------------

/// A scheduled cross-side network partition: every message crossing sides during
/// slots `[start, start + duration)` is dropped deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionWindow {
    /// First slot of the partition.
    pub start: u32,
    /// Number of slots the partition lasts (at least 1).
    pub duration: u32,
}

impl PartitionWindow {
    /// `true` when `slot` falls inside this window.
    pub fn contains(&self, slot: u64) -> bool {
        let start = u64::from(self.start);
        slot >= start && slot < start + u64::from(self.duration)
    }

    /// The first slot *after* the window.
    pub fn end(&self) -> u64 {
        u64::from(self.start) + u64::from(self.duration)
    }
}

/// A scheduled crash: from slot `start`, every message to or from `party` is dropped,
/// until the optional `recovery` slot (exclusive start of recovered operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CrashWindow {
    /// The party that crashes.
    pub party: PartyId,
    /// First slot of the outage.
    pub start: u32,
    /// Slot at which the party recovers (`None`: it never does). Must exceed `start`.
    pub recovery: Option<u32>,
}

impl CrashWindow {
    /// `true` when `slot` falls inside the outage.
    pub fn covers(&self, slot: u64) -> bool {
        slot >= u64::from(self.start) && self.recovery.is_none_or(|r| slot < u64::from(r))
    }
}

/// A declarative fault plan: the per-cell campaign axis behind scenario files.
///
/// A `FaultSpec` composes up to two scheduled [`PartitionWindow`]s, one
/// [`CrashWindow`], a per-message loss probability (in per-mille, so the spec stays
/// integer-only and totally ordered) and a bounded delivery jitter. The derived `Ord`
/// makes fault plans a first-class grid axis with a canonical order, exactly like
/// every other `ScenarioSpec` coordinate.
///
/// The canonical *compact string* (`Display` / `FromStr`, e.g.
/// `partition=3+4;crash=L1@5..9;loss=25;jitter=2`, or `none` for the default) is what
/// report exports embed in JSON/CSV cells, so fault plans round-trip through every
/// artifact format.
///
/// Invariants (enforced by [`FromStr`] and [`validate`](Self::validate)): partition
/// windows are sorted by start, non-overlapping and at least 1 slot long; a crash
/// recovery slot exceeds its start; `loss_permille <= 1000`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FaultSpec {
    /// Scheduled cross-side partitions (sorted by start, disjoint), `None`-padded.
    pub partitions: [Option<PartitionWindow>; 2],
    /// An optional scheduled crash (with optional recovery).
    pub crash: Option<CrashWindow>,
    /// Per-message loss probability in per-mille (0..=1000), drawn per surviving
    /// message from the schedule's seeded RNG.
    pub loss_permille: u16,
    /// Maximum extra delivery delay in slots; each surviving message draws a uniform
    /// delay in `0..=jitter` from the seeded RNG. 0 disables the draw entirely.
    pub jitter: u8,
}

impl FaultSpec {
    /// The fault-free plan: no partitions, no crash, no loss, no jitter. This is the
    /// implicit plan of every campaign that never names faults, and it renders as
    /// `none`.
    pub const NONE: FaultSpec =
        FaultSpec { partitions: [None, None], crash: None, loss_permille: 0, jitter: 0 };

    /// Iterates the present partition windows in stored order.
    pub fn partition_windows(&self) -> impl Iterator<Item = PartitionWindow> + '_ {
        self.partitions.iter().flatten().copied()
    }

    /// Checks the spec's invariants, returning a human-readable violation.
    ///
    /// # Errors
    ///
    /// A message naming the violated invariant: a zero-duration partition,
    /// unsorted/overlapping partition windows, a window in slot 1 after a gap
    /// (`partitions[1]` set while `partitions[0]` is `None`), a crash recovery not
    /// after its start, or a loss rate above 1000‰.
    pub fn validate(&self) -> Result<(), String> {
        if self.partitions[0].is_none() && self.partitions[1].is_some() {
            return Err("partition windows must fill slot 0 before slot 1".into());
        }
        for window in self.partition_windows() {
            if window.duration == 0 {
                return Err(format!("partition at slot {} has zero duration", window.start));
            }
        }
        if let [Some(first), Some(second)] = self.partitions {
            if u64::from(second.start) < first.end() {
                return Err(format!(
                    "partition windows overlap or are unsorted: {}+{} then {}+{}",
                    first.start, first.duration, second.start, second.duration
                ));
            }
        }
        if let Some(crash) = self.crash {
            if let Some(recovery) = crash.recovery {
                if recovery <= crash.start {
                    return Err(format!(
                        "crash recovery slot {recovery} must be after its start {}",
                        crash.start
                    ));
                }
            }
        }
        if self.loss_permille > 1000 {
            return Err(format!("loss rate {}\u{2030} exceeds 1000", self.loss_permille));
        }
        Ok(())
    }

    /// Deterministic upper bound on the extra slots this plan can cost a scenario:
    /// the total partitioned slots, the (bounded) crash outage, and the worst-case
    /// jitter per protocol round. A pure function of the spec, so harness slot
    /// budgets extended by it stay byte-stable.
    pub fn slot_slack(&self, rounds: u64) -> u64 {
        let partitions: u64 = self.partition_windows().map(|w| u64::from(w.duration)).sum::<u64>();
        let crash = self
            .crash
            .map(|c| match c.recovery {
                Some(r) => u64::from(r) - u64::from(c.start),
                None => 0,
            })
            .unwrap_or(0);
        partitions + crash + u64::from(self.jitter) * rounds
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == FaultSpec::NONE {
            return write!(f, "none");
        }
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !std::mem::take(&mut first) {
                write!(f, ";")?;
            }
            Ok(())
        };
        for window in self.partition_windows() {
            sep(f)?;
            write!(f, "partition={}+{}", window.start, window.duration)?;
        }
        if let Some(crash) = self.crash {
            sep(f)?;
            write!(f, "crash={}@{}..", crash.party, crash.start)?;
            if let Some(recovery) = crash.recovery {
                write!(f, "{recovery}")?;
            }
        }
        if self.loss_permille > 0 {
            sep(f)?;
            write!(f, "loss={}", self.loss_permille)?;
        }
        if self.jitter > 0 {
            sep(f)?;
            write!(f, "jitter={}", self.jitter)?;
        }
        Ok(())
    }
}

/// Error parsing a [`FaultSpec`] (or a [`PartyId`]) from its compact string form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecParseError(String);

impl fmt::Display for FaultSpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecParseError {}

impl FaultSpecParseError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl FromStr for FaultSpec {
    type Err = FaultSpecParseError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        if text == "none" {
            return Ok(FaultSpec::NONE);
        }
        fn err(message: impl Into<String>) -> FaultSpecParseError {
            FaultSpecParseError::new(message)
        }
        let mut spec = FaultSpec::NONE;
        let mut partitions = 0usize;
        for segment in text.split(';') {
            let (key, value) =
                segment.split_once('=').ok_or_else(|| err(format!("segment {segment:?}")))?;
            match key {
                "partition" => {
                    let (start, duration) = value
                        .split_once('+')
                        .ok_or_else(|| err(format!("partition window {value:?}")))?;
                    let window = PartitionWindow {
                        start: start
                            .parse()
                            .map_err(|_| err(format!("partition start {start:?}")))?,
                        duration: duration
                            .parse()
                            .map_err(|_| err(format!("partition duration {duration:?}")))?,
                    };
                    if partitions >= spec.partitions.len() {
                        return Err(err("more than 2 partition windows"));
                    }
                    spec.partitions[partitions] = Some(window);
                    partitions += 1;
                }
                "crash" if spec.crash.is_none() => {
                    let (party, span) = value
                        .split_once('@')
                        .ok_or_else(|| err(format!("crash window {value:?}")))?;
                    let (start, recovery) =
                        span.split_once("..").ok_or_else(|| err(format!("crash span {span:?}")))?;
                    spec.crash = Some(CrashWindow {
                        party: party.parse().map_err(err)?,
                        start: start.parse().map_err(|_| err(format!("crash start {start:?}")))?,
                        recovery: if recovery.is_empty() {
                            None
                        } else {
                            Some(
                                recovery
                                    .parse()
                                    .map_err(|_| err(format!("crash recovery {recovery:?}")))?,
                            )
                        },
                    });
                }
                "loss" if spec.loss_permille == 0 => {
                    spec.loss_permille =
                        value.parse().map_err(|_| err(format!("loss rate {value:?}")))?;
                    if spec.loss_permille == 0 {
                        return Err(err("loss=0 is not canonical (omit the segment)"));
                    }
                }
                "jitter" if spec.jitter == 0 => {
                    spec.jitter =
                        value.parse().map_err(|_| err(format!("jitter bound {value:?}")))?;
                    if spec.jitter == 0 {
                        return Err(err("jitter=0 is not canonical (omit the segment)"));
                    }
                }
                other => return Err(err(format!("unknown or repeated key {other:?}"))),
            }
        }
        spec.validate().map_err(err)?;
        if spec == FaultSpec::NONE {
            return Err(err("empty spec must be written as \"none\""));
        }
        Ok(spec)
    }
}

/// A [`FaultSpec`] armed with its seeded RNG stream — the [`FaultInjector`] that
/// applies a declarative fault plan to a running [`crate::SyncNetwork`].
///
/// Determinism: the deterministic axes (partitions, crash) never touch the RNG, and
/// the stochastic axes (loss, jitter) draw from a [`StdRng`] seeded purely from the
/// scenario seed — never from wall clock or thread identity — and only for messages
/// not already deterministically dropped. The per-message decision sequence is
/// therefore a pure function of `(spec, seed, message sequence)`, and the message
/// sequence is itself deterministic, so reports stay byte-identical across thread
/// counts and shardings.
///
/// ```
/// use bsm_net::{Envelope, FaultAction, FaultInjector, FaultSchedule, PartyId, Time};
///
/// let spec = "partition=0+2;jitter=3".parse().unwrap();
/// let mut schedule = FaultSchedule::new(spec, 42);
/// let cross = Envelope {
///     from: PartyId::left(0),
///     to: PartyId::right(0),
///     sent_at: Time(0),
///     deliver_at: Time(1),
///     payload: (),
/// };
/// // Slot 0 is partitioned: the cross-side message is dropped, no RNG consumed.
/// assert_eq!(schedule.action(&cross, Time(0)), FaultAction::Drop);
/// // Slot 2 is past the partition: the message survives, modulo a seeded delay.
/// let survived = Envelope { sent_at: Time(2), deliver_at: Time(3), ..cross };
/// assert_ne!(schedule.action(&survived, Time(2)), FaultAction::Drop);
/// ```
#[derive(Debug)]
pub struct FaultSchedule {
    spec: FaultSpec,
    rng: StdRng,
}

/// Mixes the scenario seed into a stream distinct from the profile/adversary streams
/// derived from the same seed (splitmix-style odd-constant mixing).
fn fault_stream_seed(seed: u64) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0xd1b5_4a32_d192_ed03)
}

impl FaultSchedule {
    /// Arms `spec` with the fault RNG stream derived from the scenario `seed`.
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        Self { spec, rng: StdRng::seed_from_u64(fault_stream_seed(seed)) }
    }

    /// The plan this schedule applies.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }
}

impl<M> FaultInjector<M> for FaultSchedule {
    fn action(&mut self, envelope: &Envelope<M>, now: Time) -> FaultAction {
        let slot = now.0;
        // Deterministic axes first, cheapest checks before any RNG draw.
        if envelope.from.side != envelope.to.side
            && self.spec.partition_windows().any(|w| w.contains(slot))
        {
            return FaultAction::Drop;
        }
        if let Some(crash) = self.spec.crash {
            if crash.covers(slot) && (envelope.from == crash.party || envelope.to == crash.party) {
                return FaultAction::Drop;
            }
        }
        // Stochastic axes: drawn only for messages that survived the schedule, and
        // only when the axis is active — so a plan without loss/jitter consumes no
        // randomness at all.
        if self.spec.loss_permille > 0
            && self.rng.random_bool(f64::from(self.spec.loss_permille) / 1000.0)
        {
            return FaultAction::Drop;
        }
        if self.spec.jitter > 0 {
            let delay = self.rng.random_range(0..=u64::from(self.spec.jitter));
            if delay > 0 {
                return FaultAction::Delay(delay);
            }
        }
        FaultAction::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartyId;

    fn envelope(payload: u32) -> Envelope<u32> {
        Envelope {
            from: PartyId::left(0),
            to: PartyId::right(0),
            sent_at: Time(0),
            deliver_at: Time(1),
            payload,
        }
    }

    fn same_side(payload: u32) -> Envelope<u32> {
        Envelope { to: PartyId::left(1), ..envelope(payload) }
    }

    #[test]
    fn no_faults_delivers_and_drop_all_drops() {
        assert!(FaultInjector::<u32>::deliver(&mut NoFaults, &envelope(1), Time(1)));
        assert!(!FaultInjector::<u32>::deliver(&mut DropAll, &envelope(1), Time(1)));
    }

    #[test]
    fn predicate_faults_drop_matching_messages() {
        let mut injector = PredicateFaults::new(|env: &Envelope<u32>, _| env.payload == 7);
        assert!(injector.deliver(&envelope(1), Time(1)));
        assert!(!injector.deliver(&envelope(7), Time(1)));
        assert!(format!("{injector:?}").contains("PredicateFaults"));
    }

    #[test]
    fn random_omissions_extremes() {
        let mut never = RandomOmissions::new(0.0, 1);
        let mut always = RandomOmissions::new(1.0, 1);
        for i in 0..50 {
            assert!(FaultInjector::<u32>::deliver(&mut never, &envelope(i), Time(1)));
            assert!(!FaultInjector::<u32>::deliver(&mut always, &envelope(i), Time(1)));
        }
    }

    #[test]
    fn random_omissions_are_seed_deterministic() {
        let mut a = RandomOmissions::new(0.5, 99);
        let mut b = RandomOmissions::new(0.5, 99);
        let pattern_a: Vec<bool> = (0..100)
            .map(|i| FaultInjector::<u32>::deliver(&mut a, &envelope(i), Time(1)))
            .collect();
        let pattern_b: Vec<bool> = (0..100)
            .map(|i| FaultInjector::<u32>::deliver(&mut b, &envelope(i), Time(1)))
            .collect();
        assert_eq!(pattern_a, pattern_b);
        assert!(pattern_a.iter().any(|&d| d));
        assert!(pattern_a.iter().any(|&d| !d));
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn invalid_probability_panics() {
        let _ = RandomOmissions::new(1.5, 0);
    }

    #[test]
    fn partition_drops_cross_side_messages_only_inside_the_window() {
        let spec: FaultSpec = "partition=2+3".parse().unwrap();
        let mut schedule = FaultSchedule::new(spec, 7);
        for slot in 0..8u64 {
            let cross = FaultInjector::<u32>::action(&mut schedule, &envelope(0), Time(slot));
            let local = FaultInjector::<u32>::action(&mut schedule, &same_side(0), Time(slot));
            if (2..5).contains(&slot) {
                assert_eq!(cross, FaultAction::Drop, "slot {slot}");
            } else {
                assert_eq!(cross, FaultAction::Deliver, "slot {slot}");
            }
            assert_eq!(local, FaultAction::Deliver, "same-side slot {slot}");
        }
    }

    #[test]
    fn crash_drops_messages_to_and_from_the_party_until_recovery() {
        let spec: FaultSpec = "crash=L0@1..3".parse().unwrap();
        let mut schedule = FaultSchedule::new(spec, 0);
        let from_crashed = same_side(0); // from L0
        let to_crashed = Envelope { from: PartyId::left(1), to: PartyId::left(0), ..envelope(0) };
        let bystander = Envelope { from: PartyId::left(1), to: PartyId::right(1), ..envelope(0) };
        for slot in 0..5u64 {
            let outage = (1..3).contains(&slot);
            for env in [&from_crashed, &to_crashed] {
                let action = FaultInjector::<u32>::action(&mut schedule, env, Time(slot));
                let expected = if outage { FaultAction::Drop } else { FaultAction::Deliver };
                assert_eq!(action, expected, "slot {slot}");
            }
            let action = FaultInjector::<u32>::action(&mut schedule, &bystander, Time(slot));
            assert_eq!(action, FaultAction::Deliver, "bystander slot {slot}");
        }
        // Without a recovery slot the outage is permanent.
        let spec: FaultSpec = "crash=L0@1..".parse().unwrap();
        let mut schedule = FaultSchedule::new(spec, 0);
        let action = FaultInjector::<u32>::action(&mut schedule, &from_crashed, Time(1000));
        assert_eq!(action, FaultAction::Drop);
    }

    #[test]
    fn loss_and_jitter_are_seed_deterministic_and_bounded() {
        let spec: FaultSpec = "loss=300;jitter=2".parse().unwrap();
        let trace = |seed: u64| -> Vec<FaultAction> {
            let mut schedule = FaultSchedule::new(spec, seed);
            (0..200)
                .map(|i| FaultInjector::<u32>::action(&mut schedule, &envelope(i), Time(1)))
                .collect()
        };
        let a = trace(5);
        assert_eq!(a, trace(5), "same seed, same decisions");
        assert_ne!(a, trace(6), "different seed, different stream");
        assert!(a.contains(&FaultAction::Drop));
        assert!(a.contains(&FaultAction::Deliver));
        assert!(a.iter().any(|action| matches!(action, FaultAction::Delay(_))));
        for action in &a {
            if let FaultAction::Delay(d) = action {
                assert!((1..=2).contains(d), "delay {d} outside jitter bound");
            }
        }
    }

    #[test]
    fn deterministic_drops_consume_no_randomness() {
        // Two schedules, same seed: one sees extra partition-dropped messages first.
        let spec: FaultSpec = "partition=0+1;loss=500".parse().unwrap();
        let mut a = FaultSchedule::new(spec, 11);
        let mut b = FaultSchedule::new(spec, 11);
        for i in 0..10 {
            // Cross-side in slot 0: deterministic drop, must not advance the RNG.
            let action = FaultInjector::<u32>::action(&mut a, &envelope(i), Time(0));
            assert_eq!(action, FaultAction::Drop);
        }
        let tail_a: Vec<_> =
            (0..50).map(|i| FaultInjector::<u32>::action(&mut a, &envelope(i), Time(1))).collect();
        let tail_b: Vec<_> =
            (0..50).map(|i| FaultInjector::<u32>::action(&mut b, &envelope(i), Time(1))).collect();
        assert_eq!(tail_a, tail_b, "partition drops must not perturb the loss stream");
    }

    #[test]
    fn compact_string_round_trips() {
        for text in [
            "none",
            "partition=0+1",
            "partition=0+1;partition=4+2",
            "crash=L2@5..9",
            "crash=R0@5..",
            "loss=1000",
            "jitter=255",
            "partition=3+4;crash=L1@5..9;loss=25;jitter=2",
        ] {
            let spec: FaultSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(spec.to_string(), text, "render must be the canonical form");
            let again: FaultSpec = spec.to_string().parse().unwrap();
            assert_eq!(again, spec);
        }
        assert_eq!(FaultSpec::NONE.to_string(), "none");
        assert_eq!("none".parse::<FaultSpec>().unwrap(), FaultSpec::NONE);
    }

    #[test]
    fn malformed_and_non_canonical_specs_are_rejected() {
        for bad in [
            "",
            "partition",
            "partition=3",
            "partition=x+1",
            "partition=3+0",                             // zero duration
            "partition=0+4;partition=2+1",               // overlap
            "partition=4+1;partition=0+1",               // unsorted
            "partition=0+1;partition=2+1;partition=4+1", // more than two
            "crash=Q1@0..",
            "crash=L1@5..5", // recovery not after start
            "crash=L1@5..4",
            "crash=L1@5",
            "loss=1001",
            "loss=0",
            "jitter=0",
            "jitter=256",
            "loss=5;loss=5",
            "wat=1",
            "none;loss=5",
        ] {
            assert!(bad.parse::<FaultSpec>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn validate_names_each_violation() {
        let window = |start, duration| Some(PartitionWindow { start, duration });
        let overlap = FaultSpec { partitions: [window(0, 4), window(2, 1)], ..FaultSpec::NONE };
        assert!(overlap.validate().unwrap_err().contains("overlap"));
        let gap = FaultSpec { partitions: [None, window(2, 1)], ..FaultSpec::NONE };
        assert!(gap.validate().unwrap_err().contains("slot 0"));
        let lossy = FaultSpec { loss_permille: 1001, ..FaultSpec::NONE };
        assert!(lossy.validate().unwrap_err().contains("1000"));
        assert_eq!(FaultSpec::NONE.validate(), Ok(()));
    }

    #[test]
    fn ordering_places_none_first() {
        let mut specs: Vec<FaultSpec> = ["loss=5", "none", "partition=0+1", "crash=L0@0.."]
            .iter()
            .map(|t| t.parse().unwrap())
            .collect();
        specs.sort();
        assert_eq!(specs[0], FaultSpec::NONE);
    }

    #[test]
    fn slot_slack_is_a_pure_function_of_the_spec() {
        let spec: FaultSpec = "partition=3+4;crash=L1@5..9;jitter=2".parse().unwrap();
        assert_eq!(spec.slot_slack(10), 4 + 4 + 2 * 10);
        assert_eq!(FaultSpec::NONE.slot_slack(10), 0);
        // An unrecovered crash adds no slack: waiting longer cannot help.
        let spec: FaultSpec = "crash=L1@5..".parse().unwrap();
        assert_eq!(spec.slot_slack(10), 0);
    }
}
