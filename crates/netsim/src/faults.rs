use crate::{Envelope, Time};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Message-level fault injection.
///
/// The paper's bipartite authenticated protocol (`ΠbSM`, §5.2) reduces the disconnected
/// side to "a fully-connected network *with omissions*: a message may either be received
/// within `2·Δ` units of time, or it is never delivered". Fault injectors let the test
/// suite and benchmarks create such omission networks directly, independent of any
/// byzantine relay behaviour, so the building blocks (`ΠBA`, `ΠBB`) can be exercised
/// against Theorem 8/9's weak-agreement guarantees in isolation.
pub trait FaultInjector<M> {
    /// Returns `true` if the message should be delivered, `false` to drop it silently.
    fn deliver(&mut self, envelope: &Envelope<M>, now: Time) -> bool;
}

/// Delivers everything (the fault-free network).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl<M> FaultInjector<M> for NoFaults {
    fn deliver(&mut self, _envelope: &Envelope<M>, _now: Time) -> bool {
        true
    }
}

/// Drops everything — a fully partitioned network.
#[derive(Debug, Clone, Copy, Default)]
pub struct DropAll;

impl<M> FaultInjector<M> for DropAll {
    fn deliver(&mut self, _envelope: &Envelope<M>, _now: Time) -> bool {
        false
    }
}

/// Drops messages matching a predicate (e.g. "every message from L2 to L0 after slot 3").
pub struct PredicateFaults<M> {
    #[allow(clippy::type_complexity)]
    drop_if: Box<dyn FnMut(&Envelope<M>, Time) -> bool + Send>,
}

impl<M> PredicateFaults<M> {
    /// Creates an injector that drops messages for which `drop_if` returns `true`.
    pub fn new(drop_if: impl FnMut(&Envelope<M>, Time) -> bool + Send + 'static) -> Self {
        Self { drop_if: Box::new(drop_if) }
    }
}

impl<M> std::fmt::Debug for PredicateFaults<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredicateFaults").finish_non_exhaustive()
    }
}

impl<M> FaultInjector<M> for PredicateFaults<M> {
    fn deliver(&mut self, envelope: &Envelope<M>, now: Time) -> bool {
        !(self.drop_if)(envelope, now)
    }
}

/// Drops each message independently with probability `drop_probability`, using a seeded
/// RNG so runs remain reproducible.
#[derive(Debug)]
pub struct RandomOmissions {
    drop_probability: f64,
    rng: StdRng,
}

impl RandomOmissions {
    /// Creates a random omission injector.
    ///
    /// # Panics
    ///
    /// Panics if `drop_probability` is not within `[0, 1]`.
    pub fn new(drop_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_probability),
            "drop probability must be in [0, 1], got {drop_probability}"
        );
        Self { drop_probability, rng: StdRng::seed_from_u64(seed) }
    }
}

impl<M> FaultInjector<M> for RandomOmissions {
    fn deliver(&mut self, _envelope: &Envelope<M>, _now: Time) -> bool {
        !self.rng.random_bool(self.drop_probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartyId;

    fn envelope(payload: u32) -> Envelope<u32> {
        Envelope {
            from: PartyId::left(0),
            to: PartyId::right(0),
            sent_at: Time(0),
            deliver_at: Time(1),
            payload,
        }
    }

    #[test]
    fn no_faults_delivers_and_drop_all_drops() {
        assert!(FaultInjector::<u32>::deliver(&mut NoFaults, &envelope(1), Time(1)));
        assert!(!FaultInjector::<u32>::deliver(&mut DropAll, &envelope(1), Time(1)));
    }

    #[test]
    fn predicate_faults_drop_matching_messages() {
        let mut injector = PredicateFaults::new(|env: &Envelope<u32>, _| env.payload == 7);
        assert!(injector.deliver(&envelope(1), Time(1)));
        assert!(!injector.deliver(&envelope(7), Time(1)));
        assert!(format!("{injector:?}").contains("PredicateFaults"));
    }

    #[test]
    fn random_omissions_extremes() {
        let mut never = RandomOmissions::new(0.0, 1);
        let mut always = RandomOmissions::new(1.0, 1);
        for i in 0..50 {
            assert!(FaultInjector::<u32>::deliver(&mut never, &envelope(i), Time(1)));
            assert!(!FaultInjector::<u32>::deliver(&mut always, &envelope(i), Time(1)));
        }
    }

    #[test]
    fn random_omissions_are_seed_deterministic() {
        let mut a = RandomOmissions::new(0.5, 99);
        let mut b = RandomOmissions::new(0.5, 99);
        let pattern_a: Vec<bool> = (0..100)
            .map(|i| FaultInjector::<u32>::deliver(&mut a, &envelope(i), Time(1)))
            .collect();
        let pattern_b: Vec<bool> = (0..100)
            .map(|i| FaultInjector::<u32>::deliver(&mut b, &envelope(i), Time(1)))
            .collect();
        assert_eq!(pattern_a, pattern_b);
        assert!(pattern_a.iter().any(|&d| d));
        assert!(pattern_a.iter().any(|&d| !d));
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn invalid_probability_panics() {
        let _ = RandomOmissions::new(1.5, 0);
    }
}
