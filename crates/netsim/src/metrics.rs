use crate::PartyId;
use std::collections::{BTreeMap, BTreeSet};

/// Message and round accounting for one simulation run.
///
/// The complexity experiments (E6–E11 in `DESIGN.md`) read these counters to build the
/// rounds/messages-versus-`k` tables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Messages accepted into the network from honest parties.
    pub honest_messages: u64,
    /// Messages accepted into the network from corrupted parties.
    pub byzantine_messages: u64,
    /// Messages actually delivered to a recipient.
    pub delivered_messages: u64,
    /// Messages dropped by the fault injector.
    pub dropped_by_faults: u64,
    /// Messages the fault injector delayed past their normal next-slot delivery
    /// (they were still delivered, just later).
    pub delayed_by_faults: u64,
    /// Messages discarded because the topology has no such channel (or the destination
    /// does not exist). For honest protocol code this should stay 0.
    pub rejected_by_topology: u64,
    /// Number of slots executed.
    pub slots: u64,
    /// Messages sent per party (honest and byzantine).
    pub sent_per_party: BTreeMap<PartyId, u64>,
}

impl Metrics {
    /// Total messages accepted into the network.
    pub fn total_messages(&self) -> u64 {
        self.honest_messages + self.byzantine_messages
    }

    /// Records an accepted message from `sender`.
    pub(crate) fn record_sent(&mut self, sender: PartyId, byzantine: bool) {
        if byzantine {
            self.byzantine_messages += 1;
        } else {
            self.honest_messages += 1;
        }
        *self.sent_per_party.entry(sender).or_insert(0) += 1;
    }

    /// Collapses [`sent_per_party`](Self::sent_per_party) into per-role fan-out
    /// summaries, splitting senders by membership in `corrupted`.
    ///
    /// This is the export hook the campaign telemetry uses: the full per-party map is
    /// too wide to stream per cell (it grows with `k`), but the per-role (sender
    /// count, total, max) triple is enough to spot an adversary that floods the
    /// network or an honest protocol whose fan-out is unexpectedly skewed. Means are
    /// left to the consumer (`total / senders`) so the summary stays integer-exact.
    pub fn fanout_by_role(&self, corrupted: &BTreeSet<PartyId>) -> FanoutSummary {
        let mut summary = FanoutSummary::default();
        for (&party, &sent) in &self.sent_per_party {
            let role = if corrupted.contains(&party) {
                &mut summary.byzantine
            } else {
                &mut summary.honest
            };
            role.senders += 1;
            role.total += sent;
            role.max = role.max.max(sent);
        }
        summary
    }
}

/// Per-role fan-out summary derived from [`Metrics::sent_per_party`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FanoutSummary {
    /// Fan-out of parties *not* in the corrupted set.
    pub honest: RoleFanout,
    /// Fan-out of corrupted parties.
    pub byzantine: RoleFanout,
}

/// Send accounting for one role (honest or byzantine) in a [`FanoutSummary`].
///
/// Only parties that sent at least one message appear in
/// [`Metrics::sent_per_party`], so `senders` counts *active* senders; a silent
/// (e.g. crashed) party contributes nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoleFanout {
    /// Distinct parties of this role that sent at least one message.
    pub senders: u64,
    /// Total messages sent by this role.
    pub total: u64,
    /// Maximum messages sent by any single party of this role.
    pub max: u64,
}

impl RoleFanout {
    /// Mean messages per active sender, rounded down; zero when no party of this role
    /// sent anything.
    pub fn mean(&self) -> u64 {
        self.total.checked_div(self.senders).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::default();
        m.record_sent(PartyId::left(0), false);
        m.record_sent(PartyId::left(0), false);
        m.record_sent(PartyId::right(1), true);
        assert_eq!(m.honest_messages, 2);
        assert_eq!(m.byzantine_messages, 1);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.sent_per_party[&PartyId::left(0)], 2);
        assert_eq!(m.sent_per_party[&PartyId::right(1)], 1);
    }

    #[test]
    fn fanout_splits_by_corruption_and_summarizes() {
        let mut m = Metrics::default();
        for _ in 0..5 {
            m.record_sent(PartyId::left(0), false);
        }
        for _ in 0..3 {
            m.record_sent(PartyId::left(1), false);
        }
        for _ in 0..9 {
            m.record_sent(PartyId::right(0), true);
        }
        let corrupted: BTreeSet<PartyId> = [PartyId::right(0)].into_iter().collect();
        let summary = m.fanout_by_role(&corrupted);
        assert_eq!(summary.honest, RoleFanout { senders: 2, total: 8, max: 5 });
        assert_eq!(summary.byzantine, RoleFanout { senders: 1, total: 9, max: 9 });
        assert_eq!(summary.honest.mean(), 4);
        assert_eq!(summary.byzantine.mean(), 9);
        assert_eq!(RoleFanout::default().mean(), 0, "no senders means mean 0, not a panic");
    }
}
