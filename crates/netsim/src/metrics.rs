use crate::PartyId;
use std::collections::BTreeMap;

/// Message and round accounting for one simulation run.
///
/// The complexity experiments (E6–E11 in `DESIGN.md`) read these counters to build the
/// rounds/messages-versus-`k` tables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Messages accepted into the network from honest parties.
    pub honest_messages: u64,
    /// Messages accepted into the network from corrupted parties.
    pub byzantine_messages: u64,
    /// Messages actually delivered to a recipient.
    pub delivered_messages: u64,
    /// Messages dropped by the fault injector.
    pub dropped_by_faults: u64,
    /// Messages discarded because the topology has no such channel (or the destination
    /// does not exist). For honest protocol code this should stay 0.
    pub rejected_by_topology: u64,
    /// Number of slots executed.
    pub slots: u64,
    /// Messages sent per party (honest and byzantine).
    pub sent_per_party: BTreeMap<PartyId, u64>,
}

impl Metrics {
    /// Total messages accepted into the network.
    pub fn total_messages(&self) -> u64 {
        self.honest_messages + self.byzantine_messages
    }

    /// Records an accepted message from `sender`.
    pub(crate) fn record_sent(&mut self, sender: PartyId, byzantine: bool) {
        if byzantine {
            self.byzantine_messages += 1;
        } else {
            self.honest_messages += 1;
        }
        *self.sent_per_party.entry(sender).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::default();
        m.record_sent(PartyId::left(0), false);
        m.record_sent(PartyId::left(0), false);
        m.record_sent(PartyId::right(1), true);
        assert_eq!(m.honest_messages, 2);
        assert_eq!(m.byzantine_messages, 1);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.sent_per_party[&PartyId::left(0)], 2);
        assert_eq!(m.sent_per_party[&PartyId::right(1)], 1);
    }
}
