use bsm_matching::Side;
use std::fmt;

/// Identifier of one of the `2k` parties: a side (`L` or `R`) and an index `0..k` within
/// that side.
///
/// Left party `i` corresponds to left agent `i` of the matching market, and likewise on
/// the right, so protocol outputs can be checked directly against
/// [`bsm_matching::Matching`] assignments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartyId {
    /// The side this party belongs to.
    pub side: Side,
    /// The index within the side, in `0..k`.
    pub index: u32,
}

impl PartyId {
    /// Left party `index`.
    pub fn left(index: u32) -> Self {
        Self { side: Side::Left, index }
    }

    /// Right party `index`.
    pub fn right(index: u32) -> Self {
        Self { side: Side::Right, index }
    }

    /// Returns `true` if this party is on side `L`.
    pub fn is_left(&self) -> bool {
        self.side == Side::Left
    }

    /// Returns `true` if this party is on side `R`.
    pub fn is_right(&self) -> bool {
        self.side == Side::Right
    }

    /// The index as a `usize`, for indexing into per-side vectors.
    pub fn idx(&self) -> usize {
        self.index as usize
    }

    /// A canonical dense numbering of the `2k` parties: left parties come first
    /// (`0..k`), then right parties (`k..2k`).
    ///
    /// Used to assign PKI key ids and to index flat arrays.
    pub fn dense(&self, k: usize) -> usize {
        match self.side {
            Side::Left => self.idx(),
            Side::Right => k + self.idx(),
        }
    }

    /// Inverse of [`PartyId::dense`].
    ///
    /// # Panics
    ///
    /// Panics if `dense >= 2k`.
    pub fn from_dense(dense: usize, k: usize) -> Self {
        assert!(dense < 2 * k, "dense index {dense} out of range for k = {k}");
        if dense < k {
            PartyId::left(dense as u32)
        } else {
            PartyId::right((dense - k) as u32)
        }
    }
}

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.side, self.index)
    }
}

impl std::str::FromStr for PartyId {
    type Err = String;

    /// Parses the [`Display`](fmt::Display) form: a side letter (`L`/`R`) followed by
    /// the decimal index, e.g. `L2` or `R0`.
    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let (side, index) = match text.split_at_checked(1) {
            Some(("L", index)) => (Side::Left, index),
            Some(("R", index)) => (Side::Right, index),
            _ => return Err(format!("party id {text:?} must start with L or R")),
        };
        let index =
            index.parse().map_err(|_| format!("party id {text:?} has a malformed index"))?;
        Ok(Self { side, index })
    }
}

/// The set of all parties in a market of size `k` (so `2k` parties in total).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartySet {
    k: usize,
}

impl PartySet {
    /// Creates the party set for a market with `k` parties per side.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "market size k must be positive");
        Self { k }
    }

    /// Parties per side.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of parties, `n = 2k`.
    pub fn n(&self) -> usize {
        2 * self.k
    }

    /// Iterates over all parties, left side first, in index order.
    pub fn iter(&self) -> impl Iterator<Item = PartyId> + '_ {
        let k = self.k as u32;
        (0..k).map(PartyId::left).chain((0..k).map(PartyId::right))
    }

    /// Iterates over the parties of one side in index order.
    pub fn side(&self, side: Side) -> impl Iterator<Item = PartyId> + '_ {
        let k = self.k as u32;
        (0..k).map(move |i| PartyId { side, index: i })
    }

    /// Iterates over the left-side parties.
    pub fn left(&self) -> impl Iterator<Item = PartyId> + '_ {
        self.side(Side::Left)
    }

    /// Iterates over the right-side parties.
    pub fn right(&self) -> impl Iterator<Item = PartyId> + '_ {
        self.side(Side::Right)
    }

    /// Returns `true` if `party` is a valid member of this set.
    pub fn contains(&self, party: PartyId) -> bool {
        party.idx() < self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn party_constructors_and_predicates() {
        let l = PartyId::left(2);
        let r = PartyId::right(0);
        assert!(l.is_left() && !l.is_right());
        assert!(r.is_right() && !r.is_left());
        assert_eq!(l.idx(), 2);
        assert_eq!(l.to_string(), "L2");
        assert_eq!(r.to_string(), "R0");
    }

    #[test]
    fn dense_numbering_roundtrips() {
        let k = 4;
        for dense in 0..2 * k {
            let p = PartyId::from_dense(dense, k);
            assert_eq!(p.dense(k), dense);
        }
        assert_eq!(PartyId::left(3).dense(4), 3);
        assert_eq!(PartyId::right(0).dense(4), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dense_out_of_range_panics() {
        let _ = PartyId::from_dense(8, 4);
    }

    #[test]
    fn party_set_iteration() {
        let set = PartySet::new(3);
        assert_eq!(set.k(), 3);
        assert_eq!(set.n(), 6);
        let all: Vec<PartyId> = set.iter().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], PartyId::left(0));
        assert_eq!(all[3], PartyId::right(0));
        assert_eq!(set.left().count(), 3);
        assert_eq!(set.right().count(), 3);
        assert!(set.contains(PartyId::left(2)));
        assert!(!set.contains(PartyId::right(3)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn empty_party_set_panics() {
        let _ = PartySet::new(0);
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut parties =
            vec![PartyId::right(1), PartyId::left(1), PartyId::right(0), PartyId::left(0)];
        parties.sort();
        assert_eq!(
            parties,
            vec![PartyId::left(0), PartyId::left(1), PartyId::right(0), PartyId::right(1)]
        );
    }
}
