use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in slots of length `Δ` since the common start
/// (time 0).
///
/// The paper's protocols are specified in terms of the maximum message delay `Δ`; in the
/// simulator one slot is exactly `Δ`, so "wait `c · Δ` time" becomes "wait `c` slots".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Time(pub u64);

impl Time {
    /// The common starting time of all parties.
    pub const ZERO: Time = Time(0);

    /// The underlying slot counter.
    pub fn slot(self) -> u64 {
        self.0
    }

    /// The time `slots` slots after `self`.
    pub fn plus(self, slots: u64) -> Time {
        Time(self.0 + slots)
    }

    /// Slots elapsed since `earlier`; zero if `earlier` is in the future.
    pub fn since(self, earlier: Time) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl Add<u64> for Time {
    type Output = Time;

    fn add(self, rhs: u64) -> Time {
        Time(self.0 + rhs)
    }
}

impl AddAssign<u64> for Time {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Time> for Time {
    type Output = u64;

    fn sub(self, rhs: Time) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Time::ZERO;
        assert_eq!(t.slot(), 0);
        assert_eq!((t + 3).slot(), 3);
        assert_eq!(t.plus(5), Time(5));
        let mut u = Time(2);
        u += 4;
        assert_eq!(u, Time(6));
        assert_eq!(u - Time(2), 4);
        assert_eq!(Time(2) - u, 0);
        assert_eq!(u.since(Time(1)), 5);
        assert_eq!(Time(1).since(u), 0);
        assert_eq!(u.to_string(), "t=6");
    }
}
