use crate::{PartyId, Time};

/// A message handed to the network by a process: destination plus payload.
///
/// The sender is implicit (the stepping process); channels are authenticated, so the
/// simulator stamps the true sender into the resulting [`Envelope`] and byzantine
/// parties cannot spoof it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing<M> {
    /// The destination party.
    pub to: PartyId,
    /// The protocol payload.
    pub payload: M,
}

impl<M> Outgoing<M> {
    /// Creates an outgoing message.
    pub fn new(to: PartyId, payload: M) -> Self {
        Self { to, payload }
    }
}

/// Convenience constructor for sending the same payload to many recipients.
pub fn multicast<M: Clone>(
    recipients: impl IntoIterator<Item = PartyId>,
    payload: M,
) -> Vec<Outgoing<M>> {
    recipients.into_iter().map(|to| Outgoing::new(to, payload.clone())).collect()
}

/// A message in flight or delivered: sender, receiver, timing and payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// The authenticated sender.
    pub from: PartyId,
    /// The receiver.
    pub to: PartyId,
    /// Slot at which the message was handed to the network.
    pub sent_at: Time,
    /// Slot at which the message is delivered (always `sent_at + 1` for direct channels:
    /// delivery within `Δ`).
    pub deliver_at: Time,
    /// The protocol payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// Maps the payload, keeping routing and timing metadata.
    pub fn map<N>(self, f: impl FnOnce(M) -> N) -> Envelope<N> {
        Envelope {
            from: self.from,
            to: self.to,
            sent_at: self.sent_at,
            deliver_at: self.deliver_at,
            payload: f(self.payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multicast_clones_payload_per_recipient() {
        let recipients = vec![PartyId::left(0), PartyId::right(1)];
        let msgs = multicast(recipients.clone(), "hello");
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].to, recipients[0]);
        assert_eq!(msgs[1].to, recipients[1]);
        assert!(msgs.iter().all(|m| m.payload == "hello"));
    }

    #[test]
    fn envelope_map_preserves_metadata() {
        let env = Envelope {
            from: PartyId::left(0),
            to: PartyId::right(2),
            sent_at: Time(3),
            deliver_at: Time(4),
            payload: 7u32,
        };
        let mapped = env.clone().map(|v| v.to_string());
        assert_eq!(mapped.from, env.from);
        assert_eq!(mapped.to, env.to);
        assert_eq!(mapped.sent_at, env.sent_at);
        assert_eq!(mapped.deliver_at, env.deliver_at);
        assert_eq!(mapped.payload, "7");
    }
}
