//! Deterministic-replay regression tests.
//!
//! The simulator's core guarantee is that a run is a pure function of its
//! configuration: the same `Scenario` seed must reproduce the exact same execution —
//! outputs, corrupted set, violations, slot count and per-party message accounting —
//! byte for byte. Every scaling PR (sharding, batching, async backends) must keep this
//! property, so these tests lock it in at both the `bsm-core` harness level and the
//! raw `bsm-net` simulator level. The campaign-level extension — same campaign ⇒
//! byte-identical aggregated exports at any worker-thread count — lives in
//! `crates/engine/tests/campaign_determinism.rs` (the engine depends on this crate,
//! not the other way around).

use bsm_broadcast::{DolevStrong, DolevStrongConfig};
use bsm_core::harness::{AdversarySpec, Scenario, ScenarioOutcome};
use bsm_core::problem::{AuthMode, Setting};
use bsm_crypto::{KeyId, Pki};
use bsm_net::{
    CorruptionBudget, PartyId, PartySet, RandomOmissions, RoundDriver, RunOutcome, SyncNetwork,
    Topology,
};
use std::collections::BTreeMap;

/// Builds and runs one scenario from scratch; used twice per case to compare replays.
fn run_once(
    k: usize,
    topology: Topology,
    auth: AuthMode,
    adversary: AdversarySpec,
    seed: u64,
) -> ScenarioOutcome {
    let t = if k >= 3 { 1 } else { 0 };
    let setting = Setting::new(k, topology, auth, t, t).expect("valid setting");
    let left: Vec<u32> = (0..k as u32).rev().take(t).collect();
    let right: Vec<u32> = (0..k as u32).rev().take(t).collect();
    Scenario::builder(setting)
        .seed(seed)
        .corrupt_left(left)
        .corrupt_right(right)
        .adversary(adversary)
        .build()
        .expect("within budget")
        .run()
        .expect("solvable setting runs")
}

/// The full debug rendering doubles as a transcript: it covers the plan, every party's
/// decision, the corrupted set, violations, slot count and all metrics counters.
fn transcript(outcome: &ScenarioOutcome) -> String {
    format!("{outcome:?}")
}

#[test]
fn scenario_replay_is_byte_identical_across_settings() {
    let cases = [
        (3, Topology::FullyConnected, AuthMode::Authenticated, AdversarySpec::Crash, 7),
        (4, Topology::FullyConnected, AuthMode::Unauthenticated, AdversarySpec::Lying, 11),
        (4, Topology::Bipartite, AuthMode::Authenticated, AdversarySpec::Garbage, 2025),
        (4, Topology::OneSided, AuthMode::Authenticated, AdversarySpec::Lying, 13),
        (2, Topology::Bipartite, AuthMode::Unauthenticated, AdversarySpec::Crash, 5),
    ];
    for (k, topology, auth, adversary, seed) in cases {
        let first = run_once(k, topology, auth, adversary, seed);
        let second = run_once(k, topology, auth, adversary, seed);
        assert_eq!(
            transcript(&first),
            transcript(&second),
            "replay diverged for k={k} {topology:?} {auth:?} {adversary:?} seed={seed}"
        );
        assert_eq!(first.metrics, second.metrics, "metrics diverged for seed={seed}");
        assert_eq!(first.slots, second.slots);
    }
}

#[test]
fn scenario_seed_changes_the_generated_profile() {
    let setting = Setting::new(4, Topology::FullyConnected, AuthMode::Authenticated, 0, 0).unwrap();
    let a = Scenario::builder(setting).seed(1).build().unwrap();
    let b = Scenario::builder(setting).seed(1).build().unwrap();
    let c = Scenario::builder(setting).seed(2).build().unwrap();
    assert_eq!(format!("{:?}", a.profile()), format!("{:?}", b.profile()));
    assert_ne!(
        format!("{:?}", a.profile()),
        format!("{:?}", c.profile()),
        "different seeds should draw different preference profiles"
    );
}

/// Replay determinism at the raw simulator level, with probabilistic fault injection in
/// the path: Dolev–Strong under seeded random omissions must reproduce exactly.
fn run_dolev_strong_with_omissions(net_seed: u64) -> RunOutcome<u64> {
    let k = 4usize;
    let parties = PartySet::new(k);
    let pki = Pki::new(2 * k as u32);
    let key_of: BTreeMap<PartyId, KeyId> =
        parties.iter().map(|p| (p, KeyId(p.dense(k) as u32))).collect();
    let sender = PartyId::left(0);
    let mut net: SyncNetwork<bsm_broadcast::DolevStrongMsg<u64>, u64> =
        SyncNetwork::new(k, Topology::FullyConnected, CorruptionBudget::NONE);
    net.set_fault_injector(Box::new(RandomOmissions::new(0.2, net_seed)));
    for party in parties.iter() {
        let config = DolevStrongConfig {
            me: party,
            sender,
            participants: parties.iter().collect(),
            t: k - 1,
            instance: 1,
            pki: pki.clone(),
            key_of: key_of.clone(),
        };
        let key = pki.signing_key(key_of[&party].0).unwrap();
        let protocol =
            DolevStrong::new(config, key, if party == sender { Some(42) } else { None }, 0);
        net.register(Box::new(RoundDriver::new(party, protocol))).unwrap();
    }
    net.run(100).expect("run completes")
}

#[test]
fn netsim_replay_with_random_omissions_is_byte_identical() {
    let first = run_dolev_strong_with_omissions(17);
    let second = run_dolev_strong_with_omissions(17);
    assert_eq!(format!("{first:?}"), format!("{second:?}"));
    assert_eq!(first.metrics, second.metrics);
    // Sanity: the injector actually dropped something, so determinism was exercised
    // on the faulty path, not the trivial fault-free one.
    assert!(first.metrics.dropped_by_faults > 0, "omission injector never fired");
}
