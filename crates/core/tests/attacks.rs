//! The impossibility constructions (Lemmas 5, 7, 13) executed end-to-end: running the
//! constructive protocols just beyond their thresholds against the tailored adversaries
//! must produce bSM property violations (experiments E3–E5).

use bsm_core::attacks::{full_side_partition_attack, relay_denial_attack, split_brain_attack};
use bsm_core::properties::PropertyViolation;
use bsm_core::solvability::{characterize, Solvability};
use bsm_net::Topology;

fn has_non_competition(violations: &[PropertyViolation]) -> bool {
    violations.iter().any(|v| matches!(v, PropertyViolation::NonCompetition { .. }))
}

#[test]
fn lemma5_split_brain_attack_breaks_non_competition() {
    let attack = split_brain_attack();
    // The setting itself is unsolvable (Theorem 2).
    assert!(matches!(characterize(attack.scenario.setting()), Solvability::Unsolvable(_)));
    let outcome = attack.run().expect("the attack scenario runs");
    assert!(outcome.all_honest_decided, "termination still holds for this protocol");
    assert!(
        !outcome.violations.is_empty(),
        "running beyond the Theorem 2 threshold must violate bSM, got a clean run"
    );
    assert!(
        has_non_competition(&outcome.violations),
        "expected a non-competition violation, got {:?}",
        outcome.violations
    );
}

#[test]
fn lemma7_relay_denial_attack_breaks_non_competition_bipartite() {
    let attack = relay_denial_attack(Topology::Bipartite);
    assert!(matches!(characterize(attack.scenario.setting()), Solvability::Unsolvable(_)));
    let outcome = attack.run().expect("the attack scenario runs");
    assert!(
        has_non_competition(&outcome.violations),
        "expected a non-competition violation, got {:?}",
        outcome.violations
    );
}

#[test]
fn lemma7_relay_denial_attack_breaks_non_competition_one_sided() {
    let attack = relay_denial_attack(Topology::OneSided);
    assert!(matches!(characterize(attack.scenario.setting()), Solvability::Unsolvable(_)));
    let outcome = attack.run().expect("the attack scenario runs");
    assert!(
        !outcome.violations.is_empty(),
        "running beyond the Theorem 4 threshold must violate bSM"
    );
}

#[test]
fn lemma13_full_side_partition_attack_breaks_non_competition() {
    for topology in [Topology::OneSided, Topology::Bipartite] {
        let attack = full_side_partition_attack(topology);
        assert!(matches!(characterize(attack.scenario.setting()), Solvability::Unsolvable(_)));
        let outcome = attack.run().expect("the attack scenario runs");
        assert!(
            has_non_competition(&outcome.violations),
            "{topology}: expected a non-competition violation, got {:?}",
            outcome.violations
        );
    }
}

#[test]
fn frozen_fuzz_regressions_are_tolerated() {
    // Every script the fuzzer (or a developer) froze under tests/fuzz_regressions/
    // is replayed here forever: the file must be canonical (so freezes are
    // diff-stable), the protocol must tolerate the scripted adversary with all bSM
    // properties intact, and the recorded verdict must reproduce byte-for-byte.
    use bsm_core::script::{Script, Verdict};

    let dir = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fuzz_regressions"));
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/fuzz_regressions must exist")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 4, "expected at least 4 frozen regressions, found {}", paths.len());
    for path in paths {
        let name = path.display();
        let text = std::fs::read_to_string(&path).expect("readable regression file");
        let script = Script::parse(&text).unwrap_or_else(|err| panic!("{name}: {err}"));
        assert_eq!(text, script.canonical(), "{name}: frozen file must be canonical");
        let recorded =
            script.verdict.clone().unwrap_or_else(|| panic!("{name}: missing [verdict]"));
        let outcome = script.run().unwrap_or_else(|err| panic!("{name}: {err}"));
        assert!(
            outcome.violations.is_empty(),
            "{name}: frozen attack must stay tolerated, got {:?}",
            outcome.violations
        );
        assert!(outcome.all_honest_decided, "{name}: honest parties must still decide");
        assert_eq!(Verdict::of(&outcome), recorded, "{name}: recorded verdict must reproduce");
    }
}
