//! The impossibility constructions (Lemmas 5, 7, 13) executed end-to-end: running the
//! constructive protocols just beyond their thresholds against the tailored adversaries
//! must produce bSM property violations (experiments E3–E5).

use bsm_core::attacks::{full_side_partition_attack, relay_denial_attack, split_brain_attack};
use bsm_core::properties::PropertyViolation;
use bsm_core::solvability::{characterize, Solvability};
use bsm_net::Topology;

fn has_non_competition(violations: &[PropertyViolation]) -> bool {
    violations.iter().any(|v| matches!(v, PropertyViolation::NonCompetition { .. }))
}

#[test]
fn lemma5_split_brain_attack_breaks_non_competition() {
    let attack = split_brain_attack();
    // The setting itself is unsolvable (Theorem 2).
    assert!(matches!(characterize(attack.scenario.setting()), Solvability::Unsolvable(_)));
    let outcome = attack.run().expect("the attack scenario runs");
    assert!(outcome.all_honest_decided, "termination still holds for this protocol");
    assert!(
        !outcome.violations.is_empty(),
        "running beyond the Theorem 2 threshold must violate bSM, got a clean run"
    );
    assert!(
        has_non_competition(&outcome.violations),
        "expected a non-competition violation, got {:?}",
        outcome.violations
    );
}

#[test]
fn lemma7_relay_denial_attack_breaks_non_competition_bipartite() {
    let attack = relay_denial_attack(Topology::Bipartite);
    assert!(matches!(characterize(attack.scenario.setting()), Solvability::Unsolvable(_)));
    let outcome = attack.run().expect("the attack scenario runs");
    assert!(
        has_non_competition(&outcome.violations),
        "expected a non-competition violation, got {:?}",
        outcome.violations
    );
}

#[test]
fn lemma7_relay_denial_attack_breaks_non_competition_one_sided() {
    let attack = relay_denial_attack(Topology::OneSided);
    assert!(matches!(characterize(attack.scenario.setting()), Solvability::Unsolvable(_)));
    let outcome = attack.run().expect("the attack scenario runs");
    assert!(
        !outcome.violations.is_empty(),
        "running beyond the Theorem 4 threshold must violate bSM"
    );
}

#[test]
fn lemma13_full_side_partition_attack_breaks_non_competition() {
    for topology in [Topology::OneSided, Topology::Bipartite] {
        let attack = full_side_partition_attack(topology);
        assert!(matches!(characterize(attack.scenario.setting()), Solvability::Unsolvable(_)));
        let outcome = attack.run().expect("the attack scenario runs");
        assert!(
            has_non_competition(&outcome.violations),
            "{topology}: expected a non-competition violation, got {:?}",
            outcome.violations
        );
    }
}
