//! The constructive direction of the characterization (experiment E1, positive cells):
//! for solvable settings at their corruption boundary, every adversary in the strategy
//! library leaves all four bSM properties intact.

use bsm_core::harness::{AdversarySpec, Scenario};
use bsm_core::problem::{AuthMode, Setting};
use bsm_core::solvability::{characterize, Solvability};
use bsm_net::{PartyId, Topology};

/// Largest corrupted sets allowed by the setting (greedily corrupt the highest indices,
/// so the committee prefix of every side stays honest-heavy).
fn max_corruption(setting: &Setting) -> (Vec<u32>, Vec<u32>) {
    let k = setting.k() as u32;
    let left: Vec<u32> = (0..k).rev().take(setting.t_l()).collect();
    let right: Vec<u32> = (0..k).rev().take(setting.t_r()).collect();
    (left, right)
}

fn assert_clean(setting: Setting, adversary: AdversarySpec, seed: u64) {
    let (left, right) = max_corruption(&setting);
    let scenario = Scenario::builder(setting)
        .seed(seed)
        .corrupt_left(left)
        .corrupt_right(right)
        .adversary(adversary)
        .build()
        .expect("scenario within budget");
    let outcome = scenario.run().expect("solvable setting runs");
    assert!(
        outcome.all_honest_decided,
        "{setting} with {adversary:?}: some honest party did not terminate"
    );
    assert!(
        outcome.violations.is_empty(),
        "{setting} with {adversary:?}: violations {:?}",
        outcome.violations
    );
}

/// Boundary settings for every topology/auth combination, at small market sizes.
fn boundary_settings() -> Vec<Setting> {
    let mut settings = Vec::new();
    let mut push = |k, topo, auth, t_l, t_r| {
        let setting = Setting::new(k, topo, auth, t_l, t_r).unwrap();
        assert!(
            matches!(characterize(&setting), Solvability::Solvable(_)),
            "intended boundary setting {setting} is not solvable"
        );
        settings.push(setting);
    };
    use AuthMode::{Authenticated, Unauthenticated};
    use Topology::{Bipartite, FullyConnected, OneSided};

    // Theorem 2 boundary: one side below k/3, the other side arbitrary.
    push(4, FullyConnected, Unauthenticated, 1, 4);
    push(3, FullyConnected, Unauthenticated, 0, 2);
    // Theorem 3 boundary: both below k/2, one below k/3.
    push(4, Bipartite, Unauthenticated, 1, 1);
    push(5, Bipartite, Unauthenticated, 1, 2);
    // Theorem 4 boundary: tR below k/2, tL arbitrary when tR < k/3.
    push(4, OneSided, Unauthenticated, 1, 1);
    push(5, OneSided, Unauthenticated, 5, 1);
    // Theorem 5: anything goes in the authenticated full mesh.
    push(3, FullyConnected, Authenticated, 3, 3);
    push(4, FullyConnected, Authenticated, 2, 4);
    // Theorem 6: both sides keep one honest party, or one side below k/3.
    push(3, Bipartite, Authenticated, 2, 2);
    push(4, Bipartite, Authenticated, 1, 4);
    // Theorem 7: tR < k, or tL < k/3 with a fully byzantine right side.
    push(3, OneSided, Authenticated, 3, 2);
    push(4, OneSided, Authenticated, 1, 4);
    settings
}

#[test]
fn crash_faults_leave_all_properties_intact() {
    for (i, setting) in boundary_settings().into_iter().enumerate() {
        assert_clean(setting, AdversarySpec::Crash, 100 + i as u64);
    }
}

#[test]
fn preference_lying_leaves_all_properties_intact() {
    for (i, setting) in boundary_settings().into_iter().enumerate() {
        assert_clean(setting, AdversarySpec::Lying, 200 + i as u64);
    }
}

#[test]
fn garbage_flooding_leaves_all_properties_intact() {
    for (i, setting) in boundary_settings().into_iter().enumerate() {
        assert_clean(setting, AdversarySpec::Garbage, 300 + i as u64);
    }
}

#[test]
fn fully_byzantine_right_side_lets_the_left_side_decide_consistently() {
    // Theorem 6/7 constructive corner case: the whole right side is byzantine; honest
    // left parties may match or output nobody, but never violate a property.
    for topology in [Topology::OneSided, Topology::Bipartite] {
        for adversary in [AdversarySpec::Crash, AdversarySpec::Lying, AdversarySpec::Garbage] {
            let setting = Setting::new(4, topology, AuthMode::Authenticated, 1, 4).unwrap();
            let scenario = Scenario::builder(setting)
                .seed(7)
                .corrupt_left([3])
                .corrupt_right([0, 1, 2, 3])
                .adversary(adversary)
                .build()
                .unwrap();
            let outcome = scenario.run().expect("solvable setting runs");
            assert!(outcome.all_honest_decided);
            assert!(
                outcome.violations.is_empty(),
                "{topology} {adversary:?}: {:?}",
                outcome.violations
            );
            // All outputs are decisions of honest left parties.
            for party in outcome.outputs.keys() {
                assert_eq!(party.side, bsm_net::Side::Left);
                assert_ne!(*party, PartyId::left(3));
            }
        }
    }
}

#[test]
fn fault_free_runs_reach_a_perfect_stable_matching_everywhere() {
    // With no corruptions at all, every topology/auth combination produces the full
    // Gale–Shapley matching.
    for &topology in &Topology::ALL {
        for &auth in &AuthMode::ALL {
            let setting = Setting::new(3, topology, auth, 0, 0).unwrap();
            let scenario = Scenario::builder(setting).seed(11).build().unwrap();
            let outcome = scenario.run().expect("fault-free settings are always solvable");
            assert!(outcome.violations.is_empty());
            assert_eq!(outcome.outputs.len(), 6, "{topology} {auth}");
            assert!(outcome.outputs.values().all(|d| d.is_some()));
        }
    }
}
