//! Property-based tests: randomized feasible scenarios never violate bSM, and the
//! solvability characterization is internally consistent.

use bsm_core::harness::{AdversarySpec, Scenario};
use bsm_core::problem::{AuthMode, Setting};
use bsm_core::solvability::{characterize, is_solvable, Solvability};
use bsm_net::Topology;
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![Just(Topology::Bipartite), Just(Topology::OneSided), Just(Topology::FullyConnected)]
}

fn arb_auth() -> impl Strategy<Value = AuthMode> {
    prop_oneof![Just(AuthMode::Unauthenticated), Just(AuthMode::Authenticated)]
}

fn arb_adversary() -> impl Strategy<Value = AdversarySpec> {
    prop_oneof![
        Just(AdversarySpec::Crash),
        Just(AdversarySpec::Lying),
        Just(AdversarySpec::Garbage)
    ]
}

proptest! {
    // Each case simulates a full protocol run, so keep the number of cases moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random feasible scenarios (setting within its theorem's conditions, corruption
    /// within budget, arbitrary strategy from the library) always satisfy Definition 1.
    #[test]
    fn feasible_random_scenarios_satisfy_bsm(
        k in 2usize..=4,
        topology in arb_topology(),
        auth in arb_auth(),
        t_l in 0usize..=4,
        t_r in 0usize..=4,
        adversary in arb_adversary(),
        seed in 0u64..1_000,
    ) {
        prop_assume!(t_l <= k && t_r <= k);
        let setting = Setting::new(k, topology, auth, t_l, t_r).unwrap();
        prop_assume!(is_solvable(&setting));
        // Corrupt the full budget, highest indices first.
        let left: Vec<u32> = (0..k as u32).rev().take(t_l).collect();
        let right: Vec<u32> = (0..k as u32).rev().take(t_r).collect();
        let scenario = Scenario::builder(setting)
            .seed(seed)
            .corrupt_left(left)
            .corrupt_right(right)
            .adversary(adversary)
            .build()
            .expect("within budget");
        let outcome = scenario.run().expect("solvable setting runs");
        prop_assert!(outcome.all_honest_decided, "{setting}: termination failed");
        prop_assert!(
            outcome.violations.is_empty(),
            "{setting} {adversary:?}: {:?}",
            outcome.violations
        );
    }

    /// The decision procedure agrees with a direct encoding of the theorem statements.
    #[test]
    fn characterization_matches_theorem_statements(
        k in 1usize..=12,
        topology in arb_topology(),
        auth in arb_auth(),
        t_l in 0usize..=12,
        t_r in 0usize..=12,
    ) {
        prop_assume!(t_l <= k && t_r <= k);
        let setting = Setting::new(k, topology, auth, t_l, t_r).unwrap();
        let below_third = |t: usize| 3 * t < k;
        let below_half = |t: usize| 2 * t < k;
        let expected = match (auth, topology) {
            (AuthMode::Unauthenticated, Topology::FullyConnected) => {
                below_third(t_l) || below_third(t_r)
            }
            (AuthMode::Unauthenticated, Topology::Bipartite) => {
                below_half(t_l) && below_half(t_r) && (below_third(t_l) || below_third(t_r))
            }
            (AuthMode::Unauthenticated, Topology::OneSided) => {
                below_half(t_r) && (below_third(t_l) || below_third(t_r))
            }
            (AuthMode::Authenticated, Topology::FullyConnected) => true,
            (AuthMode::Authenticated, Topology::Bipartite) => {
                (t_l < k && t_r < k) || below_third(t_l) || below_third(t_r)
            }
            (AuthMode::Authenticated, Topology::OneSided) => t_r < k || below_third(t_l),
        };
        match characterize(&setting) {
            Solvability::Solvable(_) => prop_assert!(expected, "{setting} should be unsolvable"),
            Solvability::Unsolvable(imp) => {
                prop_assert!(!expected, "{setting} should be solvable, got {imp}");
            }
        }
    }
}
