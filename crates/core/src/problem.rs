//! Problem statements: settings, inputs and outputs of byzantine stable matching.

use bsm_matching::{PreferenceProfile, Side};
use bsm_net::{PartyId, Topology};
use std::collections::BTreeSet;
use std::fmt;

/// Whether a trusted setup with digital signatures is available (§2, "Cryptographic
/// Assumptions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AuthMode {
    /// No cryptographic assumptions.
    Unauthenticated,
    /// A public-key infrastructure and unforgeable signatures are available.
    Authenticated,
}

impl AuthMode {
    /// Both modes, unauthenticated first.
    pub const ALL: [AuthMode; 2] = [AuthMode::Unauthenticated, AuthMode::Authenticated];

    /// A short lowercase name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            AuthMode::Unauthenticated => "unauthenticated",
            AuthMode::Authenticated => "authenticated",
        }
    }
}

impl fmt::Display for AuthMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The decision of one party: the partner it matches with, or nobody.
///
/// The refined termination property (§2) explicitly allows honest parties to output
/// "nobody" when byzantine parties withhold participation.
pub type MatchDecision = Option<PartyId>;

/// A complete description of one bSM instance environment: the market size, the network
/// topology, the cryptographic assumptions and the per-side corruption budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Setting {
    k: usize,
    topology: Topology,
    auth: AuthMode,
    t_l: usize,
    t_r: usize,
}

/// Errors produced when constructing a [`Setting`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SettingError {
    /// `k` must be positive.
    EmptyMarket,
    /// A corruption bound exceeds the side size `k`.
    BudgetTooLarge {
        /// The offending side.
        side: Side,
        /// The requested bound.
        bound: usize,
        /// The side size.
        k: usize,
    },
}

impl fmt::Display for SettingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SettingError::EmptyMarket => write!(f, "market size k must be at least 1"),
            SettingError::BudgetTooLarge { side, bound, k } => {
                write!(f, "corruption bound {bound} for side {side} exceeds the side size {k}")
            }
        }
    }
}

impl std::error::Error for SettingError {}

impl Setting {
    /// Creates a setting.
    ///
    /// # Errors
    ///
    /// Returns [`SettingError::EmptyMarket`] if `k == 0` and
    /// [`SettingError::BudgetTooLarge`] if `t_l > k` or `t_r > k`.
    pub fn new(
        k: usize,
        topology: Topology,
        auth: AuthMode,
        t_l: usize,
        t_r: usize,
    ) -> Result<Self, SettingError> {
        if k == 0 {
            return Err(SettingError::EmptyMarket);
        }
        if t_l > k {
            return Err(SettingError::BudgetTooLarge { side: Side::Left, bound: t_l, k });
        }
        if t_r > k {
            return Err(SettingError::BudgetTooLarge { side: Side::Right, bound: t_r, k });
        }
        Ok(Self { k, topology, auth, t_l, t_r })
    }

    /// Market size (parties per side).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of parties `n = 2k`.
    pub fn n(&self) -> usize {
        2 * self.k
    }

    /// The communication topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The cryptographic assumptions.
    pub fn auth(&self) -> AuthMode {
        self.auth
    }

    /// Corruption bound for side `L`.
    pub fn t_l(&self) -> usize {
        self.t_l
    }

    /// Corruption bound for side `R`.
    pub fn t_r(&self) -> usize {
        self.t_r
    }

    /// Corruption bound for a given side.
    pub fn t_of(&self, side: Side) -> usize {
        match side {
            Side::Left => self.t_l,
            Side::Right => self.t_r,
        }
    }

    /// Returns `true` if `t < k/3` holds for the given side's bound.
    pub fn side_below_third(&self, side: Side) -> bool {
        3 * self.t_of(side) < self.k
    }

    /// Returns `true` if `t < k/2` holds for the given side's bound.
    pub fn side_below_half(&self, side: Side) -> bool {
        2 * self.t_of(side) < self.k
    }

    /// Returns `true` if `t < k` holds for the given side's bound (at least one honest
    /// party on that side).
    pub fn side_below_full(&self, side: Side) -> bool {
        self.t_of(side) < self.k
    }
}

impl fmt::Display for Setting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k={} {} {} tL={} tR={}", self.k, self.topology, self.auth, self.t_l, self.t_r)
    }
}

/// The inputs of a bSM instance: every party's complete preference list, plus the set of
/// parties the adversary controls (used by the harness to decide which inputs are
/// actually "honest inputs" for property checking).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BsmInstance {
    /// Honest inputs: the preference lists each party *would* use if honest.
    pub profile: PreferenceProfile,
    /// The corrupted parties.
    pub corrupted: BTreeSet<PartyId>,
}

impl BsmInstance {
    /// Creates an instance.
    ///
    /// # Panics
    ///
    /// Panics if a corrupted party's index is out of range for the profile size.
    pub fn new(profile: PreferenceProfile, corrupted: BTreeSet<PartyId>) -> Self {
        let k = profile.k();
        for party in &corrupted {
            assert!(party.idx() < k, "corrupted party {party} out of range for k = {k}");
        }
        Self { profile, corrupted }
    }

    /// Returns `true` if `party` is honest in this instance.
    pub fn is_honest(&self, party: PartyId) -> bool {
        !self.corrupted.contains(&party)
    }

    /// The preference list of a party (as it would use if honest).
    pub fn preference_of(&self, party: PartyId) -> &bsm_matching::PreferenceList {
        match party.side {
            Side::Left => self.profile.left(party.idx()),
            Side::Right => self.profile.right(party.idx()),
        }
    }
}

/// The inputs of a simplified stable matching (sSM) instance: each party's favorite on
/// the other side (§3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsmInstance {
    /// `left_favorites[i]` = favorite right-side index of left party `i`.
    pub left_favorites: Vec<usize>,
    /// `right_favorites[j]` = favorite left-side index of right party `j`.
    pub right_favorites: Vec<usize>,
    /// The corrupted parties.
    pub corrupted: BTreeSet<PartyId>,
}

impl SsmInstance {
    /// Converts the sSM instance into a bSM instance by ranking the favorite first and
    /// the remaining partners in index order — the reduction used in Lemma 2.
    ///
    /// # Panics
    ///
    /// Panics if the two favorite vectors have different lengths or contain out-of-range
    /// indices.
    pub fn to_bsm(&self) -> BsmInstance {
        let k = self.left_favorites.len();
        assert_eq!(k, self.right_favorites.len(), "favorite vectors must have equal length");
        let left = self
            .left_favorites
            .iter()
            .map(|&f| {
                bsm_matching::PreferenceList::favorite_first(k, f).expect("favorite in range")
            })
            .collect();
        let right = self
            .right_favorites
            .iter()
            .map(|&f| {
                bsm_matching::PreferenceList::favorite_first(k, f).expect("favorite in range")
            })
            .collect();
        let profile = PreferenceProfile::new(left, right).expect("favorite-first lists are valid");
        BsmInstance::new(profile, self.corrupted.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setting_validation_and_accessors() {
        assert!(Setting::new(0, Topology::Bipartite, AuthMode::Authenticated, 0, 0).is_err());
        assert!(Setting::new(2, Topology::Bipartite, AuthMode::Authenticated, 3, 0).is_err());
        assert!(Setting::new(2, Topology::Bipartite, AuthMode::Authenticated, 0, 3).is_err());
        let s = Setting::new(4, Topology::OneSided, AuthMode::Unauthenticated, 1, 2).unwrap();
        assert_eq!(s.k(), 4);
        assert_eq!(s.n(), 8);
        assert_eq!(s.topology(), Topology::OneSided);
        assert_eq!(s.auth(), AuthMode::Unauthenticated);
        assert_eq!(s.t_l(), 1);
        assert_eq!(s.t_r(), 2);
        assert_eq!(s.t_of(Side::Left), 1);
        assert_eq!(s.t_of(Side::Right), 2);
        assert!(s.side_below_third(Side::Left));
        assert!(!s.side_below_third(Side::Right));
        assert!(s.side_below_half(Side::Left));
        assert!(!s.side_below_half(Side::Right));
        assert!(s.side_below_full(Side::Right));
        assert!(s.to_string().contains("one-sided"));
    }

    #[test]
    fn auth_mode_display() {
        assert_eq!(AuthMode::Authenticated.to_string(), "authenticated");
        assert_eq!(AuthMode::Unauthenticated.to_string(), "unauthenticated");
        assert_eq!(AuthMode::ALL.len(), 2);
    }

    #[test]
    fn setting_error_display() {
        assert!(!SettingError::EmptyMarket.to_string().is_empty());
        let e = SettingError::BudgetTooLarge { side: Side::Left, bound: 5, k: 3 };
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn instance_helpers() {
        let profile = PreferenceProfile::identity(3).unwrap();
        let corrupted: BTreeSet<PartyId> = [PartyId::right(1)].into_iter().collect();
        let instance = BsmInstance::new(profile, corrupted);
        assert!(instance.is_honest(PartyId::left(0)));
        assert!(!instance.is_honest(PartyId::right(1)));
        assert_eq!(instance.preference_of(PartyId::left(2)).favorite(), 0);
        assert_eq!(instance.preference_of(PartyId::right(2)).favorite(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn instance_rejects_out_of_range_corruption() {
        let profile = PreferenceProfile::identity(2).unwrap();
        let corrupted: BTreeSet<PartyId> = [PartyId::right(5)].into_iter().collect();
        let _ = BsmInstance::new(profile, corrupted);
    }

    #[test]
    fn ssm_reduction_ranks_favorites_first() {
        let ssm = SsmInstance {
            left_favorites: vec![2, 0, 1],
            right_favorites: vec![1, 1, 1],
            corrupted: BTreeSet::new(),
        };
        let bsm = ssm.to_bsm();
        assert_eq!(bsm.profile.left(0).favorite(), 2);
        assert_eq!(bsm.profile.left(1).favorite(), 0);
        assert_eq!(bsm.profile.right(2).favorite(), 1);
    }
}
