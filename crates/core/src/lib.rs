//! Byzantine stable matching (bSM): the paper's primary contribution.
//!
//! This crate turns the theory of *Byzantine Stable Matching* (Constantinescu, Dufay,
//! Ghinea, Wattenhofer — PODC 2025) into running code:
//!
//! * [`problem`] — the problem statements: the byzantine stable matching problem `bSM`
//!   (Definition 1), its simplified variant `sSM` (§3), and the [`problem::Setting`]
//!   describing topology, cryptographic assumptions and corruption budgets,
//! * [`properties`] — checkable versions of the four bSM properties (termination,
//!   symmetry, stability, non-competition) and of simplified stability,
//! * [`solvability`] — Theorems 2–7 as a decision procedure: for every setting it
//!   returns either an executable [`solvability::ProtocolPlan`] or the theorem that
//!   proves the setting unsolvable,
//! * [`wire`] / [`relay`] / [`runtime`] — the composite party runtime: a multiplexing
//!   wire format, the channel-simulation relays of Lemmas 6, 8 and 10 (majority relay,
//!   signed relay, timed signed relay with omissions), and the per-party process that
//!   stacks a bSM protocol on top of them,
//! * [`protocols`] — the two constructive protocol families: the broadcast-based
//!   reduction of Lemma 1 (over Dolev–Strong or committee broadcast) and the
//!   bipartite-authenticated protocol `ΠbSM` of Lemma 9,
//! * [`strategies`] — reusable byzantine strategies (crash, preference lying, garbage
//!   spam, puppet simulation of honest code on chosen inputs),
//! * [`script`] — data-valued adversary scripts: serializable action lists a fuzzer
//!   can generate, mutate, shrink and replay, interpreted by a
//!   [`script::ScriptedAdversary`] that provably subsumes the built-in strategies,
//! * [`attacks`] — the impossibility constructions of Lemmas 5, 7 and 13 as concrete
//!   adversaries that violate bSM properties beyond the tight thresholds,
//! * [`harness`] — the scenario runner used by the experiments: build a setting, pick a
//!   preference profile and an adversary, run the appropriate protocol on the
//!   synchronous simulator, and verify every bSM property on the outcome.
//!
//! # Quickstart
//!
//! ```rust
//! use bsm_core::harness::{Scenario, AdversarySpec};
//! use bsm_core::problem::{AuthMode, Setting};
//! use bsm_net::Topology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let setting = Setting::new(3, Topology::FullyConnected, AuthMode::Authenticated, 1, 1)?;
//! let scenario = Scenario::builder(setting)
//!     .seed(7)
//!     .corrupt_left([0])
//!     .adversary(AdversarySpec::Crash)
//!     .build()?;
//! let outcome = scenario.run()?;
//! assert!(outcome.violations.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod harness;
pub mod problem;
pub mod properties;
pub mod protocols;
pub mod relay;
pub mod runtime;
pub mod script;
pub mod solvability;
pub mod ssm;
pub mod strategies;
pub mod wire;

pub use harness::{AdversarySpec, HarnessError, Scenario, ScenarioOutcome};
pub use problem::{AuthMode, MatchDecision, Setting};
pub use properties::{check_bsm, PropertyViolation};
pub use script::{Script, ScriptAction, ScriptError, ScriptedAdversary, Verdict};
pub use solvability::{characterize, ProtocolPlan, Solvability};
