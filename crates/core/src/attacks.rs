//! The impossibility constructions of Lemmas 5, 7 and 13 as concrete adversaries.
//!
//! The paper's lower bounds are indistinguishability arguments: beyond the stated
//! thresholds, an adversary can present different honest parties with views belonging to
//! different "worlds", forcing two honest parties to claim the same partner (violating
//! non-competition) no matter which protocol is run. This module turns each construction
//! into an executable attack against the constructive protocols of this crate, run just
//! beyond their thresholds:
//!
//! * [`split_brain_attack`] — Lemma 5 / Theorem 2 boundary: fully-connected,
//!   unauthenticated, `tL = tR = ⌈k/3⌉` (`k = 3`). A byzantine committee member and a
//!   byzantine broadcaster keep the two honest committee members on different values of
//!   the byzantine broadcaster's preference list, so two honest left parties end up
//!   claiming the same right party.
//! * [`relay_denial_attack`] — Lemma 7 / Theorems 3–4 boundary: bipartite or one-sided,
//!   unauthenticated, `tR = ⌈k/2⌉` (`k = 2`). The single byzantine right party withholds
//!   relay duty (cutting the left side in two) and equivocates its own preference list,
//!   making both left parties claim it.
//! * [`full_side_partition_attack`] — Lemma 13 / Theorems 6–7 boundary: one-sided or
//!   bipartite, authenticated, `tR = k`, `tL = ⌈k/3⌉` (`k = 3`). The fully byzantine
//!   right side simulates two disjoint worlds towards the two honest left parties (the
//!   byzantine left party signs a consistent story into each world), and both honest
//!   left parties decide to match the same right party.
//!
//! Each constructor returns the scenario (inputs + corrupted set), the protocol plan to
//! force, and the adversary; `run()`-ing them must produce at least one
//! [`crate::properties::PropertyViolation`], which is exactly what experiment E1/E3–E5
//! record.

use crate::harness::Scenario;
use crate::problem::{AuthMode, Setting};
use crate::relay::relay_digest;
use crate::solvability::ProtocolPlan;
use crate::wire::{pref_to_vec, PrefVec, ProtoBody, ProtoMsg, WireMsg};
use bsm_broadcast::{BaMsg, BbMsg, CommitteeMsg, KingMsg, KingMsgKind};
use bsm_crypto::SigningKey;
use bsm_matching::{PreferenceList, PreferenceProfile, Side};
use bsm_net::{Adversary, AdversaryContext, Envelope, Outgoing, PartyId, Topology};
use std::collections::BTreeMap;

/// A ready-to-run impossibility experiment.
pub struct Attack {
    /// Short identifier used in experiment tables (e.g. `"lemma5"`).
    pub name: &'static str,
    /// The paper reference this attack reproduces.
    pub reference: &'static str,
    /// The scenario (setting, inputs, corrupted parties).
    pub scenario: Scenario,
    /// The protocol plan to force (the setting itself is unsolvable).
    pub plan: ProtocolPlan,
    /// The attacking adversary.
    pub adversary: Box<dyn Adversary<WireMsg>>,
}

impl std::fmt::Debug for Attack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Attack")
            .field("name", &self.name)
            .field("reference", &self.reference)
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

impl Attack {
    /// Runs the attack and returns the scenario outcome (the caller inspects
    /// `outcome.violations`).
    ///
    /// # Errors
    ///
    /// Propagates harness errors; the attack scenarios themselves are always
    /// well-formed.
    pub fn run(self) -> Result<crate::harness::ScenarioOutcome, crate::harness::HarnessError> {
        self.scenario.run_with_adversary(self.plan, self.adversary)
    }
}

fn list(order: &[usize]) -> PreferenceList {
    PreferenceList::new(order.to_vec()).expect("attack lists are valid permutations")
}

/// Lemma 5 (Theorem 2 "only if"): fully-connected unauthenticated network, `k = 3`,
/// `tL = tR = 1` (both `≥ k/3`).
pub fn split_brain_attack() -> Attack {
    let k = 3usize;
    let setting =
        Setting::new(k, Topology::FullyConnected, AuthMode::Unauthenticated, 1, 1).unwrap();
    // Honest inputs: L0 and L2 both rank R1 first; R0 prefers L0, R2 prefers L2.
    let profile = PreferenceProfile::new(
        vec![list(&[1, 0, 2]), list(&[0, 1, 2]), list(&[1, 2, 0])],
        vec![list(&[0, 2, 1]), list(&[0, 1, 2]), list(&[2, 0, 1])],
    )
    .unwrap();
    let scenario = Scenario::builder(setting)
        .profile(profile)
        .corrupt_left([1])
        .corrupt_right([1])
        .build()
        .expect("attack scenario is well-formed");
    let plan = ProtocolPlan::CommitteeBroadcastBsm { committee_side: Side::Left };
    // The two "worlds": R1's preference list as seen by L0/R0 versus by L2/R2.
    let adversary = SplitBrainAdversary {
        byz_sender: PartyId::right(1),
        byz_member: PartyId::left(1),
        instance: (k + 1) as u32,               // dense index of R1
        view_a: pref_to_vec(&list(&[0, 1, 2])), // R1 prefers L0
        view_b: pref_to_vec(&list(&[2, 1, 0])), // R1 prefers L2
        audience_a: vec![PartyId::left(0), PartyId::right(0)],
        audience_b: vec![PartyId::left(2), PartyId::right(2)],
    };
    Attack {
        name: "lemma5",
        reference: "Lemma 5 / Fig. 2 (Theorem 2, necessity)",
        scenario,
        plan,
        adversary: Box::new(adversary),
    }
}

/// The Lemma 5 adversary: a byzantine broadcaster equivocating its preference list and a
/// byzantine committee member keeping each honest committee member convinced of its own
/// view (and reporting accordingly to the listeners).
struct SplitBrainAdversary {
    byz_sender: PartyId,
    byz_member: PartyId,
    instance: u32,
    view_a: PrefVec,
    view_b: PrefVec,
    audience_a: Vec<PartyId>,
    audience_b: Vec<PartyId>,
}

impl SplitBrainAdversary {
    fn king_bundle(&self, view: &PrefVec, slot: u64) -> Vec<ProtoBody> {
        // Cover the phase the receiver is currently in as well as its neighbours, so no
        // precise alignment with the committee-broadcast round offset is needed; wrong
        // phases and kinds are filtered out by the honest receiver.
        let current_phase = slot / 3;
        let mut bodies = Vec::new();
        for phase in current_phase.saturating_sub(1)..=current_phase + 1 {
            for kind in [
                KingMsgKind::Value(view.clone()),
                KingMsgKind::Propose(view.clone()),
                KingMsgKind::King(view.clone()),
            ] {
                bodies.push(ProtoBody::Cb(CommitteeMsg::King(KingMsg { phase, kind })));
            }
        }
        bodies
    }
}

impl Adversary<WireMsg> for SplitBrainAdversary {
    fn act(
        &mut self,
        ctx: &AdversaryContext<'_>,
        _inboxes: &BTreeMap<PartyId, Vec<Envelope<WireMsg>>>,
    ) -> Vec<(PartyId, Outgoing<WireMsg>)> {
        let slot = ctx.now.slot();
        let mut out = Vec::new();
        let views = [
            (self.audience_a.clone(), self.view_a.clone()),
            (self.audience_b.clone(), self.view_b.clone()),
        ];
        for (audience, view) in views {
            for target in audience {
                // The byzantine sender equivocates its preference list towards the
                // committee members of this audience.
                if target.is_left() {
                    out.push((
                        self.byz_sender,
                        Outgoing::new(
                            target,
                            WireMsg::Direct(ProtoMsg {
                                instance: self.instance,
                                body: ProtoBody::Cb(CommitteeMsg::Input(view.clone())),
                            }),
                        ),
                    ));
                    // The byzantine committee member echoes this audience's value in the
                    // phase-king sub-protocol so the honest member keeps a quorum for it.
                    for body in self.king_bundle(&view, slot) {
                        out.push((
                            self.byz_member,
                            Outgoing::new(
                                target,
                                WireMsg::Direct(ProtoMsg { instance: self.instance, body }),
                            ),
                        ));
                    }
                }
                // The byzantine committee member reports this audience's value to its
                // listeners, tipping the plurality.
                out.push((
                    self.byz_member,
                    Outgoing::new(
                        target,
                        WireMsg::Direct(ProtoMsg {
                            instance: self.instance,
                            body: ProtoBody::Cb(CommitteeMsg::Report(view.clone())),
                        }),
                    ),
                ));
            }
        }
        out
    }
}

/// Lemma 7 (Theorems 3 and 4 "only if"): bipartite or one-sided unauthenticated network,
/// `k = 2`, `tL = 0`, `tR = 1` (`tR ≥ k/2`).
pub fn relay_denial_attack(topology: Topology) -> Attack {
    assert!(
        matches!(topology, Topology::Bipartite | Topology::OneSided),
        "the Lemma 7 construction applies to bipartite and one-sided networks"
    );
    let k = 2usize;
    let setting = Setting::new(k, topology, AuthMode::Unauthenticated, 0, 1).unwrap();
    // Both honest left parties rank the byzantine R1 first; honest R0 prefers L0.
    let profile = PreferenceProfile::new(
        vec![list(&[1, 0]), list(&[1, 0])],
        vec![list(&[0, 1]), list(&[0, 1])],
    )
    .unwrap();
    let scenario = Scenario::builder(setting)
        .profile(profile)
        .corrupt_right([1])
        .build()
        .expect("attack scenario is well-formed");
    let plan = ProtocolPlan::CommitteeBroadcastBsm { committee_side: Side::Left };
    let adversary = RelayDenialAdversary {
        byz_sender: PartyId::right(1),
        instance: (k + 1) as u32,            // dense index of R1
        view_a: pref_to_vec(&list(&[0, 1])), // shown to L0: R1 prefers L0
        view_b: pref_to_vec(&list(&[1, 0])), // shown to L1: R1 prefers L1
    };
    Attack {
        name: "lemma7",
        reference: "Lemma 7 / Fig. 3 (Theorems 3–4, necessity)",
        scenario,
        plan,
        adversary: Box::new(adversary),
    }
}

/// The Lemma 7 adversary: the byzantine right party never performs relay duty (cutting
/// the left side's simulated channels below their majority threshold) and equivocates
/// its own preference list between the two left parties.
struct RelayDenialAdversary {
    byz_sender: PartyId,
    instance: u32,
    view_a: PrefVec,
    view_b: PrefVec,
}

impl Adversary<WireMsg> for RelayDenialAdversary {
    fn act(
        &mut self,
        _ctx: &AdversaryContext<'_>,
        _inboxes: &BTreeMap<PartyId, Vec<Envelope<WireMsg>>>,
    ) -> Vec<(PartyId, Outgoing<WireMsg>)> {
        // Not forwarding any relay request is implicit: the adversary simply never
        // produces RelayDeliver messages.
        let mut out = Vec::new();
        for (target, view) in [(PartyId::left(0), &self.view_a), (PartyId::left(1), &self.view_b)] {
            out.push((
                self.byz_sender,
                Outgoing::new(
                    target,
                    WireMsg::Direct(ProtoMsg {
                        instance: self.instance,
                        body: ProtoBody::Cb(CommitteeMsg::Input(view.clone())),
                    }),
                ),
            ));
        }
        out
    }
}

/// Lemma 13 (Theorems 6 and 7 "only if"): one-sided or bipartite authenticated network,
/// `k = 3`, `tR = k` (the whole right side is byzantine), `tL = 1 ≥ k/3`.
pub fn full_side_partition_attack(topology: Topology) -> Attack {
    assert!(
        matches!(topology, Topology::Bipartite | Topology::OneSided),
        "the Lemma 13 construction applies to bipartite and one-sided networks"
    );
    let k = 3usize;
    let setting = Setting::new(k, topology, AuthMode::Authenticated, 1, k).unwrap();
    // Honest inputs: L0 and L2 both rank R1 (the contested party `v`) first.
    let profile = PreferenceProfile::new(
        vec![list(&[1, 0, 2]), list(&[0, 1, 2]), list(&[1, 2, 0])],
        vec![list(&[0, 1, 2]), list(&[0, 1, 2]), list(&[0, 1, 2])],
    )
    .unwrap();
    let scenario = Scenario::builder(setting)
        .profile(profile.clone())
        .corrupt_left([1])
        .corrupt_right([0, 1, 2])
        .build()
        .expect("attack scenario is well-formed");
    let plan = ProtocolPlan::BipartiteAuthLocal { committee_side: Side::Left };

    // The adversary legitimately holds the signing key of the corrupted left party; it
    // obtains it from the scenario's own PKI so its forged relayed confirmations verify
    // against the directory the honest parties use.
    let byz_left = PartyId::left(1);
    let byz_left_key = scenario
        .pki()
        .signing_key(scenario.key_id_of(byz_left).expect("party exists").0)
        .expect("corrupted party key exists");
    let adversary =
        FullSidePartitionAdversary::new(k, profile, byz_left_key, byz_left, PartyId::right(1));
    Attack {
        name: "lemma13",
        reference: "Lemma 13 / Fig. 4 (Theorems 6–7, necessity)",
        scenario,
        plan,
        adversary: Box::new(adversary),
    }
}

/// One forged relayed message: repeatedly delivered (with a fresh timestamp and
/// signature each slot) from a byzantine right party to its target.
struct ForgedRelay {
    target: PartyId,
    origin: PartyId,
    id: u64,
    inner: ProtoMsg,
}

/// The Lemma 13 adversary.
///
/// The right side is fully byzantine and performs no relay duty, so the two honest left
/// parties are completely partitioned (they only ever hear the adversary). Towards each
/// honest left party the adversary plays a consistent world: the right side announces
/// preference lists that make that party the contested right party's favourite, and the
/// byzantine left party `b` signs whatever confirmations (`ΠBB`/`ΠBA` finals) are needed
/// for the honest party's agreement instances to output non-⊥ values. Both honest left
/// parties therefore compute full (but different) matchings and both decide to match
/// `v = R1`, violating non-competition.
struct FullSidePartitionAdversary {
    k: usize,
    byz_left: PartyId,
    byz_left_key: SigningKey,
    relays: Vec<ForgedRelay>,
    direct: Vec<(PartyId, PartyId, ProtoMsg)>,
}

impl FullSidePartitionAdversary {
    fn new(
        k: usize,
        honest_profile: PreferenceProfile,
        byz_left_key: SigningKey,
        byz_left: PartyId,
        contested: PartyId,
    ) -> Self {
        let default = PreferenceList::identity(k);
        let fake_byz_left_list = pref_to_vec(&default);

        let mut relays = Vec::new();
        let mut direct = Vec::new();
        let mut next_id = 0u64;
        let mut forged =
            |target: PartyId, origin: PartyId, inner: ProtoMsg, relays: &mut Vec<ForgedRelay>| {
                relays.push(ForgedRelay { target, origin, id: next_id, inner });
                next_id += 1;
            };

        for audience in [PartyId::left(0), PartyId::left(2)] {
            let audience_list = honest_profile.left(audience.idx()).clone();
            // --- Announcements from the (byzantine) right side, shown to this audience.
            // The contested right party ranks this audience first; the others announce
            // arbitrary (identity) lists.
            for r in 0..k as u32 {
                let right_party = PartyId::right(r);
                let announced = if right_party == contested {
                    PreferenceList::favorite_first(k, audience.idx()).expect("index in range")
                } else {
                    default.clone()
                };
                direct.push((
                    right_party,
                    audience,
                    ProtoMsg {
                        instance: 0,
                        body: ProtoBody::PrefAnnounce(pref_to_vec(&announced)),
                    },
                ));
            }
            // --- ΠBB: the byzantine left party distributes a (consistent) list to this
            // audience, and confirms every value the audience will hold.
            forged(
                audience,
                byz_left,
                ProtoMsg {
                    instance: byz_left.index,
                    body: ProtoBody::Bb(BbMsg::Send(fake_byz_left_list.clone())),
                },
                &mut relays,
            );
            for member in 0..k as u32 {
                // Value the audience will hold for member's ΠBB: its own real list for
                // itself, the fake list for the byzantine left party, the default for
                // the other (partitioned-away) honest left party.
                let expected = if member == audience.index {
                    pref_to_vec(&audience_list)
                } else if member == byz_left.index {
                    fake_byz_left_list.clone()
                } else {
                    pref_to_vec(&default)
                };
                forged(
                    audience,
                    byz_left,
                    ProtoMsg {
                        instance: member,
                        body: ProtoBody::Bb(BbMsg::Ba(BaMsg::Final(expected))),
                    },
                    &mut relays,
                );
            }
            // --- ΠBA on the right side's announcements: confirm exactly what was
            // announced to this audience.
            for r in 0..k as u32 {
                let right_party = PartyId::right(r);
                let announced = if right_party == contested {
                    PreferenceList::favorite_first(k, audience.idx()).expect("index in range")
                } else {
                    default.clone()
                };
                forged(
                    audience,
                    byz_left,
                    ProtoMsg {
                        instance: r,
                        body: ProtoBody::Ba(BaMsg::Final(pref_to_vec(&announced))),
                    },
                    &mut relays,
                );
            }
        }

        Self { k, byz_left, byz_left_key, relays, direct }
    }
}

impl Adversary<WireMsg> for FullSidePartitionAdversary {
    fn act(
        &mut self,
        ctx: &AdversaryContext<'_>,
        _inboxes: &BTreeMap<PartyId, Vec<Envelope<WireMsg>>>,
    ) -> Vec<(PartyId, Outgoing<WireMsg>)> {
        let slot = ctx.now.slot();
        let mut out = Vec::new();
        // Direct announcements from byzantine right parties (sent every slot; only the
        // first is recorded by the receiver).
        for (from, to, msg) in &self.direct {
            out.push((*from, Outgoing::new(*to, WireMsg::Direct(msg.clone()))));
        }
        // Forged relayed confirmations "from" the byzantine left party, freshly signed
        // and timestamped every slot so the 2·Δ acceptance window is always satisfied.
        // They are delivered through an arbitrary byzantine right relayer.
        let relayer = PartyId::right(0);
        for forged in &self.relays {
            let digest =
                relay_digest(self.byz_left, forged.target, forged.id, slot, &forged.inner, self.k);
            let signature = self.byz_left_key.sign(digest);
            out.push((
                relayer,
                Outgoing::new(
                    forged.target,
                    WireMsg::RelayDeliver {
                        origin: forged.origin,
                        target: forged.target,
                        id: forged.id,
                        sent_at: slot,
                        inner: forged.inner.clone(),
                        signature: Some(signature),
                    },
                ),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_constructors_are_well_formed() {
        let a = split_brain_attack();
        assert_eq!(a.name, "lemma5");
        assert!(format!("{a:?}").contains("lemma5"));
        assert_eq!(a.scenario.corrupted().len(), 2);

        let b = relay_denial_attack(Topology::Bipartite);
        assert_eq!(b.scenario.setting().t_r(), 1);
        let b2 = relay_denial_attack(Topology::OneSided);
        assert_eq!(b2.scenario.setting().topology(), Topology::OneSided);

        let c = full_side_partition_attack(Topology::OneSided);
        assert_eq!(c.scenario.corrupted().len(), 4);
    }

    #[test]
    #[should_panic(expected = "applies to bipartite and one-sided")]
    fn relay_denial_requires_restricted_topology() {
        let _ = relay_denial_attack(Topology::FullyConnected);
    }

    #[test]
    #[should_panic(expected = "applies to bipartite and one-sided")]
    fn partition_requires_restricted_topology() {
        let _ = full_side_partition_attack(Topology::FullyConnected);
    }
}
