//! The broadcast-based bSM protocol of Lemma 1.
//!
//! Every party broadcasts its preference list through a byzantine broadcast instance
//! (one instance per party, the broadcaster being that instance's sender). Broadcast
//! guarantees that all honest parties end the distribution phase with *identical* views
//! of all `2k` lists (byzantine parties that send nothing or garbage are replaced by the
//! default list). Every party then runs the deterministic `AG-S` offline and outputs its
//! own partner in the resulting stable matching, which immediately yields termination,
//! symmetry, stability and non-competition.

use crate::problem::MatchDecision;
use crate::wire::{
    default_pref_vec, dense_key_index, party_from_dense, pref_to_vec, vec_to_pref, PrefVec,
    ProtoBody, ProtoMsg,
};
use bsm_broadcast::{
    Committee, CommitteeBroadcast, CommitteeBroadcastConfig, DolevStrong, DolevStrongConfig,
};
use bsm_crypto::{KeyId, Pki, SigningKey};
use bsm_matching::gale_shapley::gale_shapley_left;
use bsm_matching::{PreferenceList, PreferenceProfile, Side};
use bsm_net::{Outgoing, PartyId, PartySet, RoundProtocol};
use std::collections::BTreeMap;

/// Which broadcast primitive carries the preference lists.
#[derive(Debug, Clone)]
pub enum BroadcastFlavor {
    /// Dolev–Strong over the PKI (authenticated settings, Theorem 5 / Lemma 8).
    DolevStrong {
        /// The public-key directory.
        pki: Pki,
        /// This party's signing key.
        signing_key: SigningKey,
        /// Key of every party (dense numbering).
        key_of: BTreeMap<PartyId, KeyId>,
        /// Total corruption bound used for the round count (`tL + tR`, capped at
        /// `n − 1`).
        t: usize,
    },
    /// Committee broadcast (unauthenticated settings, Lemma 4): the side with `t < k/3`
    /// runs phase-king agreement on each sender's value and reports the result.
    Committee {
        /// The agreement committee.
        committee: Committee,
    },
}

enum InstanceState {
    Ds(DolevStrong<PrefVec>),
    Cb(CommitteeBroadcast<PrefVec>),
}

impl InstanceState {
    fn output(&self) -> Option<PrefVec> {
        match self {
            InstanceState::Ds(p) => p.output(),
            InstanceState::Cb(p) => p.output(),
        }
    }
}

/// The Lemma 1 protocol, parameterized by the broadcast flavor.
pub struct BroadcastBsm {
    me: PartyId,
    k: usize,
    my_pref: PreferenceList,
    instances: BTreeMap<u32, InstanceState>,
    decision: Option<MatchDecision>,
}

impl std::fmt::Debug for BroadcastBsm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BroadcastBsm")
            .field("me", &self.me)
            .field("k", &self.k)
            .field("instances", &self.instances.len())
            .field("decided", &self.decision.is_some())
            .finish_non_exhaustive()
    }
}

impl BroadcastBsm {
    /// Creates the protocol for party `me` with its input preference list.
    ///
    /// # Panics
    ///
    /// Panics if `my_pref.len() != k`.
    pub fn new(me: PartyId, k: usize, my_pref: PreferenceList, flavor: BroadcastFlavor) -> Self {
        assert_eq!(my_pref.len(), k, "preference list must rank all k opposite-side parties");
        let parties = PartySet::new(k);
        let all: Vec<PartyId> = parties.iter().collect();
        let mut instances = BTreeMap::new();
        for sender in parties.iter() {
            let instance_id = dense_key_index(sender, k);
            let input = if sender == me { Some(pref_to_vec(&my_pref)) } else { None };
            let state = match &flavor {
                BroadcastFlavor::DolevStrong { pki, signing_key, key_of, t } => {
                    let config = DolevStrongConfig {
                        me,
                        sender,
                        participants: all.clone(),
                        t: (*t).min(all.len().saturating_sub(1)),
                        instance: u64::from(instance_id),
                        pki: pki.clone(),
                        key_of: key_of.clone(),
                    };
                    InstanceState::Ds(DolevStrong::new(
                        config,
                        signing_key.clone(),
                        input,
                        default_pref_vec(k),
                    ))
                }
                BroadcastFlavor::Committee { committee } => {
                    let config = CommitteeBroadcastConfig {
                        me,
                        sender,
                        committee: committee.clone(),
                        all_parties: all.clone(),
                        default: default_pref_vec(k),
                    };
                    InstanceState::Cb(CommitteeBroadcast::new(
                        config,
                        input.unwrap_or_else(|| default_pref_vec(k)),
                    ))
                }
            };
            instances.insert(instance_id, state);
        }
        Self { me, k, my_pref, instances, decision: None }
    }

    /// The preference list this party contributed as its input.
    pub fn input(&self) -> &PreferenceList {
        &self.my_pref
    }

    /// Number of logical rounds until every instance has produced its output.
    pub fn total_rounds(k: usize, flavor: &BroadcastFlavor) -> u64 {
        match flavor {
            BroadcastFlavor::DolevStrong { t, .. } => {
                DolevStrong::<PrefVec>::total_rounds((*t).min(2 * k - 1))
            }
            BroadcastFlavor::Committee { committee } => {
                let config = CommitteeBroadcastConfig {
                    me: PartyId::left(0),
                    sender: PartyId::left(0),
                    committee: committee.clone(),
                    all_parties: Vec::new(),
                    default: default_pref_vec(k),
                };
                CommitteeBroadcast::<PrefVec>::total_rounds(&config)
            }
        }
    }

    fn try_decide(&mut self) {
        if self.decision.is_some() {
            return;
        }
        let mut outputs: BTreeMap<u32, PrefVec> = BTreeMap::new();
        for (&instance, state) in &self.instances {
            match state.output() {
                Some(value) => {
                    outputs.insert(instance, value);
                }
                None => return,
            }
        }
        // All broadcasts finished: reconstruct the (identical-at-every-honest-party)
        // preference profile, substituting the default list for invalid payloads.
        let k = self.k;
        let mut left = vec![PreferenceList::identity(k); k];
        let mut right = vec![PreferenceList::identity(k); k];
        for (instance, value) in outputs {
            let party = party_from_dense(instance, k);
            let list = vec_to_pref(k, &value).unwrap_or_else(|| PreferenceList::identity(k));
            match party.side {
                Side::Left => left[party.idx()] = list,
                Side::Right => right[party.idx()] = list,
            }
        }
        // Note: this party's own list is also taken from the broadcast output (not from
        // the local input), exactly as in Lemma 1 — broadcast validity guarantees the
        // two coincide for honest parties within the thresholds.
        let profile = PreferenceProfile::new(left, right).expect("reconstructed lists are valid");
        let matching = gale_shapley_left(&profile);
        let partner = match self.me.side {
            Side::Left => matching.right_of(self.me.idx()).map(|j| PartyId::right(j as u32)),
            Side::Right => matching.left_of(self.me.idx()).map(|i| PartyId::left(i as u32)),
        };
        self.decision = Some(partner);
    }
}

impl RoundProtocol for BroadcastBsm {
    type Msg = ProtoMsg;
    type Output = MatchDecision;

    fn round(&mut self, round: u64, inbox: &[(PartyId, ProtoMsg)]) -> Vec<Outgoing<ProtoMsg>> {
        if self.decision.is_some() {
            return Vec::new();
        }
        // Demultiplex the inbox by instance.
        let mut per_instance: BTreeMap<u32, Vec<(PartyId, &ProtoBody)>> = BTreeMap::new();
        for (from, msg) in inbox {
            per_instance.entry(msg.instance).or_default().push((*from, &msg.body));
        }
        let mut out = Vec::new();
        for (&instance, state) in self.instances.iter_mut() {
            let empty = Vec::new();
            let incoming = per_instance.get(&instance).unwrap_or(&empty);
            match state {
                InstanceState::Ds(protocol) => {
                    let typed: Vec<(PartyId, bsm_broadcast::DolevStrongMsg<PrefVec>)> = incoming
                        .iter()
                        .filter_map(|(from, body)| match body {
                            ProtoBody::Ds(m) => Some((*from, m.clone())),
                            _ => None,
                        })
                        .collect();
                    for outgoing in protocol.round(round, &typed) {
                        out.push(Outgoing::new(
                            outgoing.to,
                            ProtoMsg { instance, body: ProtoBody::Ds(outgoing.payload) },
                        ));
                    }
                }
                InstanceState::Cb(protocol) => {
                    let typed: Vec<(PartyId, bsm_broadcast::CommitteeMsg<PrefVec>)> = incoming
                        .iter()
                        .filter_map(|(from, body)| match body {
                            ProtoBody::Cb(m) => Some((*from, m.clone())),
                            _ => None,
                        })
                        .collect();
                    for outgoing in protocol.round(round, &typed) {
                        out.push(Outgoing::new(
                            outgoing.to,
                            ProtoMsg { instance, body: ProtoBody::Cb(outgoing.payload) },
                        ));
                    }
                }
            }
        }
        self.try_decide();
        out
    }

    fn output(&self) -> Option<MatchDecision> {
        self.decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsm_matching::generators::uniform_profile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Drives a full set of honest BroadcastBsm parties in lock step without a network
    /// (all messages delivered next round), and returns each party's decision.
    fn run_lockstep(
        k: usize,
        profile: &PreferenceProfile,
        flavor_of: impl Fn(PartyId) -> BroadcastFlavor,
    ) -> BTreeMap<PartyId, MatchDecision> {
        let parties: Vec<PartyId> = PartySet::new(k).iter().collect();
        let mut protocols: BTreeMap<PartyId, BroadcastBsm> = parties
            .iter()
            .map(|&p| {
                let list = match p.side {
                    Side::Left => profile.left(p.idx()).clone(),
                    Side::Right => profile.right(p.idx()).clone(),
                };
                (p, BroadcastBsm::new(p, k, list, flavor_of(p)))
            })
            .collect();
        let mut pending: BTreeMap<PartyId, Vec<(PartyId, ProtoMsg)>> = BTreeMap::new();
        let total = 4 * (k as u64) + 20;
        for round in 0..total {
            let inboxes = std::mem::take(&mut pending);
            for &p in &parties {
                let inbox = inboxes.get(&p).cloned().unwrap_or_default();
                let out = protocols.get_mut(&p).unwrap().round(round, &inbox);
                for msg in out {
                    pending.entry(msg.to).or_default().push((p, msg.payload));
                }
            }
        }
        protocols.iter().map(|(&p, proto)| (p, proto.output().unwrap_or(None))).collect()
    }

    fn committee_flavor(k: usize) -> BroadcastFlavor {
        BroadcastFlavor::Committee {
            committee: Committee::new((0..k as u32).map(PartyId::left).collect(), 0),
        }
    }

    fn ds_flavor(k: usize, pki: &Pki) -> impl Fn(PartyId) -> BroadcastFlavor + '_ {
        move |p: PartyId| {
            let key_of: BTreeMap<PartyId, KeyId> =
                PartySet::new(k).iter().map(|q| (q, KeyId(dense_key_index(q, k)))).collect();
            BroadcastFlavor::DolevStrong {
                pki: pki.clone(),
                signing_key: pki.signing_key(dense_key_index(p, k)).unwrap(),
                key_of,
                t: 1,
            }
        }
    }

    #[test]
    fn fault_free_run_reproduces_gale_shapley_committee_flavor() {
        let mut rng = StdRng::seed_from_u64(11);
        for k in [1usize, 2, 3, 4] {
            let profile = uniform_profile(k, &mut rng);
            let decisions = run_lockstep(k, &profile, |_| committee_flavor(k));
            let expected = gale_shapley_left(&profile);
            for (party, decision) in decisions {
                let expected_partner = match party.side {
                    Side::Left => expected.right_of(party.idx()).map(|j| PartyId::right(j as u32)),
                    Side::Right => expected.left_of(party.idx()).map(|i| PartyId::left(i as u32)),
                };
                assert_eq!(decision, expected_partner, "party {party} k={k}");
            }
        }
    }

    #[test]
    fn fault_free_run_reproduces_gale_shapley_dolev_strong_flavor() {
        let mut rng = StdRng::seed_from_u64(13);
        let k = 3usize;
        let profile = uniform_profile(k, &mut rng);
        let pki = Pki::new(2 * k as u32);
        let decisions = run_lockstep(k, &profile, ds_flavor(k, &pki));
        let expected = gale_shapley_left(&profile);
        for (party, decision) in decisions {
            let expected_partner = match party.side {
                Side::Left => expected.right_of(party.idx()).map(|j| PartyId::right(j as u32)),
                Side::Right => expected.left_of(party.idx()).map(|i| PartyId::left(i as u32)),
            };
            assert_eq!(decision, expected_partner, "party {party}");
        }
    }

    #[test]
    fn total_rounds_are_positive_and_flavor_dependent() {
        let k = 3usize;
        let pki = Pki::new(2 * k as u32);
        let key_of: BTreeMap<PartyId, KeyId> =
            PartySet::new(k).iter().map(|q| (q, KeyId(dense_key_index(q, k)))).collect();
        let ds = BroadcastFlavor::DolevStrong {
            pki: pki.clone(),
            signing_key: pki.signing_key(0).unwrap(),
            key_of,
            t: 2,
        };
        assert_eq!(BroadcastBsm::total_rounds(k, &ds), 4);
        let cb = committee_flavor(k);
        assert!(BroadcastBsm::total_rounds(k, &cb) > 4);
    }

    #[test]
    #[should_panic(expected = "must rank all")]
    fn wrong_list_length_panics() {
        let _ = BroadcastBsm::new(
            PartyId::left(0),
            3,
            PreferenceList::identity(2),
            committee_flavor(3),
        );
    }
}
