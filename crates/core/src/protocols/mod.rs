//! The constructive bSM protocols.
//!
//! * [`broadcast_based`] — the Lemma 1 reduction: every party broadcasts its preference
//!   list (via Dolev–Strong or committee broadcast), everyone runs `AG-S` locally and
//!   outputs its own match.
//! * [`bipartite_auth`] — `ΠbSM` (Lemma 9): the committee side gathers all lists over
//!   omission-prone relayed channels, matches locally, and the other side adopts the
//!   most common suggestion.

pub mod bipartite_auth;
pub mod broadcast_based;

pub use bipartite_auth::BipartiteAuthBsm;
pub use broadcast_based::{BroadcastBsm, BroadcastFlavor};
