//! `ΠbSM` — the bipartite authenticated protocol of Lemma 9.
//!
//! Used when one side (the *committee side*, w.l.o.g. `L`) satisfies `t < k/3` while the
//! other side may be completely byzantine. The committee gathers every preference list —
//! its own members' through `ΠBB`, the other side's through direct announcements fed
//! into `ΠBA` — over channels that are only guaranteed up to omissions (Lemma 10), runs
//! `AG-S` locally, informs the other side of their suggested matches, and decides its own
//! matches. Parties on the other side adopt the most common suggestion they receive;
//! since more than `k − t > t` committee members are honest and agree, the plurality is
//! the correct match whenever the other side has any honest party at all.

use crate::problem::MatchDecision;
use crate::wire::{default_pref_vec, pref_to_vec, vec_to_pref, PrefVec, ProtoBody, ProtoMsg};
use bsm_broadcast::{Committee, OmissionTolerantBa, OmissionTolerantBb};
use bsm_matching::gale_shapley::gale_shapley_left;
use bsm_matching::{PreferenceList, PreferenceProfile, Side};
use bsm_net::{Outgoing, PartyId, RoundProtocol};
use std::collections::BTreeMap;

/// The `ΠbSM` protocol state for one party (committee member or other side).
pub struct BipartiteAuthBsm {
    me: PartyId,
    k: usize,
    committee_side: Side,
    committee: Committee,
    my_pref: PreferenceList,
    /// `ΠBB` instances, keyed by the committee-side index of the broadcasting member.
    bb: BTreeMap<u32, OmissionTolerantBb<PrefVec>>,
    /// `ΠBA` instances, keyed by the other-side index whose announced list is agreed on.
    ba: BTreeMap<u32, OmissionTolerantBa<PrefVec>>,
    /// Announcements received from other-side parties (first one per sender counts).
    announced: BTreeMap<u32, PrefVec>,
    /// Suggestions received from committee members (other-side parties only).
    suggestions: BTreeMap<PartyId, Option<u64>>,
    decision: Option<MatchDecision>,
}

impl std::fmt::Debug for BipartiteAuthBsm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BipartiteAuthBsm")
            .field("me", &self.me)
            .field("committee_side", &self.committee_side)
            .field("decided", &self.decision.is_some())
            .finish_non_exhaustive()
    }
}

impl BipartiteAuthBsm {
    /// Creates the protocol for party `me`.
    ///
    /// `committee_side` is the side satisfying `t < k/3`; `t_committee` is its corruption
    /// bound. Lemma 9's guarantees only hold when `3 · t_committee < k`; the constructor
    /// still accepts larger bounds so the impossibility experiments can run the protocol
    /// beyond its threshold and observe the resulting property violations.
    ///
    /// # Panics
    ///
    /// Panics if `my_pref.len() != k` or if `t_committee >= k`.
    pub fn new(
        me: PartyId,
        k: usize,
        committee_side: Side,
        t_committee: usize,
        my_pref: PreferenceList,
    ) -> Self {
        assert_eq!(my_pref.len(), k, "preference list must rank all k opposite-side parties");
        let members: Vec<PartyId> =
            (0..k as u32).map(|i| PartyId { side: committee_side, index: i }).collect();
        let committee = Committee::new(members, t_committee);
        Self {
            me,
            k,
            committee_side,
            committee,
            my_pref,
            bb: BTreeMap::new(),
            ba: BTreeMap::new(),
            announced: BTreeMap::new(),
            suggestions: BTreeMap::new(),
            decision: None,
        }
    }

    fn is_committee_member(&self) -> bool {
        self.me.side == self.committee_side
    }

    fn other_side(&self) -> Side {
        self.committee_side.opposite()
    }

    /// The round at which committee members have every sub-protocol output available.
    pub fn committee_decision_round(committee: &Committee) -> u64 {
        let t_bb = OmissionTolerantBb::<PrefVec>::total_rounds(committee);
        let t_ba = OmissionTolerantBa::<PrefVec>::total_rounds(committee);
        t_bb.max(t_ba + 1)
    }

    /// The round at which other-side parties tally suggestions and decide.
    pub fn other_decision_round(committee: &Committee) -> u64 {
        Self::committee_decision_round(committee) + 1
    }

    /// Total number of logical rounds needed by every party.
    pub fn total_rounds(committee: &Committee) -> u64 {
        Self::other_decision_round(committee) + 1
    }

    fn committee_round(
        &mut self,
        round: u64,
        inbox: &[(PartyId, ProtoMsg)],
    ) -> Vec<Outgoing<ProtoMsg>> {
        let mut out = Vec::new();
        // Record announcements from the other side (any round; first per sender).
        for (from, msg) in inbox {
            if from.side == self.other_side() {
                if let ProtoBody::PrefAnnounce(list) = &msg.body {
                    self.announced.entry(from.index).or_insert_with(|| list.clone());
                }
            }
        }

        if round == 0 {
            // Start one ΠBB per committee member.
            for member in self.committee.members().to_vec() {
                let input = if member == self.me { Some(pref_to_vec(&self.my_pref)) } else { None };
                let bb = OmissionTolerantBb::new(
                    self.committee.clone(),
                    self.me,
                    member,
                    input,
                    default_pref_vec(self.k),
                );
                self.bb.insert(member.index, bb);
            }
        }
        if round == 1 {
            // ΠBA on every other-side party's announced list (default when silent).
            for index in 0..self.k as u32 {
                let input =
                    self.announced.get(&index).cloned().unwrap_or_else(|| default_pref_vec(self.k));
                let ba = OmissionTolerantBa::new(self.committee.clone(), self.me, input);
                self.ba.insert(index, ba);
            }
        }

        // Step ΠBB instances at `round`, ΠBA instances at `round - 1`.
        for (&instance, bb) in self.bb.iter_mut() {
            let typed: Vec<(PartyId, bsm_broadcast::BbMsg<PrefVec>)> = inbox
                .iter()
                .filter_map(|(from, msg)| match (&msg.body, msg.instance == instance) {
                    (ProtoBody::Bb(m), true) => Some((*from, m.clone())),
                    _ => None,
                })
                .collect();
            for outgoing in bb.round(round, &typed) {
                out.push(Outgoing::new(
                    outgoing.to,
                    ProtoMsg { instance, body: ProtoBody::Bb(outgoing.payload) },
                ));
            }
        }
        if round >= 1 {
            for (&instance, ba) in self.ba.iter_mut() {
                let typed: Vec<(PartyId, bsm_broadcast::BaMsg<PrefVec>)> = inbox
                    .iter()
                    .filter_map(|(from, msg)| match (&msg.body, msg.instance == instance) {
                        (ProtoBody::Ba(m), true) => Some((*from, m.clone())),
                        _ => None,
                    })
                    .collect();
                for outgoing in ba.round(round - 1, &typed) {
                    out.push(Outgoing::new(
                        outgoing.to,
                        ProtoMsg { instance, body: ProtoBody::Ba(outgoing.payload) },
                    ));
                }
            }
        }

        if round == Self::committee_decision_round(&self.committee) && self.decision.is_none() {
            out.extend(self.decide_and_suggest());
        }
        out
    }

    /// Collects the sub-protocol outputs, runs `AG-S`, decides, and produces the
    /// suggestions for the other side (steps 5–10 of the committee-side code).
    fn decide_and_suggest(&mut self) -> Vec<Outgoing<ProtoMsg>> {
        let mut committee_lists: Vec<PreferenceList> = Vec::with_capacity(self.k);
        let mut other_lists: Vec<PreferenceList> = Vec::with_capacity(self.k);
        for index in 0..self.k as u32 {
            let bb_output = self.bb.get(&index).and_then(|bb| bb.output()).flatten();
            let ba_output = self.ba.get(&index).and_then(|ba| ba.output()).flatten();
            let (Some(bb_value), Some(ba_value)) = (bb_output, ba_output) else {
                // Some agreement returned ⊥ (only possible when the entire other side is
                // byzantine and caused omissions): decide to match nobody.
                self.decision = Some(None);
                return Vec::new();
            };
            committee_lists.push(
                vec_to_pref(self.k, &bb_value).unwrap_or_else(|| PreferenceList::identity(self.k)),
            );
            other_lists.push(
                vec_to_pref(self.k, &ba_value).unwrap_or_else(|| PreferenceList::identity(self.k)),
            );
        }
        let (left, right) = match self.committee_side {
            Side::Left => (committee_lists, other_lists),
            Side::Right => (other_lists, committee_lists),
        };
        let profile = PreferenceProfile::new(left, right).expect("reconstructed lists are valid");
        let matching = gale_shapley_left(&profile);

        let my_partner = match self.me.side {
            Side::Left => matching.right_of(self.me.idx()).map(|j| PartyId::right(j as u32)),
            Side::Right => matching.left_of(self.me.idx()).map(|i| PartyId::left(i as u32)),
        };
        self.decision = Some(my_partner);

        // Tell every other-side party whom to match with according to M.
        let mut out = Vec::new();
        for index in 0..self.k as u32 {
            let other_party = PartyId { side: self.other_side(), index };
            let suggested = match self.other_side() {
                Side::Right => matching.left_of(index as usize),
                Side::Left => matching.right_of(index as usize),
            };
            out.push(Outgoing::new(
                other_party,
                ProtoMsg { instance: 0, body: ProtoBody::Suggest(suggested.map(|i| i as u64)) },
            ));
        }
        out
    }

    fn other_round(
        &mut self,
        round: u64,
        inbox: &[(PartyId, ProtoMsg)],
    ) -> Vec<Outgoing<ProtoMsg>> {
        // Record suggestions from committee members whenever they arrive.
        for (from, msg) in inbox {
            if from.side == self.committee_side {
                if let ProtoBody::Suggest(partner) = &msg.body {
                    self.suggestions.entry(*from).or_insert(*partner);
                }
            }
        }
        let mut out = Vec::new();
        if round == 0 {
            let list = pref_to_vec(&self.my_pref);
            for member in self.committee.members() {
                out.push(Outgoing::new(
                    *member,
                    ProtoMsg { instance: 0, body: ProtoBody::PrefAnnounce(list.clone()) },
                ));
            }
        }
        if round >= Self::other_decision_round(&self.committee) && self.decision.is_none() {
            // Most common suggestion, ties broken deterministically.
            let mut counts: BTreeMap<Option<u64>, usize> = BTreeMap::new();
            for value in self.suggestions.values() {
                *counts.entry(*value).or_insert(0) += 1;
            }
            let winner = counts
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                .map(|(value, _)| value)
                .unwrap_or(None);
            let decision = winner.and_then(|idx| {
                u32::try_from(idx)
                    .ok()
                    .filter(|&i| (i as usize) < self.k)
                    .map(|i| PartyId { side: self.committee_side, index: i })
            });
            self.decision = Some(decision);
        }
        out
    }
}

impl RoundProtocol for BipartiteAuthBsm {
    type Msg = ProtoMsg;
    type Output = MatchDecision;

    fn round(&mut self, round: u64, inbox: &[(PartyId, ProtoMsg)]) -> Vec<Outgoing<ProtoMsg>> {
        if self.is_committee_member() {
            self.committee_round(round, inbox)
        } else {
            self.other_round(round, inbox)
        }
    }

    fn output(&self) -> Option<MatchDecision> {
        self.decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsm_matching::generators::uniform_profile;
    use bsm_net::PartySet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Lock-step fault-free run with all channels behaving ideally (the network-level
    /// behaviour, including relays and byzantine parties, is exercised by the harness
    /// integration tests).
    fn run_lockstep(
        k: usize,
        t_committee: usize,
        committee_side: Side,
        profile: &PreferenceProfile,
    ) -> BTreeMap<PartyId, MatchDecision> {
        let parties: Vec<PartyId> = PartySet::new(k).iter().collect();
        let mut protocols: BTreeMap<PartyId, BipartiteAuthBsm> = parties
            .iter()
            .map(|&p| {
                let list = match p.side {
                    Side::Left => profile.left(p.idx()).clone(),
                    Side::Right => profile.right(p.idx()).clone(),
                };
                (p, BipartiteAuthBsm::new(p, k, committee_side, t_committee, list))
            })
            .collect();
        let committee = protocols.values().next().unwrap().committee.clone();
        let total = BipartiteAuthBsm::total_rounds(&committee) + 2;
        let mut pending: BTreeMap<PartyId, Vec<(PartyId, ProtoMsg)>> = BTreeMap::new();
        for round in 0..total {
            let inboxes = std::mem::take(&mut pending);
            for &p in &parties {
                let inbox = inboxes.get(&p).cloned().unwrap_or_default();
                let out = protocols.get_mut(&p).unwrap().round(round, &inbox);
                for msg in out {
                    pending.entry(msg.to).or_default().push((p, msg.payload));
                }
            }
        }
        protocols.iter().map(|(&p, proto)| (p, proto.output().unwrap_or(None))).collect()
    }

    #[test]
    fn fault_free_run_matches_gale_shapley() {
        let mut rng = StdRng::seed_from_u64(5);
        for k in [1usize, 2, 4] {
            let t = (k.max(1) - 1) / 3;
            let profile = uniform_profile(k, &mut rng);
            let decisions = run_lockstep(k, t, Side::Left, &profile);
            let expected = gale_shapley_left(&profile);
            for (party, decision) in decisions {
                let expected_partner = match party.side {
                    Side::Left => expected.right_of(party.idx()).map(|j| PartyId::right(j as u32)),
                    Side::Right => expected.left_of(party.idx()).map(|i| PartyId::left(i as u32)),
                };
                assert_eq!(decision, expected_partner, "party {party} k={k}");
            }
        }
    }

    #[test]
    fn right_side_committee_is_supported() {
        let mut rng = StdRng::seed_from_u64(9);
        let k = 4usize;
        let profile = uniform_profile(k, &mut rng);
        let decisions = run_lockstep(k, 1, Side::Right, &profile);
        let expected = gale_shapley_left(&profile);
        for (party, decision) in decisions {
            let expected_partner = match party.side {
                Side::Left => expected.right_of(party.idx()).map(|j| PartyId::right(j as u32)),
                Side::Right => expected.left_of(party.idx()).map(|i| PartyId::left(i as u32)),
            };
            assert_eq!(decision, expected_partner, "party {party}");
        }
    }

    #[test]
    fn round_boundaries_are_consistent() {
        let committee = Committee::new((0..4).map(PartyId::left).collect(), 1);
        let dec = BipartiteAuthBsm::committee_decision_round(&committee);
        assert!(dec >= OmissionTolerantBb::<PrefVec>::total_rounds(&committee));
        assert_eq!(BipartiteAuthBsm::other_decision_round(&committee), dec + 1);
        assert_eq!(BipartiteAuthBsm::total_rounds(&committee), dec + 2);
    }

    #[test]
    fn relaxed_committee_bound_is_accepted_for_attack_experiments() {
        // Lemma 9 requires t < k/3, but the lower-bound experiments deliberately run the
        // protocol beyond that threshold; the constructor therefore only rejects
        // outright nonsensical bounds (t >= k, checked by `Committee::new`).
        let protocol =
            BipartiteAuthBsm::new(PartyId::left(0), 3, Side::Left, 1, PreferenceList::identity(3));
        assert!(protocol.output().is_none());
    }

    #[test]
    #[should_panic(expected = "must rank all")]
    fn wrong_list_length_panics() {
        let _ =
            BipartiteAuthBsm::new(PartyId::left(0), 4, Side::Left, 1, PreferenceList::identity(3));
    }
}
