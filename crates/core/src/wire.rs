//! The wire format of the composite bSM protocols.
//!
//! Every protocol plan runs many sub-protocol instances in parallel (one broadcast per
//! party, one agreement per opposite-side party, …). [`ProtoMsg`] multiplexes them with
//! an instance tag, and [`WireMsg`] adds the channel-simulation layer: either a direct
//! payload or the relay-request / relay-delivery pair used to simulate missing channels
//! (Lemmas 6, 8 and 10).

use bsm_broadcast::{BaMsg, BbMsg, CommitteeMsg, DolevStrongMsg};
use bsm_crypto::{DigestWriter, Digestible, Signature};
use bsm_matching::{PreferenceList, Side};
use bsm_net::PartyId;

/// A preference list in wire form: the ranked opposite-side indices, most preferred
/// first.
pub type PrefVec = Vec<u64>;

/// Converts a validated preference list into its wire form.
pub fn pref_to_vec(list: &PreferenceList) -> PrefVec {
    list.iter().map(|p| p as u64).collect()
}

/// Parses a wire-form preference list for a market of size `k`.
///
/// Returns `None` if the payload is not a permutation of `0..k` — the caller then
/// substitutes the default list, exactly as Lemma 1 prescribes for byzantine parties
/// that distribute garbage.
pub fn vec_to_pref(k: usize, value: &PrefVec) -> Option<PreferenceList> {
    if value.len() != k {
        return None;
    }
    let order: Vec<usize> = value
        .iter()
        .map(|&v| usize::try_from(v).ok().filter(|&idx| idx < k))
        .collect::<Option<Vec<_>>>()?;
    PreferenceList::new(order).ok()
}

/// The default preference list (identity order) assigned to parties whose broadcast
/// never produced a valid list.
pub fn default_pref(k: usize) -> PreferenceList {
    PreferenceList::identity(k)
}

/// The default preference list in wire form.
pub fn default_pref_vec(k: usize) -> PrefVec {
    pref_to_vec(&default_pref(k))
}

/// A sub-protocol payload, tagged with the instance it belongs to.
///
/// Instance numbering convention: for per-party broadcast instances, the instance is the
/// dense index of the *subject* party (the broadcaster for `Ds`/`Cb`/`Bb`, the announced
/// party for `Ba`); `PrefAnnounce` and `Suggest` use instance 0 (the sender identifies
/// the subject).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoMsg {
    /// The sub-protocol instance this payload belongs to.
    pub instance: u32,
    /// The payload.
    pub body: ProtoBody,
}

/// The payload of one sub-protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoBody {
    /// Dolev–Strong broadcast traffic (authenticated Lemma 1 plan).
    Ds(DolevStrongMsg<PrefVec>),
    /// Committee broadcast traffic (unauthenticated Lemma 1 plan).
    Cb(CommitteeMsg<PrefVec>),
    /// `ΠbSM`: a preference list announced directly to the committee side.
    PrefAnnounce(PrefVec),
    /// `ΠbSM`: `ΠBB` traffic among the committee side.
    Bb(BbMsg<PrefVec>),
    /// `ΠbSM`: `ΠBA` traffic among the committee side.
    Ba(BaMsg<PrefVec>),
    /// `ΠbSM`: a matching suggestion sent to an opposite-side party (`None` = match
    /// nobody; `Some(i)` = match committee-side party `i`).
    Suggest(Option<u64>),
}

impl Digestible for ProtoBody {
    fn feed(&self, writer: &mut DigestWriter) {
        match self {
            ProtoBody::Ds(m) => {
                writer.label("ds");
                m.feed(writer);
            }
            ProtoBody::Cb(m) => {
                writer.label("cb");
                m.feed(writer);
            }
            ProtoBody::PrefAnnounce(v) => {
                writer.label("announce");
                v.feed(writer);
            }
            ProtoBody::Bb(m) => {
                writer.label("bb");
                m.feed(writer);
            }
            ProtoBody::Ba(m) => {
                writer.label("ba");
                m.feed(writer);
            }
            ProtoBody::Suggest(s) => {
                writer.label("suggest");
                s.feed(writer);
            }
        }
    }
}

impl Digestible for ProtoMsg {
    fn feed(&self, writer: &mut DigestWriter) {
        writer.label("proto-msg").u64(u64::from(self.instance));
        self.body.feed(writer);
    }
}

/// A message on the simulated network: either a direct sub-protocol payload between
/// connected parties, or one hop of the channel-simulation relay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMsg {
    /// A direct payload (the sender is the envelope sender).
    Direct(ProtoMsg),
    /// "Please forward `inner` to `target` on my behalf" — sent by the origin to the
    /// relaying side. The origin is the envelope sender.
    RelayRequest {
        /// Final destination of the relayed payload.
        target: PartyId,
        /// Per-origin message identifier.
        id: u64,
        /// Slot at which the origin handed the message to the relays (the `τ` of the
        /// paper's `(P → P′, τ, id, m)` tuples).
        sent_at: u64,
        /// The relayed payload.
        inner: ProtoMsg,
        /// Origin signature over the relay digest (authenticated settings only).
        signature: Option<Signature>,
    },
    /// A relayed payload delivered to its target. The envelope sender is the relayer.
    RelayDeliver {
        /// The original sender.
        origin: PartyId,
        /// The final destination (must be the receiving party).
        target: PartyId,
        /// Per-origin message identifier.
        id: u64,
        /// Slot at which the origin handed the message to the relays.
        sent_at: u64,
        /// The relayed payload.
        inner: ProtoMsg,
        /// Origin signature over the relay digest (authenticated settings only).
        signature: Option<Signature>,
    },
}

/// Maps a party to its dense PKI key index for a market of size `k` (left parties first,
/// then right parties).
pub fn dense_key_index(party: PartyId, k: usize) -> u32 {
    party.dense(k) as u32
}

/// The side-local index of a dense index.
pub fn party_from_dense(dense: u32, k: usize) -> PartyId {
    PartyId::from_dense(dense as usize, k)
}

/// Lists all parties of a side, in index order.
pub fn side_parties(side: Side, k: usize) -> Vec<PartyId> {
    (0..k as u32).map(|i| PartyId { side, index: i }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsm_crypto::Digest;

    #[test]
    fn pref_roundtrip() {
        let list = PreferenceList::new(vec![2, 0, 1]).unwrap();
        let wire = pref_to_vec(&list);
        assert_eq!(wire, vec![2, 0, 1]);
        assert_eq!(vec_to_pref(3, &wire), Some(list));
    }

    #[test]
    fn invalid_wire_lists_are_rejected() {
        assert_eq!(vec_to_pref(3, &vec![0, 0, 1]), None);
        assert_eq!(vec_to_pref(3, &vec![0, 1]), None);
        assert_eq!(vec_to_pref(3, &vec![0, 1, 5]), None);
        assert_eq!(vec_to_pref(2, &default_pref_vec(2)), Some(default_pref(2)));
    }

    #[test]
    fn digests_distinguish_bodies_and_instances() {
        let a = ProtoMsg { instance: 0, body: ProtoBody::PrefAnnounce(vec![0, 1]) };
        let b = ProtoMsg { instance: 1, body: ProtoBody::PrefAnnounce(vec![0, 1]) };
        let c = ProtoMsg { instance: 0, body: ProtoBody::Suggest(Some(1)) };
        let d = ProtoMsg { instance: 0, body: ProtoBody::Suggest(None) };
        let digests = [Digest::of(&a), Digest::of(&b), Digest::of(&c), Digest::of(&d)];
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(digests[i], digests[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn dense_index_helpers() {
        assert_eq!(dense_key_index(PartyId::left(2), 4), 2);
        assert_eq!(dense_key_index(PartyId::right(1), 4), 5);
        assert_eq!(party_from_dense(5, 4), PartyId::right(1));
        assert_eq!(side_parties(Side::Right, 2), vec![PartyId::right(0), PartyId::right(1)]);
    }
}
