//! Simplified stable matching (sSM, §3) as a runnable problem.
//!
//! In sSM every party's input is a single *favorite* on the other side instead of a full
//! preference list, and stability is replaced by simplified stability (mutual favorites
//! must be matched). Lemma 2 shows that any bSM protocol solves sSM after ranking the
//! favorite first — this module packages that reduction so the experiments can exercise
//! sSM scenarios directly (all of the paper's impossibility arguments are stated for
//! sSM).

use crate::harness::{AdversarySpec, HarnessError, Scenario, ScenarioOutcome};
use crate::problem::{Setting, SsmInstance};
use crate::properties::{check_ssm, PropertyViolation};
use bsm_matching::PreferenceProfile;
use bsm_net::PartyId;
use std::collections::BTreeSet;

/// The outcome of an sSM run: the underlying bSM outcome plus the violations measured
/// against the *simplified* property set.
#[derive(Debug, Clone)]
pub struct SsmOutcome {
    /// The underlying bSM run.
    pub bsm: ScenarioOutcome,
    /// Violations of termination, symmetry, non-competition and simplified stability.
    pub violations: Vec<PropertyViolation>,
}

/// A simplified stable matching scenario: favorites as inputs, solved through the
/// Lemma 2 reduction.
#[derive(Debug, Clone)]
pub struct SsmScenario {
    setting: Setting,
    instance: SsmInstance,
    adversary: AdversarySpec,
    seed: u64,
}

impl SsmScenario {
    /// Creates an sSM scenario.
    ///
    /// `left_favorites[i]` / `right_favorites[j]` are the favorite opposite-side indices
    /// of left party `i` / right party `j`; `corrupted` lists the byzantine parties.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::ProfileMismatch`] if the favorite vectors do not have
    /// exactly `k` entries each.
    pub fn new(
        setting: Setting,
        left_favorites: Vec<usize>,
        right_favorites: Vec<usize>,
        corrupted: BTreeSet<PartyId>,
        adversary: AdversarySpec,
        seed: u64,
    ) -> Result<Self, HarnessError> {
        let k = setting.k();
        if left_favorites.len() != k || right_favorites.len() != k {
            return Err(HarnessError::ProfileMismatch {
                expected: k,
                found: left_favorites.len().min(right_favorites.len()),
            });
        }
        let instance = SsmInstance { left_favorites, right_favorites, corrupted };
        Ok(Self { setting, instance, adversary, seed })
    }

    /// The sSM inputs.
    pub fn instance(&self) -> &SsmInstance {
        &self.instance
    }

    /// The full-preference profile produced by the Lemma 2 reduction.
    pub fn reduced_profile(&self) -> PreferenceProfile {
        self.instance.to_bsm().profile
    }

    /// Runs the scenario: favorites are expanded into favorite-first preference lists
    /// (Lemma 2), the appropriate bSM protocol runs, and the outputs are checked against
    /// the simplified property set.
    ///
    /// # Errors
    ///
    /// Propagates the underlying harness errors (in particular
    /// [`HarnessError::Unsolvable`] for settings outside Theorems 2–7).
    pub fn run(&self) -> Result<SsmOutcome, HarnessError> {
        let bsm_instance = self.instance.to_bsm();
        let mut builder = Scenario::builder(self.setting)
            .profile(bsm_instance.profile.clone())
            .adversary(self.adversary)
            .seed(self.seed);
        let left: Vec<u32> =
            self.instance.corrupted.iter().filter(|p| p.is_left()).map(|p| p.index).collect();
        let right: Vec<u32> =
            self.instance.corrupted.iter().filter(|p| p.is_right()).map(|p| p.index).collect();
        builder = builder.corrupt_left(left).corrupt_right(right);
        let outcome = builder.build()?.run()?;
        let mut instance = self.instance.clone();
        // Property checks are made against the parties that actually ended up corrupted.
        instance.corrupted = outcome.corrupted.clone();
        let violations = check_ssm(&instance, &outcome.outputs);
        Ok(SsmOutcome { bsm: outcome, violations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::AuthMode;
    use bsm_net::Topology;

    #[test]
    fn mutual_favorites_are_matched_in_feasible_settings() {
        let setting =
            Setting::new(3, Topology::FullyConnected, AuthMode::Authenticated, 1, 1).unwrap();
        // L0 and R2 are mutual favorites; L1/R1 corrupted.
        let scenario = SsmScenario::new(
            setting,
            vec![2, 0, 1],
            vec![1, 2, 0],
            [PartyId::left(1), PartyId::right(1)].into_iter().collect(),
            AdversarySpec::Lying,
            5,
        )
        .unwrap();
        assert_eq!(scenario.instance().left_favorites, vec![2, 0, 1]);
        assert_eq!(scenario.reduced_profile().left(0).favorite(), 2);
        let outcome = scenario.run().unwrap();
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
        assert!(outcome.bsm.violations.is_empty());
        assert_eq!(outcome.bsm.outputs[&PartyId::left(0)], Some(PartyId::right(2)));
        assert_eq!(outcome.bsm.outputs[&PartyId::right(2)], Some(PartyId::left(0)));
    }

    #[test]
    fn favorite_vectors_must_have_length_k() {
        let setting =
            Setting::new(3, Topology::FullyConnected, AuthMode::Authenticated, 0, 0).unwrap();
        let result = SsmScenario::new(
            setting,
            vec![0, 1],
            vec![0, 1, 2],
            BTreeSet::new(),
            AdversarySpec::Crash,
            0,
        );
        assert!(matches!(result, Err(HarnessError::ProfileMismatch { .. })));
    }

    #[test]
    fn unsolvable_settings_propagate_the_impossibility() {
        let setting =
            Setting::new(3, Topology::FullyConnected, AuthMode::Unauthenticated, 1, 1).unwrap();
        let scenario = SsmScenario::new(
            setting,
            vec![0, 1, 2],
            vec![0, 1, 2],
            BTreeSet::new(),
            AdversarySpec::Crash,
            0,
        )
        .unwrap();
        assert!(matches!(scenario.run(), Err(HarnessError::Unsolvable(_))));
    }
}
