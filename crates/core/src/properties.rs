//! Checkable versions of the bSM and sSM correctness properties.
//!
//! Definition 1 requires four properties of honest parties' outputs — termination,
//! symmetry, stability and non-competition — and the simplified problem of §3 replaces
//! stability with simplified stability. The functions here take a run's outputs plus the
//! honest inputs and return every violation found, so the harness, the integration tests
//! and the experiment binaries can all report on exactly the properties the paper
//! defines.

use crate::problem::{BsmInstance, MatchDecision, SsmInstance};
use bsm_matching::Side;
use bsm_net::{PartyId, PartySet};
use std::collections::BTreeMap;
use std::fmt;

/// A violation of one of the bSM / sSM properties.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PropertyViolation {
    /// An honest party produced no output.
    Termination {
        /// The party that did not decide.
        party: PartyId,
    },
    /// Honest `party` decided to match honest `partner`, but `partner` did not
    /// reciprocate.
    Symmetry {
        /// The party whose choice is not reciprocated.
        party: PartyId,
        /// The partner it chose.
        partner: PartyId,
        /// What the partner decided instead.
        partner_decided: MatchDecision,
    },
    /// Two honest parties `(left, right)` form a blocking pair.
    Stability {
        /// The left member of the blocking pair.
        left: PartyId,
        /// The right member of the blocking pair.
        right: PartyId,
    },
    /// Two honest parties decided to match the same party.
    NonCompetition {
        /// First competing party.
        first: PartyId,
        /// Second competing party.
        second: PartyId,
        /// The contested partner.
        target: PartyId,
    },
    /// Two honest parties are each other's favorites but did not match (sSM only).
    SimplifiedStability {
        /// The left member of the mutual-favorite pair.
        left: PartyId,
        /// The right member of the mutual-favorite pair.
        right: PartyId,
    },
    /// A party decided to match a party on its own side (malformed output).
    MalformedOutput {
        /// The party with the malformed output.
        party: PartyId,
        /// The malformed decision.
        decision: MatchDecision,
    },
}

impl fmt::Display for PropertyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyViolation::Termination { party } => {
                write!(f, "termination: honest {party} produced no output")
            }
            PropertyViolation::Symmetry { party, partner, partner_decided } => write!(
                f,
                "symmetry: {party} matched {partner} but {partner} decided {partner_decided:?}"
            ),
            PropertyViolation::Stability { left, right } => {
                write!(f, "stability: honest pair ({left}, {right}) is blocking")
            }
            PropertyViolation::NonCompetition { first, second, target } => {
                write!(f, "non-competition: {first} and {second} both matched {target}")
            }
            PropertyViolation::SimplifiedStability { left, right } => write!(
                f,
                "simplified stability: {left} and {right} are mutual favorites but not matched"
            ),
            PropertyViolation::MalformedOutput { party, decision } => {
                write!(f, "malformed output: {party} decided {decision:?}")
            }
        }
    }
}

/// The outputs of one protocol run: the decision of every party that decided.
///
/// Parties that are corrupted must not appear (the harness strips them); parties that
/// never decided are simply absent.
pub type Outputs = BTreeMap<PartyId, MatchDecision>;

fn honest_parties(
    instance_corrupted: &std::collections::BTreeSet<PartyId>,
    k: usize,
) -> Vec<PartyId> {
    PartySet::new(k).iter().filter(|p| !instance_corrupted.contains(p)).collect()
}

fn check_common(outputs: &Outputs, honest: &[PartyId], violations: &mut Vec<PropertyViolation>) {
    // Termination.
    for &party in honest {
        if !outputs.contains_key(&party) {
            violations.push(PropertyViolation::Termination { party });
        }
    }
    // Malformed outputs (same-side decisions).
    for &party in honest {
        if let Some(Some(target)) = outputs.get(&party) {
            if target.side == party.side {
                violations
                    .push(PropertyViolation::MalformedOutput { party, decision: Some(*target) });
            }
        }
    }
    // Symmetry among honest pairs.
    for &party in honest {
        let Some(Some(partner)) = outputs.get(&party) else { continue };
        if !honest.contains(partner) {
            continue;
        }
        let partner_decided = outputs.get(partner).copied().flatten();
        if partner_decided != Some(party) {
            violations.push(PropertyViolation::Symmetry {
                party,
                partner: *partner,
                partner_decided,
            });
        }
    }
    // Non-competition.
    for (i, &first) in honest.iter().enumerate() {
        let Some(Some(target_a)) = outputs.get(&first) else { continue };
        for &second in honest.iter().skip(i + 1) {
            let Some(Some(target_b)) = outputs.get(&second) else { continue };
            if target_a == target_b {
                violations.push(PropertyViolation::NonCompetition {
                    first,
                    second,
                    target: *target_a,
                });
            }
        }
    }
}

/// Checks the four bSM properties of Definition 1 against a run's outputs.
///
/// Returns every violation found (empty = the run satisfies bSM for this instance).
pub fn check_bsm(instance: &BsmInstance, outputs: &Outputs) -> Vec<PropertyViolation> {
    let k = instance.profile.k();
    let honest = honest_parties(&instance.corrupted, k);
    let mut violations = Vec::new();
    check_common(outputs, &honest, &mut violations);

    // Stability: no blocking pair of honest parties.
    for &left in honest.iter().filter(|p| p.side == Side::Left) {
        for &right in honest.iter().filter(|p| p.side == Side::Right) {
            let left_out = outputs.get(&left).copied().flatten();
            let right_out = outputs.get(&right).copied().flatten();
            if left_out == Some(right) {
                continue;
            }
            let left_prefers = match left_out {
                None => true,
                Some(current) => {
                    // `current` is a right-side party (malformed outputs are reported
                    // separately; skip them here).
                    if current.side != Side::Right {
                        continue;
                    }
                    instance.profile.left(left.idx()).prefers(right.idx(), current.idx())
                }
            };
            if !left_prefers {
                continue;
            }
            let right_prefers = match right_out {
                None => true,
                Some(current) => {
                    if current.side != Side::Left {
                        continue;
                    }
                    instance.profile.right(right.idx()).prefers(left.idx(), current.idx())
                }
            };
            if right_prefers {
                violations.push(PropertyViolation::Stability { left, right });
            }
        }
    }
    violations
}

/// Checks the sSM properties (§3): termination, symmetry, non-competition and simplified
/// stability.
pub fn check_ssm(instance: &SsmInstance, outputs: &Outputs) -> Vec<PropertyViolation> {
    let k = instance.left_favorites.len();
    let honest = honest_parties(&instance.corrupted, k);
    let mut violations = Vec::new();
    check_common(outputs, &honest, &mut violations);

    // Simplified stability: mutual favorites must be matched to each other.
    for &left in honest.iter().filter(|p| p.side == Side::Left) {
        for &right in honest.iter().filter(|p| p.side == Side::Right) {
            let mutual = instance.left_favorites[left.idx()] == right.idx()
                && instance.right_favorites[right.idx()] == left.idx();
            if !mutual {
                continue;
            }
            let left_out = outputs.get(&left).copied().flatten();
            let right_out = outputs.get(&right).copied().flatten();
            if left_out != Some(right) || right_out != Some(left) {
                violations.push(PropertyViolation::SimplifiedStability { left, right });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsm_matching::PreferenceProfile;
    use std::collections::BTreeSet;

    fn identity_instance(k: usize, corrupted: &[PartyId]) -> BsmInstance {
        BsmInstance::new(
            PreferenceProfile::identity(k).unwrap(),
            corrupted.iter().copied().collect(),
        )
    }

    fn outputs_of(pairs: &[(PartyId, MatchDecision)]) -> Outputs {
        pairs.iter().cloned().collect()
    }

    #[test]
    fn perfect_identity_matching_passes() {
        let instance = identity_instance(3, &[]);
        let mut outputs = Outputs::new();
        for i in 0..3u32 {
            outputs.insert(PartyId::left(i), Some(PartyId::right(i)));
            outputs.insert(PartyId::right(i), Some(PartyId::left(i)));
        }
        assert!(check_bsm(&instance, &outputs).is_empty());
    }

    #[test]
    fn missing_output_is_a_termination_violation() {
        let instance = identity_instance(2, &[]);
        let outputs = outputs_of(&[
            (PartyId::left(0), Some(PartyId::right(0))),
            (PartyId::right(0), Some(PartyId::left(0))),
            (PartyId::left(1), Some(PartyId::right(1))),
        ]);
        let violations = check_bsm(&instance, &outputs);
        assert!(violations.iter().any(
            |v| matches!(v, PropertyViolation::Termination { party } if *party == PartyId::right(1))
        ));
    }

    #[test]
    fn corrupted_parties_are_exempt_from_all_checks() {
        let instance = identity_instance(2, &[PartyId::right(1)]);
        // Right 1 is byzantine: left 1 may match it without reciprocation, and left 1
        // being "stuck" with a byzantine partner it ranks below nobody is fine as long
        // as no honest blocking pair exists.
        let outputs = outputs_of(&[
            (PartyId::left(0), Some(PartyId::right(0))),
            (PartyId::right(0), Some(PartyId::left(0))),
            (PartyId::left(1), Some(PartyId::right(1))),
        ]);
        assert!(check_bsm(&instance, &outputs).is_empty());
    }

    #[test]
    fn asymmetric_honest_pair_is_reported() {
        let instance = identity_instance(2, &[]);
        let outputs = outputs_of(&[
            (PartyId::left(0), Some(PartyId::right(0))),
            (PartyId::right(0), None),
            (PartyId::left(1), Some(PartyId::right(1))),
            (PartyId::right(1), Some(PartyId::left(1))),
        ]);
        let violations = check_bsm(&instance, &outputs);
        assert!(violations.iter().any(|v| matches!(v, PropertyViolation::Symmetry { .. })));
        // The unmatched pair (L0 unreciprocated, R0 nobody) also blocks under identity
        // preferences.
        assert!(violations.iter().any(|v| matches!(v, PropertyViolation::Stability { .. })));
    }

    #[test]
    fn two_unmatched_honest_parties_block() {
        let instance = identity_instance(2, &[]);
        let outputs = outputs_of(&[
            (PartyId::left(0), None),
            (PartyId::right(0), None),
            (PartyId::left(1), Some(PartyId::right(1))),
            (PartyId::right(1), Some(PartyId::left(1))),
        ]);
        let violations = check_bsm(&instance, &outputs);
        // The unmatched pair (L0, R0) blocks; under identity preferences the matched
        // parties L1 and R1 also prefer the unmatched agents, so (L0, R1) and (L1, R0)
        // block as well. All violations are stability violations.
        assert!(violations.contains(&PropertyViolation::Stability {
            left: PartyId::left(0),
            right: PartyId::right(0)
        }));
        assert_eq!(violations.len(), 3);
        assert!(violations.iter().all(|v| matches!(v, PropertyViolation::Stability { .. })));
    }

    #[test]
    fn non_competition_violation_is_reported() {
        let instance = identity_instance(2, &[PartyId::right(1)]);
        // Both honest left parties claim right 0.
        let outputs = outputs_of(&[
            (PartyId::left(0), Some(PartyId::right(0))),
            (PartyId::left(1), Some(PartyId::right(0))),
            (PartyId::right(0), Some(PartyId::left(0))),
        ]);
        let violations = check_bsm(&instance, &outputs);
        assert!(violations
            .iter()
            .any(|v| matches!(v, PropertyViolation::NonCompetition { target, .. } if *target == PartyId::right(0))));
    }

    #[test]
    fn same_side_output_is_malformed() {
        let instance = identity_instance(2, &[]);
        let outputs = outputs_of(&[
            (PartyId::left(0), Some(PartyId::left(1))),
            (PartyId::left(1), Some(PartyId::right(1))),
            (PartyId::right(0), None),
            (PartyId::right(1), Some(PartyId::left(1))),
        ]);
        let violations = check_bsm(&instance, &outputs);
        assert!(violations.iter().any(|v| matches!(v, PropertyViolation::MalformedOutput { .. })));
    }

    #[test]
    fn blocking_pair_respects_preferences_not_just_matching() {
        // Left 0 prefers right 1 over right 0; right 1 prefers left 0 over left 1.
        let profile = PreferenceProfile::from_rows(
            vec![vec![1, 0], vec![0, 1]],
            vec![vec![0, 1], vec![0, 1]],
        )
        .unwrap();
        let instance = BsmInstance::new(profile, BTreeSet::new());
        // Matching L0-R0 and L1-R1 leaves (L0, R1) blocking.
        let outputs = outputs_of(&[
            (PartyId::left(0), Some(PartyId::right(0))),
            (PartyId::right(0), Some(PartyId::left(0))),
            (PartyId::left(1), Some(PartyId::right(1))),
            (PartyId::right(1), Some(PartyId::left(1))),
        ]);
        let violations = check_bsm(&instance, &outputs);
        assert_eq!(
            violations,
            vec![PropertyViolation::Stability { left: PartyId::left(0), right: PartyId::right(1) }]
        );
    }

    #[test]
    fn ssm_checks_mutual_favorites() {
        let ssm = SsmInstance {
            left_favorites: vec![0, 1],
            right_favorites: vec![0, 0],
            corrupted: BTreeSet::new(),
        };
        // L0 and R0 are mutual favorites; everyone outputs nobody.
        let outputs = outputs_of(&[
            (PartyId::left(0), None),
            (PartyId::left(1), None),
            (PartyId::right(0), None),
            (PartyId::right(1), None),
        ]);
        let violations = check_ssm(&ssm, &outputs);
        assert_eq!(
            violations,
            vec![PropertyViolation::SimplifiedStability {
                left: PartyId::left(0),
                right: PartyId::right(0)
            }]
        );

        // Matching the mutual favorites satisfies sSM even if others stay unmatched.
        let outputs = outputs_of(&[
            (PartyId::left(0), Some(PartyId::right(0))),
            (PartyId::right(0), Some(PartyId::left(0))),
            (PartyId::left(1), None),
            (PartyId::right(1), None),
        ]);
        assert!(check_ssm(&ssm, &outputs).is_empty());
    }

    #[test]
    fn violation_display_is_informative() {
        let violations = [
            PropertyViolation::Termination { party: PartyId::left(0) },
            PropertyViolation::Symmetry {
                party: PartyId::left(0),
                partner: PartyId::right(1),
                partner_decided: None,
            },
            PropertyViolation::Stability { left: PartyId::left(0), right: PartyId::right(0) },
            PropertyViolation::NonCompetition {
                first: PartyId::left(0),
                second: PartyId::left(1),
                target: PartyId::right(0),
            },
            PropertyViolation::SimplifiedStability {
                left: PartyId::left(0),
                right: PartyId::right(0),
            },
            PropertyViolation::MalformedOutput { party: PartyId::left(0), decision: None },
        ];
        for v in violations {
            assert!(!v.to_string().is_empty());
        }
    }
}
