//! The scenario harness: build a setting, pick inputs and an adversary, run the
//! appropriate protocol on the synchronous simulator, and verify every bSM property.

use crate::problem::{AuthMode, BsmInstance, MatchDecision, Setting, SettingError};
use crate::properties::{check_bsm, Outputs, PropertyViolation};
use crate::protocols::{BipartiteAuthBsm, BroadcastBsm, BroadcastFlavor};
use crate::relay::{RelayEngine, RelayMode};
use crate::runtime::{BsmProtocol, PartyRuntime};
use crate::solvability::{characterize, Impossibility, ProtocolPlan, Solvability};
use crate::strategies::{BsmPuppetAdversary, GarbageAdversary};
use crate::wire::{dense_key_index, WireMsg};
use bsm_broadcast::Committee;
use bsm_crypto::{KeyId, Pki};
use bsm_matching::generators::uniform_profile;
use bsm_matching::{PreferenceProfile, Side};
use bsm_net::{
    Adversary, CorruptionBudget, FaultSchedule, FaultSpec, Metrics, PartyId, PartySet,
    PassiveAdversary, SilentProcess, SimError, SyncNetwork, Topology,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The byzantine behaviour installed for the corrupted parties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AdversarySpec {
    /// Corrupted parties crash from the start (send nothing at all).
    Crash,
    /// Corrupted parties run the honest protocol but lie about their preferences
    /// (seeded random lists different from their nominal inputs).
    Lying,
    /// Corrupted parties flood honest parties with well-formed garbage messages.
    Garbage,
}

impl AdversarySpec {
    /// Every strategy of the library, in the canonical campaign-grid order.
    pub const ALL: [AdversarySpec; 3] =
        [AdversarySpec::Crash, AdversarySpec::Lying, AdversarySpec::Garbage];

    /// A short lowercase name for experiment tables and exports.
    pub fn name(&self) -> &'static str {
        match self {
            AdversarySpec::Crash => "crash",
            AdversarySpec::Lying => "lying",
            AdversarySpec::Garbage => "garbage",
        }
    }
}

impl fmt::Display for AdversarySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors produced while building or running a scenario.
#[derive(Debug)]
#[non_exhaustive]
pub enum HarnessError {
    /// The setting itself is invalid.
    Setting(SettingError),
    /// The setting is unsolvable; running requires forcing a plan explicitly.
    Unsolvable(Impossibility),
    /// The profile size does not match the setting.
    ProfileMismatch {
        /// `k` of the setting.
        expected: usize,
        /// `k` of the profile.
        found: usize,
    },
    /// More corruptions were requested than the budget allows, or another simulator
    /// configuration error occurred.
    Sim(SimError),
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Setting(e) => write!(f, "invalid setting: {e}"),
            HarnessError::Unsolvable(imp) => write!(f, "{imp}"),
            HarnessError::ProfileMismatch { expected, found } => {
                write!(f, "profile has k = {found} but the setting has k = {expected}")
            }
            HarnessError::Sim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<SimError> for HarnessError {
    fn from(value: SimError) -> Self {
        HarnessError::Sim(value)
    }
}

impl From<SettingError> for HarnessError {
    fn from(value: SettingError) -> Self {
        HarnessError::Setting(value)
    }
}

/// The result of running one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The protocol plan that was executed.
    pub plan: ProtocolPlan,
    /// Decisions of the parties that stayed honest.
    pub outputs: Outputs,
    /// Parties corrupted during the run.
    pub corrupted: BTreeSet<PartyId>,
    /// Violations of the bSM properties (empty = the run satisfies Definition 1).
    pub violations: Vec<PropertyViolation>,
    /// Whether every honest party decided within the slot budget.
    pub all_honest_decided: bool,
    /// Number of simulated slots.
    pub slots: u64,
    /// Message accounting.
    pub metrics: Metrics,
    /// Number of signatures produced during this run (honest parties and adversary
    /// alike; 0 for unauthenticated plans).
    ///
    /// Counted as a before/after delta on the scenario's shared PKI, so concurrent
    /// `run()` calls on the *same* `Scenario` value may attribute signatures across
    /// each other's counts. Sequential re-runs are exact, and campaign workers build
    /// one `Scenario` per run, which keeps the accounting exact there too.
    pub signatures: u64,
}

/// A fully specified experiment: setting + inputs + corrupted set + adversary.
#[derive(Debug, Clone)]
pub struct Scenario {
    setting: Setting,
    profile: PreferenceProfile,
    corrupted: BTreeSet<PartyId>,
    adversary: AdversarySpec,
    faults: FaultSpec,
    seed: u64,
    max_slots: Option<u64>,
    env: ScenarioEnv,
}

/// Builder for [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    setting: Setting,
    profile: Option<PreferenceProfile>,
    corrupted: BTreeSet<PartyId>,
    adversary: AdversarySpec,
    faults: FaultSpec,
    seed: u64,
    max_slots: Option<u64>,
}

impl Scenario {
    /// Starts building a scenario for `setting`.
    pub fn builder(setting: Setting) -> ScenarioBuilder {
        ScenarioBuilder {
            setting,
            profile: None,
            corrupted: BTreeSet::new(),
            adversary: AdversarySpec::Crash,
            faults: FaultSpec::NONE,
            seed: 0,
            max_slots: None,
        }
    }

    /// The setting this scenario runs in.
    pub fn setting(&self) -> &Setting {
        &self.setting
    }

    /// The honest preference profile.
    pub fn profile(&self) -> &PreferenceProfile {
        &self.profile
    }

    /// The corrupted parties.
    pub fn corrupted(&self) -> &BTreeSet<PartyId> {
        &self.corrupted
    }

    /// The public-key directory used by this scenario's runs.
    ///
    /// Adversaries legitimately hold the signing keys of the corrupted parties; the
    /// tailored attacks obtain them through this directory together with
    /// [`Scenario::key_id_of`].
    pub fn pki(&self) -> &Pki {
        &self.env.pki
    }

    /// The key id assigned to `party` in this scenario's PKI (dense numbering).
    pub fn key_id_of(&self, party: PartyId) -> Option<KeyId> {
        self.env.key_of.get(&party).copied()
    }

    /// The shared run environment (PKI, key directory, runtime construction) — used by
    /// [`crate::script::ScriptedAdversary`] to build honest-code puppets that are
    /// byte-identical to the ones [`Scenario::run`] builds for [`AdversarySpec::Lying`].
    pub(crate) fn env(&self) -> &ScenarioEnv {
        &self.env
    }

    /// Runs the scenario with the plan prescribed by the solvability characterization.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Unsolvable`] when Theorems 2–7 rule the setting out, and
    /// propagates simulator configuration errors.
    pub fn run(&self) -> Result<ScenarioOutcome, HarnessError> {
        match characterize(&self.setting) {
            Solvability::Solvable(plan) => self.run_with_plan(plan),
            Solvability::Unsolvable(imp) => Err(HarnessError::Unsolvable(imp)),
        }
    }

    /// Runs the scenario with an explicitly chosen plan — including plans outside their
    /// theorem's conditions, which is how the impossibility experiments demonstrate
    /// property violations.
    ///
    /// # Errors
    ///
    /// Propagates simulator configuration errors (e.g. corruption budget exceeded).
    pub fn run_with_plan(&self, plan: ProtocolPlan) -> Result<ScenarioOutcome, HarnessError> {
        let adversary = self.build_adversary(&self.env, plan);
        self.execute(plan, adversary)
    }

    /// Runs the scenario with a custom adversary (used by the tailored impossibility
    /// attacks of [`crate::attacks`]).
    ///
    /// # Errors
    ///
    /// Propagates simulator configuration errors (e.g. corruption budget exceeded).
    pub fn run_with_adversary(
        &self,
        plan: ProtocolPlan,
        adversary: Box<dyn Adversary<WireMsg>>,
    ) -> Result<ScenarioOutcome, HarnessError> {
        self.execute(plan, adversary)
    }

    fn execute(
        &self,
        plan: ProtocolPlan,
        adversary: Box<dyn Adversary<WireMsg>>,
    ) -> Result<ScenarioOutcome, HarnessError> {
        let env = &self.env;
        // Snapshot the signature counter so repeated runs of the same scenario (which
        // share one PKI) still report the per-run cost; taken before the runtimes are
        // registered because protocol constructors may already sign.
        let signatures_before = env.pki.signatures_issued();
        let slots_per_round = env.slots_per_round();
        let total_rounds = env.total_rounds(plan);
        // Under a fault schedule the automatic budget is extended by the worst case the
        // plan can cost (partitioned slots, crash outage, jitter per round) — a pure
        // function of the spec, so the budget stays identical across threads/shards.
        let max_slots = self.max_slots.unwrap_or_else(|| {
            slots_per_round * (total_rounds + 4) + 8 + self.faults.slot_slack(total_rounds + 4)
        });

        let mut net: SyncNetwork<WireMsg, MatchDecision> = SyncNetwork::new(
            self.setting.k(),
            self.setting.topology(),
            CorruptionBudget::new(self.setting.t_l(), self.setting.t_r()),
        );
        for party in env.parties.iter() {
            if self.corrupted.contains(&party) {
                net.register(Box::new(SilentProcess::new(party)))?;
            } else {
                net.register(Box::new(env.build_runtime(party, plan, &self.profile)))?;
            }
        }
        for &party in &self.corrupted {
            net.corrupt(party)?;
        }
        net.set_adversary(adversary);
        if self.faults != FaultSpec::NONE {
            net.set_fault_injector(Box::new(FaultSchedule::new(self.faults, self.seed)));
        }

        let outcome = net.run(max_slots)?;
        let signatures = env.pki.signatures_issued() - signatures_before;
        let instance = BsmInstance::new(self.profile.clone(), outcome.corrupted.clone());
        let violations = check_bsm(&instance, &outcome.outputs);
        Ok(ScenarioOutcome {
            plan,
            outputs: outcome.outputs,
            corrupted: outcome.corrupted,
            violations,
            all_honest_decided: outcome.all_honest_decided,
            slots: outcome.slots,
            metrics: outcome.metrics,
            signatures,
        })
    }

    fn build_adversary(
        &self,
        env: &ScenarioEnv,
        plan: ProtocolPlan,
    ) -> Box<dyn Adversary<WireMsg>> {
        match self.adversary {
            AdversarySpec::Crash => Box::new(PassiveAdversary),
            AdversarySpec::Garbage => Box::new(GarbageAdversary::new(self.seed, 2)),
            AdversarySpec::Lying => {
                let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0x11e5));
                let mut puppets = BsmPuppetAdversary::new();
                let lying_profile = uniform_profile(self.setting.k(), &mut rng);
                for &party in &self.corrupted {
                    let runtime = env.build_runtime(party, plan, &lying_profile);
                    puppets.add_puppet(party, Box::new(runtime));
                }
                Box::new(puppets)
            }
        }
    }
}

impl ScenarioBuilder {
    /// Uses an explicit preference profile instead of a seeded random one.
    pub fn profile(mut self, profile: PreferenceProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Marks left-side parties as corrupted.
    pub fn corrupt_left(mut self, indices: impl IntoIterator<Item = u32>) -> Self {
        self.corrupted.extend(indices.into_iter().map(PartyId::left));
        self
    }

    /// Marks right-side parties as corrupted.
    pub fn corrupt_right(mut self, indices: impl IntoIterator<Item = u32>) -> Self {
        self.corrupted.extend(indices.into_iter().map(PartyId::right));
        self
    }

    /// Selects the byzantine behaviour (default: crash).
    pub fn adversary(mut self, spec: AdversarySpec) -> Self {
        self.adversary = spec;
        self
    }

    /// Installs a declarative fault plan (default: [`FaultSpec::NONE`]).
    ///
    /// The plan's stochastic axes draw from a stream derived from this scenario's
    /// seed, distinct from the profile/adversary streams, and a non-`NONE` plan
    /// extends the automatic slot budget by the plan's worst-case cost. Non-decision
    /// under faults is legitimate data: the run reports `all_honest_decided = false`
    /// instead of erroring.
    pub fn faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Seeds profile generation and randomized adversaries (default: 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the automatic slot budget.
    pub fn max_slots(mut self, max_slots: u64) -> Self {
        self.max_slots = Some(max_slots);
        self
    }

    /// Finalizes the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::ProfileMismatch`] if an explicit profile has the wrong
    /// size and [`HarnessError::Sim`] if the corrupted set exceeds the budget.
    pub fn build(self) -> Result<Scenario, HarnessError> {
        let k = self.setting.k();
        let profile = match self.profile {
            Some(profile) => {
                if profile.k() != k {
                    return Err(HarnessError::ProfileMismatch { expected: k, found: profile.k() });
                }
                profile
            }
            None => uniform_profile(k, &mut StdRng::seed_from_u64(self.seed)),
        };
        let left_corrupted = self.corrupted.iter().filter(|p| p.is_left()).count();
        let right_corrupted = self.corrupted.iter().filter(|p| p.is_right()).count();
        if left_corrupted > self.setting.t_l() {
            return Err(HarnessError::Sim(SimError::CorruptionBudgetExceeded {
                party: *self.corrupted.iter().find(|p| p.is_left()).expect("non-empty"),
            }));
        }
        if right_corrupted > self.setting.t_r() {
            return Err(HarnessError::Sim(SimError::CorruptionBudgetExceeded {
                party: *self.corrupted.iter().find(|p| p.is_right()).expect("non-empty"),
            }));
        }
        for party in &self.corrupted {
            if party.idx() >= k {
                return Err(HarnessError::Sim(SimError::UnknownParty { party: *party }));
            }
        }
        let env = ScenarioEnv::new(&self.setting);
        Ok(Scenario {
            setting: self.setting,
            profile,
            corrupted: self.corrupted,
            adversary: self.adversary,
            faults: self.faults,
            seed: self.seed,
            max_slots: self.max_slots,
            env,
        })
    }
}

/// Shared per-run environment: PKI, key directory and runtime construction helpers.
#[derive(Debug, Clone)]
pub(crate) struct ScenarioEnv {
    pub(crate) setting: Setting,
    pub(crate) parties: PartySet,
    pub(crate) pki: Pki,
    pub(crate) key_of: BTreeMap<PartyId, KeyId>,
}

impl ScenarioEnv {
    pub(crate) fn new(setting: &Setting) -> Self {
        let k = setting.k();
        let parties = PartySet::new(k);
        let pki = Pki::new(2 * k as u32);
        let key_of: BTreeMap<PartyId, KeyId> =
            parties.iter().map(|p| (p, KeyId(dense_key_index(p, k)))).collect();
        Self { setting: *setting, parties, pki, key_of }
    }

    pub(crate) fn slots_per_round(&self) -> u64 {
        if self.setting.topology() == Topology::FullyConnected {
            1
        } else {
            2
        }
    }

    pub(crate) fn committee(&self, side: Side) -> Committee {
        let members = self.parties.side(side).collect();
        Committee::new(members, self.setting.t_of(side))
    }

    pub(crate) fn total_rounds(&self, plan: ProtocolPlan) -> u64 {
        let k = self.setting.k();
        match plan {
            ProtocolPlan::DolevStrongBsm => {
                BroadcastBsm::total_rounds(k, &self.ds_flavor(PartyId::left(0)))
            }
            ProtocolPlan::CommitteeBroadcastBsm { committee_side } => BroadcastBsm::total_rounds(
                k,
                &BroadcastFlavor::Committee { committee: self.committee(committee_side) },
            ),
            ProtocolPlan::BipartiteAuthLocal { committee_side } => {
                BipartiteAuthBsm::total_rounds(&self.committee(committee_side))
            }
        }
    }

    pub(crate) fn ds_flavor(&self, me: PartyId) -> BroadcastFlavor {
        let t = (self.setting.t_l() + self.setting.t_r()).min(self.setting.n().saturating_sub(1));
        BroadcastFlavor::DolevStrong {
            pki: self.pki.clone(),
            signing_key: self.pki.signing_key(self.key_of[&me].0).expect("every party has a key"),
            key_of: self.key_of.clone(),
            t,
        }
    }

    pub(crate) fn relay_mode(&self) -> RelayMode {
        if self.setting.topology() == Topology::FullyConnected {
            RelayMode::Direct
        } else {
            match self.setting.auth() {
                AuthMode::Unauthenticated => RelayMode::Majority,
                AuthMode::Authenticated => RelayMode::Signed {
                    pki: self.pki.clone(),
                    key_of: self.key_of.clone(),
                    max_age: 2,
                },
            }
        }
    }

    pub(crate) fn preference_of(
        profile: &PreferenceProfile,
        party: PartyId,
    ) -> bsm_matching::PreferenceList {
        match party.side {
            Side::Left => profile.left(party.idx()).clone(),
            Side::Right => profile.right(party.idx()).clone(),
        }
    }

    pub(crate) fn build_protocol(
        &self,
        me: PartyId,
        plan: ProtocolPlan,
        profile: &PreferenceProfile,
    ) -> BsmProtocol {
        let k = self.setting.k();
        let my_pref = Self::preference_of(profile, me);
        match plan {
            ProtocolPlan::DolevStrongBsm => {
                Box::new(BroadcastBsm::new(me, k, my_pref, self.ds_flavor(me)))
            }
            ProtocolPlan::CommitteeBroadcastBsm { committee_side } => Box::new(BroadcastBsm::new(
                me,
                k,
                my_pref,
                BroadcastFlavor::Committee { committee: self.committee(committee_side) },
            )),
            ProtocolPlan::BipartiteAuthLocal { committee_side } => Box::new(BipartiteAuthBsm::new(
                me,
                k,
                committee_side,
                self.setting.t_of(committee_side),
                my_pref,
            )),
        }
    }

    pub(crate) fn build_runtime(
        &self,
        me: PartyId,
        plan: ProtocolPlan,
        profile: &PreferenceProfile,
    ) -> PartyRuntime {
        let signing_key = match self.relay_mode() {
            RelayMode::Signed { .. } => {
                Some(self.pki.signing_key(self.key_of[&me].0).expect("every party has a key"))
            }
            _ => None,
        };
        let relay = RelayEngine::new(
            me,
            self.parties,
            self.setting.topology(),
            self.relay_mode(),
            signing_key,
        );
        PartyRuntime::new(me, relay, self.build_protocol(me, plan, profile), self.slots_per_round())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsm_matching::gale_shapley::gale_shapley_left;

    fn setting(k: usize, topology: Topology, auth: AuthMode, t_l: usize, t_r: usize) -> Setting {
        Setting::new(k, topology, auth, t_l, t_r).unwrap()
    }

    fn expected_outputs(profile: &PreferenceProfile) -> Outputs {
        let matching = gale_shapley_left(profile);
        let mut outputs = Outputs::new();
        for (i, j) in matching.pairs() {
            outputs.insert(PartyId::left(i as u32), Some(PartyId::right(j as u32)));
            outputs.insert(PartyId::right(j as u32), Some(PartyId::left(i as u32)));
        }
        outputs
    }

    #[test]
    fn fault_free_authenticated_full_mesh_reproduces_gale_shapley() {
        let setting = setting(3, Topology::FullyConnected, AuthMode::Authenticated, 1, 1);
        let scenario = Scenario::builder(setting).seed(42).build().unwrap();
        let outcome = scenario.run().unwrap();
        assert!(outcome.all_honest_decided);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
        assert_eq!(outcome.outputs, expected_outputs(scenario.profile()));
        assert_eq!(outcome.plan, ProtocolPlan::DolevStrongBsm);
    }

    #[test]
    fn fault_free_unauthenticated_bipartite_reproduces_gale_shapley() {
        let setting = setting(3, Topology::Bipartite, AuthMode::Unauthenticated, 0, 1);
        let scenario = Scenario::builder(setting).seed(7).build().unwrap();
        let outcome = scenario.run().unwrap();
        assert!(outcome.all_honest_decided);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
        assert_eq!(outcome.outputs, expected_outputs(scenario.profile()));
    }

    #[test]
    fn unsolvable_setting_is_rejected_with_the_right_theorem() {
        let setting = setting(3, Topology::FullyConnected, AuthMode::Unauthenticated, 1, 1);
        let scenario = Scenario::builder(setting).build().unwrap();
        match scenario.run() {
            Err(HarnessError::Unsolvable(imp)) => assert_eq!(imp.theorem, "Theorem 2"),
            other => panic!("expected an unsolvability error, got {other:?}"),
        }
    }

    #[test]
    fn builder_validation() {
        let ok = setting(3, Topology::FullyConnected, AuthMode::Authenticated, 1, 1);
        // Too many corruptions on the left.
        assert!(matches!(
            Scenario::builder(ok).corrupt_left([0, 1]).build(),
            Err(HarnessError::Sim(SimError::CorruptionBudgetExceeded { .. }))
        ));
        // Out-of-range party index.
        assert!(matches!(
            Scenario::builder(ok).corrupt_right([9]).build(),
            Err(HarnessError::Sim(SimError::UnknownParty { .. }))
        ));
        // Wrong profile size.
        assert!(matches!(
            Scenario::builder(ok).profile(PreferenceProfile::identity(2).unwrap()).build(),
            Err(HarnessError::ProfileMismatch { .. })
        ));
        // Errors render.
        let err = Scenario::builder(ok).corrupt_left([0, 1]).build().unwrap_err();
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn crash_faults_in_authenticated_one_sided_network() {
        let setting = setting(3, Topology::OneSided, AuthMode::Authenticated, 1, 1);
        let scenario = Scenario::builder(setting)
            .seed(3)
            .corrupt_left([0])
            .corrupt_right([2])
            .adversary(AdversarySpec::Crash)
            .build()
            .unwrap();
        let outcome = scenario.run().unwrap();
        assert!(outcome.all_honest_decided);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
        assert_eq!(outcome.corrupted.len(), 2);
    }

    #[test]
    fn adversary_spec_display_and_all() {
        assert_eq!(AdversarySpec::ALL.len(), 3);
        assert_eq!(AdversarySpec::Crash.to_string(), "crash");
        assert_eq!(AdversarySpec::Lying.to_string(), "lying");
        assert_eq!(AdversarySpec::Garbage.to_string(), "garbage");
    }

    #[test]
    fn signature_accounting_per_run() {
        let authenticated = setting(3, Topology::FullyConnected, AuthMode::Authenticated, 1, 1);
        let scenario = Scenario::builder(authenticated).seed(9).build().unwrap();
        let first = scenario.run().unwrap();
        assert!(first.signatures > 0, "Dolev-Strong runs must sign");
        // A repeat run on the same scenario (same shared PKI) reports the same
        // per-run signature count, not a cumulative total.
        let second = scenario.run().unwrap();
        assert_eq!(first.signatures, second.signatures);

        let unauth = setting(3, Topology::Bipartite, AuthMode::Unauthenticated, 0, 1);
        let outcome = Scenario::builder(unauth).seed(9).build().unwrap().run().unwrap();
        assert_eq!(outcome.signatures, 0, "unauthenticated plans never sign");
    }

    #[test]
    fn fault_schedules_run_deterministically() {
        let setting = setting(3, Topology::FullyConnected, AuthMode::Authenticated, 1, 1);
        let faults: FaultSpec = "partition=0+2;loss=100;jitter=1".parse().unwrap();
        let run =
            || Scenario::builder(setting).seed(5).faults(faults).build().unwrap().run().unwrap();
        let (a, b) = (run(), run());
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.all_honest_decided, b.all_honest_decided);
        assert!(
            a.metrics.dropped_by_faults > 0,
            "partition + loss must drop something: {:?}",
            a.metrics
        );
    }

    #[test]
    fn accessors() {
        let setting = setting(2, Topology::FullyConnected, AuthMode::Authenticated, 0, 0);
        let scenario = Scenario::builder(setting).seed(1).build().unwrap();
        assert_eq!(scenario.setting().k(), 2);
        assert_eq!(scenario.profile().k(), 2);
        assert!(scenario.corrupted().is_empty());
    }
}
