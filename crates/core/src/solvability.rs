//! The solvability characterization (Theorems 2–7) as a decision procedure.
//!
//! [`characterize`] maps every [`Setting`] either to an executable [`ProtocolPlan`]
//! (the constructive direction of the corresponding theorem) or to an
//! [`Impossibility`] citing the theorem whose lower bound applies. The experiment
//! `E1` sweeps settings through this function and cross-checks both directions
//! empirically.

use crate::problem::{AuthMode, Setting};
use bsm_matching::Side;
use std::fmt;

/// An executable protocol choice for a solvable setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolPlan {
    /// Lemma 1 instantiated with the committee broadcast of Lemma 4: every party
    /// broadcasts its preference list through the committee of the side satisfying
    /// `t < k/3`, then runs `AG-S` locally. Missing channels (one-sided / bipartite
    /// topologies) are simulated with the majority relay of Lemma 6.
    CommitteeBroadcastBsm {
        /// The side acting as the agreement committee.
        committee_side: Side,
    },
    /// Lemma 1 instantiated with Dolev–Strong broadcast (Theorem 5). Missing channels
    /// are simulated with the signed relay of Lemma 8, which only needs one honest
    /// party on the relaying side.
    DolevStrongBsm,
    /// The bipartite authenticated protocol `ΠbSM` of Lemma 9 (also used for the
    /// one-sided case with `tR = k`): the committee side gathers all preference lists
    /// through `ΠBB`/`ΠBA` over timed signed relays (Lemma 10), runs `AG-S` locally and
    /// suggests matches to the other side, which adopts the most common suggestion.
    BipartiteAuthLocal {
        /// The side satisfying `t < k/3` that computes the matching locally.
        committee_side: Side,
    },
}

impl fmt::Display for ProtocolPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolPlan::CommitteeBroadcastBsm { committee_side } => {
                write!(f, "committee-broadcast bSM (committee {committee_side})")
            }
            ProtocolPlan::DolevStrongBsm => write!(f, "Dolev-Strong bSM"),
            ProtocolPlan::BipartiteAuthLocal { committee_side } => {
                write!(f, "ΠbSM local matching (committee {committee_side})")
            }
        }
    }
}

/// The reason a setting is unsolvable, citing the theorem whose "only if" direction
/// applies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Impossibility {
    /// The theorem establishing the impossibility.
    pub theorem: &'static str,
    /// A human-readable explanation of the violated condition.
    pub reason: String,
}

impl fmt::Display for Impossibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsolvable by {}: {}", self.theorem, self.reason)
    }
}

/// The answer of the characterization for one setting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Solvability {
    /// bSM is solvable; the plan realizes the constructive direction.
    Solvable(ProtocolPlan),
    /// bSM is unsolvable; the impossibility cites the relevant theorem.
    Unsolvable(Impossibility),
}

impl fmt::Display for Solvability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Solvability::Solvable(plan) => write!(f, "solvable via {plan}"),
            Solvability::Unsolvable(imp) => write!(f, "{imp}"),
        }
    }
}

impl Solvability {
    /// Returns `true` for the solvable case.
    pub fn is_solvable(&self) -> bool {
        matches!(self, Solvability::Solvable(_))
    }

    /// The plan, if solvable.
    pub fn plan(&self) -> Option<ProtocolPlan> {
        match self {
            Solvability::Solvable(plan) => Some(*plan),
            Solvability::Unsolvable(_) => None,
        }
    }
}

/// Picks the committee side among the sides satisfying `t < k/3`, preferring the side
/// with the smaller corruption bound (ties go to `L`).
fn committee_side(setting: &Setting) -> Option<Side> {
    let left_ok = setting.side_below_third(Side::Left);
    let right_ok = setting.side_below_third(Side::Right);
    match (left_ok, right_ok) {
        (true, true) => {
            if setting.t_r() < setting.t_l() {
                Some(Side::Right)
            } else {
                Some(Side::Left)
            }
        }
        (true, false) => Some(Side::Left),
        (false, true) => Some(Side::Right),
        (false, false) => None,
    }
}

/// Applies Theorems 2–7 to `setting`.
pub fn characterize(setting: &Setting) -> Solvability {
    let k = setting.k();
    let t_l = setting.t_l();
    let t_r = setting.t_r();
    match (setting.auth(), setting.topology()) {
        // Theorem 2: fully-connected, unauthenticated.
        (AuthMode::Unauthenticated, bsm_net::Topology::FullyConnected) => {
            match committee_side(setting) {
                Some(side) => Solvability::Solvable(ProtocolPlan::CommitteeBroadcastBsm {
                    committee_side: side,
                }),
                None => Solvability::Unsolvable(Impossibility {
                    theorem: "Theorem 2",
                    reason: format!("tL = {t_l} ≥ k/3 and tR = {t_r} ≥ k/3 (k = {k})"),
                }),
            }
        }
        // Theorem 3: bipartite, unauthenticated.
        (AuthMode::Unauthenticated, bsm_net::Topology::Bipartite) => {
            if !setting.side_below_half(Side::Left) || !setting.side_below_half(Side::Right) {
                return Solvability::Unsolvable(Impossibility {
                    theorem: "Theorem 3",
                    reason: format!(
                        "condition (i) fails: tL = {t_l} or tR = {t_r} is ≥ k/2 (k = {k})"
                    ),
                });
            }
            match committee_side(setting) {
                Some(side) => Solvability::Solvable(ProtocolPlan::CommitteeBroadcastBsm {
                    committee_side: side,
                }),
                None => Solvability::Unsolvable(Impossibility {
                    theorem: "Theorem 3",
                    reason: format!(
                        "condition (ii) fails: tL = {t_l} ≥ k/3 and tR = {t_r} ≥ k/3 (k = {k})"
                    ),
                }),
            }
        }
        // Theorem 4: one-sided, unauthenticated.
        (AuthMode::Unauthenticated, bsm_net::Topology::OneSided) => {
            if !setting.side_below_half(Side::Right) {
                return Solvability::Unsolvable(Impossibility {
                    theorem: "Theorem 4",
                    reason: format!("condition (i) fails: tR = {t_r} ≥ k/2 (k = {k})"),
                });
            }
            match committee_side(setting) {
                Some(side) => Solvability::Solvable(ProtocolPlan::CommitteeBroadcastBsm {
                    committee_side: side,
                }),
                None => Solvability::Unsolvable(Impossibility {
                    theorem: "Theorem 4",
                    reason: format!(
                        "condition (ii) fails: tL = {t_l} ≥ k/3 and tR = {t_r} ≥ k/3 (k = {k})"
                    ),
                }),
            }
        }
        // Theorem 5: fully-connected, authenticated — always solvable.
        (AuthMode::Authenticated, bsm_net::Topology::FullyConnected) => {
            Solvability::Solvable(ProtocolPlan::DolevStrongBsm)
        }
        // Theorem 6: bipartite, authenticated.
        (AuthMode::Authenticated, bsm_net::Topology::Bipartite) => {
            if setting.side_below_full(Side::Left) && setting.side_below_full(Side::Right) {
                return Solvability::Solvable(ProtocolPlan::DolevStrongBsm);
            }
            if setting.side_below_third(Side::Left) {
                return Solvability::Solvable(ProtocolPlan::BipartiteAuthLocal {
                    committee_side: Side::Left,
                });
            }
            if setting.side_below_third(Side::Right) {
                return Solvability::Solvable(ProtocolPlan::BipartiteAuthLocal {
                    committee_side: Side::Right,
                });
            }
            Solvability::Unsolvable(Impossibility {
                theorem: "Theorem 6 (via Corollary 5)",
                reason: format!(
                    "one side is fully byzantine while the other has t ≥ k/3 (tL = {t_l}, tR = {t_r}, k = {k})"
                ),
            })
        }
        // Theorem 7: one-sided, authenticated.
        (AuthMode::Authenticated, bsm_net::Topology::OneSided) => {
            if setting.side_below_full(Side::Right) {
                return Solvability::Solvable(ProtocolPlan::DolevStrongBsm);
            }
            if setting.side_below_third(Side::Left) {
                // tR = k: side R may be completely byzantine. The paper invokes the
                // constructive direction through the bipartite sub-network, i.e. the
                // ΠbSM protocol of Lemma 9 (the one-sided network contains all bipartite
                // edges it needs).
                return Solvability::Solvable(ProtocolPlan::BipartiteAuthLocal {
                    committee_side: Side::Left,
                });
            }
            Solvability::Unsolvable(Impossibility {
                theorem: "Theorem 7 (via Lemma 13)",
                reason: format!("tR = k = {k} and tL = {t_l} ≥ k/3"),
            })
        }
    }
}

/// Convenience wrapper: returns `true` iff bSM is solvable in `setting`.
pub fn is_solvable(setting: &Setting) -> bool {
    characterize(setting).is_solvable()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsm_net::Topology;

    fn setting(k: usize, topology: Topology, auth: AuthMode, t_l: usize, t_r: usize) -> Setting {
        Setting::new(k, topology, auth, t_l, t_r).unwrap()
    }

    #[test]
    fn theorem_2_boundaries() {
        // k = 3: k/3 = 1, so tL < 1 or tR < 1 is required.
        let auth = AuthMode::Unauthenticated;
        let topo = Topology::FullyConnected;
        assert!(is_solvable(&setting(3, topo, auth, 0, 3)));
        assert!(is_solvable(&setting(3, topo, auth, 3, 0)));
        assert!(!is_solvable(&setting(3, topo, auth, 1, 1)));
        // k = 4: t < 4/3 means t ≤ 1.
        assert!(is_solvable(&setting(4, topo, auth, 1, 4)));
        assert!(!is_solvable(&setting(4, topo, auth, 2, 2)));
        // k = 6: t < 2.
        assert!(is_solvable(&setting(6, topo, auth, 1, 6)));
        assert!(!is_solvable(&setting(6, topo, auth, 2, 2)));
    }

    #[test]
    fn theorem_3_requires_both_conditions() {
        let auth = AuthMode::Unauthenticated;
        let topo = Topology::Bipartite;
        // tL < k/2 and tR < k/2 and one side < k/3.
        assert!(is_solvable(&setting(6, topo, auth, 1, 2)));
        assert!(!is_solvable(&setting(6, topo, auth, 1, 3))); // tR = k/2
        assert!(!is_solvable(&setting(6, topo, auth, 2, 2))); // both ≥ k/3
        assert!(!is_solvable(&setting(6, topo, auth, 3, 1))); // tL = k/2
        assert!(is_solvable(&setting(6, topo, auth, 2, 1)));
    }

    #[test]
    fn theorem_4_requires_right_half_and_one_third() {
        let auth = AuthMode::Unauthenticated;
        let topo = Topology::OneSided;
        assert!(is_solvable(&setting(6, topo, auth, 5, 1)));
        assert!(!is_solvable(&setting(6, topo, auth, 5, 3))); // tR ≥ k/2
        assert!(!is_solvable(&setting(6, topo, auth, 2, 2))); // neither < k/3
        assert!(is_solvable(&setting(6, topo, auth, 1, 2)));
        // tL may be arbitrarily large as long as tR < k/3.
        assert!(is_solvable(&setting(6, topo, auth, 6, 1)));
    }

    #[test]
    fn theorem_5_always_solvable() {
        for k in [1usize, 2, 3, 5] {
            for t_l in 0..=k {
                for t_r in 0..=k {
                    let s = setting(k, Topology::FullyConnected, AuthMode::Authenticated, t_l, t_r);
                    assert_eq!(characterize(&s).plan(), Some(ProtocolPlan::DolevStrongBsm));
                }
            }
        }
    }

    #[test]
    fn theorem_6_boundaries() {
        let auth = AuthMode::Authenticated;
        let topo = Topology::Bipartite;
        // Both sides below k: always solvable via signed relays + Dolev-Strong.
        assert_eq!(
            characterize(&setting(3, topo, auth, 2, 2)).plan(),
            Some(ProtocolPlan::DolevStrongBsm)
        );
        // One side fully byzantine: need the other side below k/3.
        assert_eq!(
            characterize(&setting(6, topo, auth, 1, 6)).plan(),
            Some(ProtocolPlan::BipartiteAuthLocal { committee_side: Side::Left })
        );
        assert_eq!(
            characterize(&setting(6, topo, auth, 6, 1)).plan(),
            Some(ProtocolPlan::BipartiteAuthLocal { committee_side: Side::Right })
        );
        assert!(!is_solvable(&setting(6, topo, auth, 2, 6)));
        assert!(!is_solvable(&setting(6, topo, auth, 6, 2)));
        assert!(!is_solvable(&setting(3, topo, auth, 3, 1)));
    }

    #[test]
    fn theorem_7_boundaries() {
        let auth = AuthMode::Authenticated;
        let topo = Topology::OneSided;
        assert_eq!(
            characterize(&setting(6, topo, auth, 6, 5)).plan(),
            Some(ProtocolPlan::DolevStrongBsm)
        );
        assert_eq!(
            characterize(&setting(6, topo, auth, 1, 6)).plan(),
            Some(ProtocolPlan::BipartiteAuthLocal { committee_side: Side::Left })
        );
        assert!(!is_solvable(&setting(6, topo, auth, 2, 6)));
        assert!(!is_solvable(&setting(3, topo, auth, 1, 3)));
    }

    #[test]
    fn committee_side_prefers_fewer_corruptions() {
        let s = setting(7, Topology::FullyConnected, AuthMode::Unauthenticated, 2, 1);
        assert_eq!(
            characterize(&s).plan(),
            Some(ProtocolPlan::CommitteeBroadcastBsm { committee_side: Side::Right })
        );
        let s = setting(7, Topology::FullyConnected, AuthMode::Unauthenticated, 1, 2);
        assert_eq!(
            characterize(&s).plan(),
            Some(ProtocolPlan::CommitteeBroadcastBsm { committee_side: Side::Left })
        );
        // Tie goes to the left side.
        let s = setting(7, Topology::FullyConnected, AuthMode::Unauthenticated, 1, 1);
        assert_eq!(
            characterize(&s).plan(),
            Some(ProtocolPlan::CommitteeBroadcastBsm { committee_side: Side::Left })
        );
    }

    #[test]
    fn monotonicity_reducing_corruption_never_hurts() {
        // If a setting is solvable, reducing either bound keeps it solvable.
        for k in 1..=5usize {
            for &topology in &Topology::ALL {
                for &auth in &AuthMode::ALL {
                    for t_l in 0..=k {
                        for t_r in 0..=k {
                            let s = setting(k, topology, auth, t_l, t_r);
                            if !is_solvable(&s) {
                                continue;
                            }
                            for (dl, dr) in [(1usize, 0usize), (0, 1), (1, 1)] {
                                if t_l >= dl && t_r >= dr {
                                    let weaker = setting(k, topology, auth, t_l - dl, t_r - dr);
                                    assert!(
                                        is_solvable(&weaker),
                                        "solvable {s} became unsolvable at {weaker}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn stronger_topologies_are_never_worse() {
        // bipartite ⊆ one-sided ⊆ fully-connected: if bSM is solvable in a weaker
        // topology it stays solvable in a stronger one.
        let order = [Topology::Bipartite, Topology::OneSided, Topology::FullyConnected];
        for k in 1..=5usize {
            for &auth in &AuthMode::ALL {
                for t_l in 0..=k {
                    for t_r in 0..=k {
                        for w in 0..order.len() {
                            for s_idx in w + 1..order.len() {
                                let weak = setting(k, order[w], auth, t_l, t_r);
                                let strong = setting(k, order[s_idx], auth, t_l, t_r);
                                if is_solvable(&weak) {
                                    assert!(
                                        is_solvable(&strong),
                                        "{weak} solvable but {strong} not"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn authentication_never_hurts() {
        for k in 1..=5usize {
            for &topology in &Topology::ALL {
                for t_l in 0..=k {
                    for t_r in 0..=k {
                        let unauth = setting(k, topology, AuthMode::Unauthenticated, t_l, t_r);
                        let auth = setting(k, topology, AuthMode::Authenticated, t_l, t_r);
                        if is_solvable(&unauth) {
                            assert!(is_solvable(&auth), "{unauth} solvable but {auth} not");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn displays() {
        assert!(ProtocolPlan::DolevStrongBsm.to_string().contains("Dolev"));
        assert!(ProtocolPlan::CommitteeBroadcastBsm { committee_side: Side::Left }
            .to_string()
            .contains("committee"));
        assert!(ProtocolPlan::BipartiteAuthLocal { committee_side: Side::Right }
            .to_string()
            .contains("bSM"));
        let imp = Impossibility { theorem: "Theorem 2", reason: "x".into() };
        assert!(imp.to_string().contains("Theorem 2"));
        let unsolvable = Solvability::Unsolvable(imp);
        assert!(unsolvable.to_string().contains("unsolvable by Theorem 2"));
        assert!(unsolvable.plan().is_none());
        let solvable = Solvability::Solvable(ProtocolPlan::DolevStrongBsm);
        assert_eq!(solvable.to_string(), "solvable via Dolev-Strong bSM");
    }
}
