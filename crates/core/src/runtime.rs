//! The per-party runtime: a bSM protocol stacked on top of the channel-simulation relay.

use crate::problem::MatchDecision;
use crate::relay::RelayEngine;
use crate::wire::{ProtoMsg, WireMsg};
use bsm_net::{Envelope, Outgoing, PartyId, Process, RoundProtocol, Time};

/// The round-protocol object a [`PartyRuntime`] drives.
pub type BsmProtocol = Box<dyn RoundProtocol<Msg = ProtoMsg, Output = MatchDecision> + Send>;

/// One honest party's full protocol stack.
///
/// The runtime performs three jobs every slot:
///
/// 1. feed incoming wire messages through the [`RelayEngine`] (accepting payloads,
///    performing relay duty for the disconnected side),
/// 2. at every logical round boundary (`slots_per_round` slots), hand the buffered
///    payloads to the bSM protocol and wrap its outgoing messages back through the relay
///    engine,
/// 3. expose the protocol's decision as the party's output.
pub struct PartyRuntime {
    id: PartyId,
    relay: RelayEngine,
    protocol: BsmProtocol,
    slots_per_round: u64,
    buffer: Vec<(PartyId, ProtoMsg)>,
}

impl std::fmt::Debug for PartyRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartyRuntime")
            .field("id", &self.id)
            .field("slots_per_round", &self.slots_per_round)
            .field("buffered", &self.buffer.len())
            .finish_non_exhaustive()
    }
}

impl PartyRuntime {
    /// Builds the runtime for party `id`.
    ///
    /// `slots_per_round` is 1 when every required channel is direct and 2 when any
    /// channel is simulated by a relay (each relay hop adds one slot).
    ///
    /// # Panics
    ///
    /// Panics if `slots_per_round == 0`.
    pub fn new(
        id: PartyId,
        relay: RelayEngine,
        protocol: BsmProtocol,
        slots_per_round: u64,
    ) -> Self {
        assert!(slots_per_round > 0, "a round must span at least one slot");
        Self { id, relay, protocol, slots_per_round, buffer: Vec::new() }
    }

    /// The configured round length in slots.
    pub fn slots_per_round(&self) -> u64 {
        self.slots_per_round
    }
}

impl Process<WireMsg, MatchDecision> for PartyRuntime {
    fn id(&self) -> PartyId {
        self.id
    }

    fn step(&mut self, now: Time, inbox: &mut Vec<Envelope<WireMsg>>) -> Vec<Outgoing<WireMsg>> {
        let mut out = Vec::new();
        for envelope in inbox.drain(..) {
            let (accepted, duties) = self.relay.handle(envelope.from, envelope.payload, now);
            self.buffer.extend(accepted);
            out.extend(duties);
        }
        if now.slot().is_multiple_of(self.slots_per_round) {
            let round = now.slot() / self.slots_per_round;
            let delivered = std::mem::take(&mut self.buffer);
            for outgoing in self.protocol.round(round, &delivered) {
                out.extend(self.relay.send(outgoing.to, outgoing.payload, now));
            }
        }
        out
    }

    fn output(&self) -> Option<MatchDecision> {
        self.protocol.output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relay::RelayMode;
    use crate::wire::ProtoBody;
    use bsm_net::{PartySet, Topology};

    /// A toy protocol: announce our index to one peer in round 0, decide once we have
    /// heard from anyone (or at round 3).
    struct ToyProtocol {
        me: PartyId,
        peer: PartyId,
        decision: Option<MatchDecision>,
    }

    impl RoundProtocol for ToyProtocol {
        type Msg = ProtoMsg;
        type Output = MatchDecision;

        fn round(&mut self, round: u64, inbox: &[(PartyId, ProtoMsg)]) -> Vec<Outgoing<ProtoMsg>> {
            if let Some((from, _)) = inbox.first() {
                self.decision = Some(Some(*from));
            } else if round >= 3 {
                self.decision = Some(None);
            }
            if round == 0 {
                vec![Outgoing::new(
                    self.peer,
                    ProtoMsg {
                        instance: 0,
                        body: ProtoBody::Suggest(Some(u64::from(self.me.index))),
                    },
                )]
            } else {
                Vec::new()
            }
        }

        fn output(&self) -> Option<MatchDecision> {
            self.decision
        }
    }

    fn runtime(me: PartyId, peer: PartyId, topology: Topology, spr: u64) -> PartyRuntime {
        let relay = RelayEngine::new(me, PartySet::new(2), topology, RelayMode::Majority, None);
        PartyRuntime::new(me, relay, Box::new(ToyProtocol { me, peer, decision: None }), spr)
    }

    #[test]
    fn direct_messages_reach_the_protocol() {
        let me = PartyId::left(0);
        let peer = PartyId::right(0);
        let mut rt = runtime(me, peer, Topology::FullyConnected, 1);
        assert_eq!(rt.slots_per_round(), 1);
        let out = rt.step(Time(0), &mut vec![]);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].payload, WireMsg::Direct(_)));
        // Deliver a direct message; the protocol decides at the next round boundary.
        let env = Envelope {
            from: peer,
            to: me,
            sent_at: Time(0),
            deliver_at: Time(1),
            payload: WireMsg::Direct(ProtoMsg { instance: 0, body: ProtoBody::Suggest(None) }),
        };
        rt.step(Time(1), &mut vec![env]);
        assert_eq!(rt.output(), Some(Some(peer)));
        assert!(format!("{rt:?}").contains("PartyRuntime"));
    }

    #[test]
    fn relayed_sends_are_fanned_out_and_rounds_are_paced() {
        // Two left parties in a bipartite topology must relay through the right side.
        let me = PartyId::left(0);
        let peer = PartyId::left(1);
        let mut rt = runtime(me, peer, Topology::Bipartite, 2);
        let out = rt.step(Time(0), &mut vec![]);
        // k = 2 relayers on the right side.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|o| matches!(o.payload, WireMsg::RelayRequest { .. })));
        // Mid-round slots do not advance the protocol.
        let out = rt.step(Time(1), &mut vec![]);
        assert!(out.is_empty());
        assert_eq!(rt.output(), None);
        // Round 3 (slot 6) with no messages: the protocol gives up and decides None.
        for slot in 2..=6 {
            rt.step(Time(slot), &mut vec![]);
        }
        assert_eq!(rt.output(), Some(None));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_per_round_panics() {
        let me = PartyId::left(0);
        let _ = runtime(me, PartyId::left(1), Topology::Bipartite, 0);
    }
}
