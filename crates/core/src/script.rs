//! Data-valued adversary scripts: generate, mutate, serialize and replay attacks.
//!
//! A [`Script`] is a complete, self-contained description of one adversarial run —
//! the setting, the statically corrupted parties, the seed, and an ordered list of
//! [`ScriptAction`]s — so byzantine strategies become *values* that a fuzzer can
//! generate, mutate, shrink and freeze as regression files. [`ScriptedAdversary`]
//! interprets a script against the live simulation through the standard
//! [`bsm_net::Adversary`] hooks, and [`Script::run`] wires everything through
//! [`Scenario::run_with_adversary`].
//!
//! The serialized form is a small TOML subset (sections, `key = value`, integers,
//! booleans, quoted strings and flat arrays) with a *canonical* rendering:
//! [`Script::parse`] followed by [`Script::canonical`] is the identity on canonical
//! files, which is what lets frozen regressions be compared byte-for-byte.

use crate::harness::{HarnessError, Scenario, ScenarioOutcome};
use crate::problem::{AuthMode, Setting};
use crate::solvability::{characterize, ProtocolPlan, Solvability};
use crate::strategies::{BsmPuppetAdversary, GarbageAdversary};
use crate::wire::{party_from_dense, PrefVec, ProtoBody, WireMsg};
use bsm_broadcast::DolevStrongMsg;
use bsm_crypto::{Digest, DigestWriter, Digestible, SigChain, Signature, SigningKey};
use bsm_matching::generators::uniform_profile;
use bsm_matching::Side;
use bsm_net::{Adversary, AdversaryContext, Envelope, Outgoing, PartyId, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// One step of a scripted attack.
///
/// The first behaviour-mode action in a script ([`Silence`](Self::Silence),
/// [`Lie`](Self::Lie) or [`Garbage`](Self::Garbage)) decides how the corrupted
/// parties behave *by default*; all other actions are point interventions keyed on a
/// slot. Every field is a plain integer (plus a side tag), so actions can be mutated
/// and shrunk numerically via [`numbers`](Self::numbers) /
/// [`with_numbers`](Self::with_numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptAction {
    /// Corrupted parties run the honest protocol until `from_slot`, then go silent
    /// forever. `from_slot = 0` is the classic crash-from-start fault.
    Silence {
        /// First slot in which the corrupted parties stay silent.
        from_slot: u64,
    },
    /// Corrupted parties run the honest protocol on a fake preference profile drawn
    /// from `seed` (the classical "lying about preferences" manipulation).
    Lie {
        /// Seed of the fake profile (matching [`crate::harness::AdversarySpec::Lying`]
        /// when equal to the scenario seed).
        seed: u64,
    },
    /// Corrupted parties flood honest parties with well-formed garbage messages.
    Garbage {
        /// Seed of the junk stream.
        seed: u64,
        /// Junk messages per corrupted party per reachable target per slot.
        per_slot: u64,
    },
    /// Adaptively corrupt one more party at `slot` (ignored if the budget is full or
    /// the party does not exist). Newly corrupted parties crash.
    Corrupt {
        /// Slot at which the corruption takes effect.
        slot: u64,
        /// Side of the corrupted party.
        side: Side,
        /// Index of the corrupted party within its side.
        index: u32,
    },
    /// Drop the `nth` message received by the corrupted coalition at `slot`.
    DropRecv {
        /// Slot the interception happens in.
        slot: u64,
        /// Flat index into the coalition's inboxes (party order, then arrival order).
        nth: u64,
    },
    /// Withhold the `nth` received message and feed it back to its corrupted
    /// recipient `by` slots later.
    DelayRecv {
        /// Slot the interception happens in.
        slot: u64,
        /// Flat index into the coalition's inboxes.
        nth: u64,
        /// Number of slots to hold the message (at least 1).
        by: u64,
    },
    /// Re-send a copy of the `nth` received message to every honest party reachable
    /// from its corrupted recipient (a replay attack).
    Replay {
        /// Slot the replay happens in.
        slot: u64,
        /// Flat index into the coalition's inboxes.
        nth: u64,
    },
    /// Drop the `nth` message the coalition was about to send at `slot`.
    DropSend {
        /// Slot the suppression happens in.
        slot: u64,
        /// Index into the coalition's outgoing messages this slot.
        nth: u64,
    },
    /// Tamper with the value of the `nth` outgoing Dolev–Strong payload at `slot`
    /// (and re-root its signature chain when the coalition holds the designated
    /// sender's key) — the classic equivocation attempt.
    Equivocate {
        /// Slot the tampering happens in.
        slot: u64,
        /// Index into the coalition's outgoing messages this slot.
        nth: u64,
    },
    /// Remove the newest signature from the `nth` outgoing Dolev–Strong chain.
    TruncateChain {
        /// Slot the tampering happens in.
        slot: u64,
        /// Index into the coalition's outgoing messages this slot.
        nth: u64,
    },
    /// Reverse the signature order of the `nth` outgoing Dolev–Strong chain.
    ReorderChain {
        /// Slot the tampering happens in.
        slot: u64,
        /// Index into the coalition's outgoing messages this slot.
        nth: u64,
    },
    /// Replace the newest signature of the `nth` outgoing Dolev–Strong chain with a
    /// coalition signature over an unrelated digest (a swapped signature tag).
    SwapSigTag {
        /// Slot the tampering happens in.
        slot: u64,
        /// Index into the coalition's outgoing messages this slot.
        nth: u64,
    },
}

impl ScriptAction {
    /// The serialized action kind.
    pub fn kind(&self) -> &'static str {
        match self {
            ScriptAction::Silence { .. } => "silence",
            ScriptAction::Lie { .. } => "lie",
            ScriptAction::Garbage { .. } => "garbage",
            ScriptAction::Corrupt { .. } => "corrupt",
            ScriptAction::DropRecv { .. } => "drop-recv",
            ScriptAction::DelayRecv { .. } => "delay-recv",
            ScriptAction::Replay { .. } => "replay",
            ScriptAction::DropSend { .. } => "drop-send",
            ScriptAction::Equivocate { .. } => "equivocate",
            ScriptAction::TruncateChain { .. } => "truncate-chain",
            ScriptAction::ReorderChain { .. } => "reorder-chain",
            ScriptAction::SwapSigTag { .. } => "swap-sig-tag",
        }
    }

    /// The numeric fields of the action in canonical order (the side of a
    /// [`Corrupt`](Self::Corrupt) is not numeric and is preserved separately).
    ///
    /// Together with [`with_numbers`](Self::with_numbers) this gives mutators and the
    /// shrinker a uniform view of every action.
    pub fn numbers(&self) -> Vec<u64> {
        match *self {
            ScriptAction::Silence { from_slot } => vec![from_slot],
            ScriptAction::Lie { seed } => vec![seed],
            ScriptAction::Garbage { seed, per_slot } => vec![seed, per_slot],
            ScriptAction::Corrupt { slot, index, .. } => vec![slot, u64::from(index)],
            ScriptAction::DelayRecv { slot, nth, by } => vec![slot, nth, by],
            ScriptAction::DropRecv { slot, nth }
            | ScriptAction::Replay { slot, nth }
            | ScriptAction::DropSend { slot, nth }
            | ScriptAction::Equivocate { slot, nth }
            | ScriptAction::TruncateChain { slot, nth }
            | ScriptAction::ReorderChain { slot, nth }
            | ScriptAction::SwapSigTag { slot, nth } => vec![slot, nth],
        }
    }

    /// The same action with its numeric fields replaced positionally from `numbers`
    /// (missing positions keep their current value, so the call is total).
    pub fn with_numbers(&self, numbers: &[u64]) -> ScriptAction {
        let get = |i: usize, old: u64| numbers.get(i).copied().unwrap_or(old);
        match *self {
            ScriptAction::Silence { from_slot } => {
                ScriptAction::Silence { from_slot: get(0, from_slot) }
            }
            ScriptAction::Lie { seed } => ScriptAction::Lie { seed: get(0, seed) },
            ScriptAction::Garbage { seed, per_slot } => {
                ScriptAction::Garbage { seed: get(0, seed), per_slot: get(1, per_slot) }
            }
            ScriptAction::Corrupt { slot, side, index } => ScriptAction::Corrupt {
                slot: get(0, slot),
                side,
                index: get(1, u64::from(index)).min(u64::from(u32::MAX)) as u32,
            },
            ScriptAction::DelayRecv { slot, nth, by } => {
                ScriptAction::DelayRecv { slot: get(0, slot), nth: get(1, nth), by: get(2, by) }
            }
            ScriptAction::DropRecv { slot, nth } => {
                ScriptAction::DropRecv { slot: get(0, slot), nth: get(1, nth) }
            }
            ScriptAction::Replay { slot, nth } => {
                ScriptAction::Replay { slot: get(0, slot), nth: get(1, nth) }
            }
            ScriptAction::DropSend { slot, nth } => {
                ScriptAction::DropSend { slot: get(0, slot), nth: get(1, nth) }
            }
            ScriptAction::Equivocate { slot, nth } => {
                ScriptAction::Equivocate { slot: get(0, slot), nth: get(1, nth) }
            }
            ScriptAction::TruncateChain { slot, nth } => {
                ScriptAction::TruncateChain { slot: get(0, slot), nth: get(1, nth) }
            }
            ScriptAction::ReorderChain { slot, nth } => {
                ScriptAction::ReorderChain { slot: get(0, slot), nth: get(1, nth) }
            }
            ScriptAction::SwapSigTag { slot, nth } => {
                ScriptAction::SwapSigTag { slot: get(0, slot), nth: get(1, nth) }
            }
        }
    }
}

/// The recorded result of running a script: what a frozen regression asserts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Whether every honest party decided within the slot budget.
    pub decided: bool,
    /// Number of simulated slots.
    pub slots: u64,
    /// Rendered property violations, in detection order (empty = tolerated).
    pub violations: Vec<String>,
}

impl Verdict {
    /// The verdict of an outcome.
    pub fn of(outcome: &ScenarioOutcome) -> Self {
        Verdict {
            decided: outcome.all_honest_decided,
            slots: outcome.slots,
            violations: outcome.violations.iter().map(|v| v.to_string()).collect(),
        }
    }
}

/// A parse or I/O error for the script file format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// 1-based line the error was detected on (0 = whole-file error).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "script: {}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ScriptError {}

/// A complete, serializable adversary script.
///
/// Everything needed to reproduce a run is inside the value: setting, static
/// corruptions, seed (for the honest profile), the action list, and optionally the
/// verdict recorded when the script was frozen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Script {
    /// A short identifier (fuzzer case tag or regression file stem).
    pub name: String,
    /// Market size per side.
    pub k: usize,
    /// Communication topology.
    pub topology: Topology,
    /// Cryptographic assumption.
    pub auth: AuthMode,
    /// Left corruption budget.
    pub t_l: usize,
    /// Right corruption budget.
    pub t_r: usize,
    /// Explicit protocol plan; `None` = the plan the solvability characterization
    /// prescribes for the setting.
    pub plan: Option<ProtocolPlan>,
    /// Statically corrupted left indices.
    pub corrupt_left: Vec<u32>,
    /// Statically corrupted right indices.
    pub corrupt_right: Vec<u32>,
    /// Scenario seed (honest preference profile).
    pub seed: u64,
    /// The attack, in order.
    pub actions: Vec<ScriptAction>,
    /// The recorded verdict, if the script has been frozen.
    pub verdict: Option<Verdict>,
}

fn plan_name(plan: ProtocolPlan) -> &'static str {
    match plan {
        ProtocolPlan::DolevStrongBsm => "dolev-strong",
        ProtocolPlan::CommitteeBroadcastBsm { committee_side: Side::Left } => "committee-left",
        ProtocolPlan::CommitteeBroadcastBsm { committee_side: Side::Right } => "committee-right",
        ProtocolPlan::BipartiteAuthLocal { committee_side: Side::Left } => "bipartite-left",
        ProtocolPlan::BipartiteAuthLocal { committee_side: Side::Right } => "bipartite-right",
    }
}

fn plan_from_name(name: &str) -> Option<ProtocolPlan> {
    match name {
        "dolev-strong" => Some(ProtocolPlan::DolevStrongBsm),
        "committee-left" => {
            Some(ProtocolPlan::CommitteeBroadcastBsm { committee_side: Side::Left })
        }
        "committee-right" => {
            Some(ProtocolPlan::CommitteeBroadcastBsm { committee_side: Side::Right })
        }
        "bipartite-left" => Some(ProtocolPlan::BipartiteAuthLocal { committee_side: Side::Left }),
        "bipartite-right" => Some(ProtocolPlan::BipartiteAuthLocal { committee_side: Side::Right }),
        _ => None,
    }
}

fn topology_from_name(name: &str) -> Option<Topology> {
    Topology::ALL.into_iter().find(|t| t.name() == name)
}

fn auth_from_name(name: &str) -> Option<AuthMode> {
    AuthMode::ALL.into_iter().find(|a| a.name() == name)
}

fn side_name(side: Side) -> &'static str {
    match side {
        Side::Left => "left",
        Side::Right => "right",
    }
}

fn side_from_name(name: &str) -> Option<Side> {
    match name {
        "left" => Some(Side::Left),
        "right" => Some(Side::Right),
        _ => None,
    }
}

fn quote(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

fn render_ints(values: &[u64]) -> String {
    let body: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("[{}]", body.join(", "))
}

fn render_strs(values: &[String]) -> String {
    let body: Vec<String> = values.iter().map(|v| quote(v)).collect();
    format!("[{}]", body.join(", "))
}

impl Script {
    /// The canonical serialized form: `parse(canonical()) == self`, and canonical
    /// files survive a parse/render round trip byte-identically.
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("[script]\n");
        let _ = writeln!(out, "name = {}", quote(&self.name));
        let _ = writeln!(out, "k = {}", self.k);
        let _ = writeln!(out, "topology = {}", quote(self.topology.name()));
        let _ = writeln!(out, "auth = {}", quote(self.auth.name()));
        let _ = writeln!(out, "t_l = {}", self.t_l);
        let _ = writeln!(out, "t_r = {}", self.t_r);
        if let Some(plan) = self.plan {
            let _ = writeln!(out, "plan = {}", quote(plan_name(plan)));
        }
        let left: Vec<u64> = self.corrupt_left.iter().map(|&i| u64::from(i)).collect();
        let right: Vec<u64> = self.corrupt_right.iter().map(|&i| u64::from(i)).collect();
        let _ = writeln!(out, "corrupt_left = {}", render_ints(&left));
        let _ = writeln!(out, "corrupt_right = {}", render_ints(&right));
        let _ = writeln!(out, "seed = {}", self.seed);
        for action in &self.actions {
            out.push_str("\n[[action]]\n");
            let _ = writeln!(out, "kind = {}", quote(action.kind()));
            match *action {
                ScriptAction::Silence { from_slot } => {
                    let _ = writeln!(out, "from_slot = {from_slot}");
                }
                ScriptAction::Lie { seed } => {
                    let _ = writeln!(out, "seed = {seed}");
                }
                ScriptAction::Garbage { seed, per_slot } => {
                    let _ = writeln!(out, "seed = {seed}");
                    let _ = writeln!(out, "per_slot = {per_slot}");
                }
                ScriptAction::Corrupt { slot, side, index } => {
                    let _ = writeln!(out, "slot = {slot}");
                    let _ = writeln!(out, "side = {}", quote(side_name(side)));
                    let _ = writeln!(out, "index = {index}");
                }
                ScriptAction::DelayRecv { slot, nth, by } => {
                    let _ = writeln!(out, "slot = {slot}");
                    let _ = writeln!(out, "nth = {nth}");
                    let _ = writeln!(out, "by = {by}");
                }
                ScriptAction::DropRecv { slot, nth }
                | ScriptAction::Replay { slot, nth }
                | ScriptAction::DropSend { slot, nth }
                | ScriptAction::Equivocate { slot, nth }
                | ScriptAction::TruncateChain { slot, nth }
                | ScriptAction::ReorderChain { slot, nth }
                | ScriptAction::SwapSigTag { slot, nth } => {
                    let _ = writeln!(out, "slot = {slot}");
                    let _ = writeln!(out, "nth = {nth}");
                }
            }
        }
        if let Some(verdict) = &self.verdict {
            out.push_str("\n[verdict]\n");
            let _ = writeln!(out, "decided = {}", verdict.decided);
            let _ = writeln!(out, "slots = {}", verdict.slots);
            let _ = writeln!(out, "violations = {}", render_strs(&verdict.violations));
        }
        out
    }

    /// Parses the serialized form (see [`canonical`](Self::canonical)).
    ///
    /// # Errors
    ///
    /// Returns a line-numbered [`ScriptError`] on malformed syntax, unknown
    /// sections/keys/kinds, duplicate keys or missing required fields.
    pub fn parse(text: &str) -> Result<Script, ScriptError> {
        enum Section {
            None,
            Script,
            Action,
            Verdict,
        }
        let mut script_fields: Option<Fields> = None;
        let mut action_fields: Vec<Fields> = Vec::new();
        let mut verdict_fields: Option<Fields> = None;
        let mut current = Section::None;

        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[script]" {
                if script_fields.is_some() {
                    return Err(ScriptError {
                        line: line_no,
                        message: "duplicate [script] section".into(),
                    });
                }
                script_fields = Some(Fields::new(line_no));
                current = Section::Script;
                continue;
            }
            if line == "[[action]]" {
                action_fields.push(Fields::new(line_no));
                current = Section::Action;
                continue;
            }
            if line == "[verdict]" {
                if verdict_fields.is_some() {
                    return Err(ScriptError {
                        line: line_no,
                        message: "duplicate [verdict] section".into(),
                    });
                }
                verdict_fields = Some(Fields::new(line_no));
                current = Section::Verdict;
                continue;
            }
            if line.starts_with('[') {
                return Err(ScriptError {
                    line: line_no,
                    message: format!("unknown section {line:?}"),
                });
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ScriptError {
                    line: line_no,
                    message: format!("expected `key = value`, got {line:?}"),
                });
            };
            let key = key.trim();
            if key.is_empty() {
                return Err(ScriptError { line: line_no, message: "empty key".into() });
            }
            let value = parse_value(value.trim(), line_no)?;
            let fields: &mut Fields = match current {
                Section::None => {
                    return Err(ScriptError {
                        line: line_no,
                        message: format!("key {key:?} outside any section"),
                    });
                }
                Section::Script => script_fields.as_mut().expect("section seen"),
                Section::Action => action_fields.last_mut().expect("section seen"),
                Section::Verdict => verdict_fields.as_mut().expect("section seen"),
            };
            if fields.pairs.iter().any(|(k, _, _)| k == key) {
                return Err(ScriptError {
                    line: line_no,
                    message: format!("duplicate key {key:?}"),
                });
            }
            fields.pairs.push((key.to_string(), line_no, value));
        }

        let mut sf = script_fields
            .ok_or_else(|| ScriptError { line: 0, message: "missing [script] section".into() })?;
        let name = sf.take_str("name")?;
        let k = usize::try_from(sf.take_int("k")?)
            .map_err(|_| ScriptError { line: sf.header, message: "k out of range".into() })?;
        let topology_name = sf.take_str("topology")?;
        let topology = topology_from_name(&topology_name).ok_or_else(|| ScriptError {
            line: sf.header,
            message: format!("unknown topology {topology_name:?}"),
        })?;
        let auth_name = sf.take_str("auth")?;
        let auth = auth_from_name(&auth_name).ok_or_else(|| ScriptError {
            line: sf.header,
            message: format!("unknown auth mode {auth_name:?}"),
        })?;
        let t_l = sf.take_int("t_l")? as usize;
        let t_r = sf.take_int("t_r")? as usize;
        let plan = match sf.take_str_opt("plan")? {
            None => None,
            Some(plan_str) => Some(plan_from_name(&plan_str).ok_or_else(|| ScriptError {
                line: sf.header,
                message: format!("unknown plan {plan_str:?}"),
            })?),
        };
        let corrupt_left = to_u32s(sf.take_ints_opt("corrupt_left")?, sf.header)?;
        let corrupt_right = to_u32s(sf.take_ints_opt("corrupt_right")?, sf.header)?;
        let seed = sf.take_int("seed")?;
        sf.finish("script")?;

        let mut actions = Vec::with_capacity(action_fields.len());
        for fields in action_fields {
            actions.push(action_from_fields(fields)?);
        }

        let verdict = match verdict_fields {
            None => None,
            Some(mut vf) => {
                let decided = vf.take_bool("decided")?;
                let slots = vf.take_int("slots")?;
                let violations = vf.take_strs_opt("violations")?;
                vf.finish("verdict")?;
                Some(Verdict { decided, slots, violations })
            }
        };

        Ok(Script {
            name,
            k,
            topology,
            auth,
            t_l,
            t_r,
            plan,
            corrupt_left,
            corrupt_right,
            seed,
            actions,
            verdict,
        })
    }

    /// Loads and parses a script file.
    ///
    /// # Errors
    ///
    /// Returns a [`ScriptError`] on I/O failure (line 0) or parse failure.
    pub fn load(path: &Path) -> Result<Script, ScriptError> {
        let text = std::fs::read_to_string(path).map_err(|e| ScriptError {
            line: 0,
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        Script::parse(&text)
    }

    /// The setting this script runs in.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Setting`] for invalid parameters.
    pub fn setting(&self) -> Result<Setting, HarnessError> {
        Ok(Setting::new(self.k, self.topology, self.auth, self.t_l, self.t_r)?)
    }

    /// Builds the scenario (setting, profile, static corruptions) described by this
    /// script.
    ///
    /// # Errors
    ///
    /// Propagates setting and builder validation errors.
    pub fn scenario(&self) -> Result<Scenario, HarnessError> {
        Scenario::builder(self.setting()?)
            .seed(self.seed)
            .corrupt_left(self.corrupt_left.iter().copied())
            .corrupt_right(self.corrupt_right.iter().copied())
            .build()
    }

    /// The protocol plan to execute: the explicit override, or the plan the
    /// solvability characterization prescribes.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Unsolvable`] when no plan is forced and the setting is
    /// unsolvable.
    pub fn resolved_plan(&self) -> Result<ProtocolPlan, HarnessError> {
        if let Some(plan) = self.plan {
            return Ok(plan);
        }
        match characterize(&self.setting()?) {
            Solvability::Solvable(plan) => Ok(plan),
            Solvability::Unsolvable(imp) => Err(HarnessError::Unsolvable(imp)),
        }
    }

    /// Runs the script: builds the scenario, interprets the actions through a
    /// [`ScriptedAdversary`], and checks every bSM property on the outcome.
    ///
    /// # Errors
    ///
    /// Propagates setting, solvability and simulator errors.
    pub fn run(&self) -> Result<ScenarioOutcome, HarnessError> {
        let scenario = self.scenario()?;
        let plan = self.resolved_plan()?;
        let adversary = ScriptedAdversary::new(&scenario, plan, &self.actions);
        scenario.run_with_adversary(plan, Box::new(adversary))
    }
}

/// A parsed value of the TOML subset.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Value {
    Int(u64),
    Bool(bool),
    Str(String),
    Ints(Vec<u64>),
    Strs(Vec<String>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Bool(_) => "boolean",
            Value::Str(_) => "string",
            Value::Ints(_) => "integer array",
            Value::Strs(_) => "string array",
        }
    }
}

/// Reads a quoted string starting at `text[0] == '"'`; returns the unescaped body
/// and the rest of the input after the closing quote.
fn parse_string_body(text: &str, line: usize) -> Result<(String, &str), ScriptError> {
    let mut chars = text.char_indices();
    match chars.next() {
        Some((_, '"')) => {}
        _ => return Err(ScriptError { line, message: "expected opening quote".into() }),
    }
    let mut out = String::new();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &text[i + c.len_utf8()..])),
            '\\' => match chars.next() {
                Some((_, '\\')) => out.push('\\'),
                Some((_, '"')) => out.push('"'),
                _ => {
                    return Err(ScriptError { line, message: "invalid escape in string".into() });
                }
            },
            other => out.push(other),
        }
    }
    Err(ScriptError { line, message: "unterminated string".into() })
}

fn parse_array(text: &str, line: usize) -> Result<Value, ScriptError> {
    let mut rest = text.strip_prefix('[').expect("caller checked").trim_start();
    let mut ints: Vec<u64> = Vec::new();
    let mut strs: Vec<String> = Vec::new();
    loop {
        if let Some(after) = rest.strip_prefix(']') {
            if !after.trim().is_empty() {
                return Err(ScriptError {
                    line,
                    message: format!("trailing characters after array: {:?}", after.trim()),
                });
            }
            break;
        }
        if rest.starts_with('"') {
            if !ints.is_empty() {
                return Err(ScriptError { line, message: "mixed array element types".into() });
            }
            let (body, after) = parse_string_body(rest, line)?;
            strs.push(body);
            rest = after.trim_start();
        } else {
            if !strs.is_empty() {
                return Err(ScriptError { line, message: "mixed array element types".into() });
            }
            let end = rest
                .find([',', ']'])
                .ok_or_else(|| ScriptError { line, message: "unterminated array".into() })?;
            let token = rest[..end].trim();
            let value: u64 = token.parse().map_err(|_| ScriptError {
                line,
                message: format!("invalid array integer {token:?}"),
            })?;
            ints.push(value);
            rest = &rest[end..];
        }
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        } else if !rest.starts_with(']') {
            return Err(ScriptError { line, message: "expected `,` or `]` in array".into() });
        }
    }
    if strs.is_empty() {
        Ok(Value::Ints(ints))
    } else {
        Ok(Value::Strs(strs))
    }
}

fn parse_value(text: &str, line: usize) -> Result<Value, ScriptError> {
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if text.starts_with('"') {
        let (body, rest) = parse_string_body(text, line)?;
        if !rest.trim().is_empty() {
            return Err(ScriptError {
                line,
                message: format!("trailing characters after string: {:?}", rest.trim()),
            });
        }
        return Ok(Value::Str(body));
    }
    if text.starts_with('[') {
        return parse_array(text, line);
    }
    text.parse::<u64>().map(Value::Int).map_err(|_| ScriptError {
        line,
        message: format!("invalid value {text:?} (expected integer, bool, string or array)"),
    })
}

/// The key/value pairs of one section, with their line numbers.
#[derive(Debug)]
struct Fields {
    header: usize,
    pairs: Vec<(String, usize, Value)>,
}

impl Fields {
    fn new(header: usize) -> Self {
        Self { header, pairs: Vec::new() }
    }

    fn take(&mut self, key: &str) -> Option<(usize, Value)> {
        let idx = self.pairs.iter().position(|(k, _, _)| k == key)?;
        let (_, line, value) = self.pairs.remove(idx);
        Some((line, value))
    }

    fn missing(&self, key: &str) -> ScriptError {
        ScriptError { line: self.header, message: format!("missing key {key:?}") }
    }

    fn wrong_type(line: usize, key: &str, value: &Value, wanted: &str) -> ScriptError {
        ScriptError {
            line,
            message: format!("key {key:?} must be a {wanted}, got {}", value.type_name()),
        }
    }

    fn take_int(&mut self, key: &str) -> Result<u64, ScriptError> {
        match self.take(key) {
            Some((_, Value::Int(v))) => Ok(v),
            Some((line, other)) => Err(Self::wrong_type(line, key, &other, "integer")),
            None => Err(self.missing(key)),
        }
    }

    fn take_bool(&mut self, key: &str) -> Result<bool, ScriptError> {
        match self.take(key) {
            Some((_, Value::Bool(v))) => Ok(v),
            Some((line, other)) => Err(Self::wrong_type(line, key, &other, "boolean")),
            None => Err(self.missing(key)),
        }
    }

    fn take_str(&mut self, key: &str) -> Result<String, ScriptError> {
        self.take_str_opt(key)?.ok_or_else(|| self.missing(key))
    }

    fn take_str_opt(&mut self, key: &str) -> Result<Option<String>, ScriptError> {
        match self.take(key) {
            Some((_, Value::Str(v))) => Ok(Some(v)),
            Some((line, other)) => Err(Self::wrong_type(line, key, &other, "string")),
            None => Ok(None),
        }
    }

    fn take_ints_opt(&mut self, key: &str) -> Result<Vec<u64>, ScriptError> {
        match self.take(key) {
            Some((_, Value::Ints(v))) => Ok(v),
            Some((line, other)) => Err(Self::wrong_type(line, key, &other, "integer array")),
            None => Ok(Vec::new()),
        }
    }

    fn take_strs_opt(&mut self, key: &str) -> Result<Vec<String>, ScriptError> {
        match self.take(key) {
            Some((_, Value::Strs(v))) => Ok(v),
            // An empty array parses as `Ints(vec![])`; accept it where strings are
            // expected so `violations = []` round-trips.
            Some((_, Value::Ints(v))) if v.is_empty() => Ok(Vec::new()),
            Some((line, other)) => Err(Self::wrong_type(line, key, &other, "string array")),
            None => Ok(Vec::new()),
        }
    }

    fn finish(self, section: &str) -> Result<(), ScriptError> {
        if let Some((key, line, _)) = self.pairs.into_iter().next() {
            return Err(ScriptError {
                line,
                message: format!("unknown key {key:?} in [{section}]"),
            });
        }
        Ok(())
    }
}

fn to_u32s(values: Vec<u64>, line: usize) -> Result<Vec<u32>, ScriptError> {
    values
        .into_iter()
        .map(|v| {
            u32::try_from(v)
                .map_err(|_| ScriptError { line, message: format!("index {v} out of range") })
        })
        .collect()
}

fn action_from_fields(mut fields: Fields) -> Result<ScriptAction, ScriptError> {
    let kind = fields.take_str("kind")?;
    let action = match kind.as_str() {
        "silence" => ScriptAction::Silence { from_slot: fields.take_int("from_slot")? },
        "lie" => ScriptAction::Lie { seed: fields.take_int("seed")? },
        "garbage" => ScriptAction::Garbage {
            seed: fields.take_int("seed")?,
            per_slot: fields.take_int("per_slot")?,
        },
        "corrupt" => {
            let slot = fields.take_int("slot")?;
            let side_str = fields.take_str("side")?;
            let side = side_from_name(&side_str).ok_or_else(|| ScriptError {
                line: fields.header,
                message: format!("unknown side {side_str:?}"),
            })?;
            let index_raw = fields.take_int("index")?;
            let index = u32::try_from(index_raw).map_err(|_| ScriptError {
                line: fields.header,
                message: format!("index {index_raw} out of range"),
            })?;
            ScriptAction::Corrupt { slot, side, index }
        }
        "delay-recv" => ScriptAction::DelayRecv {
            slot: fields.take_int("slot")?,
            nth: fields.take_int("nth")?,
            by: fields.take_int("by")?,
        },
        "drop-recv" => {
            ScriptAction::DropRecv { slot: fields.take_int("slot")?, nth: fields.take_int("nth")? }
        }
        "replay" => {
            ScriptAction::Replay { slot: fields.take_int("slot")?, nth: fields.take_int("nth")? }
        }
        "drop-send" => {
            ScriptAction::DropSend { slot: fields.take_int("slot")?, nth: fields.take_int("nth")? }
        }
        "equivocate" => ScriptAction::Equivocate {
            slot: fields.take_int("slot")?,
            nth: fields.take_int("nth")?,
        },
        "truncate-chain" => ScriptAction::TruncateChain {
            slot: fields.take_int("slot")?,
            nth: fields.take_int("nth")?,
        },
        "reorder-chain" => ScriptAction::ReorderChain {
            slot: fields.take_int("slot")?,
            nth: fields.take_int("nth")?,
        },
        "swap-sig-tag" => ScriptAction::SwapSigTag {
            slot: fields.take_int("slot")?,
            nth: fields.take_int("nth")?,
        },
        other => {
            return Err(ScriptError {
                line: fields.header,
                message: format!("unknown action kind {other:?}"),
            });
        }
    };
    fields.finish("action")?;
    Ok(action)
}

/// The interpreter: executes a [`Script`]'s action list against the live simulation.
///
/// The behaviour-mode actions reuse the exact machinery of
/// [`crate::harness::AdversarySpec`] — honest-code puppets on the true or a lying
/// profile, or the garbage flooder — so scripts subsume the hand-written adversaries
/// outcome-identically. The point interventions tamper with the coalition's inbound
/// and outbound traffic per slot.
pub struct ScriptedAdversary {
    k: usize,
    actions: Vec<ScriptAction>,
    puppets: BsmPuppetAdversary,
    garbage: Option<GarbageAdversary>,
    silence_from: Option<u64>,
    keys: BTreeMap<PartyId, SigningKey>,
    /// Messages withheld by `DelayRecv`, as `(due_slot, recipient, envelope)`.
    delayed: Vec<(u64, PartyId, Envelope<WireMsg>)>,
}

impl ScriptedAdversary {
    /// Builds the interpreter for `scenario`/`plan`.
    ///
    /// Puppets are constructed *eagerly* here (not lazily in the first slot) so
    /// that protocol constructors sign before [`Scenario::run_with_adversary`]
    /// snapshots the signature counter — exactly like the built-in adversaries —
    /// keeping empty-script runs byte-identical to honest runs.
    pub fn new(scenario: &Scenario, plan: ProtocolPlan, actions: &[ScriptAction]) -> Self {
        enum Mode {
            Honest,
            Silence(u64),
            Lie(u64),
            Garbage(u64, u64),
        }
        let mode = actions
            .iter()
            .find_map(|action| match *action {
                ScriptAction::Silence { from_slot } => Some(Mode::Silence(from_slot)),
                ScriptAction::Lie { seed } => Some(Mode::Lie(seed)),
                ScriptAction::Garbage { seed, per_slot } => Some(Mode::Garbage(seed, per_slot)),
                _ => None,
            })
            .unwrap_or(Mode::Honest);

        let env = scenario.env();
        let k = scenario.setting().k();
        let mut puppets = BsmPuppetAdversary::new();
        let mut garbage = None;
        let mut silence_from = None;
        match mode {
            Mode::Honest => {
                for &party in scenario.corrupted() {
                    puppets.add_puppet(
                        party,
                        Box::new(env.build_runtime(party, plan, scenario.profile())),
                    );
                }
            }
            // Silence from slot 0 is the crash fault: no puppets at all, so not even
            // constructor-time signatures are issued — identical to AdversarySpec::Crash.
            Mode::Silence(0) => {}
            Mode::Silence(from) => {
                silence_from = Some(from);
                for &party in scenario.corrupted() {
                    puppets.add_puppet(
                        party,
                        Box::new(env.build_runtime(party, plan, scenario.profile())),
                    );
                }
            }
            Mode::Lie(seed) => {
                // Same derivation as Scenario::build_adversary for AdversarySpec::Lying.
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x11e5));
                let lying_profile = uniform_profile(k, &mut rng);
                for &party in scenario.corrupted() {
                    puppets.add_puppet(
                        party,
                        Box::new(env.build_runtime(party, plan, &lying_profile)),
                    );
                }
            }
            Mode::Garbage(seed, per_slot) => {
                garbage = Some(GarbageAdversary::new(seed, per_slot as usize));
            }
        }

        let keys = scenario
            .corrupted()
            .iter()
            .map(|&party| {
                let key = env.pki.signing_key(env.key_of[&party].0).expect("every party has a key");
                (party, key)
            })
            .collect();

        Self {
            k,
            actions: actions.to_vec(),
            puppets,
            garbage,
            silence_from,
            keys,
            delayed: Vec::new(),
        }
    }
}

/// Removes the `nth` envelope (flat index over party order, then arrival order)
/// from the coalition's inboxes.
fn remove_nth(
    boxes: &mut BTreeMap<PartyId, Vec<Envelope<WireMsg>>>,
    nth: u64,
) -> Option<(PartyId, Envelope<WireMsg>)> {
    let mut remaining = usize::try_from(nth).ok()?;
    for (&party, inbox) in boxes.iter_mut() {
        if remaining < inbox.len() {
            return Some((party, inbox.remove(remaining)));
        }
        remaining -= inbox.len();
    }
    None
}

/// Looks up the `nth` envelope without removing it.
fn peek_nth(
    boxes: &BTreeMap<PartyId, Vec<Envelope<WireMsg>>>,
    nth: u64,
) -> Option<(PartyId, &Envelope<WireMsg>)> {
    let mut remaining = usize::try_from(nth).ok()?;
    for (&party, inbox) in boxes.iter() {
        if remaining < inbox.len() {
            return Some((party, &inbox[remaining]));
        }
        remaining -= inbox.len();
    }
    None
}

/// The Dolev–Strong payload of a wire message (looking through relay wrappers),
/// together with its instance tag.
fn ds_body(msg: &mut WireMsg) -> Option<(u32, &mut DolevStrongMsg<PrefVec>)> {
    let inner = match msg {
        WireMsg::Direct(inner) => inner,
        WireMsg::RelayRequest { inner, .. } => inner,
        WireMsg::RelayDeliver { inner, .. } => inner,
    };
    match &mut inner.body {
        ProtoBody::Ds(ds) => Some((inner.instance, ds)),
        _ => None,
    }
}

/// Rebuilds a chain through an arbitrary `Vec<Signature>` edit.
fn mutate_chain(chain: &mut SigChain, f: impl FnOnce(&mut Vec<Signature>)) {
    let mut sigs: Vec<Signature> = chain.iter().copied().collect();
    f(&mut sigs);
    *chain = SigChain::from(sigs);
}

/// The digest every link of a Dolev–Strong chain signs for `value` in the per-party
/// broadcast instance `instance`.
///
/// In the composite protocol the instance tag *is* the designated sender's dense key
/// index, so the sender key id and the instance coincide — mirrored from
/// `DolevStrong::instance_digest` and cross-checked by a unit test below.
fn ds_instance_digest(instance: u32, value: &PrefVec) -> Digest {
    let mut writer = DigestWriter::new();
    writer.label("dolev-strong").u64(u64::from(instance)).u64(u64::from(instance));
    value.feed(&mut writer);
    writer.finish()
}

impl Adversary<WireMsg> for ScriptedAdversary {
    fn plan_corruptions(&mut self, ctx: &AdversaryContext<'_>) -> Vec<PartyId> {
        let slot = ctx.now.slot();
        self.actions
            .iter()
            .filter_map(|action| match *action {
                ScriptAction::Corrupt { slot: s, side, index } if s == slot => {
                    let party = PartyId { side, index };
                    // Adaptively corrupted parties have no puppet or key: they simply
                    // crash from the corruption slot onwards.
                    ctx.can_corrupt(party).then_some(party)
                }
                _ => None,
            })
            .collect()
    }

    fn act(
        &mut self,
        ctx: &AdversaryContext<'_>,
        inboxes: &BTreeMap<PartyId, Vec<Envelope<WireMsg>>>,
    ) -> Vec<(PartyId, Outgoing<WireMsg>)> {
        let slot = ctx.now.slot();

        // Release messages whose DelayRecv hold expires this slot.
        let mut due = Vec::new();
        let mut kept = Vec::new();
        for entry in std::mem::take(&mut self.delayed) {
            if entry.0 <= slot {
                due.push(entry);
            } else {
                kept.push(entry);
            }
        }
        self.delayed = kept;

        if self.silence_from.is_some_and(|from| slot >= from) {
            return Vec::new();
        }

        // The coalition's view of this slot: every corrupted party's inbox (present
        // or empty), plus any released delayed messages.
        let mut boxes: BTreeMap<PartyId, Vec<Envelope<WireMsg>>> = ctx
            .corrupted
            .iter()
            .map(|&party| (party, inboxes.get(&party).cloned().unwrap_or_default()))
            .collect();
        for (_, party, envelope) in due {
            boxes.entry(party).or_default().push(envelope);
        }

        // Inbound pass: drop / delay / replay received messages before the puppets
        // see them.
        let actions = self.actions.clone();
        let mut replays: Vec<(PartyId, Outgoing<WireMsg>)> = Vec::new();
        for action in &actions {
            match *action {
                ScriptAction::DropRecv { slot: s, nth } if s == slot => {
                    remove_nth(&mut boxes, nth);
                }
                ScriptAction::DelayRecv { slot: s, nth, by } if s == slot => {
                    if let Some((party, envelope)) = remove_nth(&mut boxes, nth) {
                        self.delayed.push((slot + by.max(1), party, envelope));
                    }
                }
                ScriptAction::Replay { slot: s, nth } if s == slot => {
                    if let Some((party, envelope)) = peek_nth(&boxes, nth) {
                        let payload = envelope.payload.clone();
                        for target in ctx.honest() {
                            if target != party && ctx.topology.connects(party, target) {
                                replays.push((party, Outgoing::new(target, payload.clone())));
                            }
                        }
                    }
                }
                _ => {}
            }
        }

        let mut out = self.puppets.act(ctx, &boxes);
        if let Some(garbage) = &mut self.garbage {
            out.extend(garbage.act(ctx, &boxes));
        }
        out.extend(replays);

        // Outbound pass: suppress or tamper with what the coalition sends.
        for action in &actions {
            match *action {
                ScriptAction::DropSend { slot: s, nth } if s == slot => {
                    let idx = nth as usize;
                    if idx < out.len() {
                        out.remove(idx);
                    }
                }
                ScriptAction::Equivocate { slot: s, nth } if s == slot => {
                    if let Some((sender, outgoing)) = out.get_mut(nth as usize) {
                        let _ = sender;
                        if let Some((instance, ds)) = ds_body(&mut outgoing.payload) {
                            if ds.value.len() > 1 {
                                ds.value.rotate_left(1);
                            } else if let Some(first) = ds.value.first_mut() {
                                *first = first.wrapping_add(1);
                            }
                            // If the coalition controls the designated sender of this
                            // instance, re-root the chain so the forged value carries a
                            // *valid* origin signature — true equivocation. Otherwise
                            // the stale chain no longer matches the value and honest
                            // verifiers must reject it.
                            if (instance as usize) < 2 * self.k {
                                let subject = party_from_dense(instance, self.k);
                                if let Some(key) = self.keys.get(&subject) {
                                    let digest = ds_instance_digest(instance, &ds.value);
                                    ds.chain = SigChain::single(key.sign(digest));
                                }
                            }
                        }
                    }
                }
                ScriptAction::TruncateChain { slot: s, nth } if s == slot => {
                    if let Some((_, outgoing)) = out.get_mut(nth as usize) {
                        if let Some((_, ds)) = ds_body(&mut outgoing.payload) {
                            mutate_chain(&mut ds.chain, |sigs| {
                                sigs.pop();
                            });
                        }
                    }
                }
                ScriptAction::ReorderChain { slot: s, nth } if s == slot => {
                    if let Some((_, outgoing)) = out.get_mut(nth as usize) {
                        if let Some((_, ds)) = ds_body(&mut outgoing.payload) {
                            mutate_chain(&mut ds.chain, |sigs| sigs.reverse());
                        }
                    }
                }
                ScriptAction::SwapSigTag { slot: s, nth } if s == slot => {
                    if let Some((sender, outgoing)) = out.get_mut(nth as usize) {
                        let key = self.keys.get(sender).or_else(|| self.keys.values().next());
                        if let Some(key) = key {
                            if let Some((_, ds)) = ds_body(&mut outgoing.payload) {
                                let mut writer = DigestWriter::new();
                                writer.label("fuzz-swapped-tag").u64(slot).u64(nth);
                                let forged = key.sign(writer.finish());
                                mutate_chain(&mut ds.chain, |sigs| {
                                    if let Some(last) = sigs.last_mut() {
                                        *last = forged;
                                    } else {
                                        sigs.push(forged);
                                    }
                                });
                            }
                        }
                    }
                }
                _ => {}
            }
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::AdversarySpec;

    fn all_action_kinds() -> Vec<ScriptAction> {
        vec![
            ScriptAction::Silence { from_slot: 3 },
            ScriptAction::Lie { seed: 17 },
            ScriptAction::Garbage { seed: 5, per_slot: 2 },
            ScriptAction::Corrupt { slot: 1, side: Side::Right, index: 2 },
            ScriptAction::DropRecv { slot: 2, nth: 1 },
            ScriptAction::DelayRecv { slot: 2, nth: 0, by: 2 },
            ScriptAction::Replay { slot: 4, nth: 3 },
            ScriptAction::DropSend { slot: 0, nth: 0 },
            ScriptAction::Equivocate { slot: 1, nth: 2 },
            ScriptAction::TruncateChain { slot: 3, nth: 1 },
            ScriptAction::ReorderChain { slot: 3, nth: 0 },
            ScriptAction::SwapSigTag { slot: 5, nth: 4 },
        ]
    }

    fn sample_script() -> Script {
        Script {
            name: "sample \"quoted\" \\ name".into(),
            k: 3,
            topology: Topology::FullyConnected,
            auth: AuthMode::Authenticated,
            t_l: 1,
            t_r: 1,
            plan: Some(ProtocolPlan::DolevStrongBsm),
            corrupt_left: vec![2],
            corrupt_right: vec![],
            seed: 42,
            actions: all_action_kinds(),
            verdict: Some(Verdict {
                decided: true,
                slots: 14,
                violations: vec!["party L0 never decided".into()],
            }),
        }
    }

    fn empty_script(seed: u64) -> Script {
        Script {
            name: "empty".into(),
            k: 3,
            topology: Topology::FullyConnected,
            auth: AuthMode::Authenticated,
            t_l: 1,
            t_r: 1,
            plan: None,
            corrupt_left: vec![2],
            corrupt_right: vec![2],
            seed,
            actions: vec![],
            verdict: None,
        }
    }

    fn assert_same_outcome(a: &ScenarioOutcome, b: &ScenarioOutcome) {
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.corrupted, b.corrupted);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.all_honest_decided, b.all_honest_decided);
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.signatures, b.signatures);
    }

    #[test]
    fn canonical_parse_roundtrip_covers_every_action_kind() {
        let script = sample_script();
        let text = script.canonical();
        let parsed = Script::parse(&text).unwrap();
        assert_eq!(parsed, script);
        // Canonical text is a fixpoint of parse∘canonical.
        assert_eq!(parsed.canonical(), text);
    }

    #[test]
    fn roundtrip_without_optionals() {
        let mut script = sample_script();
        script.plan = None;
        script.verdict = None;
        script.actions.clear();
        script.corrupt_left.clear();
        let parsed = Script::parse(&script.canonical()).unwrap();
        assert_eq!(parsed, script);
    }

    #[test]
    fn parse_tolerates_comments_and_blank_lines() {
        let script = empty_script(1);
        let mut text = String::from("# frozen by the fuzzer\n\n");
        text.push_str(&script.canonical());
        assert_eq!(Script::parse(&text).unwrap(), script);
    }

    #[test]
    fn parse_errors_are_line_numbered() {
        let cases: Vec<(&str, &str)> = vec![
            ("", "missing [script]"),
            ("x = 1\n", "outside any section"),
            ("[script]\n[script]\n", "duplicate [script]"),
            ("[bogus]\n", "unknown section"),
            ("[script]\nname = \"a\"\nname = \"b\"\n", "duplicate key"),
            ("[script]\nnot a pair\n", "expected `key = value`"),
            ("[script]\nname = \"a\"\nk = \"three\"\n", "must be a integer"),
            ("[script]\nname = \"unterminated\n", "unterminated string"),
            ("[script]\nseed = [1, \"x\"]\n", "mixed array"),
            ("[script]\nseed = nope\n", "invalid value"),
        ];
        for (text, needle) in cases {
            let err = Script::parse(text).unwrap_err();
            assert!(err.to_string().contains(needle), "expected {needle:?} in {err} for {text:?}");
        }
        // Unknown action kind and unknown script key are rejected too.
        let mut bad_kind = empty_script(0).canonical();
        bad_kind.push_str("\n[[action]]\nkind = \"explode\"\n");
        assert!(Script::parse(&bad_kind).unwrap_err().to_string().contains("unknown action kind"));
        let mut bad_key = empty_script(0).canonical();
        bad_key.push_str("bogus = 1\n");
        assert!(Script::parse(&bad_key).unwrap_err().to_string().contains("unknown key"));
        // Errors without a line render with the `script:` prefix.
        assert!(Script::parse("").unwrap_err().to_string().starts_with("script:"));
    }

    #[test]
    fn numbers_and_with_numbers_are_inverse_views() {
        for action in all_action_kinds() {
            let numbers = action.numbers();
            assert!(!numbers.is_empty(), "{action:?}");
            // Identity replacement.
            assert_eq!(action.with_numbers(&numbers), action);
            // Zeroing every number still yields the same kind.
            let zeros = vec![0u64; numbers.len()];
            let zeroed = action.with_numbers(&zeros);
            assert_eq!(zeroed.kind(), action.kind());
            assert_eq!(zeroed.numbers(), zeros);
            // Too-short replacement keeps the missing positions.
            assert_eq!(action.with_numbers(&[]), action);
        }
    }

    #[test]
    fn lie_script_matches_builtin_lying_adversary() {
        for seed in [0u64, 3] {
            let setting =
                Setting::new(3, Topology::FullyConnected, AuthMode::Authenticated, 1, 1).unwrap();
            let builtin = Scenario::builder(setting)
                .seed(seed)
                .corrupt_left([2])
                .corrupt_right([2])
                .adversary(AdversarySpec::Lying)
                .build()
                .unwrap()
                .run()
                .unwrap();
            let mut script = empty_script(seed);
            script.actions = vec![ScriptAction::Lie { seed }];
            let scripted = script.run().unwrap();
            assert_same_outcome(&builtin, &scripted);
        }
    }

    #[test]
    fn silence_from_zero_matches_builtin_crash_adversary() {
        let setting =
            Setting::new(3, Topology::FullyConnected, AuthMode::Authenticated, 1, 1).unwrap();
        let builtin = Scenario::builder(setting)
            .seed(5)
            .corrupt_left([2])
            .adversary(AdversarySpec::Crash)
            .build()
            .unwrap()
            .run()
            .unwrap();
        let mut script = empty_script(5);
        script.corrupt_right.clear();
        script.actions = vec![ScriptAction::Silence { from_slot: 0 }];
        let scripted = script.run().unwrap();
        assert_same_outcome(&builtin, &scripted);
    }

    #[test]
    fn garbage_script_matches_builtin_garbage_adversary() {
        let setting =
            Setting::new(3, Topology::FullyConnected, AuthMode::Authenticated, 1, 1).unwrap();
        let builtin = Scenario::builder(setting)
            .seed(7)
            .corrupt_left([2])
            .corrupt_right([2])
            .adversary(AdversarySpec::Garbage)
            .build()
            .unwrap()
            .run()
            .unwrap();
        let mut script = empty_script(7);
        script.actions = vec![ScriptAction::Garbage { seed: 7, per_slot: 2 }];
        let scripted = script.run().unwrap();
        assert_same_outcome(&builtin, &scripted);
    }

    #[test]
    fn empty_script_matches_honest_run() {
        let setting =
            Setting::new(3, Topology::FullyConnected, AuthMode::Authenticated, 1, 1).unwrap();
        let honest = Scenario::builder(setting).seed(11).build().unwrap().run().unwrap();
        let mut script = empty_script(11);
        script.corrupt_left.clear();
        script.corrupt_right.clear();
        let scripted = script.run().unwrap();
        assert_same_outcome(&honest, &scripted);
    }

    #[test]
    fn instance_digest_matches_dolev_strong() {
        use bsm_broadcast::{DolevStrong, DolevStrongConfig};
        use bsm_crypto::{KeyId, Pki};
        let k = 3;
        let pki = Pki::new(2 * k as u32);
        let parties: Vec<PartyId> = (0..2 * k).map(|d| PartyId::from_dense(d, k)).collect();
        let key_of: BTreeMap<PartyId, KeyId> =
            parties.iter().map(|&p| (p, KeyId(p.dense(k) as u32))).collect();
        // Instance 4 = dense index of R1 at k = 3.
        let sender = PartyId::right(1);
        let config = DolevStrongConfig {
            me: PartyId::left(0),
            sender,
            participants: parties,
            t: 2,
            instance: sender.dense(k) as u64,
            pki,
            key_of,
        };
        let value: PrefVec = vec![2, 0, 1];
        assert_eq!(
            ds_instance_digest(sender.dense(k) as u32, &value),
            DolevStrong::<PrefVec>::instance_digest(&config, &value),
        );
    }

    #[test]
    fn corrupt_action_adaptively_corrupts_within_budget() {
        let mut script = empty_script(2);
        script.corrupt_right.clear();
        script.corrupt_left.clear();
        script.actions = vec![
            // Within budget: takes effect.
            ScriptAction::Corrupt { slot: 1, side: Side::Left, index: 0 },
            // Out of universe: silently skipped.
            ScriptAction::Corrupt { slot: 1, side: Side::Right, index: 9 },
        ];
        let outcome = script.run().unwrap();
        assert!(outcome.corrupted.contains(&PartyId::left(0)), "{:?}", outcome.corrupted);
        assert_eq!(outcome.corrupted.len(), 1);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    }

    #[test]
    fn tampering_actions_are_tolerated_within_thresholds() {
        // A kitchen-sink script: the corrupted coalition equivocates, tampers with
        // chains, drops/delays/replays — and the protocol must still satisfy bSM.
        let mut script = empty_script(9);
        script.actions = vec![
            ScriptAction::Equivocate { slot: 1, nth: 0 },
            ScriptAction::TruncateChain { slot: 2, nth: 1 },
            ScriptAction::ReorderChain { slot: 2, nth: 0 },
            ScriptAction::SwapSigTag { slot: 3, nth: 2 },
            ScriptAction::DropRecv { slot: 1, nth: 0 },
            ScriptAction::DelayRecv { slot: 2, nth: 1, by: 2 },
            ScriptAction::Replay { slot: 3, nth: 0 },
            ScriptAction::DropSend { slot: 4, nth: 1 },
        ];
        let outcome = script.run().unwrap();
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
        assert!(outcome.all_honest_decided);
        // Determinism: the same script reproduces the same outcome.
        let again = script.run().unwrap();
        assert_same_outcome(&outcome, &again);
    }

    #[test]
    fn verdict_of_and_plan_names() {
        let script = empty_script(1);
        let outcome = script.run().unwrap();
        let verdict = Verdict::of(&outcome);
        assert_eq!(verdict.decided, outcome.all_honest_decided);
        assert_eq!(verdict.slots, outcome.slots);
        assert!(verdict.violations.is_empty());
        for plan in [
            ProtocolPlan::DolevStrongBsm,
            ProtocolPlan::CommitteeBroadcastBsm { committee_side: Side::Left },
            ProtocolPlan::CommitteeBroadcastBsm { committee_side: Side::Right },
            ProtocolPlan::BipartiteAuthLocal { committee_side: Side::Left },
            ProtocolPlan::BipartiteAuthLocal { committee_side: Side::Right },
        ] {
            assert_eq!(plan_from_name(plan_name(plan)), Some(plan));
        }
        assert_eq!(plan_from_name("nonsense"), None);
        assert_eq!(side_from_name("left"), Some(Side::Left));
        assert_eq!(side_from_name("up"), None);
    }

    #[test]
    fn load_reports_io_errors_on_line_zero() {
        let err = Script::load(Path::new("/nonexistent/fuzz/script.toml")).unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.to_string().contains("cannot read"));
    }
}
