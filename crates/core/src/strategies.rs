//! Reusable byzantine strategies for the experiment harness.
//!
//! The impossibility-specific adversaries live in [`crate::attacks`]; this module
//! provides the generic behaviours used to stress the constructive protocols *within*
//! their thresholds: crashing is covered by [`bsm_net::PassiveAdversary`], lying about
//! preferences by running the honest code on altered inputs ([`PuppetAdversary`]), and
//! protocol-level noise by [`GarbageAdversary`].

use crate::problem::MatchDecision;
use crate::wire::{ProtoBody, ProtoMsg, WireMsg};
use bsm_net::{Adversary, AdversaryContext, Envelope, Outgoing, PartyId, Process, Time};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// An adversary that runs an arbitrary [`Process`] ("puppet") for every corrupted party.
///
/// The puppets receive exactly the messages addressed to their party and their outgoing
/// messages are emitted over that party's real channels, so a puppet running the honest
/// protocol code on a *different input* models the classical "lying about preferences"
/// manipulation (Roth 1982) inside the byzantine framework, and puppets running modified
/// code model arbitrary deviations.
pub struct PuppetAdversary<M, O> {
    puppets: BTreeMap<PartyId, Box<dyn Process<M, O> + Send>>,
}

impl<M, O> PuppetAdversary<M, O> {
    /// Creates an adversary with no puppets (equivalent to crashing all corrupted
    /// parties).
    pub fn new() -> Self {
        Self { puppets: BTreeMap::new() }
    }

    /// Adds a puppet for `party`.
    ///
    /// # Panics
    ///
    /// Panics if the puppet's id does not match `party`.
    pub fn add_puppet(&mut self, party: PartyId, puppet: Box<dyn Process<M, O> + Send>) {
        assert_eq!(puppet.id(), party, "puppet id must match the corrupted party it impersonates");
        self.puppets.insert(party, puppet);
    }

    /// Number of hosted puppets.
    pub fn len(&self) -> usize {
        self.puppets.len()
    }

    /// Returns `true` if no puppets are hosted.
    pub fn is_empty(&self) -> bool {
        self.puppets.is_empty()
    }
}

impl<M, O> Default for PuppetAdversary<M, O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Clone, O> Adversary<M> for PuppetAdversary<M, O> {
    fn act(
        &mut self,
        ctx: &AdversaryContext<'_>,
        inboxes: &BTreeMap<PartyId, Vec<Envelope<M>>>,
    ) -> Vec<(PartyId, Outgoing<M>)> {
        let mut out = Vec::new();
        for (&party, puppet) in self.puppets.iter_mut() {
            if !ctx.corrupted.contains(&party) {
                continue;
            }
            let mut inbox = inboxes.get(&party).cloned().unwrap_or_default();
            for outgoing in puppet.step(ctx.now, &mut inbox) {
                out.push((party, outgoing));
            }
        }
        out
    }
}

/// An adversary whose corrupted parties flood every reachable honest party with
/// syntactically valid but semantically meaningless protocol messages.
///
/// Honest protocols must ignore such traffic: wrong instances, out-of-range indices and
/// non-permutation preference payloads all fall back to the documented defaults.
pub struct GarbageAdversary {
    rng: StdRng,
    per_slot: usize,
}

impl GarbageAdversary {
    /// Creates a garbage adversary emitting `per_slot` junk messages per corrupted party
    /// per slot.
    pub fn new(seed: u64, per_slot: usize) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), per_slot }
    }

    fn junk(&mut self, k: usize) -> ProtoMsg {
        let instance = self.rng.random_range(0..(2 * k as u32 + 3));
        let body = match self.rng.random_range(0..4u8) {
            0 => ProtoBody::Suggest(Some(self.rng.random_range(0..(3 * k as u64 + 1)))),
            1 => ProtoBody::Suggest(None),
            2 => ProtoBody::PrefAnnounce(vec![0; k]),
            _ => ProtoBody::PrefAnnounce((0..(k as u64 + 2)).rev().collect()),
        };
        ProtoMsg { instance, body }
    }
}

impl Adversary<WireMsg> for GarbageAdversary {
    fn act(
        &mut self,
        ctx: &AdversaryContext<'_>,
        _inboxes: &BTreeMap<PartyId, Vec<Envelope<WireMsg>>>,
    ) -> Vec<(PartyId, Outgoing<WireMsg>)> {
        let k = ctx.parties.k();
        let mut out = Vec::new();
        let corrupted: Vec<PartyId> = ctx.corrupted.iter().copied().collect();
        for byzantine in corrupted {
            for target in ctx.honest() {
                if !ctx.topology.connects(byzantine, target) {
                    continue;
                }
                for _ in 0..self.per_slot {
                    let msg = self.junk(k);
                    out.push((byzantine, Outgoing::new(target, WireMsg::Direct(msg))));
                }
            }
        }
        out
    }
}

/// A puppet that crashes after a given slot: it behaves honestly (delegating to an inner
/// process) until `crash_at`, then goes silent forever — the classic crash-fault model
/// mentioned for CDN load balancing in the paper's introduction.
pub struct CrashAfter<M, O> {
    inner: Box<dyn Process<M, O> + Send>,
    crash_at: Time,
}

impl<M, O> CrashAfter<M, O> {
    /// Wraps `inner`, silencing it from slot `crash_at` onwards.
    pub fn new(inner: Box<dyn Process<M, O> + Send>, crash_at: Time) -> Self {
        Self { inner, crash_at }
    }
}

impl<M, O> Process<M, O> for CrashAfter<M, O> {
    fn id(&self) -> PartyId {
        self.inner.id()
    }

    fn step(&mut self, now: Time, inbox: &mut Vec<Envelope<M>>) -> Vec<Outgoing<M>> {
        if now >= self.crash_at {
            return Vec::new();
        }
        self.inner.step(now, inbox)
    }

    fn output(&self) -> Option<O> {
        if self.crash_at == Time::ZERO {
            None
        } else {
            self.inner.output()
        }
    }
}

/// Convenience alias for puppet adversaries over the bSM wire format.
pub type BsmPuppetAdversary = PuppetAdversary<WireMsg, MatchDecision>;

#[cfg(test)]
mod tests {
    use super::*;
    use bsm_net::{CorruptionBudget, PartySet, SilentProcess, Topology};

    #[test]
    fn puppet_adversary_steps_only_corrupted_puppets() {
        struct Echo {
            id: PartyId,
            target: PartyId,
        }
        impl Process<u32, u32> for Echo {
            fn id(&self) -> PartyId {
                self.id
            }
            fn step(&mut self, _now: Time, inbox: &mut Vec<Envelope<u32>>) -> Vec<Outgoing<u32>> {
                let count = inbox.len() as u32;
                vec![Outgoing::new(self.target, count)]
            }
            fn output(&self) -> Option<u32> {
                None
            }
        }

        let mut adversary: PuppetAdversary<u32, u32> = PuppetAdversary::new();
        assert!(adversary.is_empty());
        adversary.add_puppet(
            PartyId::left(0),
            Box::new(Echo { id: PartyId::left(0), target: PartyId::right(0) }),
        );
        adversary.add_puppet(
            PartyId::left(1),
            Box::new(Echo { id: PartyId::left(1), target: PartyId::right(0) }),
        );
        assert_eq!(adversary.len(), 2);

        let corrupted: std::collections::BTreeSet<PartyId> =
            [PartyId::left(0)].into_iter().collect();
        let ctx = AdversaryContext {
            now: Time(3),
            parties: PartySet::new(2),
            topology: Topology::FullyConnected,
            corrupted: &corrupted,
            budget: CorruptionBudget::new(1, 0),
        };
        let sends = adversary.act(&ctx, &BTreeMap::new());
        // Only the actually-corrupted puppet acts.
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].0, PartyId::left(0));
    }

    #[test]
    #[should_panic(expected = "puppet id must match")]
    fn mismatched_puppet_id_panics() {
        let mut adversary: PuppetAdversary<u32, u32> = PuppetAdversary::new();
        adversary.add_puppet(PartyId::left(0), Box::new(SilentProcess::new(PartyId::left(1))));
    }

    #[test]
    fn garbage_adversary_respects_topology() {
        let mut adversary = GarbageAdversary::new(1, 2);
        let corrupted: std::collections::BTreeSet<PartyId> =
            [PartyId::left(0)].into_iter().collect();
        let ctx = AdversaryContext {
            now: Time(0),
            parties: PartySet::new(2),
            topology: Topology::Bipartite,
            corrupted: &corrupted,
            budget: CorruptionBudget::new(1, 0),
        };
        let sends = adversary.act(&ctx, &BTreeMap::new());
        // Bipartite: the corrupted left party can only reach the two right parties.
        assert_eq!(sends.len(), 2 * 2);
        assert!(sends.iter().all(|(_, o)| o.to.is_right()));
        // Determinism under the same seed.
        let mut again = GarbageAdversary::new(1, 2);
        let sends_again = again.act(&ctx, &BTreeMap::new());
        assert_eq!(sends.len(), sends_again.len());
    }

    #[test]
    fn crash_after_silences_the_inner_process() {
        struct Chatty {
            id: PartyId,
        }
        impl Process<u32, u32> for Chatty {
            fn id(&self) -> PartyId {
                self.id
            }
            fn step(&mut self, _now: Time, _inbox: &mut Vec<Envelope<u32>>) -> Vec<Outgoing<u32>> {
                vec![Outgoing::new(PartyId::right(0), 1)]
            }
            fn output(&self) -> Option<u32> {
                Some(7)
            }
        }
        let mut crashing = CrashAfter::new(Box::new(Chatty { id: PartyId::left(0) }), Time(2));
        assert_eq!(Process::<u32, u32>::id(&crashing), PartyId::left(0));
        assert_eq!(crashing.step(Time(0), &mut vec![]).len(), 1);
        assert_eq!(crashing.step(Time(1), &mut vec![]).len(), 1);
        assert!(crashing.step(Time(2), &mut vec![]).is_empty());
        assert!(crashing.step(Time(5), &mut vec![]).is_empty());
        assert_eq!(crashing.output(), Some(7));

        let mut dead: CrashAfter<u32, u32> =
            CrashAfter::new(Box::new(SilentProcess::new(PartyId::left(0))), Time::ZERO);
        assert!(dead.step(Time(0), &mut vec![]).is_empty());
        assert_eq!(dead.output(), None);
    }
}
