//! Channel simulation by relaying: Lemma 6 (majority relay), Lemma 8 (signed relay) and
//! Lemma 10 (timed signed relay with omissions).
//!
//! When the topology lacks a channel between two same-side parties, the sender instead
//! hands the message to every party on the opposite side, who forward it to the target.
//! The target accepts the message once it can attribute it to the origin:
//!
//! * **Majority mode** (unauthenticated, Lemma 6): accept once strictly more than `k/2`
//!   distinct relayers delivered the identical payload — sound as long as the relaying
//!   side has an honest majority.
//! * **Signed mode** (authenticated, Lemmas 8 and 10): accept a payload carrying a valid
//!   origin signature over `(origin → target, τ, id, m)`, provided at most `max_age`
//!   slots have passed since `τ`. One honest relayer suffices; if every relayer is
//!   byzantine the message may be omitted but can never be altered — exactly the
//!   omission model of §5.2.

use crate::wire::{ProtoMsg, WireMsg};
use bsm_crypto::{Digest, DigestWriter, Digestible, KeyId, Pki, SigningKey, Verifier};
use bsm_matching::Side;
use bsm_net::{Outgoing, PartyId, PartySet, Time, Topology};
use std::collections::{BTreeMap, BTreeSet};

/// How relayed payloads are authenticated by their final recipient.
#[derive(Debug, Clone)]
pub enum RelayMode {
    /// No relaying: every required channel exists (fully-connected topology). Relayed
    /// messages are ignored.
    Direct,
    /// Lemma 6: accept payloads confirmed by a strict majority of the relaying side.
    Majority,
    /// Lemmas 8 / 10: accept payloads with a valid origin signature, no older than
    /// `max_age` slots.
    Signed {
        /// The public-key directory.
        pki: Pki,
        /// Key of every party (dense numbering).
        key_of: BTreeMap<PartyId, KeyId>,
        /// Maximum accepted age (in slots) of a relayed message; the paper uses `2·Δ`.
        max_age: u64,
    },
}

/// The digest an origin signs over when relaying `inner` to `target` — the
/// `(P → P′, τ, id, m)` tuple of the paper's protocols.
pub fn relay_digest(
    origin: PartyId,
    target: PartyId,
    id: u64,
    sent_at: u64,
    inner: &ProtoMsg,
    k: usize,
) -> Digest {
    let mut writer = DigestWriter::new();
    writer
        .label("bsm-relay")
        .u64(origin.dense(k) as u64)
        .u64(target.dense(k) as u64)
        .u64(id)
        .u64(sent_at);
    inner.feed(&mut writer);
    writer.finish()
}

/// Majority-relay vote state for one (origin, id): each candidate payload digest maps
/// to the first payload observed with that digest and the distinct relayers backing it.
type DigestTally = BTreeMap<Digest, (ProtoMsg, BTreeSet<PartyId>)>;

/// Per-party relay engine: wraps outgoing sends, performs relay duty, and authenticates
/// incoming relayed payloads.
pub struct RelayEngine {
    me: PartyId,
    parties: PartySet,
    topology: Topology,
    mode: RelayMode,
    signing_key: Option<SigningKey>,
    /// Memoizing verification handle for signed mode (`None` otherwise). Re-verifying
    /// the same relayed signature (e.g. duplicate deliveries racing the `delivered`
    /// check) then skips the tag hash and registry lookup without changing any
    /// accept/reject decision.
    verifier: Option<Verifier>,
    next_id: u64,
    /// Majority mode: (origin, id) → payload digest → distinct relayers seen (plus the
    /// first payload observed for that digest).
    tallies: BTreeMap<(PartyId, u64), DigestTally>,
    /// Messages already delivered to the protocol, by (origin, id).
    delivered: BTreeSet<(PartyId, u64)>,
}

impl std::fmt::Debug for RelayEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelayEngine")
            .field("me", &self.me)
            .field("topology", &self.topology)
            .field("next_id", &self.next_id)
            .finish_non_exhaustive()
    }
}

impl RelayEngine {
    /// Creates a relay engine for party `me`.
    ///
    /// `signing_key` is required in [`RelayMode::Signed`] (it signs this party's own
    /// relay requests); it is ignored otherwise.
    ///
    /// # Panics
    ///
    /// Panics if signed mode is selected without a signing key.
    pub fn new(
        me: PartyId,
        parties: PartySet,
        topology: Topology,
        mode: RelayMode,
        signing_key: Option<SigningKey>,
    ) -> Self {
        if matches!(mode, RelayMode::Signed { .. }) {
            assert!(signing_key.is_some(), "signed relay mode requires this party's signing key");
        }
        let verifier = match &mode {
            RelayMode::Signed { pki, .. } => Some(pki.verifier()),
            _ => None,
        };
        Self {
            me,
            parties,
            topology,
            mode,
            signing_key,
            verifier,
            next_id: 0,
            tallies: BTreeMap::new(),
            delivered: BTreeSet::new(),
        }
    }

    /// The parties that relay for `origin`: everyone on the opposite side.
    fn relayers_of(&self, origin: PartyId) -> Vec<PartyId> {
        let opposite = match origin.side {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        };
        self.parties.side(opposite).collect()
    }

    /// Wraps an outgoing protocol message into wire messages: a single direct send when
    /// the channel exists, or one relay request per opposite-side relayer otherwise.
    pub fn send(&mut self, to: PartyId, msg: ProtoMsg, now: Time) -> Vec<Outgoing<WireMsg>> {
        if self.topology.connects(self.me, to) {
            return vec![Outgoing::new(to, WireMsg::Direct(msg))];
        }
        let id = self.next_id;
        self.next_id += 1;
        let sent_at = now.slot();
        let signature = match &self.mode {
            RelayMode::Signed { .. } => {
                let key = self.signing_key.as_ref().expect("signed mode holds a key");
                let digest = relay_digest(self.me, to, id, sent_at, &msg, self.parties.k());
                Some(key.sign(digest))
            }
            _ => None,
        };
        self.relayers_of(self.me)
            .into_iter()
            .map(|relayer| {
                Outgoing::new(
                    relayer,
                    WireMsg::RelayRequest {
                        target: to,
                        id,
                        sent_at,
                        inner: msg.clone(),
                        signature,
                    },
                )
            })
            .collect()
    }

    /// Handles one incoming wire message.
    ///
    /// Returns the protocol payloads accepted for delivery (attributed to their origin)
    /// and the wire messages this party must send as part of its relay duty.
    pub fn handle(
        &mut self,
        from: PartyId,
        msg: WireMsg,
        now: Time,
    ) -> (Vec<(PartyId, ProtoMsg)>, Vec<Outgoing<WireMsg>>) {
        match msg {
            WireMsg::Direct(inner) => (vec![(from, inner)], Vec::new()),
            WireMsg::RelayRequest { target, id, sent_at, inner, signature } => {
                // Relay duty (step 1 of the paper's ΠbSM code for side R): forward the
                // signed tuple to its target, provided this party actually has a channel
                // to it and the request plausibly needs relaying.
                if target == self.me {
                    // A confused or malicious origin asked us to relay to ourselves;
                    // treat it as a direct delivery attempt and ignore it.
                    return (Vec::new(), Vec::new());
                }
                if !self.topology.connects(self.me, target) {
                    return (Vec::new(), Vec::new());
                }
                let deliver =
                    WireMsg::RelayDeliver { origin: from, target, id, sent_at, inner, signature };
                (Vec::new(), vec![Outgoing::new(target, deliver)])
            }
            WireMsg::RelayDeliver { origin, target, id, sent_at, inner, signature } => {
                if target != self.me {
                    return (Vec::new(), Vec::new());
                }
                if self.delivered.contains(&(origin, id)) {
                    return (Vec::new(), Vec::new());
                }
                match &self.mode {
                    RelayMode::Direct => (Vec::new(), Vec::new()),
                    RelayMode::Majority => {
                        let threshold = self.parties.k() / 2 + 1;
                        let digest =
                            relay_digest(origin, target, id, sent_at, &inner, self.parties.k());
                        let entry = self
                            .tallies
                            .entry((origin, id))
                            .or_default()
                            .entry(digest)
                            .or_insert_with(|| (inner, BTreeSet::new()));
                        entry.1.insert(from);
                        if entry.1.len() >= threshold {
                            let payload = entry.0.clone();
                            self.delivered.insert((origin, id));
                            self.tallies.remove(&(origin, id));
                            (vec![(origin, payload)], Vec::new())
                        } else {
                            (Vec::new(), Vec::new())
                        }
                    }
                    RelayMode::Signed { pki: _, key_of, max_age } => {
                        let Some(signature) = signature else {
                            return (Vec::new(), Vec::new());
                        };
                        let Some(&origin_key) = key_of.get(&origin) else {
                            return (Vec::new(), Vec::new());
                        };
                        if signature.signer() != origin_key {
                            return (Vec::new(), Vec::new());
                        }
                        if now.slot().saturating_sub(sent_at) > *max_age {
                            return (Vec::new(), Vec::new());
                        }
                        let digest =
                            relay_digest(origin, target, id, sent_at, &inner, self.parties.k());
                        let verifier =
                            self.verifier.as_mut().expect("signed mode holds a verifier");
                        if !verifier.verify(&signature, digest) {
                            return (Vec::new(), Vec::new());
                        }
                        self.delivered.insert((origin, id));
                        (vec![(origin, inner)], Vec::new())
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ProtoBody;

    fn msg(tag: u64) -> ProtoMsg {
        ProtoMsg { instance: 0, body: ProtoBody::Suggest(Some(tag)) }
    }

    fn parties() -> PartySet {
        PartySet::new(3)
    }

    #[test]
    fn direct_channel_sends_directly() {
        let mut engine = RelayEngine::new(
            PartyId::left(0),
            parties(),
            Topology::FullyConnected,
            RelayMode::Direct,
            None,
        );
        let out = engine.send(PartyId::left(1), msg(1), Time(0));
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].payload, WireMsg::Direct(_)));
        assert_eq!(out[0].to, PartyId::left(1));
        assert!(format!("{engine:?}").contains("RelayEngine"));
    }

    #[test]
    fn missing_channel_fans_out_to_opposite_side() {
        let mut engine = RelayEngine::new(
            PartyId::left(0),
            parties(),
            Topology::Bipartite,
            RelayMode::Majority,
            None,
        );
        let out = engine.send(PartyId::left(2), msg(1), Time(0));
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|o| o.to.is_right()));
        assert!(out.iter().all(|o| matches!(o.payload, WireMsg::RelayRequest { .. })));
        // Cross-side sends stay direct even in the bipartite topology.
        let direct = engine.send(PartyId::right(1), msg(2), Time(0));
        assert_eq!(direct.len(), 1);
    }

    #[test]
    fn relay_duty_forwards_to_target() {
        let mut relayer = RelayEngine::new(
            PartyId::right(1),
            parties(),
            Topology::Bipartite,
            RelayMode::Majority,
            None,
        );
        let request = WireMsg::RelayRequest {
            target: PartyId::left(2),
            id: 0,
            sent_at: 0,
            inner: msg(5),
            signature: None,
        };
        let (accepted, duties) = relayer.handle(PartyId::left(0), request, Time(1));
        assert!(accepted.is_empty());
        assert_eq!(duties.len(), 1);
        assert_eq!(duties[0].to, PartyId::left(2));
        assert!(matches!(
            &duties[0].payload,
            WireMsg::RelayDeliver { origin, .. } if *origin == PartyId::left(0)
        ));
        // Requests targeting the relayer itself or unreachable parties are dropped.
        let bogus = WireMsg::RelayRequest {
            target: PartyId::right(1),
            id: 1,
            sent_at: 0,
            inner: msg(5),
            signature: None,
        };
        let (a, d) = relayer.handle(PartyId::left(0), bogus, Time(1));
        assert!(a.is_empty() && d.is_empty());
    }

    #[test]
    fn majority_mode_needs_strict_majority_of_identical_payloads() {
        let me = PartyId::left(2);
        let mut engine =
            RelayEngine::new(me, parties(), Topology::Bipartite, RelayMode::Majority, None);
        let origin = PartyId::left(0);
        let deliver = |_from: PartyId, payload: ProtoMsg| WireMsg::RelayDeliver {
            origin,
            target: me,
            id: 7,
            sent_at: 0,
            inner: payload,
            signature: None,
        };
        // One relayer delivering a forged payload and one honest delivery: no acceptance
        // yet (threshold is 2 of 3).
        let (a, _) = engine.handle(PartyId::right(0), deliver(PartyId::right(0), msg(9)), Time(2));
        assert!(a.is_empty());
        let (a, _) = engine.handle(PartyId::right(1), deliver(PartyId::right(1), msg(1)), Time(2));
        assert!(a.is_empty());
        // A duplicate from the same relayer does not help.
        let (a, _) = engine.handle(PartyId::right(1), deliver(PartyId::right(1), msg(1)), Time(2));
        assert!(a.is_empty());
        // A second distinct relayer with the same payload crosses the threshold.
        let (a, _) = engine.handle(PartyId::right(2), deliver(PartyId::right(2), msg(1)), Time(2));
        assert_eq!(a, vec![(origin, msg(1))]);
        // Replays after delivery are ignored.
        let (a, _) = engine.handle(PartyId::right(0), deliver(PartyId::right(0), msg(1)), Time(3));
        assert!(a.is_empty());
    }

    #[test]
    fn signed_mode_accepts_single_honest_relayer_and_rejects_tampering() {
        let k = 3usize;
        let pki = Pki::new(2 * k as u32);
        let key_of: BTreeMap<PartyId, KeyId> =
            PartySet::new(k).iter().map(|p| (p, KeyId(p.dense(k) as u32))).collect();
        let origin = PartyId::left(0);
        let target = PartyId::left(2);
        let origin_key = pki.signing_key(key_of[&origin].0).unwrap();
        let target_key = pki.signing_key(key_of[&target].0).unwrap();

        let mode = RelayMode::Signed { pki: pki.clone(), key_of: key_of.clone(), max_age: 2 };
        let mut sender_engine = RelayEngine::new(
            origin,
            PartySet::new(k),
            Topology::Bipartite,
            mode.clone(),
            Some(origin_key),
        );
        let mut receiver_engine =
            RelayEngine::new(target, PartySet::new(k), Topology::Bipartite, mode, Some(target_key));

        let requests = sender_engine.send(target, msg(3), Time(0));
        assert_eq!(requests.len(), 3);
        let WireMsg::RelayRequest { id, sent_at, inner, signature, .. } =
            requests[0].payload.clone()
        else {
            panic!("expected a relay request");
        };
        // A single honest relayer forwards it; the receiver accepts.
        let deliver =
            WireMsg::RelayDeliver { origin, target, id, sent_at, inner: inner.clone(), signature };
        let (accepted, _) = receiver_engine.handle(PartyId::right(0), deliver.clone(), Time(2));
        assert_eq!(accepted, vec![(origin, msg(3))]);
        // Duplicates are suppressed.
        let (again, _) = receiver_engine.handle(PartyId::right(1), deliver, Time(2));
        assert!(again.is_empty());

        // Tampered content is rejected (signature no longer verifies).
        let tampered = WireMsg::RelayDeliver {
            origin,
            target,
            id: id + 1,
            sent_at,
            inner: msg(99),
            signature,
        };
        let (rejected, _) = receiver_engine.handle(PartyId::right(0), tampered, Time(2));
        assert!(rejected.is_empty());

        // Stale deliveries (older than max_age slots) are rejected.
        let more = sender_engine.send(target, msg(4), Time(1));
        let WireMsg::RelayRequest { id, sent_at, inner, signature, .. } = more[0].payload.clone()
        else {
            panic!("expected a relay request");
        };
        let late = WireMsg::RelayDeliver { origin, target, id, sent_at, inner, signature };
        let (rejected, _) = receiver_engine.handle(PartyId::right(0), late, Time(10));
        assert!(rejected.is_empty());

        // Unsigned deliveries are rejected in signed mode.
        let unsigned = WireMsg::RelayDeliver {
            origin,
            target,
            id: 50,
            sent_at: 9,
            inner: msg(5),
            signature: None,
        };
        let (rejected, _) = receiver_engine.handle(PartyId::right(0), unsigned, Time(10));
        assert!(rejected.is_empty());
    }

    #[test]
    fn direct_mode_ignores_relayed_traffic() {
        let me = PartyId::left(1);
        let mut engine =
            RelayEngine::new(me, parties(), Topology::FullyConnected, RelayMode::Direct, None);
        let deliver = WireMsg::RelayDeliver {
            origin: PartyId::left(0),
            target: me,
            id: 0,
            sent_at: 0,
            inner: msg(1),
            signature: None,
        };
        let (accepted, duties) = engine.handle(PartyId::right(0), deliver, Time(1));
        assert!(accepted.is_empty());
        assert!(duties.is_empty());
    }

    #[test]
    #[should_panic(expected = "requires this party's signing key")]
    fn signed_mode_without_key_panics() {
        let pki = Pki::new(2);
        let _ = RelayEngine::new(
            PartyId::left(0),
            parties(),
            Topology::Bipartite,
            RelayMode::Signed { pki, key_of: BTreeMap::new(), max_age: 2 },
            None,
        );
    }
}
