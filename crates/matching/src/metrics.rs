//! Matching quality metrics.
//!
//! The experiment harness reports not only whether a matching is stable but also how
//! good it is for each side: the classical egalitarian / regret measures from the stable
//! matching literature (Gusfield–Irving), plus the number of blocking pairs for
//! almost-stable matchings (the approximation notion of Ostrovsky–Rosenbaum cited in the
//! paper's related work).

use crate::{Matching, PreferenceProfile, Side};

/// Summary statistics of a (possibly partial) matching under a preference profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchingQuality {
    /// Number of matched pairs.
    pub matched_pairs: usize,
    /// Number of blocking pairs (0 iff the matching is stable).
    pub blocking_pairs: usize,
    /// Sum over matched left agents of the rank of their partner (0 = favorite).
    pub left_cost: usize,
    /// Sum over matched right agents of the rank of their partner.
    pub right_cost: usize,
    /// The worst (largest) partner rank over all matched agents — the "regret".
    pub regret: usize,
}

impl MatchingQuality {
    /// The egalitarian cost: the sum of both sides' costs.
    pub fn egalitarian_cost(&self) -> usize {
        self.left_cost + self.right_cost
    }

    /// Returns `true` if the matching had no blocking pair.
    pub fn is_stable(&self) -> bool {
        self.blocking_pairs == 0
    }
}

/// Computes the quality statistics of `matching` under `profile`.
///
/// # Panics
///
/// Panics if the matching and profile sizes differ.
pub fn evaluate(profile: &PreferenceProfile, matching: &Matching) -> MatchingQuality {
    assert_eq!(profile.k(), matching.k(), "matching and profile must have the same size");
    let mut left_cost = 0usize;
    let mut right_cost = 0usize;
    let mut regret = 0usize;
    for (left, right) in matching.pairs() {
        let left_rank = profile.left(left).rank_of(right).expect("partner index in range");
        let right_rank = profile.right(right).rank_of(left).expect("partner index in range");
        left_cost += left_rank;
        right_cost += right_rank;
        regret = regret.max(left_rank).max(right_rank);
    }
    MatchingQuality {
        matched_pairs: matching.matched_pairs(),
        blocking_pairs: matching.blocking_pairs(profile).len(),
        left_cost,
        right_cost,
        regret,
    }
}

/// The rank each agent of `side` assigns to its partner, `None` for unmatched agents.
pub fn partner_ranks(
    profile: &PreferenceProfile,
    matching: &Matching,
    side: Side,
) -> Vec<Option<usize>> {
    let k = profile.k();
    (0..k)
        .map(|i| match side {
            Side::Left => matching
                .right_of(i)
                .map(|j| profile.left(i).rank_of(j).expect("partner index in range")),
            Side::Right => matching
                .left_of(i)
                .map(|j| profile.right(i).rank_of(j).expect("partner index in range")),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gale_shapley::{gale_shapley, ProposingSide};
    use crate::generators::uniform_profile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_matching_under_mutual_favorites_is_optimal() {
        // Left i and right i rank each other first, so the identity matching gives every
        // agent its favorite.
        let lists: Vec<_> =
            (0..4).map(|i| crate::PreferenceList::favorite_first(4, i).unwrap()).collect();
        let profile = PreferenceProfile::new(lists.clone(), lists).unwrap();
        let matching = Matching::identity(4).unwrap();
        let quality = evaluate(&profile, &matching);
        assert_eq!(quality.matched_pairs, 4);
        assert_eq!(quality.blocking_pairs, 0);
        assert!(quality.is_stable());
        assert_eq!(quality.left_cost, 0);
        assert_eq!(quality.right_cost, 0);
        assert_eq!(quality.egalitarian_cost(), 0);
        assert_eq!(quality.regret, 0);
        assert_eq!(partner_ranks(&profile, &matching, Side::Left), vec![Some(0); 4]);
        assert_eq!(partner_ranks(&profile, &matching, Side::Right), vec![Some(0); 4]);
    }

    #[test]
    fn proposing_side_has_lower_or_equal_cost() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let profile = uniform_profile(6, &mut rng);
            let left_opt = gale_shapley(&profile, ProposingSide::Left).matching;
            let right_opt = gale_shapley(&profile, ProposingSide::Right).matching;
            let q_left = evaluate(&profile, &left_opt);
            let q_right = evaluate(&profile, &right_opt);
            // Left-proposing is left-optimal: its left cost never exceeds the
            // right-proposing run's left cost (and symmetrically).
            assert!(q_left.left_cost <= q_right.left_cost);
            assert!(q_right.right_cost <= q_left.right_cost);
            assert!(q_left.is_stable() && q_right.is_stable());
        }
    }

    #[test]
    fn partial_matchings_are_measured() {
        let profile = PreferenceProfile::identity(3).unwrap();
        let mut matching = Matching::empty(3).unwrap();
        matching.join(0, 1).unwrap();
        let quality = evaluate(&profile, &matching);
        assert_eq!(quality.matched_pairs, 1);
        assert!(quality.blocking_pairs > 0);
        assert!(!quality.is_stable());
        // L0's partner R1 is L0's second choice; R1's partner L0 is R1's first choice.
        assert_eq!(quality.left_cost, 1);
        assert_eq!(quality.right_cost, 0);
        assert_eq!(quality.egalitarian_cost(), 1);
        assert_eq!(quality.regret, 1);
        let ranks = partner_ranks(&profile, &matching, Side::Left);
        assert_eq!(ranks, vec![Some(1), None, None]);
    }

    #[test]
    #[should_panic(expected = "same size")]
    fn size_mismatch_panics() {
        let profile = PreferenceProfile::identity(3).unwrap();
        let matching = Matching::identity(2).unwrap();
        let _ = evaluate(&profile, &matching);
    }
}
