//! Reproducible preference-profile workload generators.
//!
//! The paper has no empirical workloads of its own, so the experiment harness uses the
//! standard distributions from the distributed stable matching literature:
//!
//! * [`uniform_profile`] — independent uniformly random permutations (the default),
//! * [`master_list_profile`] — all agents on a side share one "master" ranking
//!   (perfectly correlated preferences),
//! * [`similar_profile`] — lists obtained from a master list by a bounded number of
//!   adjacent swaps, matching the "similar preference lists" regime of
//!   Khanchandani–Wattenhofer (OPODIS 2016) cited in the related work,
//! * [`favorite_inputs`] — random favorite assignments for the simplified problem sSM.

use crate::{PreferenceList, PreferenceProfile};
use rand::seq::SliceRandom;
use rand::{Rng, RngExt};

/// Generates one uniformly random preference list over `k` partners.
pub fn uniform_list<R: Rng + ?Sized>(k: usize, rng: &mut R) -> PreferenceList {
    let mut order: Vec<usize> = (0..k).collect();
    order.shuffle(rng);
    PreferenceList::new(order).expect("a shuffled identity vector is a permutation")
}

/// Generates a profile where every list is an independent uniformly random permutation.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn uniform_profile<R: Rng + ?Sized>(k: usize, rng: &mut R) -> PreferenceProfile {
    assert!(k > 0, "market size must be positive");
    let left = (0..k).map(|_| uniform_list(k, rng)).collect();
    let right = (0..k).map(|_| uniform_list(k, rng)).collect();
    PreferenceProfile::new(left, right).expect("generated lists are valid")
}

/// Generates a profile in which all agents of each side share a single random master
/// ranking of the opposite side.
///
/// Fully correlated preferences are the worst case for proposal counts in
/// deferred acceptance and a common stress workload.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn master_list_profile<R: Rng + ?Sized>(k: usize, rng: &mut R) -> PreferenceProfile {
    assert!(k > 0, "market size must be positive");
    let left_master = uniform_list(k, rng);
    let right_master = uniform_list(k, rng);
    let left = vec![left_master; k];
    let right = vec![right_master; k];
    PreferenceProfile::new(left, right).expect("generated lists are valid")
}

/// Generates a profile whose lists are each obtained from a per-side master list by at
/// most `swaps` random adjacent transpositions.
///
/// `swaps = 0` reproduces [`master_list_profile`]; large `swaps` approaches
/// [`uniform_profile`]. This models the "similar preference lists" regime studied by
/// Khanchandani and Wattenhofer.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn similar_profile<R: Rng + ?Sized>(k: usize, swaps: usize, rng: &mut R) -> PreferenceProfile {
    assert!(k > 0, "market size must be positive");
    let left_master = uniform_list(k, rng);
    let right_master = uniform_list(k, rng);
    let perturb = |master: &PreferenceList, rng: &mut R| {
        let mut order = master.order().to_vec();
        for _ in 0..swaps {
            if k < 2 {
                break;
            }
            let i = rng.random_range(0..k - 1);
            order.swap(i, i + 1);
        }
        PreferenceList::new(order).expect("adjacent swaps preserve the permutation property")
    };
    let left = (0..k).map(|_| perturb(&left_master, rng)).collect();
    let right = (0..k).map(|_| perturb(&right_master, rng)).collect();
    PreferenceProfile::new(left, right).expect("generated lists are valid")
}

/// Generates random favorite assignments (one partner index per agent, per side) for
/// the simplified stable matching problem sSM (§3).
///
/// Returns `(left_favorites, right_favorites)`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn favorite_inputs<R: Rng + ?Sized>(k: usize, rng: &mut R) -> (Vec<usize>, Vec<usize>) {
    assert!(k > 0, "market size must be positive");
    let left = (0..k).map(|_| rng.random_range(0..k)).collect();
    let right = (0..k).map(|_| rng.random_range(0..k)).collect();
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gale_shapley::{gale_shapley, ProposingSide};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_profile_is_valid_and_seed_deterministic() {
        let a = uniform_profile(6, &mut StdRng::seed_from_u64(42));
        let b = uniform_profile(6, &mut StdRng::seed_from_u64(42));
        let c = uniform_profile(6, &mut StdRng::seed_from_u64(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.k(), 6);
    }

    #[test]
    fn master_list_profile_has_identical_lists_per_side() {
        let profile = master_list_profile(5, &mut StdRng::seed_from_u64(1));
        for i in 1..5 {
            assert_eq!(profile.left(0), profile.left(i));
            assert_eq!(profile.right(0), profile.right(i));
        }
    }

    #[test]
    fn master_list_forces_serial_dictatorship_outcome() {
        // With identical preferences, the unique stable matching matches the i-th
        // ranked left agent (by the right master list) with the i-th ranked right agent
        // (by the left master list).
        let profile = master_list_profile(6, &mut StdRng::seed_from_u64(9));
        let outcome = gale_shapley(&profile, ProposingSide::Left);
        assert!(outcome.matching.is_stable(&profile));
        let left_master = profile.left(0);
        let right_master = profile.right(0);
        for rank in 0..6 {
            let l = right_master.partner_at(rank).unwrap();
            let r = left_master.partner_at(rank).unwrap();
            assert_eq!(outcome.matching.right_of(l), Some(r));
        }
    }

    #[test]
    fn similar_profile_zero_swaps_equals_master_list() {
        let mut rng = StdRng::seed_from_u64(2);
        let profile = similar_profile(4, 0, &mut rng);
        for i in 1..4 {
            assert_eq!(profile.left(0), profile.left(i));
        }
    }

    #[test]
    fn similar_profile_with_swaps_stays_valid() {
        let mut rng = StdRng::seed_from_u64(3);
        for swaps in [1usize, 5, 50] {
            let profile = similar_profile(7, swaps, &mut rng);
            let outcome = gale_shapley(&profile, ProposingSide::Left);
            assert!(outcome.matching.is_stable(&profile));
        }
    }

    #[test]
    fn favorite_inputs_are_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let (l, r) = favorite_inputs(9, &mut rng);
        assert_eq!(l.len(), 9);
        assert_eq!(r.len(), 9);
        assert!(l.iter().all(|&f| f < 9));
        assert!(r.iter().all(|&f| f < 9));
    }

    #[test]
    fn single_agent_generators() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(uniform_profile(1, &mut rng).k(), 1);
        assert_eq!(similar_profile(1, 3, &mut rng).k(), 1);
    }
}
