use std::fmt;

/// Errors produced when constructing or validating preference data and matchings.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MatchingError {
    /// The two sides of a preference profile have different sizes.
    SideSizeMismatch {
        /// Number of agents on the left side.
        left: usize,
        /// Number of agents on the right side.
        right: usize,
    },
    /// A preference list is not a permutation of `0..k`.
    NotAPermutation {
        /// Side of the offending agent.
        side: &'static str,
        /// Index of the offending agent within its side.
        agent: usize,
    },
    /// A preference list has the wrong length.
    WrongListLength {
        /// Side of the offending agent.
        side: &'static str,
        /// Index of the offending agent within its side.
        agent: usize,
        /// Length found.
        found: usize,
        /// Length expected (`k`).
        expected: usize,
    },
    /// An agent index is out of bounds for the market size.
    AgentOutOfBounds {
        /// The offending index.
        index: usize,
        /// The market size `k`.
        k: usize,
    },
    /// A matching maps two distinct agents to the same partner.
    DuplicatePartner {
        /// The partner that was claimed twice.
        partner: usize,
    },
    /// The market is empty (`k == 0`), which is not a meaningful instance.
    EmptyMarket,
}

impl fmt::Display for MatchingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchingError::SideSizeMismatch { left, right } => {
                write!(f, "sides have different sizes: left {left}, right {right}")
            }
            MatchingError::NotAPermutation { side, agent } => {
                write!(f, "preference list of {side} agent {agent} is not a permutation")
            }
            MatchingError::WrongListLength { side, agent, found, expected } => write!(
                f,
                "preference list of {side} agent {agent} has length {found}, expected {expected}"
            ),
            MatchingError::AgentOutOfBounds { index, k } => {
                write!(f, "agent index {index} out of bounds for market size {k}")
            }
            MatchingError::DuplicatePartner { partner } => {
                write!(f, "matching assigns partner {partner} to more than one agent")
            }
            MatchingError::EmptyMarket => write!(f, "market size k must be at least 1"),
        }
    }
}

impl std::error::Error for MatchingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            MatchingError::SideSizeMismatch { left: 1, right: 2 },
            MatchingError::NotAPermutation { side: "left", agent: 0 },
            MatchingError::WrongListLength { side: "right", agent: 1, found: 2, expected: 3 },
            MatchingError::AgentOutOfBounds { index: 9, k: 3 },
            MatchingError::DuplicatePartner { partner: 2 },
            MatchingError::EmptyMarket,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MatchingError>();
    }
}
