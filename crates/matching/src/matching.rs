use crate::{MatchingError, PreferenceProfile, Result};

/// The two sides of the matching market.
///
/// In the paper's terminology `Left` is the set `L` (e.g. job applicants, proposers in
/// the canonical Gale–Shapley run) and `Right` is the set `R`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Side {
    /// The set `L`.
    Left,
    /// The set `R`.
    Right,
}

impl Side {
    /// The opposite side.
    pub fn opposite(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }

    /// All sides, left first.
    pub fn both() -> [Side; 2] {
        [Side::Left, Side::Right]
    }
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Side::Left => write!(f, "L"),
            Side::Right => write!(f, "R"),
        }
    }
}

/// A pair `(left, right)` that blocks a matching: both prefer each other to their
/// current situation (being unmatched counts as the worst outcome).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockingPair {
    /// The left-side member of the blocking pair.
    pub left: usize,
    /// The right-side member of the blocking pair.
    pub right: usize,
}

/// A (possibly partial) matching between the two sides of a market with `k` agents per
/// side.
///
/// Unmatched agents are represented by `None`, which is how the byzantine stable
/// matching definition allows honest parties to output "nobody" (§2, Termination).
/// The structure maintains symmetry as an invariant: `left_to_right[i] == Some(j)` iff
/// `right_to_left[j] == Some(i)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matching {
    left_to_right: Vec<Option<usize>>,
    right_to_left: Vec<Option<usize>>,
}

impl Matching {
    /// Creates an empty matching (everyone unmatched) for a market of size `k`.
    ///
    /// # Errors
    ///
    /// Returns [`MatchingError::EmptyMarket`] if `k == 0`.
    pub fn empty(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(MatchingError::EmptyMarket);
        }
        Ok(Self { left_to_right: vec![None; k], right_to_left: vec![None; k] })
    }

    /// Builds a matching from the left-side assignment vector.
    ///
    /// `assignment[i] = Some(j)` matches left agent `i` with right agent `j`.
    ///
    /// # Errors
    ///
    /// Returns [`MatchingError::AgentOutOfBounds`] if any partner index is `>= k`,
    /// [`MatchingError::DuplicatePartner`] if two left agents claim the same right
    /// agent, and [`MatchingError::EmptyMarket`] if the vector is empty.
    pub fn from_left_assignment(assignment: &[Option<usize>]) -> Result<Self> {
        let k = assignment.len();
        let mut matching = Self::empty(k)?;
        for (i, &partner) in assignment.iter().enumerate() {
            if let Some(j) = partner {
                matching.join(i, j)?;
            }
        }
        Ok(matching)
    }

    /// Builds the "identity" perfect matching where left `i` is matched to right `i`.
    ///
    /// # Errors
    ///
    /// Returns [`MatchingError::EmptyMarket`] if `k == 0`.
    pub fn identity(k: usize) -> Result<Self> {
        let assignment: Vec<Option<usize>> = (0..k).map(Some).collect();
        Self::from_left_assignment(&assignment)
    }

    /// Market size `k`.
    pub fn k(&self) -> usize {
        self.left_to_right.len()
    }

    /// The partner of left agent `i`, if any.
    pub fn right_of(&self, i: usize) -> Option<usize> {
        self.left_to_right.get(i).copied().flatten()
    }

    /// The partner of right agent `j`, if any.
    pub fn left_of(&self, j: usize) -> Option<usize> {
        self.right_to_left.get(j).copied().flatten()
    }

    /// Matches left agent `i` with right agent `j`.
    ///
    /// Both must currently be unmatched; use [`Matching::separate_left`] /
    /// [`Matching::separate_right`] first to re-match agents.
    ///
    /// # Errors
    ///
    /// Returns [`MatchingError::AgentOutOfBounds`] for invalid indices and
    /// [`MatchingError::DuplicatePartner`] if either endpoint is already matched.
    pub fn join(&mut self, i: usize, j: usize) -> Result<()> {
        let k = self.k();
        if i >= k {
            return Err(MatchingError::AgentOutOfBounds { index: i, k });
        }
        if j >= k {
            return Err(MatchingError::AgentOutOfBounds { index: j, k });
        }
        if self.left_to_right[i].is_some() {
            return Err(MatchingError::DuplicatePartner { partner: i });
        }
        if self.right_to_left[j].is_some() {
            return Err(MatchingError::DuplicatePartner { partner: j });
        }
        self.left_to_right[i] = Some(j);
        self.right_to_left[j] = Some(i);
        Ok(())
    }

    /// Unmatches left agent `i`, returning its former partner.
    pub fn separate_left(&mut self, i: usize) -> Option<usize> {
        let partner = self.left_to_right.get_mut(i)?.take();
        if let Some(j) = partner {
            self.right_to_left[j] = None;
        }
        partner
    }

    /// Unmatches right agent `j`, returning its former partner.
    pub fn separate_right(&mut self, j: usize) -> Option<usize> {
        let partner = self.right_to_left.get_mut(j)?.take();
        if let Some(i) = partner {
            self.left_to_right[i] = None;
        }
        partner
    }

    /// Number of matched pairs.
    pub fn matched_pairs(&self) -> usize {
        self.left_to_right.iter().filter(|p| p.is_some()).count()
    }

    /// Returns `true` if every agent is matched.
    pub fn is_perfect(&self) -> bool {
        self.matched_pairs() == self.k()
    }

    /// Iterates over matched pairs `(left, right)` in ascending left order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.left_to_right.iter().enumerate().filter_map(|(i, partner)| partner.map(|j| (i, j)))
    }

    /// The left-side assignment vector (`result[i]` is the partner of left agent `i`).
    pub fn left_assignment(&self) -> &[Option<usize>] {
        &self.left_to_right
    }

    /// The right-side assignment vector (`result[j]` is the partner of right agent `j`).
    pub fn right_assignment(&self) -> &[Option<usize>] {
        &self.right_to_left
    }

    /// Finds all blocking pairs of this matching with respect to `profile`.
    ///
    /// A pair `(u, v) ∈ L × R` is blocking if both `u` and `v` prefer each other over
    /// their current partner; an unmatched agent prefers any partner over staying
    /// unmatched (§2). In particular, two unmatched agents on opposite sides always
    /// form a blocking pair.
    ///
    /// # Panics
    ///
    /// Panics if `profile.k() != self.k()`.
    pub fn blocking_pairs(&self, profile: &PreferenceProfile) -> Vec<BlockingPair> {
        assert_eq!(
            profile.k(),
            self.k(),
            "profile size {} does not match matching size {}",
            profile.k(),
            self.k()
        );
        let k = self.k();
        let mut blocking = Vec::new();
        for u in 0..k {
            for v in 0..k {
                if self.right_of(u) == Some(v) {
                    continue;
                }
                let u_prefers_v = match self.right_of(u) {
                    None => true,
                    Some(current) => profile.left(u).prefers(v, current),
                };
                if !u_prefers_v {
                    continue;
                }
                let v_prefers_u = match self.left_of(v) {
                    None => true,
                    Some(current) => profile.right(v).prefers(u, current),
                };
                if v_prefers_u {
                    blocking.push(BlockingPair { left: u, right: v });
                }
            }
        }
        blocking
    }

    /// Returns `true` if the matching has no blocking pair with respect to `profile`.
    ///
    /// Because two unmatched agents on opposite sides always block, a stable matching in
    /// the fault-free setting is necessarily perfect.
    ///
    /// # Panics
    ///
    /// Panics if `profile.k() != self.k()`.
    pub fn is_stable(&self, profile: &PreferenceProfile) -> bool {
        self.blocking_pairs(profile).is_empty()
    }
}

/// Enumerates *all* stable matchings of a profile by brute force.
///
/// Exponential in `k`; intended as a test oracle for small instances (`k ≤ 7`).
///
/// # Panics
///
/// Panics if `profile.k() > 10` to guard against accidental exponential blow-ups.
pub fn enumerate_stable_matchings(profile: &PreferenceProfile) -> Vec<Matching> {
    let k = profile.k();
    assert!(k <= 10, "brute-force enumeration is limited to k <= 10, got {k}");
    let mut stable = Vec::new();
    let mut permutation: Vec<usize> = (0..k).collect();
    permute(&mut permutation, 0, &mut |perm| {
        let assignment: Vec<Option<usize>> = perm.iter().map(|&j| Some(j)).collect();
        let matching = Matching::from_left_assignment(&assignment)
            .expect("permutation yields a valid matching");
        if matching.is_stable(profile) {
            stable.push(matching);
        }
    });
    stable
}

fn permute(values: &mut Vec<usize>, start: usize, visit: &mut impl FnMut(&[usize])) {
    if start == values.len() {
        visit(values);
        return;
    }
    for i in start..values.len() {
        values.swap(start, i);
        permute(values, start + 1, visit);
        values.swap(start, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PreferenceProfile;

    fn example_profile() -> PreferenceProfile {
        // Classic 3x3 instance with multiple stable matchings.
        PreferenceProfile::from_rows(
            vec![vec![0, 1, 2], vec![1, 2, 0], vec![2, 0, 1]],
            vec![vec![1, 2, 0], vec![2, 0, 1], vec![0, 1, 2]],
        )
        .unwrap()
    }

    #[test]
    fn empty_matching_has_no_pairs() {
        let m = Matching::empty(3).unwrap();
        assert_eq!(m.matched_pairs(), 0);
        assert!(!m.is_perfect());
        assert_eq!(m.pairs().count(), 0);
        assert!(Matching::empty(0).is_err());
    }

    #[test]
    fn join_and_separate_maintain_symmetry() {
        let mut m = Matching::empty(3).unwrap();
        m.join(0, 2).unwrap();
        assert_eq!(m.right_of(0), Some(2));
        assert_eq!(m.left_of(2), Some(0));
        // Double-matching is rejected.
        assert!(m.join(0, 1).is_err());
        assert!(m.join(1, 2).is_err());
        assert!(m.join(5, 1).is_err());
        assert!(m.join(1, 5).is_err());
        assert_eq!(m.separate_left(0), Some(2));
        assert_eq!(m.left_of(2), None);
        assert_eq!(m.separate_right(1), None);
        assert_eq!(m.separate_left(9), None);
    }

    #[test]
    fn from_left_assignment_detects_duplicates() {
        assert!(Matching::from_left_assignment(&[Some(0), Some(0)]).is_err());
        assert!(Matching::from_left_assignment(&[Some(2), None]).is_err());
        let m = Matching::from_left_assignment(&[Some(1), Some(0)]).unwrap();
        assert!(m.is_perfect());
        assert_eq!(m.left_of(1), Some(0));
    }

    #[test]
    fn two_unmatched_opposite_agents_block() {
        let profile = example_profile();
        let mut m = Matching::empty(3).unwrap();
        m.join(0, 0).unwrap();
        // Left 1, 2 and right 1, 2 are unmatched: all four cross pairs block.
        let blocking = m.blocking_pairs(&profile);
        assert!(blocking.contains(&BlockingPair { left: 1, right: 1 }));
        assert!(blocking.contains(&BlockingPair { left: 2, right: 2 }));
        assert!(!m.is_stable(&profile));
    }

    #[test]
    fn identity_matching_stability_depends_on_profile() {
        // With identity preferences the identity matching is everyone's top choice.
        let ideal = PreferenceProfile::identity(4).unwrap();
        let m = Matching::identity(4).unwrap();
        assert!(m.is_stable(&ideal));
        assert!(m.blocking_pairs(&ideal).is_empty());
    }

    #[test]
    fn blocking_pair_detection_on_known_instance() {
        let profile = example_profile();
        // Matching everyone to their own index: left 0 wants right 0 (has it),
        // left 1 wants right 1 (has it), left 2 wants right 2 (has it) — but the right
        // side may disagree. right 0 prefers 1 and 2 over 0; right 1 prefers 2 and 0 over 1...
        let m = Matching::identity(3).unwrap();
        // Check stability using the brute-force oracle instead of hand-reasoning.
        let stable_set = enumerate_stable_matchings(&profile);
        assert_eq!(stable_set.contains(&m), m.is_stable(&profile));
        assert!(!stable_set.is_empty(), "Gale-Shapley theorem: a stable matching exists");
    }

    #[test]
    fn enumerate_finds_multiple_stable_matchings() {
        // The classic "Latin square" instance has 3 stable matchings.
        let profile = PreferenceProfile::from_rows(
            vec![vec![0, 1, 2], vec![1, 2, 0], vec![2, 0, 1]],
            vec![vec![1, 2, 0], vec![2, 0, 1], vec![0, 1, 2]],
        )
        .unwrap();
        let stable = enumerate_stable_matchings(&profile);
        assert_eq!(stable.len(), 3);
        for m in &stable {
            assert!(m.is_perfect());
        }
    }

    #[test]
    fn side_helpers() {
        assert_eq!(Side::Left.opposite(), Side::Right);
        assert_eq!(Side::Right.opposite(), Side::Left);
        assert_eq!(Side::both(), [Side::Left, Side::Right]);
        assert_eq!(Side::Left.to_string(), "L");
        assert_eq!(Side::Right.to_string(), "R");
    }
}
